package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/internal/graph"
	"compactroute/internal/serve"
)

// buildDynamicServer boots the dynamic serving surface over a fresh
// topology, exactly as `routed -scheme <kind>` does.
func buildDynamicServer(t *testing.T, kind string, n int, rebuildAfter int) (*server, *compactroute.Network) {
	t.Helper()
	net := compactroute.RandomNetwork(7, n, 8/float64(n), compactroute.UniformWeights(1, 6))
	dyn, err := compactroute.NewDynamic(net, compactroute.DynamicOptions{
		Configs: []compactroute.Config{{Kind: kind, K: 2, Seed: 11, SFactor: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newDynamicServer(dyn, kind, serve.Options{Workers: 4, CacheSize: 1 << 10}, rebuildAfter)
	t.Cleanup(srv.Close)
	return srv, net
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(ts.URL+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestStaticServerRejectsMutations: file-loaded schemes answer 409 on
// the dynamic endpoints.
func TestStaticServerRejectsMutations(t *testing.T) {
	srv, _ := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/mutate", "/rebuild"} {
		resp, body := postJSON(t, ts, path, compactroute.MutSetWeight(1, 2, 3))
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on static scheme: %d %s", path, resp.StatusCode, body)
		}
	}
}

// TestMutateValidation: bad JSON is 400, a semantically invalid
// mutation is 422 and atomically rejected.
func TestMutateValidation(t *testing.T) {
	srv, net := buildDynamicServer(t, "fulltable", 60, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/mutate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	g := net.Graph()
	// Batch with one invalid member: nothing applies.
	resp, body := postJSON(t, ts, "/mutate", []compactroute.Mutation{
		compactroute.MutAddEdge(g.Name(0), g.Name(1), 2),
		compactroute.MutAddEdge(0xdeaddead, g.Name(1), 2), // unknown node
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch: %d %s", resp.StatusCode, body)
	}
	if got := srv.dyn.Pending(); got != 0 {
		t.Fatalf("invalid batch applied %d mutations", got)
	}
	// A valid single mutation (bare object, not array) applies.
	resp, body = postJSON(t, ts, "/mutate", compactroute.MutSetWeight(g.Name(0), firstNeighbor(net), 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid mutate: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Applied int    `json:"applied"`
		Seq     uint64 `json:"seq"`
		Pending uint64 `json:"pending"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Applied != 1 || out.Seq != 1 || out.Pending != 1 {
		t.Fatalf("mutate response %+v", out)
	}
}

func firstNeighbor(net *compactroute.Network) uint64 {
	g := net.Graph()
	var name uint64
	g.Neighbors(0, func(e graph.Edge) bool {
		name = g.Name(e.To)
		return false
	})
	return name
}

// TestEndToEndChurn is the acceptance scenario: ≥100 mutations arrive
// over POST /mutate while concurrent clients replay queries and
// rebuilds are triggered over HTTP. Zero requests may fail, the swap
// pause must stay under a millisecond, and after the final swap the
// served routes must be bit-identical to a cold build of the final
// graph.
func TestEndToEndChurn(t *testing.T) {
	const nodes = 110
	srv, net := buildDynamicServer(t, "fulltable", nodes, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	g := net.Graph()
	muts, err := compactroute.GenerateMutations(net, 120, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent query replay over base names (present in every
	// version): every response must be 200 and delivered.
	stop := make(chan struct{})
	var queries, failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % nodes))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % nodes))
				resp, err := client.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, src, dst))
				if err != nil {
					failures.Add(1)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"delivered":true`)) {
					t.Logf("query %d→%d: %d %s", src, dst, resp.StatusCode, body)
					failures.Add(1)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// Churn: 120 mutations in batches of 10, a synchronous rebuild
	// every 3 batches (4 rebuilds total).
	applied := 0
	for b := 0; b < 12; b++ {
		resp, body := postJSON(t, ts, "/mutate", muts[b*10:(b+1)*10])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate batch %d: %d %s", b, resp.StatusCode, body)
		}
		applied += 10
		if (b+1)%3 == 0 {
			resp, body := postJSON(t, ts, "/rebuild?wait=1", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("rebuild after batch %d: %d %s", b, resp.StatusCode, body)
			}
			var v compactroute.VersionInfo
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatal(err)
			}
			if v.MutTo != uint64(applied) {
				t.Fatalf("rebuild sealed at %d, want %d", v.MutTo, applied)
			}
		}
	}
	// Let the replay observe the final version, then stop it.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d churn-time queries failed", failures.Load(), queries.Load()+failures.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during churn")
	}

	// The daemon reports the final version and a sub-millisecond pause.
	resp, body := postJSON(t, ts, "/rebuild?wait=1", nil) // no-op: nothing pending
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final rebuild: %d %s", resp.StatusCode, body)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st struct {
		Dynamic struct {
			Version    uint64 `json:"version"`
			Pending    uint64 `json:"pending"`
			Swaps      uint64 `json:"swaps"`
			MaxPauseNs int64  `json:"maxPauseNs"`
		} `json:"dynamic"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Dynamic.Version != 4 || st.Dynamic.Pending != 0 || st.Dynamic.Swaps != 4 {
		t.Fatalf("dynamic stats: %+v", st.Dynamic)
	}
	if st.Dynamic.MaxPauseNs <= 0 || st.Dynamic.MaxPauseNs >= int64(time.Millisecond) {
		t.Fatalf("max swap pause %v, want (0, 1ms)", time.Duration(st.Dynamic.MaxPauseNs))
	}

	// Post-swap routes are bit-identical to a cold build of the final
	// graph: same delivery, cost, hops, and header bits for a full
	// strided sample, queried over HTTP against the live daemon.
	finalNet, err := compactroute.ReplayNetwork(net, muts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := compactroute.Build(finalNet, compactroute.Config{Kind: "fulltable", K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fg := finalNet.Graph()
	client := ts.Client()
	checked := 0
	for s := 0; s < fg.N(); s += 5 {
		for d := 1; d < fg.N(); d += 7 {
			src, dst := fg.Name(compactroute.NodeID(s)), fg.Name(compactroute.NodeID(d))
			want, err := cold.RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, src, dst))
			if err != nil {
				t.Fatal(err)
			}
			var got routeResponse
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits {
				t.Fatalf("route %d→%d diverged from cold build: live %+v cold %+v", src, dst, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no routes checked against the cold build")
	}
}

// TestRebuildWaitParamIsBoolean: ?wait=0 (and garbage) takes the
// async 202 branch with an application/json body; only an affirmative
// value blocks for the outcome.
func TestRebuildWaitParamIsBoolean(t *testing.T) {
	srv, _ := buildDynamicServer(t, "fulltable", 50, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, q := range []string{"", "?wait=0", "?wait=false", "?wait=nope"} {
		resp, _ := postJSON(t, ts, "/rebuild"+q, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("rebuild%s: %d, want 202", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("rebuild%s content type %q", q, ct)
		}
	}
	resp, body := postJSON(t, ts, "/rebuild?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild?wait=1: %d %s", resp.StatusCode, body)
	}
}

// TestAutoRebuild: -rebuild-after triggers the background rebuild
// once the pending backlog crosses the threshold.
func TestAutoRebuild(t *testing.T) {
	srv, net := buildDynamicServer(t, "fulltable", 60, 8)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	muts, err := compactroute.GenerateMutations(net, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts, "/mutate", muts); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := srv.dyn.Version(); v.ID >= 1 && srv.dyn.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto rebuild never happened (version %d, pending %d)",
				srv.dyn.Version().ID, srv.dyn.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDynamicHealthz: the health endpoint reports the live version.
func TestDynamicHealthz(t *testing.T) {
	srv, _ := buildDynamicServer(t, "tz", 50, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h["dynamic"] != true || h["version"] != float64(0) || h["kind"] != "tz" {
		t.Fatalf("healthz: %+v", h)
	}
}
