// Command routed is the route-serving daemon: it loads a scheme
// persisted by cmd/routesim -save (or compactroute.Save) and answers
// routing queries over HTTP — build once, route many. Startup performs
// no APSP and no scheme construction; it is bounded by deserialization
// alone.
//
//	routesim -n 2000 -k 4 -save net.crsc     # pay the build once
//	routed -scheme net.crsc -addr :8347      # serve it forever
//
//	GET /route?src=<name>&dst=<name>  route between external names
//	GET /healthz                      liveness + scheme identity
//	GET /stats                        worker pool and cache counters
//
// Names accept decimal or 0x-prefixed hex. Queries run on a bounded
// worker pool with a sharded LRU result cache (see internal/serve);
// -workers and -cache size them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"compactroute"
	"compactroute/internal/serve"
)

func main() {
	schemeFile := flag.String("scheme", "", "scheme file written by compactroute.Save (required)")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent route computations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache capacity in entries (negative: disable)")
	shards := flag.Int("shards", 16, "cache shard count")
	metric := flag.Bool("metric", false, "compute the shortest-path metric at startup so responses carry true stretch (costs one APSP)")
	flag.Parse()

	if *schemeFile == "" {
		fmt.Fprintln(os.Stderr, "routed: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*schemeFile)
	if err != nil {
		log.Fatalf("routed: %v", err)
	}
	start := time.Now()
	scheme, err := compactroute.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("routed: loading %s: %v", *schemeFile, err)
	}
	loadTime := time.Since(start)
	if *metric {
		scheme.Network().EnsureMetric()
	}
	log.Printf("routed: loaded %s (%d nodes, %d edges, max table %s bits/node) in %v",
		scheme.Name(), scheme.Network().N(), scheme.Network().Graph().M(),
		strconv.FormatInt(scheme.MaxTableBits(), 10), loadTime)

	srv := newServer(scheme, serve.Options{Workers: *workers, CacheSize: *cacheSize, Shards: *shards})
	log.Printf("routed: serving on %s (workers=%d cache=%d)", *addr, srv.pool.Stats().Workers, *cacheSize)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// server is the HTTP surface over one loaded scheme. Split from main
// so tests can drive it with httptest.
type server struct {
	scheme *compactroute.Scheme
	pool   *serve.Pool
	mux    *http.ServeMux
}

func newServer(s *compactroute.Scheme, o serve.Options) *server {
	srv := &server{scheme: s}
	srv.pool = serve.NewPool(serve.RouterFunc(func(src, dst uint64) (serve.Result, error) {
		res, err := s.RouteByName(src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{
			Delivered:    res.Delivered,
			Cost:         res.Cost,
			Hops:         res.Hops,
			HeaderBits:   res.HeaderBits,
			ShortestCost: res.ShortestCost,
		}, nil
	}), o)
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("GET /route", srv.handleRoute)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /stats", srv.handleStats)
	return srv
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routeResponse is the JSON shape of a routing answer.
type routeResponse struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := parseName(r.URL.Query().Get("src"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := parseName(r.URL.Query().Get("dst"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := s.pool.Route(r.Context(), src, dst)
	if err != nil {
		// Unknown names and canceled waits are the caller's problem;
		// anything else would be a scheme invariant violation.
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := routeResponse{
		Delivered:    res.Delivered,
		Cost:         res.Cost,
		Hops:         res.Hops,
		HeaderBits:   res.HeaderBits,
		ShortestCost: res.ShortestCost,
	}
	if res.ShortestCost > 0 {
		resp.Stretch = res.Cost / res.ShortestCost
	}
	writeJSON(w, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"scheme": s.scheme.Name(),
		"nodes":  s.scheme.Network().N(),
		"edges":  s.scheme.Network().Graph().M(),
		"metric": s.scheme.Network().HasMetric(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.pool.Stats())
}

func parseName(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	return strconv.ParseUint(s, 0, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routed: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
