// Command routed is the route-serving daemon: build once, route many —
// and, when serving a registry kind, mutate and rebuild without ever
// dropping a query. It serves any scheme kind in the registry, either
// loaded from a file persisted by compactroute.Save or built at
// startup by kind name:
//
//	routesim -n 2000 -k 4 -save net.crsc      # pay the build once
//	routed -scheme net.crsc -addr :8347       # serve the file forever
//
//	routed -scheme tz -k 3 -n 500             # build a registry kind…
//	routed -scheme apcover -graph topo.txt    # …over a generated or
//	                                          #   saved topology
//
// -scheme names either a registered kind (see compactroute.Kinds:
// paper, fulltable, apcover, landmark, tz) or a scheme file; kinds
// win, so a file named like a kind needs a path separator ("./tz").
//
//	GET  /route?src=<name>&dst=<name>  route between external names
//	GET  /healthz                      liveness + scheme identity + live version
//	GET  /stats                        worker pool, cache, and swap counters
//	POST /mutate                       append topology mutations (dynamic mode)
//	POST /rebuild[?wait=1]             rebuild + hot-swap in the background
//
// Kind-built schemes serve DYNAMICALLY (compactroute.Dynamic):
// POST /mutate appends validated mutations to the append-only log
// (body: one mutation object or an array, e.g.
// {"op":"setweight","u":7,"v":12,"w":2.5}), and POST /rebuild replays
// them onto a fresh version in a background goroutine and hot-swaps
// it in — in-flight routes finish on the old version, the result
// cache is purged inside the sub-millisecond swap, and /healthz +
// /stats report the live version. -rebuild-after N triggers the
// rebuild automatically once N mutations are pending; -snapdir
// persists every version (graph + persistable schemes + lineage).
// File-loaded schemes are static: the mutation endpoints answer 409.
//
// Names accept decimal or 0x-prefixed hex (and nothing else — no
// octal). Queries run on a bounded worker pool with a sharded
// single-flight LRU result cache (see internal/serve); -workers and
// -cache size it. Error responses follow the typed taxonomy via
// errors.Is: an unknown source name or invalid mutation is the
// caller's fault (422); a query the daemon could not serve because it
// is saturated or the caller gave up answers 503 with a Retry-After;
// anything else is a scheme invariant violation (500). The listener
// carries read/write/idle timeouts and drains gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"compactroute"
	"compactroute/internal/serve"
)

func main() {
	schemeArg := flag.String("scheme", "", "scheme to serve: a registry kind ("+strings.Join(compactroute.Kinds(), ", ")+") or a file written by compactroute.Save (required)")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent route computations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache capacity in entries (negative: disable)")
	shards := flag.Int("shards", 16, "cache shard count")
	metric := flag.Bool("metric", false, "compute the shortest-path metric at startup — and per rebuilt version — so responses carry true stretch (costs one APSP each time; built schemes start with it)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	k := flag.Int("k", 3, "trade-off parameter when building a kind")
	n := flag.Int("n", 512, "node count for the generated topology when building a kind without -graph")
	p := flag.Float64("p", 0, "gnp edge probability for the generated topology (0: 8/n)")
	seed := flag.Uint64("seed", 1, "seed for generation and construction when building a kind")
	sfactor := flag.Float64("sfactor", 0.25, "landmark S-set constant for kind paper")
	graphFile := flag.String("graph", "", "build the kind over this topology file (gio text format) instead of generating one")
	rebuildAfter := flag.Int("rebuild-after", 0, "trigger a background rebuild automatically once this many mutations are pending (0: POST /rebuild only)")
	snapdir := flag.String("snapdir", "", "persist every topology version to this directory (graph, persistable schemes with lineage, manifest); one directory records one run's chain — use a fresh one per daemon start")
	flag.Parse()

	if *schemeArg == "" {
		fmt.Fprintln(os.Stderr, "routed: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	opts := serve.Options{Workers: *workers, CacheSize: *cacheSize, Shards: *shards}
	var srv *server
	if _, isKind := compactroute.LookupKind(*schemeArg); isKind {
		net, err := buildNetwork(buildOpts{
			k: *k, n: *n, p: *p, seed: *seed, sfactor: *sfactor, graphFile: *graphFile,
		})
		if err != nil {
			log.Fatalf("routed: %v", err)
		}
		dyn, err := compactroute.NewDynamic(net, compactroute.DynamicOptions{
			Configs:      []compactroute.Config{{Kind: *schemeArg, K: *k, Seed: *seed, SFactor: *sfactor}},
			EnsureMetric: *metric,
			SnapshotDir:  *snapdir,
		})
		if err != nil {
			log.Fatalf("routed: %v", err)
		}
		srv = newDynamicServer(dyn, *schemeArg, opts, *rebuildAfter)
		s := srv.currentScheme()
		log.Printf("routed: built %s dynamically (%d nodes, %d edges, max table %s bits/node) in %v",
			s.Name(), s.Network().N(), s.Network().Graph().M(),
			strconv.FormatInt(s.MaxTableBits(), 10), time.Since(start))
	} else {
		scheme, err := loadSchemeFile(*schemeArg)
		if err != nil {
			log.Fatalf("routed: %v", err)
		}
		srv = buildDaemon(scheme, *metric, opts)
		log.Printf("routed: loaded %s (%d nodes, %d edges, max table %s bits/node) in %v",
			scheme.Name(), scheme.Network().N(), scheme.Network().Graph().M(),
			strconv.FormatInt(scheme.MaxTableBits(), 10), time.Since(start))
	}
	defer srv.Close()
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// A routing answer is tiny and a query is one GET: anything
		// slow is a stuck peer holding a connection, not real work.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("routed: serving on %s (workers=%d cache=%d metric=%v dynamic=%v)",
		*addr, srv.pool.Stats().Workers, *cacheSize, srv.currentScheme().Network().HasMetric(), srv.dyn != nil)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("routed: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("routed: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("routed: shutdown: %v", err)
		}
		log.Printf("routed: drained cleanly")
	}
}

// buildOpts carries the construction knobs for kind-named schemes.
type buildOpts struct {
	k         int
	n         int
	p         float64
	seed      uint64
	sfactor   float64
	graphFile string
}

// loadSchemeFile opens a persisted scheme file (the static flow).
func loadSchemeFile(path string) (*compactroute.Scheme, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%v (not a registered kind: %s)", err, strings.Join(compactroute.Kinds(), ", "))
	}
	defer f.Close()
	s, err := compactroute.Load(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return s, nil
}

// resolveScheme turns the -scheme argument into a STATIC scheme:
// registered kinds are built (over -graph or a generated topology),
// anything else is opened as a persisted scheme file. main serves
// kinds dynamically instead; this path remains for tests and callers
// that want the one-shot construction.
func resolveScheme(arg string, o buildOpts) (*compactroute.Scheme, string, error) {
	if _, isKind := compactroute.LookupKind(arg); isKind {
		net, err := buildNetwork(o)
		if err != nil {
			return nil, "", err
		}
		s, err := compactroute.Build(net, compactroute.Config{
			Kind: arg, K: o.k, Seed: o.seed, SFactor: o.sfactor,
		})
		if err != nil {
			return nil, "", err
		}
		return s, "built", nil
	}
	s, err := loadSchemeFile(arg)
	if err != nil {
		return nil, "", err
	}
	return s, "loaded", nil
}

func buildNetwork(o buildOpts) (*compactroute.Network, error) {
	if o.graphFile != "" {
		f, err := os.Open(o.graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return compactroute.LoadNetwork(f)
	}
	p := o.p
	if p <= 0 {
		p = 8 / float64(o.n)
	}
	return compactroute.RandomNetwork(o.seed, o.n, p, compactroute.UniformWeights(1, 8)), nil
}

// buildDaemon assembles the HTTP surface, ensuring the metric (when
// requested) strictly BEFORE the serving pool exists: the pool caches
// ShortestCost at computation time and never refreshes it, so a
// metric that appeared after the first query would leave stale
// MetricKnown=false entries behind forever (the staleness invariant
// documented in internal/serve). Constructing the pool last makes
// that state unreachable.
func buildDaemon(s *compactroute.Scheme, metric bool, o serve.Options) *server {
	if metric {
		s.Network().EnsureMetric()
	}
	return newServer(s, o)
}

// rebuildReply carries one rebuild outcome back to a waiting caller.
type rebuildReply struct {
	v   compactroute.VersionInfo
	err error
}

// server is the HTTP surface over one scheme — static (a loaded
// file) or dynamic (a kind served through compactroute.Dynamic).
// Split from main so tests can drive it with httptest.
type server struct {
	scheme *compactroute.Scheme  // static mode only
	dyn    *compactroute.Dynamic // dynamic mode only
	kind   string                // served kind in dynamic mode
	pool   *serve.Pool
	mux    *http.ServeMux

	rebuildReq   chan chan rebuildReply
	rebuildAfter int // auto-rebuild threshold (0: manual only)
	done         chan struct{}
}

// currentScheme resolves the scheme answering queries right now: the
// serving version's in dynamic mode, the loaded one otherwise.
func (s *server) currentScheme() *compactroute.Scheme {
	if s.dyn != nil {
		return s.dyn.Scheme(s.kind)
	}
	return s.scheme
}

// newServer serves one immutable scheme (the static flow).
func newServer(s *compactroute.Scheme, o serve.Options) *server {
	srv := &server{scheme: s}
	srv.init(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		return toServeResult(s.RouteByNameCtx(ctx, src, dst))
	}), o)
	return srv
}

// newDynamicServer serves a live topology: the pool routes through
// the dynamic handle (one atomic version resolution per request), the
// swap hook purges the cache inside the pause, and a single
// background goroutine runs rebuilds so /rebuild never blocks the
// serving path.
func newDynamicServer(dyn *compactroute.Dynamic, kind string, o serve.Options, rebuildAfter int) *server {
	srv := &server{dyn: dyn, kind: kind, rebuildAfter: rebuildAfter}
	srv.init(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		return toServeResult(dyn.RouteByNameCtx(ctx, kind, src, dst))
	}), o)
	dyn.OnSwap(func(compactroute.VersionInfo) { srv.pool.Purge() })
	srv.rebuildReq = make(chan chan rebuildReply, 1)
	srv.done = make(chan struct{})
	go srv.rebuildLoop()
	return srv
}

// init wires the pool and routes shared by both modes.
func (s *server) init(r serve.Router, o serve.Options) {
	s.pool = serve.NewPool(r, o)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /mutate", s.handleMutate)
	s.mux.HandleFunc("POST /rebuild", s.handleRebuild)
}

// Close stops the background rebuild worker (no-op in static mode).
func (s *server) Close() {
	if s.done != nil {
		close(s.done)
	}
}

// rebuildLoop is the background rebuild goroutine: triggers arrive
// from POST /rebuild (with an optional reply channel for ?wait=1) and
// from the -rebuild-after auto-trigger; rebuilds run one at a time
// off the serving path.
func (s *server) rebuildLoop() {
	for {
		select {
		case <-s.done:
			return
		case reply := <-s.rebuildReq:
			before := s.dyn.Version().ID
			t0 := time.Now()
			v, err := s.dyn.Rebuild(context.Background())
			switch {
			case err != nil:
				log.Printf("routed: rebuild failed (old version keeps serving): %v", err)
			case v.ID == before:
				log.Printf("routed: rebuild no-op (version %d already current, nothing pending)", v.ID)
			default:
				_, pause, _ := s.dyn.SwapStats()
				log.Printf("routed: swapped in version %d (mutations %d..%d, build %v, pause %v, total %v)",
					v.ID, v.MutFrom, v.MutTo, v.BuildWall.Round(time.Microsecond),
					pause, time.Since(t0).Round(time.Microsecond))
			}
			if reply != nil {
				reply <- rebuildReply{v: v, err: err}
			}
			// Mutations can land mid-rebuild; honor the auto-trigger
			// for whatever is still pending.
			s.maybeAutoRebuild()
		}
	}
}

// triggerRebuild enqueues a rebuild, returning false when one is
// already queued (the queued run will absorb this caller's mutations
// too — the log is sealed at rebuild time, not trigger time).
func (s *server) triggerRebuild(reply chan rebuildReply) bool {
	select {
	case s.rebuildReq <- reply:
		return true
	default:
		return false
	}
}

// maybeAutoRebuild enqueues a rebuild when the pending backlog crosses
// the -rebuild-after threshold.
func (s *server) maybeAutoRebuild() {
	if s.rebuildAfter > 0 && s.dyn.Pending() >= uint64(s.rebuildAfter) {
		s.triggerRebuild(nil)
	}
}

// ServeHTTP dispatches to the daemon's handlers.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// toServeResult adapts a facade result to the pool's cached shape.
func toServeResult(res compactroute.Result, err error) (serve.Result, error) {
	if err != nil {
		return serve.Result{}, err
	}
	return serve.Result{
		Delivered:    res.Delivered,
		Cost:         res.Cost,
		Hops:         res.Hops,
		HeaderBits:   res.HeaderBits,
		ShortestCost: res.ShortestCost,
		MetricKnown:  res.MetricKnown,
	}, nil
}

// routeResponse is the JSON shape of a routing answer.
type routeResponse struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
}

// statusFor maps a routing error onto an HTTP status through the
// typed taxonomy — errors.Is on the sentinels, never error text:
//
//	422  the caller named a node that does not exist
//	503  saturation or cancellation: retryable back-pressure
//	500  anything else would be a scheme invariant violation
func statusFor(err error) int {
	switch {
	case errors.Is(err, compactroute.ErrUnknownName),
		errors.Is(err, compactroute.ErrUnknownLabel):
		return http.StatusUnprocessableEntity
	case errors.Is(err, compactroute.ErrSaturated),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := parseName(r.URL.Query().Get("src"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := parseName(r.URL.Query().Get("dst"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := s.pool.Route(r.Context(), src, dst)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, "%v", err)
		return
	}
	resp := routeResponse{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: res.HeaderBits,
	}
	if res.MetricKnown {
		resp.ShortestCost = res.ShortestCost
		if res.ShortestCost > 0 {
			resp.Stretch = res.Cost / res.ShortestCost
		}
	}
	writeJSON(w, resp)
}

// handleMutate appends topology mutations (dynamic mode only). The
// body is one mutation object or a JSON array; the batch is atomic —
// either every mutation is accepted or none is (422).
func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		httpError(w, http.StatusConflict, "scheme was loaded from a file and is static; serve a registry kind to mutate")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var muts []compactroute.Mutation
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		err = json.Unmarshal(body, &muts)
	} else {
		var m compactroute.Mutation
		if err = json.Unmarshal(body, &m); err == nil {
			muts = []compactroute.Mutation{m}
		}
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return
	}
	if len(muts) == 0 {
		httpError(w, http.StatusBadRequest, "no mutations in body")
		return
	}
	seq, err := s.dyn.Apply(muts...)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.maybeAutoRebuild()
	writeJSON(w, map[string]any{
		"applied": len(muts),
		"seq":     seq,
		"pending": s.dyn.Pending(),
	})
}

// handleRebuild triggers a background rebuild (202). With ?wait=1 it
// blocks until the rebuild completes and reports the new version
// (200), the rebuild error (500), or the caller's cancellation (503).
func (s *server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		httpError(w, http.StatusConflict, "scheme was loaded from a file and is static; serve a registry kind to rebuild")
		return
	}
	// ?wait is a boolean: absent, "0", "false", or garbage all mean
	// the async 202 flow; only an affirmative value blocks.
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); !wait {
		status := "scheduled"
		if !s.triggerRebuild(nil) {
			status = "already scheduled"
		}
		writeJSONStatus(w, http.StatusAccepted, map[string]any{"status": status, "pending": s.dyn.Pending()})
		return
	}
	reply := make(chan rebuildReply, 1)
	select {
	case s.rebuildReq <- reply:
	case <-r.Context().Done():
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "canceled while waiting for the rebuild worker")
		return
	}
	select {
	case out := <-reply:
		if out.err != nil {
			httpError(w, http.StatusInternalServerError, "rebuild failed: %v", out.err)
			return
		}
		writeJSON(w, out.v)
	case <-r.Context().Done():
		// The rebuild keeps running; the caller just stopped waiting.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "canceled while rebuilding (rebuild continues)")
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	scheme := s.currentScheme()
	resp := map[string]any{
		"status": "ok",
		"scheme": scheme.Name(),
		"kind":   scheme.Kind(),
		"nodes":  scheme.Network().N(),
		"edges":  scheme.Network().Graph().M(),
		"metric": scheme.Network().HasMetric(),
	}
	if s.dyn != nil {
		v := s.dyn.Version()
		swaps, _, _ := s.dyn.SwapStats()
		resp["dynamic"] = true
		resp["version"] = v.ID
		resp["pending"] = s.dyn.Pending()
		resp["swaps"] = swaps
	}
	writeJSON(w, resp)
}

// dynStatus is the dynamic-serving block of /stats.
type dynStatus struct {
	Version     uint64 `json:"version"`
	Pending     uint64 `json:"pending"`
	Swaps       uint64 `json:"swaps"`
	LastPauseNs int64  `json:"lastPauseNs"`
	MaxPauseNs  int64  `json:"maxPauseNs"`
}

// statsResponse embeds the pool counters (flattened, the pre-dynamic
// shape) plus the optional dynamic block.
type statsResponse struct {
	serve.Stats
	Dynamic *dynStatus `json:"dynamic,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Stats: s.pool.Stats()}
	if s.dyn != nil {
		v := s.dyn.Version()
		swaps, last, max := s.dyn.SwapStats()
		resp.Dynamic = &dynStatus{
			Version:     v.ID,
			Pending:     s.dyn.Pending(),
			Swaps:       swaps,
			LastPauseNs: int64(last),
			MaxPauseNs:  int64(max),
		}
	}
	writeJSON(w, resp)
}

// parseName parses a node name as decimal or 0x-prefixed hex — and
// nothing else. ParseUint's base 0 would accept octal ("010" → 8)
// and underscores, silently corrupting lookups of decimal names with
// leading zeros.
func parseName(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	if len(s) > 2 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routed: writing response: %v", err)
	}
}

// writeJSONStatus is writeJSON with a non-200 status: the header must
// be set before WriteHeader commits the response, or the content type
// would be sniffed as text/plain.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routed: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
