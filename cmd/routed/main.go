// Command routed is the route-serving daemon: build once, route many.
// It serves any scheme kind in the registry, either loaded from a file
// persisted by compactroute.Save or built at startup by kind name:
//
//	routesim -n 2000 -k 4 -save net.crsc      # pay the build once
//	routed -scheme net.crsc -addr :8347       # serve the file forever
//
//	routed -scheme tz -k 3 -n 500             # build a registry kind…
//	routed -scheme apcover -graph topo.txt    # …over a generated or
//	                                          #   saved topology
//
// -scheme names either a registered kind (see compactroute.Kinds:
// paper, fulltable, apcover, landmark, tz) or a scheme file; kinds
// win, so a file named like a kind needs a path separator ("./tz").
//
//	GET /route?src=<name>&dst=<name>  route between external names
//	GET /healthz                      liveness + scheme identity
//	GET /stats                        worker pool and cache counters
//
// Names accept decimal or 0x-prefixed hex (and nothing else — no
// octal). Queries run on a bounded worker pool with a sharded
// single-flight LRU result cache (see internal/serve); -workers and
// -cache size it. Error responses follow the typed taxonomy via
// errors.Is: an unknown source name is the caller's fault (422); a
// query the daemon could not serve because it is saturated or the
// caller gave up answers 503 with a Retry-After; anything else is a
// scheme invariant violation (500). The listener carries
// read/write/idle timeouts and drains gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"compactroute"
	"compactroute/internal/serve"
)

func main() {
	schemeArg := flag.String("scheme", "", "scheme to serve: a registry kind ("+strings.Join(compactroute.Kinds(), ", ")+") or a file written by compactroute.Save (required)")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent route computations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache capacity in entries (negative: disable)")
	shards := flag.Int("shards", 16, "cache shard count")
	metric := flag.Bool("metric", false, "compute the shortest-path metric at startup so responses carry true stretch (costs one APSP on loaded schemes; built schemes already have it)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	k := flag.Int("k", 3, "trade-off parameter when building a kind")
	n := flag.Int("n", 512, "node count for the generated topology when building a kind without -graph")
	p := flag.Float64("p", 0, "gnp edge probability for the generated topology (0: 8/n)")
	seed := flag.Uint64("seed", 1, "seed for generation and construction when building a kind")
	sfactor := flag.Float64("sfactor", 0.25, "landmark S-set constant for kind paper")
	graphFile := flag.String("graph", "", "build the kind over this topology file (gio text format) instead of generating one")
	flag.Parse()

	if *schemeArg == "" {
		fmt.Fprintln(os.Stderr, "routed: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	scheme, how, err := resolveScheme(*schemeArg, buildOpts{
		k: *k, n: *n, p: *p, seed: *seed, sfactor: *sfactor, graphFile: *graphFile,
	})
	if err != nil {
		log.Fatalf("routed: %v", err)
	}
	log.Printf("routed: %s %s (%d nodes, %d edges, max table %s bits/node) in %v",
		how, scheme.Name(), scheme.Network().N(), scheme.Network().Graph().M(),
		strconv.FormatInt(scheme.MaxTableBits(), 10), time.Since(start))

	srv := buildDaemon(scheme, *metric, serve.Options{Workers: *workers, CacheSize: *cacheSize, Shards: *shards})
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// A routing answer is tiny and a query is one GET: anything
		// slow is a stuck peer holding a connection, not real work.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("routed: serving on %s (workers=%d cache=%d metric=%v)",
		*addr, srv.pool.Stats().Workers, *cacheSize, scheme.Network().HasMetric())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("routed: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("routed: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("routed: shutdown: %v", err)
		}
		log.Printf("routed: drained cleanly")
	}
}

// buildOpts carries the construction knobs for kind-named schemes.
type buildOpts struct {
	k         int
	n         int
	p         float64
	seed      uint64
	sfactor   float64
	graphFile string
}

// resolveScheme turns the -scheme argument into a served scheme:
// registered kinds are built (over -graph or a generated topology),
// anything else is opened as a persisted scheme file.
func resolveScheme(arg string, o buildOpts) (*compactroute.Scheme, string, error) {
	if _, isKind := compactroute.LookupKind(arg); isKind {
		net, err := buildNetwork(o)
		if err != nil {
			return nil, "", err
		}
		s, err := compactroute.Build(net, compactroute.Config{
			Kind: arg, K: o.k, Seed: o.seed, SFactor: o.sfactor,
		})
		if err != nil {
			return nil, "", err
		}
		return s, "built", nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, "", fmt.Errorf("%v (not a registered kind: %s)", err, strings.Join(compactroute.Kinds(), ", "))
	}
	defer f.Close()
	s, err := compactroute.Load(f)
	if err != nil {
		return nil, "", fmt.Errorf("loading %s: %w", arg, err)
	}
	return s, "loaded", nil
}

func buildNetwork(o buildOpts) (*compactroute.Network, error) {
	if o.graphFile != "" {
		f, err := os.Open(o.graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return compactroute.LoadNetwork(f)
	}
	p := o.p
	if p <= 0 {
		p = 8 / float64(o.n)
	}
	return compactroute.RandomNetwork(o.seed, o.n, p, compactroute.UniformWeights(1, 8)), nil
}

// buildDaemon assembles the HTTP surface, ensuring the metric (when
// requested) strictly BEFORE the serving pool exists: the pool caches
// ShortestCost at computation time and never refreshes it, so a
// metric that appeared after the first query would leave stale
// MetricKnown=false entries behind forever (the staleness invariant
// documented in internal/serve). Constructing the pool last makes
// that state unreachable.
func buildDaemon(s *compactroute.Scheme, metric bool, o serve.Options) *server {
	if metric {
		s.Network().EnsureMetric()
	}
	return newServer(s, o)
}

// server is the HTTP surface over one scheme. Split from main so
// tests can drive it with httptest.
type server struct {
	scheme *compactroute.Scheme
	pool   *serve.Pool
	mux    *http.ServeMux
}

func newServer(s *compactroute.Scheme, o serve.Options) *server {
	srv := &server{scheme: s}
	srv.pool = serve.NewPool(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		res, err := s.RouteByNameCtx(ctx, src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{
			Delivered:    res.Delivered,
			Cost:         res.Cost,
			Hops:         res.Hops,
			HeaderBits:   res.HeaderBits,
			ShortestCost: res.ShortestCost,
			MetricKnown:  res.MetricKnown,
		}, nil
	}), o)
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("GET /route", srv.handleRoute)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /stats", srv.handleStats)
	return srv
}

// ServeHTTP dispatches to the daemon's route/healthz/stats handlers.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routeResponse is the JSON shape of a routing answer.
type routeResponse struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
}

// statusFor maps a routing error onto an HTTP status through the
// typed taxonomy — errors.Is on the sentinels, never error text:
//
//	422  the caller named a node that does not exist
//	503  saturation or cancellation: retryable back-pressure
//	500  anything else would be a scheme invariant violation
func statusFor(err error) int {
	switch {
	case errors.Is(err, compactroute.ErrUnknownName),
		errors.Is(err, compactroute.ErrUnknownLabel):
		return http.StatusUnprocessableEntity
	case errors.Is(err, compactroute.ErrSaturated),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := parseName(r.URL.Query().Get("src"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := parseName(r.URL.Query().Get("dst"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := s.pool.Route(r.Context(), src, dst)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, "%v", err)
		return
	}
	resp := routeResponse{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: res.HeaderBits,
	}
	if res.MetricKnown {
		resp.ShortestCost = res.ShortestCost
		if res.ShortestCost > 0 {
			resp.Stretch = res.Cost / res.ShortestCost
		}
	}
	writeJSON(w, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"scheme": s.scheme.Name(),
		"kind":   s.scheme.Kind(),
		"nodes":  s.scheme.Network().N(),
		"edges":  s.scheme.Network().Graph().M(),
		"metric": s.scheme.Network().HasMetric(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.pool.Stats())
}

// parseName parses a node name as decimal or 0x-prefixed hex — and
// nothing else. ParseUint's base 0 would accept octal ("010" → 8)
// and underscores, silently corrupting lookups of decimal names with
// leading zeros.
func parseName(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	if len(s) > 2 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routed: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
