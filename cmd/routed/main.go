// Command routed is the route-serving daemon: build once, route many —
// and, when serving a registry kind, mutate and rebuild without ever
// dropping a query. All the serving logic lives in internal/server;
// this command is the flag surface plus a graceful listener. It serves
// any scheme kind in the registry, either loaded from a file persisted
// by compactroute.Save or built at startup by kind name:
//
//	routesim -n 2000 -k 4 -save net.crsc      # pay the build once
//	routed -scheme net.crsc -addr :8347       # serve the file forever
//
//	routed -scheme tz -k 3 -n 500             # build a registry kind…
//	routed -scheme apcover -graph topo.txt    # …over a generated or
//	                                          #   saved topology
//
// -scheme names either a registered kind (see compactroute.Kinds:
// paper, fulltable, apcover, landmark, tz) or a scheme file; kinds
// win, so a file named like a kind needs a path separator ("./tz").
//
// The HTTP surface is versioned under /v1 (the unversioned paths
// remain as deprecated aliases):
//
//	GET  /v1/route?src=<name>&dst=<name>  route between external names
//	GET  /v1/resolve?src=&dst=            names + shortest distance
//	GET  /v1/healthz                      liveness + scheme identity + live version
//	GET  /v1/stats                        worker pool, cache, and swap counters
//	GET  /v1/metrics                      Prometheus text exposition
//	GET  /v1/trace/{id}                   one stored request trace by ID
//	GET  /v1/traces/recent[?n=]           newest stored traces
//	GET  /v1/events                       bounded event journal (swaps, faults)
//	POST /v1/mutate                       append topology mutations (dynamic mode)
//	POST /v1/rebuild[?wait=1|?stage=1]    rebuild + hot-swap (stage: build only)
//	POST /v1/swap                         commit a staged version by ID
//
// Requests are traced 1-in--trace-sample (the X-Compactroute-Trace
// header forces a trace under the propagated ID); -slowlog writes
// slow and refused requests as JSON lines; -debug-addr exposes
// net/http/pprof on a separate listener.
//
// Kind-built schemes serve DYNAMICALLY; file-loaded schemes are static
// and answer 409 on the mutation paths. Names accept decimal or
// 0x-prefixed hex. Error responses follow the typed taxonomy (see
// internal/server): 422 caller's fault, 503 retryable back-pressure
// with Retry-After, 409 static-scheme mutation or version skew, 500
// invariant violation. The listener carries read/write/idle timeouts
// and drains gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"compactroute"
	"compactroute/internal/obs"
	"compactroute/internal/server"
)

func main() {
	schemeArg := flag.String("scheme", "", "scheme to serve: a registry kind ("+strings.Join(compactroute.Kinds(), ", ")+") or a file written by compactroute.Save (required)")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent route computations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache capacity in entries (negative: disable)")
	shards := flag.Int("shards", 16, "cache shard count")
	metric := flag.Bool("metric", false, "compute the shortest-path metric at startup — and per rebuilt version — so responses carry true stretch (costs one APSP each time; built schemes start with it)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	k := flag.Int("k", 3, "trade-off parameter when building a kind")
	n := flag.Int("n", 512, "node count for the generated topology when building a kind without -graph")
	p := flag.Float64("p", 0, "gnp edge probability for the generated topology (0: 8/n)")
	seed := flag.Uint64("seed", 1, "seed for generation and construction when building a kind")
	sfactor := flag.Float64("sfactor", 0.25, "landmark S-set constant for kind paper")
	graphFile := flag.String("graph", "", "build the kind over this topology file (gio text format) instead of generating one")
	rebuildAfter := flag.Int("rebuild-after", 0, "trigger a background rebuild automatically once this many mutations are pending (0: POST /v1/rebuild only)")
	bestOfBoth := flag.Bool("bestofboth", false, "route src→dst and dst→src concurrently and serve the cheaper usable direction (dynamic mode; mitigates transient link/node failures)")
	dampPenalty := flag.Float64("damp-penalty", 0, "flap damping: starting cost penalty per recently failed element on a path, decaying with -damp-halflife (dynamic mode; 0: off)")
	dampHalfLife := flag.Duration("damp-halflife", 30*time.Second, "flap-damping decay half-life")
	snapdir := flag.String("snapdir", "", "persist every topology version to this directory (graph, persistable schemes with lineage, manifest); one directory records one run's chain — use a fresh one per daemon start")
	traceSample := flag.Int("trace-sample", 64, "trace 1 in this many requests (negative: off; propagated X-Compactroute-Trace IDs are always traced)")
	traceRing := flag.Int("trace-ring", 1024, "stored-trace ring capacity")
	slowlog := flag.String("slowlog", "", "append slow/refused requests as JSON lines to this file (\"-\": stderr; empty: off)")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "latency threshold for the slow log")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty: off)")
	flag.Parse()

	if *schemeArg == "" {
		fmt.Fprintln(os.Stderr, "routed: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	var slowW io.Writer
	switch {
	case *slowlog == "-":
		slowW = os.Stderr
	case *slowlog != "":
		f, err := os.OpenFile(*slowlog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("routed: opening slow log: %v", err)
		}
		defer f.Close()
		slowW = f
	}
	srv, err := server.New(server.Config{
		Scheme:        *schemeArg,
		GraphFile:     *graphFile,
		K:             *k,
		N:             *n,
		P:             *p,
		Seed:          *seed,
		SFactor:       *sfactor,
		Metric:        *metric,
		Workers:       *workers,
		CacheSize:     *cacheSize,
		Shards:        *shards,
		RebuildAfter:  *rebuildAfter,
		BestOfBoth:    *bestOfBoth,
		DampPenalty:   *dampPenalty,
		DampHalfLife:  *dampHalfLife,
		SnapshotDir:   *snapdir,
		TraceSample:   *traceSample,
		TraceRing:     *traceRing,
		SlowLog:       slowW,
		SlowThreshold: *slowThreshold,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("routed: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)
	defer srv.Close()

	if *debugAddr != "" {
		go func() {
			log.Printf("routed: pprof debug listener on %s", *debugAddr)
			dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("routed: debug listener: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// A routing answer is tiny and a query is one GET: anything
		// slow is a stuck peer holding a connection, not real work.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("routed: serving on %s (workers=%d cache=%d metric=%v dynamic=%v)",
		*addr, srv.Stats().Workers, *cacheSize, srv.Scheme().Network().HasMetric(), srv.Dynamic())

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("routed: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("routed: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("routed: shutdown: %v", err)
		}
		log.Printf("routed: drained cleanly")
	}
}
