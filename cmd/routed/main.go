// Command routed is the route-serving daemon: it loads a scheme
// persisted by cmd/routesim -save (or compactroute.Save) and answers
// routing queries over HTTP — build once, route many. Startup performs
// no APSP and no scheme construction; it is bounded by deserialization
// alone.
//
//	routesim -n 2000 -k 4 -save net.crsc     # pay the build once
//	routed -scheme net.crsc -addr :8347      # serve it forever
//
//	GET /route?src=<name>&dst=<name>  route between external names
//	GET /healthz                      liveness + scheme identity
//	GET /stats                        worker pool and cache counters
//
// Names accept decimal or 0x-prefixed hex (and nothing else — no
// octal). Queries run on a bounded worker pool with a sharded
// single-flight LRU result cache (see internal/serve); -workers and
// -cache size it. A query the daemon cannot serve because the caller
// gave up (or the daemon is saturated and the wait was canceled)
// answers 503 with a Retry-After; only unknown names answer 422. The
// listener carries read/write/idle timeouts and drains gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"compactroute"
	"compactroute/internal/serve"
)

func main() {
	schemeFile := flag.String("scheme", "", "scheme file written by compactroute.Save (required)")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrent route computations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache capacity in entries (negative: disable)")
	shards := flag.Int("shards", 16, "cache shard count")
	metric := flag.Bool("metric", false, "compute the shortest-path metric at startup so responses carry true stretch (costs one APSP)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	flag.Parse()

	if *schemeFile == "" {
		fmt.Fprintln(os.Stderr, "routed: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*schemeFile)
	if err != nil {
		log.Fatalf("routed: %v", err)
	}
	start := time.Now()
	scheme, err := compactroute.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("routed: loading %s: %v", *schemeFile, err)
	}
	loadTime := time.Since(start)
	log.Printf("routed: loaded %s (%d nodes, %d edges, max table %s bits/node) in %v",
		scheme.Name(), scheme.Network().N(), scheme.Network().Graph().M(),
		strconv.FormatInt(scheme.MaxTableBits(), 10), loadTime)

	srv := buildDaemon(scheme, *metric, serve.Options{Workers: *workers, CacheSize: *cacheSize, Shards: *shards})
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// A routing answer is tiny and a query is one GET: anything
		// slow is a stuck peer holding a connection, not real work.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("routed: serving on %s (workers=%d cache=%d metric=%v)",
		*addr, srv.pool.Stats().Workers, *cacheSize, scheme.Network().HasMetric())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("routed: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("routed: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("routed: shutdown: %v", err)
		}
		log.Printf("routed: drained cleanly")
	}
}

// buildDaemon assembles the HTTP surface, ensuring the metric (when
// requested) strictly BEFORE the serving pool exists: the pool caches
// ShortestCost at computation time and never refreshes it, so a
// metric that appeared after the first query would leave stale
// ShortestCost=0 entries behind forever (the staleness invariant
// documented in internal/serve). Constructing the pool last makes
// that state unreachable.
func buildDaemon(s *compactroute.Scheme, metric bool, o serve.Options) *server {
	if metric {
		s.Network().EnsureMetric()
	}
	return newServer(s, o)
}

// server is the HTTP surface over one loaded scheme. Split from main
// so tests can drive it with httptest.
type server struct {
	scheme *compactroute.Scheme
	pool   *serve.Pool
	mux    *http.ServeMux
}

func newServer(s *compactroute.Scheme, o serve.Options) *server {
	srv := &server{scheme: s}
	srv.pool = serve.NewPool(serve.RouterFunc(func(src, dst uint64) (serve.Result, error) {
		res, err := s.RouteByName(src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{
			Delivered:    res.Delivered,
			Cost:         res.Cost,
			Hops:         res.Hops,
			HeaderBits:   res.HeaderBits,
			ShortestCost: res.ShortestCost,
		}, nil
	}), o)
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("GET /route", srv.handleRoute)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /stats", srv.handleStats)
	return srv
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routeResponse is the JSON shape of a routing answer.
type routeResponse struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := parseName(r.URL.Query().Get("src"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := parseName(r.URL.Query().Get("dst"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := s.pool.Route(r.Context(), src, dst)
	if err != nil {
		// A canceled or timed-out wait for a worker is the daemon
		// being saturated (or the caller leaving), not a bad query:
		// tell the caller to come back, not that the request was
		// malformed.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		// Unknown names are the caller's problem; anything else would
		// be a scheme invariant violation.
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := routeResponse{
		Delivered:    res.Delivered,
		Cost:         res.Cost,
		Hops:         res.Hops,
		HeaderBits:   res.HeaderBits,
		ShortestCost: res.ShortestCost,
	}
	if res.ShortestCost > 0 {
		resp.Stretch = res.Cost / res.ShortestCost
	}
	writeJSON(w, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"scheme": s.scheme.Name(),
		"nodes":  s.scheme.Network().N(),
		"edges":  s.scheme.Network().Graph().M(),
		"metric": s.scheme.Network().HasMetric(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.pool.Stats())
}

// parseName parses a node name as decimal or 0x-prefixed hex — and
// nothing else. ParseUint's base 0 would accept octal ("010" → 8)
// and underscores, silently corrupting lookups of decimal names with
// leading zeros.
func parseName(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	if len(s) > 2 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routed: writing response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
