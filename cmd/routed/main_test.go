package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/serve"
)

// buildServer builds a small scheme, round-trips it through the codec
// (the exact path the daemon takes at startup), and wraps it in the
// HTTP surface.
func buildServer(t *testing.T) (*server, *compactroute.Network) {
	t.Helper()
	net := compactroute.RandomNetwork(7, 90, 0.07, compactroute.UniformWeights(1, 6))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(loaded, serve.Options{Workers: 4, CacheSize: 1 << 10}), net
}

func TestServerRoutesLoadedScheme(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := net.Graph()
	for u := 0; u < net.N(); u += 13 {
		for v := 0; v < net.N(); v += 17 {
			url := fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v)))
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var rr routeResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("route %d→%d: status %d", u, v, resp.StatusCode)
			}
			if !rr.Delivered {
				t.Fatalf("route %d→%d not delivered", u, v)
			}
		}
	}
}

func TestServerConcurrentLoad(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := net.Graph()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				u := compactroute.NodeID((w*31 + i) % net.N())
				v := compactroute.NodeID((w*17 + i*13) % net.N())
				resp, err := http.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(u), g.Name(v)))
				if err != nil {
					errs <- err
					return
				}
				var rr routeResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if !rr.Delivered {
					errs <- fmt.Errorf("route %d→%d not delivered", u, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 16*60 {
		t.Fatalf("stats recorded %d requests, want %d", st.Requests, 16*60)
	}
	if st.Errors != 0 {
		t.Fatalf("stats recorded %d errors", st.Errors)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	srv, _ := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, q := range []string{
		"/route",                      // missing both
		"/route?src=1",                // missing dst
		"/route?src=zzz&dst=1",        // unparsable
		"/route?src=1&dst=0xFFFFFFFF", // unknown name
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: expected failure status, got 200", q)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Metric bool   `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != net.N() {
		t.Fatalf("healthz %+v", h)
	}
	if h.Metric {
		t.Fatal("loaded scheme should start without a metric")
	}
}
