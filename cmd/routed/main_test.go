package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/serve"
)

// buildServer builds a small scheme, round-trips it through the codec
// (the exact path the daemon takes at startup), and wraps it in the
// HTTP surface.
func buildServer(t *testing.T) (*server, *compactroute.Network) {
	t.Helper()
	net := compactroute.RandomNetwork(7, 90, 0.07, compactroute.UniformWeights(1, 6))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(loaded, serve.Options{Workers: 4, CacheSize: 1 << 10}), net
}

func TestServerRoutesLoadedScheme(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := net.Graph()
	for u := 0; u < net.N(); u += 13 {
		for v := 0; v < net.N(); v += 17 {
			url := fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v)))
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var rr routeResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("route %d→%d: status %d", u, v, resp.StatusCode)
			}
			if !rr.Delivered {
				t.Fatalf("route %d→%d not delivered", u, v)
			}
		}
	}
}

func TestServerConcurrentLoad(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := net.Graph()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				u := compactroute.NodeID((w*31 + i) % net.N())
				v := compactroute.NodeID((w*17 + i*13) % net.N())
				resp, err := http.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(u), g.Name(v)))
				if err != nil {
					errs <- err
					return
				}
				var rr routeResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if !rr.Delivered {
					errs <- fmt.Errorf("route %d→%d not delivered", u, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 16*60 {
		t.Fatalf("stats recorded %d requests, want %d", st.Requests, 16*60)
	}
	if st.Errors != 0 {
		t.Fatalf("stats recorded %d errors", st.Errors)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	srv, _ := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		q    string
		want int
	}{
		{"/route", http.StatusBadRequest},                               // missing both
		{"/route?src=1", http.StatusBadRequest},                         // missing dst
		{"/route?src=zzz&dst=1", http.StatusBadRequest},                 // unparsable
		{"/route?src=0o17&dst=1", http.StatusBadRequest},                // no octal
		{"/route?src=1&dst=0xFFFFFFFF", http.StatusUnprocessableEntity}, // unknown name
	} {
		resp, err := http.Get(ts.URL + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.q, resp.StatusCode, tc.want)
		}
	}
}

// TestParseNameBases: documented contract is decimal or 0x-hex — in
// particular ParseUint's base-0 octal reading of leading zeros
// ("010" → 8) must not resurface.
func TestParseNameBases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"010", 10, true}, // decimal, NOT octal 8
		{"018", 18, true}, // invalid as octal, fine as decimal
		{"16", 16, true},
		{"0x10", 16, true},
		{"0X1F", 31, true},
		{"0xDEADBEEF", 0xdeadbeef, true},
		{"18446744073709551615", ^uint64(0), true},
		{"", 0, false},
		{"zzz", 0, false},
		{"0x", 0, false},
		{"0xzz", 0, false},
		{"0b101", 0, false}, // no binary
		{"0o17", 0, false},  // no octal, explicit prefix included
		{"1_000", 0, false}, // no digit separators
		{"-1", 0, false},
	} {
		got, err := parseName(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseName(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseName(%q) = %d, want error", tc.in, got)
		}
	}
}

// TestServer503OnCanceledWait: a request whose context is already
// dead is the daemon being saturated or the caller leaving — a
// retryable 503 with Retry-After, never a 422.
func TestServer503OnCanceledWait(t *testing.T) {
	srv, net := buildServer(t)
	g := net.Graph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET",
		fmt.Sprintf("/route?src=%d&dst=%d", g.Name(0), g.Name(1)), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// An unknown name through the same path stays a 422.
	req = httptest.NewRequest("GET", "/route?src=1&dst=2", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown name: status %d, want 422", rec.Code)
	}
}

// TestMetricOrderingUnreachableStaleness: buildDaemon applies -metric
// strictly before the pool exists, so a daemon started with -metric
// can never cache a ShortestCost=0 result (the staleness invariant
// documented in internal/serve).
func TestMetricOrderingUnreachableStaleness(t *testing.T) {
	net := compactroute.RandomNetwork(7, 90, 0.07, compactroute.UniformWeights(1, 6))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Network().HasMetric() {
		t.Fatal("loaded scheme unexpectedly has a metric")
	}
	srv := buildDaemon(loaded, true, serve.Options{Workers: 2, CacheSize: 64})
	if !loaded.Network().HasMetric() {
		t.Fatal("buildDaemon(-metric) returned before the metric existed — stale cache entries are reachable")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	g := net.Graph()
	// Route the same cross-node pair twice: the second answer is the
	// cached entry, and it must carry the metric too.
	url := fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(0), g.Name(1))
	for i, want := range []string{"cold", "cached"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var rr routeResponse
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rr.ShortestCost <= 0 || rr.Stretch < 1 {
			t.Fatalf("%s response %d has no stretch: %+v", want, i, rr)
		}
	}
	var st serve.Stats
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one cold miss and one cached hit, got %+v", st)
	}
}

// TestStatusForMapping is the satellite regression test: every typed
// error maps to its pinned status code via errors.Is — 422 for names
// the caller invented, 503 for saturation/cancellation, 500 for
// anything that would be a scheme invariant violation.
func TestStatusForMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{fmt.Errorf("route: %w", compactroute.ErrUnknownName), http.StatusUnprocessableEntity},
		{fmt.Errorf("route: %w", compactroute.ErrUnknownLabel), http.StatusUnprocessableEntity},
		{fmt.Errorf("serve: %w: %w", compactroute.ErrSaturated, context.Canceled), http.StatusServiceUnavailable},
		{fmt.Errorf("serve: %w", context.Canceled), http.StatusServiceUnavailable},
		{fmt.Errorf("serve: %w", context.DeadlineExceeded), http.StatusServiceUnavailable},
		{fmt.Errorf("sim: invariant violated"), http.StatusInternalServerError},
	} {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestServeEveryRegistryKind: `routed -scheme <kind>` must serve each
// registry kind end-to-end — resolve, build, answer /route with a
// delivered result, and identify the kind on /healthz.
func TestServeEveryRegistryKind(t *testing.T) {
	for _, kind := range compactroute.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			scheme, how, err := resolveScheme(kind, buildOpts{k: 2, n: 70, seed: 9, sfactor: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if how != "built" || scheme.Kind() != kind {
				t.Fatalf("resolved %q as %s kind %q", kind, how, scheme.Kind())
			}
			srv := newServer(scheme, serve.Options{Workers: 2, CacheSize: 64})
			ts := httptest.NewServer(srv)
			defer ts.Close()

			g := scheme.Network().Graph()
			url := fmt.Sprintf("%s/route?src=%d&dst=%d", ts.URL, g.Name(0), g.Name(compactroute.NodeID(g.N()-1)))
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var rr routeResponse
			err = json.NewDecoder(resp.Body).Decode(&rr)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || !rr.Delivered {
				t.Fatalf("kind %s route: status %d, %+v, %v", kind, resp.StatusCode, rr, err)
			}

			hresp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h struct {
				Kind string `json:"kind"`
			}
			err = json.NewDecoder(hresp.Body).Decode(&h)
			hresp.Body.Close()
			if err != nil || h.Kind != kind {
				t.Fatalf("healthz kind = %q, want %q (%v)", h.Kind, kind, err)
			}
		})
	}
}

// TestResolveSchemeFileFallback: a -scheme value that is not a kind
// loads as a file; garbage errors mentioning the registry.
func TestResolveSchemeFileFallback(t *testing.T) {
	net := compactroute.RandomNetwork(3, 60, 0.1, compactroute.UniformWeights(1, 4))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 4, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.crsc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := compactroute.Save(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, how, err := resolveScheme(path, buildOpts{})
	if err != nil || how != "loaded" || loaded.Kind() != "paper" {
		t.Fatalf("resolveScheme(file) = %q kind %q, %v", how, loaded.Kind(), err)
	}
	if _, _, err := resolveScheme(filepath.Join(t.TempDir(), "nope.crsc"), buildOpts{}); err == nil {
		t.Fatal("nonexistent file resolved")
	}
}

func TestServerHealthz(t *testing.T) {
	srv, net := buildServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Metric bool   `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != net.N() {
		t.Fatalf("healthz %+v", h)
	}
	if h.Metric {
		t.Fatal("loaded scheme should start without a metric")
	}
}
