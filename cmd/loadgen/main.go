// Command loadgen replays workload patterns against a serving tier
// over HTTP, measuring sustained throughput and the latency
// distribution — the denominator of the build-once/route-many trade,
// observed from the client side.
//
//	routesim -n 2000 -k 4 -save net.crsc
//	routed -scheme net.crsc -addr :8347 &
//	loadgen -scheme net.crsc -targets http://localhost:8347 \
//	        -pattern uniform,zipf,gravity,local -queries 20000 -concurrency 32
//
// -targets accepts a comma-separated list of base URLs: one routed
// daemon, several (requests round-robin across them), or a single
// routefront front-door that partitions the name space over a shard
// cluster. All traffic speaks the versioned /v1 API through the
// client package, so the same invocation drives either tier.
//
// The scheme file gives loadgen the node names to query (the daemon
// and the generator must be handed the same file); -graph accepts a
// topology file (gio text) instead, pairing with `routed -scheme
// <kind> -graph`. No metric is computed unless the adversarial
// pattern is requested, which ranks candidate pairs by locally
// measured stretch and replays the worst (and needs -scheme). Each
// worker drives its own deterministic query stream, so a run is
// reproducible end to end given -seed.
//
// # Churn
//
// Against a dynamic daemon (routed serving a registry kind) or a
// front-door, loadgen interleaves topology churn with the replay:
// -mutations names a trace file (cmd/graphgen -mutations), and one
// mutation is POSTed to /v1/mutate every -mutate-every completed
// queries, with a rebuild triggered via /v1/rebuild every
// -rebuild-every mutations — the client-side view of mutate → rebuild
// → hot swap under live traffic:
//
//	graphgen -family gnp -n 500 -mutations 200 -mutout churn.mut > topo.txt
//	routed -scheme tz -graph topo.txt &
//	loadgen -graph topo.txt -mutations churn.mut -queries 20000
//
// Churn requires a single target: mutations are stateful, and only a
// front-door can fan them out consistently — point -targets at one
// daemon or one routefront. The trace is consumed in order across
// patterns, and a final synchronous rebuild flushes whatever is still
// pending; the churn summary reports mutations applied, rebuilds
// triggered, and POST failures (zero on a healthy daemon).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/dynamic"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
	"compactroute/internal/stats"
	"compactroute/internal/workload"
)

func main() {
	schemeFile := flag.String("scheme", "", "scheme file written by compactroute.Save; source of the node names to query (this or -graph is required)")
	graphFile := flag.String("graph", "", "topology file (gio text format) as the node-name source instead of -scheme")
	mutationsFile := flag.String("mutations", "", "mutation trace file (cmd/graphgen -mutations): interleave topology churn with the replay (single target only)")
	mutateEvery := flag.Int("mutate-every", 50, "completed queries between mutation POSTs (churn mode)")
	rebuildEvery := flag.Int("rebuild-every", 25, "mutations between rebuild triggers (churn mode; 0: final rebuild only)")
	targets := flag.String("targets", "", "comma-separated base URLs: routed daemons or one routefront front-door (overrides -url)")
	baseURL := flag.String("url", "http://localhost:8347", "base URL of the routed daemon (deprecated: use -targets)")
	patternList := flag.String("pattern", "uniform,zipf,gravity,local", "comma-separated workload patterns (add adversarial to hammer worst-stretch pairs; costs one local APSP)")
	queries := flag.Int("queries", 10000, "requests per pattern")
	concurrency := flag.Int("concurrency", 16, "concurrent client connections")
	seed := flag.Uint64("seed", 1, "seed for all query streams")
	warmup := flag.Int("warmup", 0, "untimed warmup requests per pattern")
	zipfS := flag.Float64("zipf-s", 0, "zipf skew exponent (0: 1.1)")
	localHops := flag.Int("local-hops", 0, "hop radius for the local pattern (0: 2)")
	candidates := flag.Int("candidates", 0, "candidate pairs the adversarial pattern scores (0: 4096)")
	keep := flag.Int("keep", 0, "worst pairs the adversarial pattern replays (0: 64)")
	hist := flag.Int("hist", 0, "print a latency histogram with this many buckets (0: off)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if (*schemeFile == "") == (*graphFile == "") {
		fmt.Fprintln(os.Stderr, "loadgen: exactly one of -scheme or -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if *queries < 1 || *concurrency < 1 {
		fail(fmt.Errorf("-queries and -concurrency must be ≥ 1"))
	}
	urls := splitTargets(*targets)
	if len(urls) == 0 {
		urls = []string{*baseURL}
	}
	var (
		scheme *compactroute.Scheme // nil with -graph
		g      *graph.Graph
	)
	if *schemeFile != "" {
		f, err := os.Open(*schemeFile)
		if err != nil {
			fail(err)
		}
		scheme, err = compactroute.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		g = scheme.Network().Graph()
	} else {
		f, err := os.Open(*graphFile)
		if err != nil {
			fail(err)
		}
		g, err = gio.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	var patterns []workload.Pattern
	for _, p := range strings.Split(*patternList, ",") {
		patterns = append(patterns, workload.Pattern(strings.TrimSpace(p)))
	}
	base := workload.Options{
		Seed:       *seed,
		ZipfS:      *zipfS,
		LocalHops:  *localHops,
		Candidates: *candidates,
		Keep:       *keep,
	}
	clients := newClients(urls, *timeout)
	fmt.Printf("loadgen: %s, %d nodes, %d queries/pattern, concurrency %d\n",
		strings.Join(urls, ", "), g.N(), *queries, *concurrency)

	var churner *churn
	if *mutationsFile != "" {
		if len(clients) > 1 {
			fail(fmt.Errorf("churn needs a single target (one daemon or one front-door), got %d", len(clients)))
		}
		mf, err := os.Open(*mutationsFile)
		if err != nil {
			fail(err)
		}
		muts, err := dynamic.ReadTrace(mf)
		mf.Close()
		if err != nil {
			fail(err)
		}
		if *mutateEvery < 1 {
			fail(fmt.Errorf("-mutate-every must be ≥ 1"))
		}
		churner = &churn{
			client: clients[0], muts: muts,
			mutateEvery: *mutateEvery, rebuildEvery: *rebuildEvery,
		}
		churner.start()
		fmt.Printf("loadgen: churning %d mutations (1 per %d queries, rebuild per %d mutations)\n",
			len(muts), *mutateEvery, *rebuildEvery)
	}

	// The status-class columns ride at the END of the row: downstream
	// parsers (the smoke script's awk) address the early columns by
	// position, so new columns must only ever append.
	table := stats.NewTable("latency by workload pattern",
		"pattern", "queries", "errors", "unreach", "qps", "p50", "p95", "p99", "max",
		"p95-409", "p95-502", "p95-503")
	var histograms []string
	for _, p := range patterns {
		streams, err := patternStreams(p, g, scheme, *concurrency, base)
		if err != nil {
			fail(err)
		}
		var counter *atomic.Uint64
		if churner != nil {
			counter = &churner.counter
		}
		rep, err := replay(clients, streams, *queries, *warmup, counter)
		if err != nil {
			fail(fmt.Errorf("%s: %w", p, err))
		}
		table.AddRow(string(p), rep.queries, rep.failed, rep.unreachable,
			fmt.Sprintf("%.0f", rep.qps()),
			fmtLatency(rep.latency.Percentile(50)),
			fmtLatency(rep.latency.Percentile(95)),
			fmtLatency(rep.latency.Percentile(99)),
			fmtLatency(rep.latency.Max()),
			p95OrDash(rep.lat409), p95OrDash(rep.lat502), p95OrDash(rep.lat503))
		if *hist > 0 {
			histograms = append(histograms,
				fmt.Sprintf("-- %s --\n%s", p, rep.latency.Histogram(*hist, fmtLatency)))
		}
	}
	fmt.Println(table)
	for _, h := range histograms {
		fmt.Println(h)
	}
	if churner != nil {
		if err := churner.finish(); err != nil {
			fail(fmt.Errorf("churn: %w", err))
		}
		fmt.Println(churner.summary())
	}
}

// splitTargets parses the -targets list, dropping empty entries.
func splitTargets(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// newClients builds one API client per target, each with the replay's
// per-request timeout.
func newClients(urls []string, timeout time.Duration) []*client.Client {
	clients := make([]*client.Client, len(urls))
	for i, u := range urls {
		clients[i] = client.New(u)
		clients[i].HTTP.Timeout = timeout
	}
	return clients
}

// patternStreams builds one deterministic stream per worker: every
// worker shares the seed (so hotspots, candidate sets, and balls are
// the same targets) and gets a distinct Fork (so the draw sequences
// differ and the aggregate traffic keeps the pattern's shape). The
// adversarial pattern ranks its shared candidate set once through a
// memoizing ranker, which needs a local scheme (-scheme, not -graph).
func patternStreams(p workload.Pattern, g *graph.Graph, s *compactroute.Scheme, workers int, base workload.Options) ([]*workload.Stream, error) {
	if p == workload.Adversarial {
		if s == nil {
			return nil, fmt.Errorf("the adversarial pattern ranks pairs by locally measured stretch and needs -scheme, not -graph")
		}
		s.Network().EnsureMetric() // stretch ranking needs d(u,v)
		base.Rank = memoRanker(s)
	}
	streams := make([]*workload.Stream, workers)
	for w := range streams {
		o := base
		o.Fork = uint64(w)
		st, err := workload.New(p, g, o)
		if err != nil {
			return nil, err
		}
		streams[w] = st
	}
	return streams, nil
}

// churn is the mutation side of a dynamic replay: a single goroutine
// that walks the trace in order, POSTing one mutation to /v1/mutate
// every mutateEvery completed queries (paced by the counter the
// replay workers increment) and scheduling a rebuild every
// rebuildEvery mutations. Against a front-door the rebuild is a
// coordinated cluster cut-over. A POST failure stops the churn —
// mutations are stateful, so replaying the rest of the trace after a
// gap could only produce spurious 422s.
type churn struct {
	client       *client.Client
	muts         []dynamic.Mutation
	mutateEvery  int
	rebuildEvery int

	counter  atomic.Uint64 // completed queries, fed by replay workers
	stop     chan struct{}
	done     chan struct{}
	applied  int
	rebuilds int
	err      error
}

func (c *churn) start() {
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run()
}

func (c *churn) run() {
	defer close(c.done)
	ctx := context.Background()
	for c.applied < len(c.muts) {
		select {
		case <-c.stop:
			return
		default:
		}
		if c.counter.Load() < uint64(c.applied+1)*uint64(c.mutateEvery) {
			time.Sleep(time.Millisecond)
			continue
		}
		if _, c.err = c.client.Mutate(ctx, c.muts[c.applied]); c.err != nil {
			return
		}
		c.applied++
		if c.rebuildEvery > 0 && c.applied%c.rebuildEvery == 0 {
			if _, c.err = c.client.Rebuild(ctx); c.err != nil {
				return
			}
			c.rebuilds++
		}
	}
}

// finish stops the churn goroutine and flushes whatever is still
// pending with one synchronous rebuild, so the daemon ends the run on
// a version that has absorbed every applied mutation.
func (c *churn) finish() error {
	close(c.stop)
	<-c.done
	if c.err != nil {
		return c.err
	}
	if c.applied > 0 {
		if _, err := c.client.RebuildWait(context.Background()); err != nil {
			return err
		}
		c.rebuilds++
	}
	return nil
}

func (c *churn) summary() string {
	return fmt.Sprintf("churn: %d/%d mutations applied, %d rebuilds triggered",
		c.applied, len(c.muts), c.rebuilds)
}

// memoRanker scores a pair by its locally measured stretch, caching
// scores so identical per-worker candidate sets are routed once.
func memoRanker(s *compactroute.Scheme) func(u, v graph.NodeID) float64 {
	type pair struct{ u, v graph.NodeID }
	var mu sync.Mutex
	memo := make(map[pair]float64)
	return func(u, v graph.NodeID) float64 {
		mu.Lock()
		score, ok := memo[pair{u, v}]
		mu.Unlock()
		if ok {
			return score
		}
		res, err := s.Route(u, v)
		if err != nil || !res.Delivered || !res.MetricKnown {
			// Unroutable pairs are not interesting adversaries, and an
			// unknown stretch (MetricKnown false) must not score as the
			// sentinel "optimal" 1 — EnsureMetric runs before ranking,
			// so this is belt-and-braces against reordering.
			score = 0
		} else {
			score = res.Stretch()
		}
		mu.Lock()
		memo[pair{u, v}] = score
		mu.Unlock()
		return score
	}
}

// report summarizes one pattern's replay. Error responses carry their
// own latency samples per status class — a 503 answered in 100µs
// (back-pressure shedding fast) and a 503 answered at the timeout
// (a wedged daemon) are different failures, and folding them into the
// success percentiles would poison both views.
type report struct {
	queries     int // requests issued (excluding warmup)
	failed      int // API-error responses (4xx/5xx other than 502)
	unreachable int // 502s: the shard's fault overlay blocked the query
	elapsed     time.Duration
	latency     *stats.Sample // seconds, successful (2xx) requests only
	lat409      *stats.Sample // version-skew / static-scheme conflicts
	lat502      *stats.Sample // fault-overlay unreachable
	lat503      *stats.Sample // back-pressure shedding
}

func (r report) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.queries) / r.elapsed.Seconds()
}

// replay drives one worker per stream against the targets — each
// worker striding round-robin across the client list — and merges the
// per-worker latency samples. The warmup phase completes on every
// worker before the clock starts, so neither throughput nor latency
// includes it. Transport-level errors abort the run; API error
// statuses (a saturated daemon answering 503) are counted and the
// replay continues. A non-nil counter receives one increment per
// completed timed query — the churn pacing signal.
func replay(clients []*client.Client, streams []*workload.Stream, queries, warmup int, counter *atomic.Uint64) (report, error) {
	workers := len(streams)
	if workers > queries {
		workers = queries
		streams = streams[:workers]
	}
	type workerResult struct {
		lat         stats.Sample
		lat409      stats.Sample
		lat502      stats.Sample
		lat503      stats.Sample
		failed      int
		unreachable int
		err         error
	}
	results := make([]workerResult, workers)
	ctx := context.Background()
	// split spreads a request budget so the worker totals are exact.
	split := func(total, w int) int {
		per := total / workers
		if w < total%workers {
			per++
		}
		return per
	}
	phase := func(warm bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			total := queries
			if warm {
				total = warmup
			}
			wg.Add(1)
			go func(w, per int) {
				defer wg.Done()
				r := &results[w]
				for i := 0; i < per && r.err == nil; i++ {
					q := streams[w].Next()
					cl := clients[(w*7+i)%len(clients)]
					t0 := time.Now()
					_, err := cl.RouteByName(ctx, q.SrcName, q.DstName)
					var apiErr *client.Error
					switch {
					case err != nil && !errors.As(err, &apiErr):
						r.err = err // transport failure: abort
					case warm: // untimed, uncounted
					case err != nil:
						// 502 is not the daemon misbehaving — a transient
						// fault blocked the query. Tallied apart so a
						// resilience run reads delivery loss directly.
						dur := time.Since(t0).Seconds()
						switch {
						case client.IsStatus(err, 502):
							r.unreachable++
							r.lat502.Add(dur)
						case client.IsStatus(err, 409):
							r.failed++
							r.lat409.Add(dur)
						case client.IsStatus(err, 503):
							r.failed++
							r.lat503.Add(dur)
						default:
							r.failed++
						}
					default:
						r.lat.Add(time.Since(t0).Seconds())
						if counter != nil {
							counter.Add(1)
						}
					}
				}
			}(w, split(total, w))
		}
		wg.Wait()
	}
	if warmup > 0 {
		phase(true)
	}
	start := time.Now()
	phase(false)
	rep := report{queries: queries, elapsed: time.Since(start),
		latency: &stats.Sample{}, lat409: &stats.Sample{}, lat502: &stats.Sample{}, lat503: &stats.Sample{}}
	for w := range results {
		if results[w].err != nil {
			return report{}, results[w].err
		}
		rep.failed += results[w].failed
		rep.unreachable += results[w].unreachable
		rep.latency.Merge(&results[w].lat)
		rep.lat409.Merge(&results[w].lat409)
		rep.lat502.Merge(&results[w].lat502)
		rep.lat503.Merge(&results[w].lat503)
	}
	return rep, nil
}

// fmtLatency renders a latency in seconds as a duration.
func fmtLatency(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

// p95OrDash renders a status-class p95, or "-" when the class never
// occurred (a healthy run shows dashes across the breakdown columns).
func p95OrDash(s *stats.Sample) string {
	if s.N() == 0 {
		return "-"
	}
	return fmtLatency(s.Percentile(95))
}
