// Command loadgen replays workload patterns against a running routed
// daemon over HTTP, measuring sustained throughput and the latency
// distribution — the denominator of the build-once/route-many trade,
// observed from the client side.
//
//	routesim -n 2000 -k 4 -save net.crsc
//	routed -scheme net.crsc -addr :8347 &
//	loadgen -scheme net.crsc -url http://localhost:8347 \
//	        -pattern uniform,zipf,gravity,local -queries 20000 -concurrency 32
//
// The scheme file gives loadgen the node names to query (the daemon
// and the generator must be handed the same file); no metric is
// computed unless the adversarial pattern is requested, which ranks
// candidate pairs by locally measured stretch and replays the worst.
// Each worker drives its own deterministic query stream, so a run is
// reproducible end to end given -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"compactroute"
	"compactroute/internal/graph"
	"compactroute/internal/stats"
	"compactroute/internal/workload"
)

func main() {
	schemeFile := flag.String("scheme", "", "scheme file written by compactroute.Save; source of the node names to query (required)")
	baseURL := flag.String("url", "http://localhost:8347", "base URL of the routed daemon")
	patternList := flag.String("pattern", "uniform,zipf,gravity,local", "comma-separated workload patterns (add adversarial to hammer worst-stretch pairs; costs one local APSP)")
	queries := flag.Int("queries", 10000, "requests per pattern")
	concurrency := flag.Int("concurrency", 16, "concurrent client connections")
	seed := flag.Uint64("seed", 1, "seed for all query streams")
	warmup := flag.Int("warmup", 0, "untimed warmup requests per pattern")
	zipfS := flag.Float64("zipf-s", 0, "zipf skew exponent (0: 1.1)")
	localHops := flag.Int("local-hops", 0, "hop radius for the local pattern (0: 2)")
	candidates := flag.Int("candidates", 0, "candidate pairs the adversarial pattern scores (0: 4096)")
	keep := flag.Int("keep", 0, "worst pairs the adversarial pattern replays (0: 64)")
	hist := flag.Int("hist", 0, "print a latency histogram with this many buckets (0: off)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *schemeFile == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scheme is required")
		flag.Usage()
		os.Exit(2)
	}
	if *queries < 1 || *concurrency < 1 {
		fail(fmt.Errorf("-queries and -concurrency must be ≥ 1"))
	}
	f, err := os.Open(*schemeFile)
	if err != nil {
		fail(err)
	}
	scheme, err := compactroute.Load(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	var patterns []workload.Pattern
	for _, p := range strings.Split(*patternList, ",") {
		patterns = append(patterns, workload.Pattern(strings.TrimSpace(p)))
	}
	base := workload.Options{
		Seed:       *seed,
		ZipfS:      *zipfS,
		LocalHops:  *localHops,
		Candidates: *candidates,
		Keep:       *keep,
	}
	client := newClient(*concurrency, *timeout)
	fmt.Printf("loadgen: %s, %d nodes, %d queries/pattern, concurrency %d\n",
		*baseURL, scheme.Network().N(), *queries, *concurrency)

	table := stats.NewTable("latency by workload pattern",
		"pattern", "queries", "errors", "qps", "p50", "p95", "p99", "max")
	var histograms []string
	for _, p := range patterns {
		streams, err := patternStreams(p, scheme, *concurrency, base)
		if err != nil {
			fail(err)
		}
		rep, err := replay(client, *baseURL, streams, *queries, *warmup)
		if err != nil {
			fail(fmt.Errorf("%s: %w", p, err))
		}
		table.AddRow(string(p), rep.queries, rep.failed,
			fmt.Sprintf("%.0f", rep.qps()),
			fmtLatency(rep.latency.Percentile(50)),
			fmtLatency(rep.latency.Percentile(95)),
			fmtLatency(rep.latency.Percentile(99)),
			fmtLatency(rep.latency.Max()))
		if *hist > 0 {
			histograms = append(histograms,
				fmt.Sprintf("-- %s --\n%s", p, rep.latency.Histogram(*hist, fmtLatency)))
		}
	}
	fmt.Println(table)
	for _, h := range histograms {
		fmt.Println(h)
	}
}

// newClient returns an HTTP client sized for the replay concurrency.
func newClient(concurrency int, timeout time.Duration) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = concurrency
	tr.MaxIdleConnsPerHost = concurrency
	return &http.Client{Transport: tr, Timeout: timeout}
}

// patternStreams builds one deterministic stream per worker: every
// worker shares the seed (so hotspots, candidate sets, and balls are
// the same targets) and gets a distinct Fork (so the draw sequences
// differ and the aggregate traffic keeps the pattern's shape). The
// adversarial pattern ranks its shared candidate set once through a
// memoizing ranker.
func patternStreams(p workload.Pattern, s *compactroute.Scheme, workers int, base workload.Options) ([]*workload.Stream, error) {
	if p == workload.Adversarial {
		s.Network().EnsureMetric() // stretch ranking needs d(u,v)
		base.Rank = memoRanker(s)
	}
	streams := make([]*workload.Stream, workers)
	for w := range streams {
		o := base
		o.Fork = uint64(w)
		st, err := workload.New(p, s.Network().Graph(), o)
		if err != nil {
			return nil, err
		}
		streams[w] = st
	}
	return streams, nil
}

// memoRanker scores a pair by its locally measured stretch, caching
// scores so identical per-worker candidate sets are routed once.
func memoRanker(s *compactroute.Scheme) func(u, v graph.NodeID) float64 {
	type pair struct{ u, v graph.NodeID }
	var mu sync.Mutex
	memo := make(map[pair]float64)
	return func(u, v graph.NodeID) float64 {
		mu.Lock()
		score, ok := memo[pair{u, v}]
		mu.Unlock()
		if ok {
			return score
		}
		res, err := s.Route(u, v)
		if err != nil || !res.Delivered || !res.MetricKnown {
			// Unroutable pairs are not interesting adversaries, and an
			// unknown stretch (MetricKnown false) must not score as the
			// sentinel "optimal" 1 — EnsureMetric runs before ranking,
			// so this is belt-and-braces against reordering.
			score = 0
		} else {
			score = res.Stretch()
		}
		mu.Lock()
		memo[pair{u, v}] = score
		mu.Unlock()
		return score
	}
}

// report summarizes one pattern's replay.
type report struct {
	queries int // requests issued (excluding warmup)
	failed  int // non-200 responses
	elapsed time.Duration
	latency *stats.Sample // seconds, successful requests only
}

func (r report) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.queries) / r.elapsed.Seconds()
}

// replay drives one worker per stream against the daemon and merges
// the per-worker latency samples. The warmup phase completes on every
// worker before the clock starts, so neither throughput nor latency
// includes it. Transport-level errors abort the run; HTTP error
// statuses (a saturated daemon answering 503) are counted and the
// replay continues.
func replay(client *http.Client, baseURL string, streams []*workload.Stream, queries, warmup int) (report, error) {
	workers := len(streams)
	if workers > queries {
		workers = queries
		streams = streams[:workers]
	}
	type workerResult struct {
		lat    stats.Sample
		failed int
		err    error
	}
	results := make([]workerResult, workers)
	// split spreads a request budget so the worker totals are exact.
	split := func(total, w int) int {
		per := total / workers
		if w < total%workers {
			per++
		}
		return per
	}
	phase := func(warm bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			total := queries
			if warm {
				total = warmup
			}
			wg.Add(1)
			go func(w, per int) {
				defer wg.Done()
				r := &results[w]
				for i := 0; i < per && r.err == nil; i++ {
					q := streams[w].Next()
					t0 := time.Now()
					ok, err := get(client, baseURL, q)
					switch {
					case err != nil:
						r.err = err
					case warm: // untimed, uncounted
					case !ok:
						r.failed++
					default:
						r.lat.Add(time.Since(t0).Seconds())
					}
				}
			}(w, split(total, w))
		}
		wg.Wait()
	}
	if warmup > 0 {
		phase(true)
	}
	start := time.Now()
	phase(false)
	rep := report{queries: queries, elapsed: time.Since(start), latency: &stats.Sample{}}
	for w := range results {
		if results[w].err != nil {
			return report{}, results[w].err
		}
		rep.failed += results[w].failed
		rep.latency.Merge(&results[w].lat)
	}
	return rep, nil
}

// get issues one routing query, reporting whether it was answered 200.
func get(client *http.Client, baseURL string, q workload.Query) (bool, error) {
	resp, err := client.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", baseURL, q.SrcName, q.DstName))
	if err != nil {
		return false, err
	}
	// Drain so the connection is reusable.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// fmtLatency renders a latency in seconds as a duration.
func fmtLatency(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}
