package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/internal/dynamic"
	"compactroute/internal/serve"
	"compactroute/internal/workload"
)

// testDaemon builds a small scheme, round-trips it through Save/Load
// (the file the generator and daemon would share), and serves it the
// way cmd/routed does: a serve.Pool behind a /v1/route handler.
func testDaemon(t *testing.T) (*compactroute.Scheme, *httptest.Server) {
	t.Helper()
	net := compactroute.RandomNetwork(5, 80, 0.08, compactroute.UniformWeights(1, 5))
	built, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 3, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, built); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pool := serve.NewPool(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		res, err := loaded.RouteByNameCtx(ctx, src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{Delivered: res.Delivered, Cost: res.Cost, Hops: res.Hops}, nil
	}), serve.Options{Workers: 4, CacheSize: 1 << 10})
	ts := httptest.NewServer(routeMux(pool))
	t.Cleanup(ts.Close)
	return loaded, ts
}

// routeMux is the minimal /v1/route surface the client package needs.
func routeMux(pool *serve.Pool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/route", func(w http.ResponseWriter, r *http.Request) {
		src, err1 := strconv.ParseUint(r.URL.Query().Get("src"), 10, 64)
		dst, err2 := strconv.ParseUint(r.URL.Query().Get("dst"), 10, 64)
		if err1 != nil || err2 != nil {
			http.Error(w, `{"error":"bad name"}`, http.StatusBadRequest)
			return
		}
		res, err := pool.Route(context.Background(), src, dst)
		if err != nil {
			http.Error(w, `{"error":"unknown"}`, http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	return mux
}

// TestReplayPatterns drives the full client path for several workload
// patterns (the loadgen acceptance shape: throughput + percentiles
// for ≥ 3 patterns).
func TestReplayPatterns(t *testing.T) {
	scheme, ts := testDaemon(t)
	clients := newClients([]string{ts.URL}, 5*time.Second)
	base := workload.Options{Seed: 1, Candidates: 64, Keep: 8}
	for _, p := range []workload.Pattern{workload.Uniform, workload.Zipf, workload.Gravity, workload.Local, workload.Adversarial} {
		streams, err := patternStreams(p, scheme.Network().Graph(), scheme, 4, base)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		const queries = 120
		rep, err := replay(clients, streams, queries, 8, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.queries != queries {
			t.Fatalf("%s: report counts %d queries, want %d", p, rep.queries, queries)
		}
		if rep.failed != 0 {
			t.Fatalf("%s: %d failed requests against a healthy daemon", p, rep.failed)
		}
		if rep.latency.N() != queries {
			t.Fatalf("%s: %d latency samples for %d queries", p, rep.latency.N(), queries)
		}
		if rep.qps() <= 0 {
			t.Fatalf("%s: qps %v", p, rep.qps())
		}
		if p50, max := rep.latency.Percentile(50), rep.latency.Max(); p50 <= 0 || max < p50 {
			t.Fatalf("%s: implausible latency p50=%v max=%v", p, p50, max)
		}
	}
}

// TestReplaySpreadsAcrossTargets: with several -targets, every target
// sees a share of the traffic.
func TestReplaySpreadsAcrossTargets(t *testing.T) {
	scheme, _ := testDaemon(t)
	var hits [3]atomic.Uint64
	urls := make([]string, len(hits))
	for i := range hits {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.Write([]byte(`{"delivered":true}`))
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	streams, err := patternStreams(workload.Uniform, scheme.Network().Graph(), scheme, 4, workload.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay(newClients(urls, time.Second), streams, 90, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed != 0 {
		t.Fatalf("%d failures across fake targets", rep.failed)
	}
	var total uint64
	counts := make([]uint64, len(hits))
	for i := range hits {
		counts[i] = hits[i].Load()
		total += counts[i]
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("target %d got no traffic: %v", i, counts)
		}
	}
	if total != 90 {
		t.Fatalf("targets saw %d requests, want 90", total)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" http://a:1, ,http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitTargets = %v", got)
	}
	if got := splitTargets(""); len(got) != 0 {
		t.Fatalf("splitTargets(\"\") = %v", got)
	}
}

// TestReplayCountsHTTPFailures: API error statuses are counted, not
// fatal, and contribute no latency samples.
func TestReplayCountsHTTPFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	scheme, _ := testDaemon(t)
	streams, err := patternStreams(workload.Uniform, scheme.Network().Graph(), scheme, 2, workload.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay(newClients([]string{ts.URL}, time.Second), streams, 20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed != 20 || rep.latency.N() != 0 {
		t.Fatalf("report %+v", rep)
	}
	// The breakdown times error responses by status class: every 503
	// lands in its own sample, not in the success percentiles.
	if rep.lat503.N() != 20 || rep.lat409.N() != 0 || rep.lat502.N() != 0 {
		t.Fatalf("status-class samples 409=%d 502=%d 503=%d, want 0/0/20",
			rep.lat409.N(), rep.lat502.N(), rep.lat503.N())
	}
	if p95OrDash(rep.lat503) == "-" || p95OrDash(rep.lat409) != "-" {
		t.Fatalf("p95OrDash: 503=%q 409=%q", p95OrDash(rep.lat503), p95OrDash(rep.lat409))
	}
}

// TestReplayAbortsOnTransportError: a dead daemon is an error, not a
// zero-latency success.
func TestReplayAbortsOnTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listening
	scheme, _ := testDaemon(t)
	streams, err := patternStreams(workload.Uniform, scheme.Network().Graph(), scheme, 2, workload.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay(newClients([]string{ts.URL}, time.Second), streams, 10, 0, nil); err == nil {
		t.Fatal("replay against a dead daemon did not error")
	}
}

func TestFmtLatency(t *testing.T) {
	if got := fmtLatency(0.00153); got != "1.53ms" {
		t.Fatalf("fmtLatency = %q", got)
	}
}

// TestChurnPacesMutationsAndRebuilds drives the churn goroutine
// against a fake dynamic daemon and checks the trace is consumed in
// order, paced by the query counter, with rebuilds at the configured
// cadence and a final synchronous flush.
func TestChurnPacesMutationsAndRebuilds(t *testing.T) {
	var mu sync.Mutex
	var gotMuts []dynamic.Mutation
	rebuilds := 0
	waits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		switch r.URL.Path {
		case "/v1/mutate":
			var ms []dynamic.Mutation
			if err := json.NewDecoder(r.Body).Decode(&ms); err != nil {
				t.Errorf("mutate body: %v", err)
			}
			gotMuts = append(gotMuts, ms...)
		case "/v1/rebuild":
			rebuilds++
			if r.URL.Query().Get("wait") != "" {
				waits++
			}
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	muts := []dynamic.Mutation{
		{Op: dynamic.OpSetWeight, U: 1, V: 2, W: 3},
		{Op: dynamic.OpSetWeight, U: 2, V: 3, W: 4},
		{Op: dynamic.OpAddNode, Name: 9, V: 1, W: 1},
		{Op: dynamic.OpRemoveEdge, U: 1, V: 2},
	}
	c := &churn{
		client: newClients([]string{ts.URL}, time.Second)[0], muts: muts,
		mutateEvery: 10, rebuildEvery: 2,
	}
	c.start()
	// Feed the counter like replay workers would, in steps, and wait
	// for the churn to catch up to each threshold.
	for step := 1; step <= len(muts); step++ {
		c.counter.Store(uint64(step * 10))
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			n := len(gotMuts)
			mu.Unlock()
			if n >= step {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("churn stalled at %d/%d mutations", n, step)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := c.finish(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gotMuts) != len(muts) {
		t.Fatalf("applied %d mutations, want %d", len(gotMuts), len(muts))
	}
	for i := range muts {
		if gotMuts[i] != muts[i] {
			t.Fatalf("mutation %d out of order: got %+v want %+v", i, gotMuts[i], muts[i])
		}
	}
	// 2 cadence rebuilds (after mutations 2 and 4) + 1 final wait=1.
	if rebuilds != 3 || waits != 1 {
		t.Fatalf("rebuilds=%d waits=%d, want 3/1", rebuilds, waits)
	}
	if c.summary() == "" {
		t.Fatal("empty churn summary")
	}
}

// TestChurnStopsOnDaemonError: a 409 from a static daemon stops the
// churn with the error rather than replaying an inconsistent suffix.
func TestChurnStopsOnDaemonError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"static"}`, http.StatusConflict)
	}))
	defer ts.Close()
	c := &churn{
		client:      newClients([]string{ts.URL}, time.Second)[0],
		muts:        []dynamic.Mutation{{Op: dynamic.OpSetWeight, U: 1, V: 2, W: 3}},
		mutateEvery: 1,
	}
	c.start()
	c.counter.Store(100)
	select {
	case <-c.done: // the 409 stopped the churn on its own
	case <-time.After(5 * time.Second):
		t.Fatal("churn never attempted the POST")
	}
	if err := c.finish(); err == nil {
		t.Fatal("churn against a static daemon did not error")
	}
	if c.applied != 0 {
		t.Fatalf("applied=%d after rejection", c.applied)
	}
}
