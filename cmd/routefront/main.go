// Command routefront is the cluster front-door: it partitions the
// external name space across N routed shards with rendezvous hashing,
// proxies single-shard routes, scatter-gathers cross-shard ones, and
// drives coordinated hot-swaps so every shard answers from the same
// topology version.
//
//	routed -scheme fulltable -n 2000 -seed 7 -metric -addr :8347 &
//	routed -scheme fulltable -n 2000 -seed 7 -metric -addr :8348 &
//	routefront -shards http://localhost:8347,http://localhost:8348 -addr :8300
//
// Every shard must be started from the same topology source and seed:
// shards hold the full scheme (the partition is of query ownership),
// and the coordinated cut-over assumes they build identical versions.
//
// The surface mirrors a shard's /v1 API (see internal/cluster and
// internal/server), so clients — including cmd/loadgen — point at a
// front-door exactly as they would at a single shard. POST /v1/mutate
// fans out to every healthy shard under one lock; POST /v1/rebuild
// stages every shard, verifies the staged versions agree, and commits
// them behind the route gate — the reply carries the cut-over pause.
// Shards that fail transport are ejected and probed back in with
// backoff, re-admitted only when their version and mutation log match
// a healthy peer.
//
// Observability mirrors a shard's: GET /v1/metrics serves the
// front-door counters plus per-shard series labeled shard="<url>";
// GET /v1/trace/{id} merges the front-door's stored trace with each
// shard's view of the same request (the sampled trace ID rides the
// X-Compactroute-Trace header on every forward leg); -slowlog and
// -debug-addr work as on routed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"compactroute/internal/cluster"
	"compactroute/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8300", "listen address")
	shards := flag.String("shards", "", "comma-separated routed base URLs, e.g. http://localhost:8347,http://localhost:8348 (required)")
	healthEvery := flag.Duration("health-every", time.Second, "health-probe interval (ejected shards back off exponentially on top)")
	bestOfBoth := flag.Bool("bestofboth", false, "add a reverse dst→src walk to every cross-shard scatter and serve the cheaper delivered direction")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	traceSample := flag.Int("trace-sample", 64, "trace 1 in this many requests (negative: off; propagated X-Compactroute-Trace IDs are always traced)")
	traceRing := flag.Int("trace-ring", 1024, "stored-trace ring capacity")
	slowlog := flag.String("slowlog", "", "append slow/refused requests as JSON lines to this file (\"-\": stderr; empty: off)")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "latency threshold for the slow log")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty: off)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "routefront: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	var slowW io.Writer
	switch {
	case *slowlog == "-":
		slowW = os.Stderr
	case *slowlog != "":
		f, err := os.OpenFile(*slowlog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("routefront: opening slow log: %v", err)
		}
		defer f.Close()
		slowW = f
	}
	c, err := cluster.New(cluster.Options{
		Shards:        urls,
		HealthEvery:   *healthEvery,
		BestOfBoth:    *bestOfBoth,
		TraceSample:   *traceSample,
		TraceRing:     *traceRing,
		SlowLog:       slowW,
		SlowThreshold: *slowThreshold,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("routefront: %v", err)
	}
	c.Start()
	defer c.Close()

	if *debugAddr != "" {
		go func() {
			log.Printf("routefront: pprof debug listener on %s", *debugAddr)
			dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("routefront: debug listener: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      5 * time.Minute, // a coordinated rebuild answers inline
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("routefront: serving on %s over %d shards: %s", *addr, len(urls), strings.Join(urls, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("routefront: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("routefront: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Fatalf("routefront: shutdown: %v", err)
		}
		log.Printf("routefront: drained cleanly")
	}
}
