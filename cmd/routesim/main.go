// Command routesim builds the paper's scheme over a generated network
// and traces individual routes, printing the per-phase breakdown of
// the §3 iterative protocol — a debugging lens on the scheme.
//
//	routesim -n 200 -k 3 -src 5 -dst 120
//	routesim -n 200 -k 3 -pairs 10           # random sample
//	routesim -n 2000 -k 4 -save net.crsc     # build once, persist
//	routesim -load net.crsc -pairs 10        # trace without rebuilding
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compactroute/internal/bench"
	"compactroute/internal/codec"
	"compactroute/internal/core"
	"compactroute/internal/gen"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/viz"
	"compactroute/internal/xrand"
)

func main() {
	n := flag.Int("n", 128, "node count")
	k := flag.Int("k", 3, "trade-off parameter")
	p := flag.Float64("p", 0.06, "gnp edge probability")
	seed := flag.Uint64("seed", 1, "seed")
	src := flag.Int("src", -1, "source id (with -dst)")
	dst := flag.Int("dst", -1, "destination id (with -src)")
	pairs := flag.Int("pairs", 5, "random pairs to trace when -src/-dst unset")
	sfactor := flag.Float64("sfactor", 1, "landmark S-set constant (paper: 16)")
	graphFile := flag.String("graph", "", "route over a graph file (gio text format) instead of generating one")
	saveFile := flag.String("save", "", "persist the built scheme to this file (codec binary format; serve it with cmd/routed)")
	loadFile := flag.String("load", "", "load a persisted scheme instead of building one (skips APSP and construction)")
	dotFile := flag.String("dot", "", "write the last traced route as Graphviz DOT to this file")
	measure := flag.Int("measure", 0, "also measure the stretch distribution over a 1/N-strided sample of sources, fanned across all cores (0: off; loaded schemes pay one APSP)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}

	var (
		g   *graph.Graph
		all []*sssp.Result // nil when the scheme was loaded
		s   *core.Scheme
	)
	if *loadFile != "" {
		if *graphFile != "" || *saveFile != "" {
			fail(fmt.Errorf("-load excludes -graph and -save"))
		}
		f, err := os.Open(*loadFile)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		s, err = codec.Decode(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		g = s.G()
		fmt.Printf("scheme %s loaded from %s in %v: max table %d bits/node\n",
			s.Name(), *loadFile, time.Since(start).Round(time.Millisecond), s.MaxTableBits())
	} else {
		if *graphFile != "" {
			f, err := os.Open(*graphFile)
			if err != nil {
				fail(err)
			}
			g, err = gio.Read(f)
			f.Close()
			if err != nil {
				fail(err)
			}
		} else {
			g = gen.Gnp(*seed, *n, *p, gen.Uniform(1, 8))
		}
		all = sssp.AllPairs(g)
		var err error
		s, err = core.BuildWithAPSP(g, all, core.Params{K: *k, Seed: *seed, SFactor: *sfactor})
		if err != nil {
			fail(err)
		}
		fmt.Printf("scheme %s over gnp(n=%d, p=%.3f): max table %d bits/node\n",
			s.Name(), g.N(), *p, s.MaxTableBits())
		if *saveFile != "" {
			f, err := os.Create(*saveFile)
			if err != nil {
				fail(err)
			}
			if err := codec.Encode(f, s); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("saved scheme to %s (serve it with: routed -scheme %s)\n", *saveFile, *saveFile)
		}
	}
	fmt.Printf("build report: %+v\n\n", s.Report)

	if *measure > 0 {
		if all == nil {
			all = sssp.AllPairsParallel(g, 0) // loaded scheme: metric absent
		}
		t0 := time.Now()
		st, err := bench.Measure(g, all, s, *measure, 0, true)
		if err != nil {
			fail(err)
		}
		fmt.Printf("stretch (stride %d, all cores, %v): %s\n\n",
			*measure, time.Since(t0).Round(time.Millisecond), st)
	}

	// shortest returns d(u,v), computing single-source results lazily
	// when the scheme was loaded without the metric.
	perSource := make(map[graph.NodeID]*sssp.Result)
	shortest := func(u, v graph.NodeID) float64 {
		if all != nil {
			return all[u].Dist[v]
		}
		r, ok := perSource[u]
		if !ok {
			r = sssp.From(g, u)
			perSource[u] = r
		}
		return r.Dist[v]
	}

	var lastPath []graph.NodeID
	trace := func(u, v graph.NodeID) {
		ok, phases, total, path, err := s.RouteTracePath(u, g.Name(v))
		if err != nil {
			fmt.Fprintln(os.Stderr, "routesim:", err)
			os.Exit(1)
		}
		lastPath = path
		d := shortest(u, v)
		fmt.Printf("route %d → %d (names %#x → %#x)\n", u, v, g.Name(u), g.Name(v))
		for _, ph := range phases {
			kind := "sparse"
			if ph.Dense {
				kind = "dense"
			}
			outcome := "miss"
			if ph.Found {
				outcome = "FOUND"
			}
			fmt.Printf("  phase %d [%s, a(u,i)=%d]: cost %.3f  %s\n",
				ph.Level, kind, ph.AUBits, ph.Cost, outcome)
		}
		stretch := 0.0
		if d > 0 {
			stretch = total / d
		}
		fmt.Printf("  delivered=%v total=%.3f shortest=%.3f stretch=%.3f\n\n", ok, total, d, stretch)
	}

	if *src >= 0 && *dst >= 0 {
		if *src >= g.N() || *dst >= g.N() {
			fail(fmt.Errorf("node ids must be in [0, %d): got -src %d -dst %d", g.N(), *src, *dst))
		}
		trace(graph.NodeID(*src), graph.NodeID(*dst))
		writeDot(*dotFile, g, lastPath)
		return
	}
	r := xrand.New(*seed ^ 0xfeed)
	for i := 0; i < *pairs; i++ {
		u := graph.NodeID(r.Intn(g.N()))
		v := graph.NodeID(r.Intn(g.N()))
		if u == v {
			continue
		}
		trace(u, v)
	}
	writeDot(*dotFile, g, lastPath)
}

func writeDot(path string, g *graph.Graph, route []graph.NodeID) {
	if path == "" || route == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := viz.RouteDOT(f, g, route); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote route visualization to %s\n", path)
}
