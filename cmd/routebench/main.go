// Command routebench regenerates the reproduction's experiment tables
// (T1–T10, F1–F2; see DESIGN.md §2 and EXPERIMENTS.md) and the
// harness's own performance experiments — P1 (parallel query sweep),
// B1 (streaming build cost), D1 (dynamic-topology churn: rebuild
// latency, swap pause, staleness), D2 (failure resilience: delivery
// and stretch under transient link/node loss, raw vs best-of-both and
// flap damping), S1 (sharded serving tier: cluster throughput, tail
// latency, coordinated cut-over pause vs shard count) — and measures the
// build-once/route-many split the persistence layer enables. -json
// switches every experiment table to machine-readable JSON Lines (one
// object per table), the format the BENCH_*.json perf trajectory
// files record.
//
// Usage:
//
//	routebench -all                         # every experiment, full sizes
//	routebench -exp T2                      # one experiment
//	routebench -exp T1 -quick -json         # smoke sizes, JSON output
//	routebench -bench b1 -n 512 -json       # build-pipeline cost at one size
//	routebench -save net.crsc -n 2000 -k 4  # pay the build, persist it
//	routebench -save ft.crsc -scheme fulltable -n 500
//	routebench -load net.crsc -queries 1e5  # measure pure query cost
//
// -save builds any persistable registry kind (-scheme; default
// paper); -load serves whatever kind the file holds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"compactroute"
	"compactroute/internal/bench"
	"compactroute/internal/serve"
	"compactroute/internal/workload"
)

func main() {
	exp := flag.String("exp", "", "experiment id (one of "+strings.Join(bench.IDs(), ", ")+")")
	benchName := flag.String("bench", "", "cost benchmark to run at the -n size (b1: build pipeline wall time + peak alloc)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "smoke-test sizes")
	jsonOut := flag.Bool("json", false, "emit experiment results as JSON Lines (one object per table) instead of text tables")
	seed := flag.Uint64("seed", 1, "seed for all randomized constructions")
	saveFile := flag.String("save", "", "build a scheme (see -scheme/-n/-k/-p/-sfactor) and persist it to this file, reporting build vs save cost")
	loadFile := flag.String("load", "", "load a persisted scheme and benchmark query throughput, reporting load vs query cost")
	kind := flag.String("scheme", "paper", "registry kind to build for -save (persistable kinds only; see compactroute.Kinds)")
	n := flag.Int("n", 2000, "node count for -save and -bench")
	k := flag.Int("k", 4, "trade-off parameter for -save")
	p := flag.Float64("p", 0, "gnp edge probability for -save (0: 8/n)")
	sfactor := flag.Float64("sfactor", 0.25, "landmark S-set constant for -save")
	queries := flag.Float64("queries", 1e5, "queries to run for -load")
	workers := flag.Int("workers", 0, "concurrent query workers for -load (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1<<16, "result cache entries for -load (negative: disable)")
	pattern := flag.String("pattern", "uniform", "workload pattern for -load queries (uniform, zipf, gravity, local, adversarial)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "routebench:", err)
		os.Exit(1)
	}
	// ^C stops the sweep between measurement units instead of letting a
	// multi-minute experiment run to completion after the user gave up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := bench.Config{Quick: *quick, Seed: *seed, JSON: *jsonOut}
	switch {
	case *benchName != "":
		if !strings.EqualFold(*benchName, "b1") {
			fmt.Fprintf(os.Stderr, "routebench: unknown benchmark %q (have b1)\n", *benchName)
			os.Exit(2)
		}
		// -n pins one size (the CI smoke uses 512); the canonical
		// multi-size sweep runs via -exp B1.
		if err := bench.RunB1Sizes(ctx, os.Stdout, cfg, []int{*n}); err != nil {
			fail(err)
		}
	case *saveFile != "":
		if err := buildAndSave(*saveFile, *kind, *n, *k, *p, *sfactor, *seed); err != nil {
			fail(err)
		}
	case *loadFile != "":
		if err := loadAndQuery(*loadFile, int(*queries), *workers, *cacheSize, *seed, workload.Pattern(*pattern)); err != nil {
			fail(err)
		}
	case *all:
		if err := bench.RunAll(ctx, os.Stdout, cfg); err != nil {
			fail(err)
		}
	case *exp != "":
		r, ok := bench.Experiments[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "routebench: unknown experiment %q (have %s)\n",
				*exp, strings.Join(bench.IDs(), ", "))
			os.Exit(2)
		}
		if err := r(ctx, os.Stdout, cfg); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// buildAndSave pays the one-time construction cost for a registry kind
// and persists the result, reporting where the time went — the
// numerator of the build-once/route-many trade.
func buildAndSave(path, kind string, n, k int, p, sfactor float64, seed uint64) error {
	if p <= 0 {
		p = 8 / float64(n)
	}
	if info, ok := compactroute.LookupKind(kind); !ok {
		return fmt.Errorf("unknown scheme kind %q (have %s)", kind, strings.Join(compactroute.Kinds(), ", "))
	} else if !info.Persistable {
		return fmt.Errorf("kind %q has no persistent form; persistable kinds: %s",
			kind, strings.Join(compactroute.PersistableKinds(), ", "))
	}
	t0 := time.Now()
	net := compactroute.RandomNetwork(seed, n, p, compactroute.UniformWeights(1, 8))
	metricTime := time.Since(t0)
	t1 := time.Now()
	s, err := compactroute.Build(net, compactroute.Config{Kind: kind, K: k, Seed: seed, SFactor: sfactor})
	if err != nil {
		return err
	}
	buildTime := time.Since(t1)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t2 := time.Now()
	if err := compactroute.Save(f, s); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	saveTime := time.Since(t2)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("built %s over gnp(n=%d, p=%.4f): max table %d bits/node\n", s.Name(), n, p, s.MaxTableBits())
	fmt.Printf("  metric (APSP)   %12v\n", metricTime.Round(time.Millisecond))
	fmt.Printf("  construction    %12v\n", buildTime.Round(time.Millisecond))
	fmt.Printf("  serialization   %12v  (%d bytes → %s)\n", saveTime.Round(time.Millisecond), st.Size(), path)
	return nil
}

// loadAndQuery measures the recurring side: deserialization once, then
// sustained query throughput through the serving pool under a named
// workload pattern.
func loadAndQuery(path string, queries, workers, cacheSize int, seed uint64, pattern workload.Pattern) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	t0 := time.Now()
	s, err := compactroute.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	loadTime := time.Since(t0)
	nn := s.Network().N()
	fmt.Printf("loaded %s (kind %s, %d nodes) in %v — no APSP, no construction\n",
		s.Name(), s.Kind(), nn, loadTime.Round(time.Millisecond))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wopts := workload.Options{Seed: seed}
	if pattern == workload.Adversarial {
		s.Network().EnsureMetric() // stretch ranking needs d(u,v)
		// Memoized: every worker's stream ranks the same shared
		// candidate set, so each pair should be routed once, not once
		// per worker.
		type pair struct{ u, v compactroute.NodeID }
		var mu sync.Mutex
		memo := make(map[pair]float64)
		wopts.Rank = func(u, v compactroute.NodeID) float64 {
			mu.Lock()
			score, ok := memo[pair{u, v}]
			mu.Unlock()
			if ok {
				return score
			}
			// MetricKnown guards the ranking: an unknown stretch must
			// rank as uninteresting, not as optimal.
			if res, err := s.Route(u, v); err == nil && res.Delivered && res.MetricKnown {
				score = res.Stretch()
			}
			mu.Lock()
			memo[pair{u, v}] = score
			mu.Unlock()
			return score
		}
	}
	pool := serve.NewPool(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		res, err := s.RouteByNameCtx(ctx, src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{Delivered: res.Delivered, Cost: res.Cost, Hops: res.Hops}, nil
	}), serve.Options{Workers: workers, CacheSize: cacheSize})

	if queries < 1 {
		return fmt.Errorf("routebench: -queries must be ≥ 1, got %d", queries)
	}
	if workers > queries {
		workers = queries
	}
	// One deterministic stream per worker: shared seed (same pattern
	// structure) with a per-worker fork (distinct draw sequences).
	streams := make([]*workload.Stream, workers)
	for w := range streams {
		o := wopts
		o.Fork = uint64(w)
		if streams[w], err = workload.New(pattern, s.Network().Graph(), o); err != nil {
			return err
		}
	}
	t1 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		per := queries / workers
		if w < queries%workers {
			per++ // spread the remainder so exactly `queries` run
		}
		wg.Add(1)
		go func(w, per int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := streams[w].Next()
				if _, err := pool.Route(context.Background(), q.SrcName, q.DstName); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, per)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(t1)
	st := pool.Stats()
	fmt.Printf("ran %d %s queries with %d workers in %v: %.0f queries/sec\n",
		st.Requests, pattern, workers, elapsed.Round(time.Millisecond),
		float64(st.Requests)/elapsed.Seconds())
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	fmt.Printf("  cache: %d hits, %d misses, %d coalesced (%.1f%% hit rate), %d/%d resident\n",
		st.Hits, st.Misses, st.Coalesced, hitRate, st.CacheLen, st.CacheCap)
	return nil
}
