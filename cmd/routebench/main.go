// Command routebench regenerates the reproduction's experiment tables
// (T1–T10, F1–F2; see DESIGN.md §2 and EXPERIMENTS.md).
//
// Usage:
//
//	routebench -all              # every experiment, full sizes
//	routebench -exp T2           # one experiment
//	routebench -exp T1 -quick    # smoke sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compactroute/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (one of "+strings.Join(bench.IDs(), ", ")+")")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "smoke-test sizes")
	seed := flag.Uint64("seed", 1, "seed for all randomized constructions")
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	switch {
	case *all:
		if err := bench.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
	case *exp != "":
		r, ok := bench.Experiments[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "routebench: unknown experiment %q (have %s)\n",
				*exp, strings.Join(bench.IDs(), ", "))
			os.Exit(2)
		}
		if err := r(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "routebench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
