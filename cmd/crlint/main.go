// Command crlint is the repository's invariant linter: a multichecker
// driving the internal/analysis suite over module packages. The suite
// mechanically enforces conventions the system's guarantees rest on —
// deterministic iteration in codec/replay paths (mapdeterminism),
// ctx-first cancellation flow (ctxflow), errors.Is over the routeerr
// taxonomy with a total HTTP status mapper (errtaxonomy), seeded
// randomness in build/workload paths (rawrand), deadline-bounded
// detached fan-outs (detachedctx), lock discipline in the serving
// tier (locksafe), lifecycle-tied goroutines (goroleak), tracked
// heap-escape budgets on hot paths (hotalloc), a locked public API
// surface (apilock), and a locked exported metric-name set
// (metricnames).
//
// Usage:
//
//	go run ./cmd/crlint [flags] [packages...]
//
// Packages default to ./... . Diagnostics print as file:line:col:
// message (analyzer) — or as GitHub workflow annotations with
// -format=github — and any finding exits 1, so `make lint` and CI
// fail on violations. Load or configuration problems (bad patterns,
// malformed suppression file or directive) exit 2; a clean run exits
// 0. That contract is pinned by TestExitContract.
//
// Two escape hatches exist, both tracked and both reason-bearing: the
// suppression file (default lint/crlint.suppress) and inline
// //crlint:ignore directives. Entries of either kind that match
// nothing fail the run as stale.
//
// The tracked sidecar files of hotalloc, apilock, and metricnames
// regenerate only through explicit flags:
//
//	go run ./cmd/crlint -write-budget ./...   # lint/hotpath.budget
//	go run ./cmd/crlint -write-api ./...      # lint/api.txt
//	go run ./cmd/crlint -write-metrics ./...  # lint/metrics.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"compactroute/internal/analysis"
	"compactroute/internal/analysis/apilock"
	"compactroute/internal/analysis/ctxflow"
	"compactroute/internal/analysis/detachedctx"
	"compactroute/internal/analysis/errtaxonomy"
	"compactroute/internal/analysis/goroleak"
	"compactroute/internal/analysis/hotalloc"
	"compactroute/internal/analysis/locksafe"
	"compactroute/internal/analysis/mapdeterminism"
	"compactroute/internal/analysis/metricnames"
	"compactroute/internal/analysis/rawrand"
)

// analyzers is the full suite, in registration order (output order is
// positional regardless).
var analyzers = []*analysis.Analyzer{
	apilock.Analyzer,
	ctxflow.Analyzer,
	detachedctx.Analyzer,
	errtaxonomy.Analyzer,
	goroleak.Analyzer,
	hotalloc.Analyzer,
	locksafe.Analyzer,
	mapdeterminism.Analyzer,
	metricnames.Analyzer,
	rawrand.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command: exit 0 clean, 1 diagnostics or stale
// suppressions, 2 load/config errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	suppressPath := fs.String("suppress", "lint/crlint.suppress", "tracked suppression file (missing file = no suppressions)")
	format := fs.String("format", "text", "diagnostic format: text, or github for workflow annotations")
	writeBudget := fs.Bool("write-budget", false, "regenerate the hotpath escape budget and exit")
	writeAPI := fs.Bool("write-api", false, "regenerate the locked API surface file and exit")
	writeMetrics := fs.Bool("write-metrics", false, "regenerate the locked metric-name registry and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "github" {
		fmt.Fprintf(stderr, "crlint: unknown -format %q (want text or github)\n", *format)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}

	if *writeBudget || *writeAPI || *writeMetrics {
		if *writeBudget {
			entries, err := hotalloc.Measure(pkgs)
			if err != nil {
				fmt.Fprintf(stderr, "crlint: %v\n", err)
				return 2
			}
			if err := hotalloc.WriteBudget(hotalloc.BudgetPath, entries); err != nil {
				fmt.Fprintf(stderr, "crlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "crlint: wrote %s (%d hotpath functions)\n", hotalloc.BudgetPath, len(entries))
		}
		if *writeAPI {
			if err := apilock.WriteAPI(apilock.APIPath, pkgs); err != nil {
				fmt.Fprintf(stderr, "crlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "crlint: wrote %s\n", apilock.APIPath)
		}
		if *writeMetrics {
			if err := metricnames.WriteMetrics(metricnames.MetricsPath, pkgs); err != nil {
				fmt.Fprintf(stderr, "crlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "crlint: wrote %s\n", metricnames.MetricsPath)
		}
		return 0
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}
	igns, err := analysis.ParseIgnores(pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}
	sups, err := analysis.LoadSuppressions(*suppressPath)
	if err != nil {
		fmt.Fprintf(stderr, "crlint: %v\n", err)
		return 2
	}
	// Inline directives apply first (they sit next to the code), the
	// tracked file second; a diagnostic both cover counts only for the
	// directive, and the file entry goes stale.
	kept, staleIgn := analysis.ApplyIgnores(diags, igns)
	kept, staleSup := analysis.ApplySuppressions(kept, sups)

	emit := func(file string, line, col int, msg string) {
		if *format == "github" {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n", relPath(file), line, col, githubEscape(msg))
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s\n", file, line, col, msg)
		}
	}
	for _, d := range kept {
		emit(d.Pos.Filename, d.Pos.Line, d.Pos.Column, fmt.Sprintf("%s (%s)", d.Message, d.Analyzer))
	}
	for _, ig := range staleIgn {
		emit(ig.Pos.Filename, ig.Pos.Line, 1,
			fmt.Sprintf("stale //crlint:ignore %s: nothing matches it — delete it (crlint)", ig.Analyzer))
	}
	for _, s := range staleSup {
		emit(*suppressPath, s.Line, 1,
			fmt.Sprintf("stale suppression (%s %s): nothing matches it — delete it (crlint)", s.Analyzer, s.PathSuffix))
	}
	if len(kept) > 0 || len(staleIgn) > 0 || len(staleSup) > 0 {
		return 1
	}
	return 0
}

// relPath makes file repo-relative for GitHub annotations, which
// resolve paths against the workspace root.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

// githubEscape encodes the characters the workflow-command parser
// reserves.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
