// Command crlint is the repository's invariant linter: a multichecker
// driving the internal/analysis suite over module packages. The suite
// mechanically enforces conventions the system's guarantees rest on —
// deterministic iteration in codec/replay paths (mapdeterminism),
// ctx-first cancellation flow (ctxflow), errors.Is over the routeerr
// taxonomy with a total HTTP status mapper (errtaxonomy), seeded
// randomness in build/workload paths (rawrand), and deadline-bounded
// detached fan-outs (detachedctx).
//
// Usage:
//
//	go run ./cmd/crlint [-suppress file] [packages...]
//
// Packages default to ./... . Diagnostics print as file:line:col:
// message (analyzer) and any finding exits non-zero, so `make lint`
// and CI fail on violations. The only escape hatch is the tracked
// suppression file (default lint/crlint.suppress); entries must carry
// a reason and stale entries fail the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"compactroute/internal/analysis"
	"compactroute/internal/analysis/ctxflow"
	"compactroute/internal/analysis/detachedctx"
	"compactroute/internal/analysis/errtaxonomy"
	"compactroute/internal/analysis/mapdeterminism"
	"compactroute/internal/analysis/rawrand"
)

func main() {
	suppressPath := flag.String("suppress", "lint/crlint.suppress", "tracked suppression file (missing file = no suppressions)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := []*analysis.Analyzer{
		ctxflow.Analyzer,
		detachedctx.Analyzer,
		errtaxonomy.Analyzer,
		mapdeterminism.Analyzer,
		rawrand.Analyzer,
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	sups, err := analysis.LoadSuppressions(*suppressPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	kept, stale := analysis.ApplySuppressions(diags, sups)
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "crlint: %s:%d: stale suppression (%s %s): nothing matches it — delete it\n",
			*suppressPath, s.Line, s.Analyzer, s.PathSuffix)
	}
	for _, d := range kept {
		fmt.Println(d)
	}
	if len(kept) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}
