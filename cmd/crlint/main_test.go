package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitContract pins the command's exit codes — 0 clean, 1
// diagnostics or stale suppressions, 2 load/config errors — and the
// two output formats, via fixtures under testdata/.
func TestExitContract(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		out  string // required substring of stdout, "" = none
	}{
		{"clean", []string{"./testdata/src/clean"}, 0, ""},
		{"flagged", []string{"./testdata/src/flagged"}, 1, "(ctxflow)"},
		{"inline ignore", []string{"./testdata/src/ignored"}, 0, ""},
		{"suppressed", []string{"-suppress", "testdata/covering.suppress", "./testdata/src/flagged"}, 0, ""},
		{"stale suppression", []string{"-suppress", "testdata/stale.suppress", "./testdata/src/clean"}, 1, "stale suppression"},
		{"github format", []string{"-format", "github", "./testdata/src/flagged"}, 1, "::error file=testdata/src/flagged/flagged.go,line="},
		{"bad package pattern", []string{"./testdata/src/nonexistent"}, 2, ""},
		{"malformed suppress file", []string{"-suppress", "testdata/bad.suppress", "./testdata/src/clean"}, 2, ""},
		{"unknown format", []string{"-format", "yaml", "./testdata/src/clean"}, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.exit, stdout.String(), stderr.String())
			}
			if tc.out != "" && !strings.Contains(stdout.String(), tc.out) {
				t.Errorf("stdout missing %q:\n%s", tc.out, stdout.String())
			}
			if tc.exit == 0 && stdout.Len() > 0 {
				t.Errorf("clean run should print nothing, got:\n%s", stdout.String())
			}
			if tc.exit == 2 && stderr.Len() == 0 {
				t.Errorf("config error should explain itself on stderr")
			}
		})
	}
}
