// Package ignored pins the inline-directive wiring through the
// command: the same violation as the flagged fixture, acknowledged in
// place, lints clean.
package ignored

import "context"

// Mint would flag, but the directive on the line above the call
// covers it.
func Mint() context.Context {
	//crlint:ignore ctxflow exit-contract fixture for the inline-ignore path
	return context.Background()
}
