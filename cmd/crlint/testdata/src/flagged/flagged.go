// Package flagged is the exit-contract fixture with exactly one
// violation: minting context.Background in library code (ctxflow).
package flagged

import "context"

// Mint mints a root context, which library code must not do.
func Mint() context.Context {
	return context.Background()
}
