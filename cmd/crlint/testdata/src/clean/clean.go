// Package clean is the exit-contract fixture that trips none of the
// ten analyzers: no contexts, no locks, no goroutines, no maps, no
// randomness, no metric names, no exported surface anyone locked.
package clean

// Add is deliberately boring.
func Add(a, b int) int { return a + b }
