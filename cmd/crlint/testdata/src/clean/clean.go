// Package clean is the exit-contract fixture that trips none of the
// nine analyzers: no contexts, no locks, no goroutines, no maps, no
// randomness, no exported surface anyone locked.
package clean

// Add is deliberately boring.
func Add(a, b int) int { return a + b }
