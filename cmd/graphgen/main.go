// Command graphgen emits synthetic networks in a simple text format:
//
//	n <nodes> <edges>
//	v <id> <name>
//	e <u> <v> <weight>
//
// Families match the generators used by the experiments; see -h.
//
// With -mutations K it also emits a deterministic, seedable mutation
// trace of K topology changes valid against the generated graph
// (weight churn, edge adds, connectivity-safe removals, anchored node
// joins — see internal/dynamic) to the -mutout file. The pair feeds
// the dynamic serving path end to end:
//
//	graphgen -family gnp -n 500 -seed 3 -mutations 200 -mutout churn.mut > topo.txt
//	routed -scheme tz -graph topo.txt &
//	loadgen -graph topo.txt -mutations churn.mut ...
//
// -failures switches the trace to the mixed churn+failure profile:
// transient link/node loss and recovery events (failedge, failnode,
// recoveredge, recovernode) interleaved with the topology churn, the
// up-subgraph kept connected throughout, with a recovery tail appended
// so the trace replays to quiescence (every failed element recovered).
package main

import (
	"flag"
	"fmt"
	"os"

	"compactroute/internal/dynamic"
	"compactroute/internal/gen"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
)

func main() {
	family := flag.String("family", "gnp", "gnp | grid | ring | path | star | tree | geometric | prefattach | ladder")
	n := flag.Int("n", 128, "node count (or side², tree size, … depending on family)")
	p := flag.Float64("p", 0.05, "edge probability (gnp)")
	radius := flag.Float64("radius", 0.15, "connection radius (geometric)")
	m := flag.Int("m", 2, "attachments per node (prefattach)")
	depth := flag.Int("depth", 5, "hierarchy depth (ladder, tree)")
	branch := flag.Int("branch", 2, "branching (ladder, tree)")
	topExp := flag.Int("topexp", 16, "log2 of the top edge weight (ladder)")
	wlo := flag.Float64("wlo", 1, "uniform weight low")
	whi := flag.Float64("whi", 8, "uniform weight high")
	seed := flag.Uint64("seed", 1, "generator seed")
	mutations := flag.Int("mutations", 0, "also emit a deterministic mutation trace of this many topology changes (requires -mutout)")
	mutout := flag.String("mutout", "", "file the mutation trace is written to (the graph itself goes to stdout)")
	failures := flag.Bool("failures", false, "mix transient link/node failure and recovery events into the trace (ends with a recovery tail: the trace replays to quiescence)")
	flag.Parse()

	w := gen.Uniform(*wlo, *whi)
	if *wlo == *whi {
		w = gen.Unit()
	}
	var g *graph.Graph
	switch *family {
	case "gnp":
		g = gen.Gnp(*seed, *n, *p, w)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = gen.Grid(*seed, side, side, w)
	case "ring":
		g = gen.Ring(*seed, *n, w)
	case "path":
		g = gen.Path(*seed, *n, w)
	case "star":
		g = gen.Star(*seed, *n, w)
	case "tree":
		g = gen.BalancedTree(*seed, *branch, *depth, w)
	case "geometric":
		g = gen.Geometric(*seed, *n, *radius)
	case "prefattach":
		g = gen.PrefAttach(*seed, *n, *m, w)
	case "ladder":
		g = gen.AspectLadder(*seed, *branch, *depth, *topExp)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if err := gio.Write(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	if *mutations > 0 {
		if *mutout == "" {
			fmt.Fprintln(os.Stderr, "graphgen: -mutations needs -mutout (the graph occupies stdout)")
			os.Exit(2)
		}
		var muts []dynamic.Mutation
		var err error
		if *failures {
			var fs *dynamic.FaultSet
			muts, fs, err = dynamic.GenerateFaultTrace(g, *mutations, *seed, dynamic.DefaultTraceProfile())
			if err == nil {
				muts = append(muts, fs.RecoveryMutations()...)
			}
		} else {
			muts, err = dynamic.GenerateTrace(g, *mutations, *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		f, err := os.Create(*mutout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		if err := dynamic.WriteTrace(f, muts); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	}
}
