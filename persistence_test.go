package compactroute

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveLoadEveryPersistableKind is the registry-wide round-trip:
// every kind the registry marks persistable must Save, Load back with
// the same kind and storage accounting, and answer routing queries
// identically to the in-memory original — the v2 format's core
// contract. (The v1→v2 compatibility path is pinned separately by the
// codec package's golden-file tests.)
func TestSaveLoadEveryPersistableKind(t *testing.T) {
	net := RandomNetwork(31, 70, 0.09, UniformWeights(1, 5))
	g := net.Graph()
	covered := 0
	for _, kind := range Kinds() {
		info, _ := LookupKind(kind)
		if !info.Persistable {
			continue
		}
		covered++
		t.Run(kind, func(t *testing.T) {
			s, err := Build(net, Config{Kind: kind, K: 2, Seed: 7, SFactor: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(&buf, s); err != nil {
				t.Fatal(err)
			}
			first := append([]byte(nil), buf.Bytes()...)
			l, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if l.Kind() != kind || l.Name() != s.Name() {
				t.Fatalf("loaded %q/%q, want kind %q name %q", l.Kind(), l.Name(), kind, s.Name())
			}
			if l.Network().HasMetric() {
				t.Fatal("load must not recompute the metric")
			}
			if l.MaxTableBits() != s.MaxTableBits() || l.MeanTableBits() != s.MeanTableBits() {
				t.Fatalf("storage accounting diverges: %d/%v vs %d/%v",
					l.MaxTableBits(), l.MeanTableBits(), s.MaxTableBits(), s.MeanTableBits())
			}
			// Deterministic re-encoding: saving the loaded scheme must
			// reproduce the stream byte for byte.
			var second bytes.Buffer
			if err := Save(&second, l); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second.Bytes()) {
				t.Fatalf("re-encoding differs: %d vs %d bytes", len(first), second.Len())
			}
			for u := 0; u < net.N(); u += 5 {
				for v := 0; v < net.N(); v += 7 {
					a, err1 := s.RouteByName(g.Name(NodeID(u)), g.Name(NodeID(v)))
					b, err2 := l.RouteByName(g.Name(NodeID(u)), g.Name(NodeID(v)))
					if err1 != nil || err2 != nil || a.Delivered != b.Delivered ||
						a.Cost != b.Cost || a.Hops != b.Hops || a.HeaderBits != b.HeaderBits {
						t.Fatalf("route %d→%d diverges: %+v/%v vs %+v/%v", u, v, a, err1, b, err2)
					}
				}
			}
		})
	}
	if covered < 2 {
		t.Fatalf("only %d persistable kinds in the registry; fulltable regressed?", covered)
	}
}

// TestSaveLoadQuick is the always-on round-trip check at facade level
// (the codec package carries the family/property matrix).
func TestSaveLoadQuick(t *testing.T) {
	net := RandomNetwork(21, 80, 0.08, UniformWeights(1, 5))
	s, err := NewScheme(net, Options{K: 2, Seed: 7, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	l, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != s.Name() {
		t.Fatalf("name %q vs %q", l.Name(), s.Name())
	}
	g := net.Graph()
	for u := 0; u < net.N(); u += 7 {
		for v := 0; v < net.N(); v += 11 {
			a, err1 := s.RouteByName(g.Name(NodeID(u)), g.Name(NodeID(v)))
			b, err2 := l.RouteByName(g.Name(NodeID(u)), g.Name(NodeID(v)))
			if err1 != nil || err2 != nil || a.Cost != b.Cost || a.Hops != b.Hops {
				t.Fatalf("route %d→%d diverges: %+v/%v vs %+v/%v", u, v, a, err1, b, err2)
			}
		}
	}
}

// TestPersistenceAcceptance2k is the PR's acceptance scenario: a
// scheme built on a 2k-node graph, saved to disk, and reloaded from
// only the file's bytes (exactly what a fresh cmd/routed process does)
// must answer 1k random source/dest queries identically to the
// in-memory original. ~10s of build; skipped under -short so the race
// job stays fast.
func TestPersistenceAcceptance2k(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-node build; skipped in -short mode")
	}
	const n = 2000
	net := RandomNetwork(1, n, 8.0/n, UniformWeights(1, 8))
	s, err := NewScheme(net, Options{K: 4, Seed: 1, SFactor: 0.25})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "scheme.crsc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Network().HasMetric() {
		t.Fatal("load must not recompute the metric")
	}

	g := net.Graph()
	rng := HashName(77, 0)
	for q := 0; q < 1000; q++ {
		rng = HashName(rng, uint64(q))
		u := NodeID(rng % n)
		v := NodeID((rng >> 20) % n)
		a, err1 := s.RouteByName(g.Name(u), g.Name(v))
		b, err2 := loaded.RouteByName(g.Name(u), g.Name(v))
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d→%d: %v / %v", u, v, err1, err2)
		}
		if !a.Delivered || !b.Delivered {
			t.Fatalf("query %d→%d not delivered: %+v vs %+v", u, v, a, b)
		}
		if a.Cost != b.Cost || a.Hops != b.Hops {
			t.Fatalf("query %d→%d diverges: cost %v/%v hops %d/%d",
				u, v, a.Cost, b.Cost, a.Hops, b.Hops)
		}
	}
}
