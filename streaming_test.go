package compactroute

import (
	"context"
	"errors"
	"testing"
)

// TestBuildStreamLazyNetwork: the facade's streaming build over a
// metric-less network routes correctly, reports stretch as unknown
// (MetricKnown false), and recovers stretch after EnsureMetric —
// mirroring the Load contract.
func TestBuildStreamLazyNetwork(t *testing.T) {
	warm := RandomNetwork(5, 60, 8.0/60, UniformWeights(1, 8))
	lazy := WrapGraphLazy(warm.Graph())
	if lazy.HasMetric() {
		t.Fatal("WrapGraphLazy must not compute the metric")
	}
	// The five built-ins only: other root tests register throwaway
	// kinds (e.g. one that never delivers) in the shared registry.
	for _, kind := range []string{KindPaper, KindFullTable, KindAPCover, KindLandmarkChain, KindTZ} {
		ref, err := Build(warm, Config{Kind: kind, K: 2, Seed: 9})
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		s, err := BuildStream(context.Background(), lazy, Config{Kind: kind, K: 2, Seed: 9})
		if err != nil {
			t.Fatalf("BuildStream(%q): %v", kind, err)
		}
		if lazy.HasMetric() {
			t.Fatalf("BuildStream(%q) materialized the lazy network's metric", kind)
		}
		g := warm.Graph()
		res, err := s.RouteByName(g.Name(0), g.Name(NodeID(warm.N()-1)))
		if err != nil || !res.Delivered {
			t.Fatalf("BuildStream(%q) route: %+v, %v", kind, res, err)
		}
		if res.MetricKnown {
			t.Fatalf("BuildStream(%q): stretch must be unknown on a lazy network", kind)
		}
		want, err := ref.RouteByName(g.Name(0), g.Name(NodeID(warm.N()-1)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != want.Cost || res.Hops != want.Hops {
			t.Fatalf("BuildStream(%q) diverges from Build: cost %v/%v hops %d/%d",
				kind, res.Cost, want.Cost, res.Hops, want.Hops)
		}
	}
	lazy.EnsureMetric()
	s, err := BuildStream(context.Background(), lazy, Config{Kind: KindFullTable})
	if err != nil {
		t.Fatal(err)
	}
	g := warm.Graph()
	res, err := s.RouteByName(g.Name(0), g.Name(1))
	if err != nil || !res.MetricKnown {
		t.Fatalf("after EnsureMetric stretch must be known: %+v, %v", res, err)
	}
	if res.Stretch() != 1 {
		t.Fatalf("fulltable stretch = %v, want 1", res.Stretch())
	}
}

// TestBuildStreamCanceled: facade-level cancellation surfaces the
// wrapped context error — on a lazy network (streamed source) and on
// a warm one (materialized fast path, which once skipped the ctx
// check and silently built the paper scheme anyway).
func TestBuildStreamCanceled(t *testing.T) {
	warm := RandomNetwork(5, 40, 0.2, UniformWeights(1, 8))
	lazy := WrapGraphLazy(warm.Graph())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		net  *Network
		kind string
	}{
		{"lazy/streamed", lazy, KindTZ},
		{"warm/materialized", warm, KindPaper},
	} {
		if _, err := BuildStream(ctx, tc.net, Config{Kind: tc.kind, K: 2}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want wrapped context.Canceled", tc.name, err)
		}
	}
}
