package compactroute

import (
	"context"
	"fmt"

	"compactroute/internal/schemes"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// Config selects and parameterizes a scheme kind for Build. Kinds
// ignore the knobs they don't use: fulltable reads none of them, only
// paper reads SFactor.
type Config = schemes.Config

// KindInfo describes one registered scheme kind.
type KindInfo struct {
	// Kind is the registry name (the Config.Kind / -scheme value).
	Kind string
	// Description is a one-line summary for help output and tables.
	Description string
	// Model names the routing model ("name-independent", "labeled").
	Model string
	// Persistable marks kinds whose schemes round-trip through
	// Save/Load.
	Persistable bool
}

// Kinds returns every registered scheme kind, sorted. The five
// built-ins are "apcover", "fulltable", "landmark", "paper", and "tz".
func Kinds() []string { return schemes.Kinds() }

// PersistableKinds returns the registered kinds whose schemes
// round-trip through Save/Load, sorted.
func PersistableKinds() []string { return schemes.PersistableKinds() }

// LookupKind returns a kind's registration metadata.
func LookupKind(kind string) (KindInfo, bool) {
	info, ok := schemes.Lookup(kind)
	if !ok {
		return KindInfo{}, false
	}
	return KindInfo{
		Kind:        info.Kind,
		Description: info.Description,
		Model:       info.Model,
		Persistable: info.Persistable,
	}, true
}

// Build constructs a scheme of cfg.Kind over the network — the single
// construction path of the v2 API, replacing the per-scheme
// constructors of v1 (see DESIGN.md §1 for the migration table). An
// unregistered kind errors with a wrapped ErrUnknownKind.
//
// Build materializes the network's full metric first (computing it on
// a lazy or loaded network); for large networks prefer BuildStream,
// which feeds builders a bounded-memory result stream instead.
func Build(net *Network, cfg Config) (*Scheme, error) {
	r, err := schemes.Build(net.g, net.buildMetric(), cfg)
	if err != nil {
		return nil, err
	}
	return newScheme(net, cfg.Kind, r, r), nil
}

// BuildStream constructs a scheme of cfg.Kind through the streaming
// build pipeline (DESIGN.md §6): single-source shortest-path rows fan
// across GOMAXPROCS workers and stream — in deterministic source
// order — into the kind's builder, which consumes them in O(n)
// working memory unless it explicitly materializes. The result is
// identical to Build's over the same network.
//
// On a network that already has its metric (BuildNetwork, WrapGraph)
// the stream replays the cached results without recomputation. On a
// lazy network (WrapGraphLazy, Load) rows are computed on the fly and
// dropped after use, so for the streaming kinds (fulltable, apcover,
// landmark, tz) the Θ(n²) metric is never resident; kind "paper" —
// and any externally registered kind without a stream hook —
// explicitly materializes the rows for the build's duration instead
// (DESIGN.md §6). Either way the network afterwards still has no
// metric, and stretch stays unknown until EnsureMetric.
//
// Cancelling ctx aborts construction promptly with a wrapped
// context.Canceled (or DeadlineExceeded) and releases all workers.
func BuildStream(ctx context.Context, net *Network, cfg Config) (*Scheme, error) {
	var src sssp.Source
	if all := net.metric(); all != nil {
		src = sssp.Materialized(net.g, all)
	} else {
		src = sssp.Streamed(net.g, 0)
	}
	r, err := schemes.BuildStream(ctx, net.g, src, cfg)
	if err != nil {
		return nil, err
	}
	return newScheme(net, cfg.Kind, r, r), nil
}

// Builder constructs a scheme over a network for one registered kind.
type Builder func(net *Network, cfg Config) (*Scheme, error)

// Register adds a scheme kind to the registry, making it buildable by
// name everywhere kinds are enumerated (Build, cmd/routed -scheme,
// cmd/routebench). Registration is init-time plumbing: an empty kind,
// a nil builder, or a duplicate name panics. Registered kinds are not
// persistable (Save refuses them); persistence requires codec support.
func Register(kind string, b Builder) {
	if b == nil {
		panic("compactroute: Register needs a builder")
	}
	schemes.Register(schemes.Info{
		Kind:        kind,
		Description: "externally registered scheme",
		Build: func(g *graphT, apsp []*ssspResult, cfg Config) (schemes.Scheme, error) {
			s, err := b(adoptNetwork(g, apsp), cfg)
			if err != nil {
				return nil, err
			}
			if s == nil || s.router == nil {
				return nil, fmt.Errorf("compactroute: kind %q built a nil scheme", kind)
			}
			return registeredScheme{Router: s.router, table: s.table}, nil
		},
	})
}

// registeredScheme adapts a facade-built Scheme back to the internal
// registry's interface.
type registeredScheme struct {
	sim.Router
	table tableSizer
}

// MaxTableBits returns the largest per-node table.
func (r registeredScheme) MaxTableBits() bitsT { return r.table.MaxTableBits() }

// MeanTableBits returns the mean per-node table size.
func (r registeredScheme) MeanTableBits() float64 { return r.table.MeanTableBits() }
