package compactroute

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func dynNet(tb testing.TB, n int, seed uint64) *Network {
	tb.Helper()
	net := RandomNetwork(seed, n, 8/float64(n), UniformWeights(1, 8))
	if !net.Graph().Connected() {
		tb.Fatalf("test network not connected (n=%d seed=%d)", n, seed)
	}
	return net
}

func TestDynamicApplyRebuildRoute(t *testing.T) {
	net := dynNet(t, 96, 2)
	d, err := NewDynamic(net, DynamicOptions{
		Configs:      []Config{{Kind: KindFullTable}, {Kind: KindTZ, K: 2, Seed: 1}},
		EnsureMetric: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Version(); v.ID != 0 || len(v.Kinds) != 2 {
		t.Fatalf("v0 = %+v", v)
	}
	res, err := d.RouteByNameCtx(context.Background(), KindFullTable, net.Graph().Name(0), net.Graph().Name(1))
	if err != nil || !res.Delivered || !res.MetricKnown {
		t.Fatalf("v0 route: %+v err=%v", res, err)
	}
	if res.Stretch() != 1 {
		t.Fatalf("fulltable stretch %v", res.Stretch())
	}
	if _, err := d.RouteByNameCtx(context.Background(), "nope", 1, 2); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}

	muts, err := GenerateMutations(net, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 30 {
		t.Fatalf("pending = %d", d.Pending())
	}
	ch, stop := d.Watch(4)
	defer stop()
	vi, err := d.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vi.ID != 1 || vi.MutTo != 30 || vi.BuildWall <= 0 {
		t.Fatalf("v1 = %+v", vi)
	}
	select {
	case got := <-ch:
		if got.ID != 1 {
			t.Fatalf("watcher saw %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("watcher never notified")
	}
	// New version serves with a metric (EnsureMetric) and new names.
	for _, m := range muts {
		if m.Op != OpAddNode {
			continue
		}
		res, err := d.RouteByNameCtx(context.Background(), KindFullTable, m.Name, net.Graph().Name(0))
		if err != nil || !res.Delivered || !res.MetricKnown {
			t.Fatalf("route from joined node %#x: %+v err=%v", m.Name, res, err)
		}
	}
	swaps, last, max := d.SwapStats()
	if swaps != 1 || last <= 0 || max < last {
		t.Fatalf("swap stats: %d %v %v", swaps, last, max)
	}
	// A rebuild with nothing pending swaps nothing and notifies nobody.
	vi2, err := d.Rebuild(context.Background())
	if err != nil || vi2.ID != 1 {
		t.Fatalf("no-op rebuild: %+v err=%v", vi2, err)
	}
	if swaps, _, _ := d.SwapStats(); swaps != 1 {
		t.Fatalf("no-op rebuild swapped (swaps=%d)", swaps)
	}
}

func TestDynamicSnapshotDir(t *testing.T) {
	net := dynNet(t, 64, 3)
	dir := filepath.Join(t.TempDir(), "snaps")
	d, err := NewDynamic(net, DynamicOptions{
		Configs:     []Config{{Kind: KindFullTable}},
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	muts, err := GenerateMutations(net, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Version 1's persisted fulltable loads through the plain facade
	// and routes (lineage is provenance, not payload).
	f := filepath.Join(dir, "v00000001.fulltable.crsc")
	s, err := loadSchemeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Network().Graph()
	res, err := s.RouteByName(g.Name(0), g.Name(1))
	if err != nil || !res.Delivered {
		t.Fatalf("loaded snapshot route: %+v err=%v", res, err)
	}
	if res.Cost != mustRoute(t, d, KindFullTable, g.Name(0), g.Name(1)).Cost {
		t.Fatal("snapshot and live version disagree")
	}
}

func loadSchemeFile(path string) (*Scheme, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func mustRoute(t *testing.T, d *Dynamic, kind string, src, dst uint64) Result {
	t.Helper()
	res, err := d.RouteByNameCtx(context.Background(), kind, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDynamicSwapHammer is the -race concurrency satellite: routing
// hammers RouteByNameCtx (directly and through a purging serve.Pool
// registered via OnSwap) while the main goroutine churns mutations
// and rebuilds. It asserts no torn reads (every result is internally
// consistent and every route delivers), no stale ErrUnknownName for
// names that exist in every version, and no goroutine leaks.
func TestDynamicSwapHammer(t *testing.T) {
	base := runtime.NumGoroutine()
	net := dynNet(t, 72, 11)
	d, err := NewDynamic(net, DynamicOptions{
		Configs: []Config{{Kind: KindFullTable}, {Kind: KindLandmarkChain, K: 2, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	baseN := g.N() // base names exist in every version (nodes are never removed)

	rebuilds := 4
	if testing.Short() {
		rebuilds = 2
	}
	muts, err := GenerateMutations(net, rebuilds*12, 13)
	if err != nil {
		t.Fatal(err)
	}

	stopRoute := make(chan struct{})
	var routed atomic.Uint64
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kinds := []string{KindFullTable, KindLandmarkChain}
			for i := 0; ; i++ {
				select {
				case <-stopRoute:
					return
				default:
				}
				src := g.Name(NodeID((w*31 + i) % baseN))
				dst := g.Name(NodeID((w*17 + i*7 + 1) % baseN))
				res, err := d.RouteByNameCtx(context.Background(), kinds[i%2], src, dst)
				if err != nil {
					report(err)
					return
				}
				if src != dst && !res.Delivered {
					report(errorsNewf("route %#x→%#x not delivered", src, dst))
					return
				}
				if res.Delivered && src != dst && (res.Cost <= 0 || res.Hops <= 0) {
					report(errorsNewf("torn result %+v", res))
					return
				}
				routed.Add(1)
			}
		}(w)
	}

	for r := 0; r < rebuilds; r++ {
		if _, err := d.Apply(muts[r*12 : (r+1)*12]...); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Rebuild(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Let routing observe the final version before stopping.
	time.Sleep(20 * time.Millisecond)
	close(stopRoute)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if routed.Load() == 0 {
		t.Fatal("no routes completed during churn")
	}
	swaps, _, maxPause := d.SwapStats()
	if swaps != uint64(rebuilds) {
		t.Fatalf("swaps = %d, want %d", swaps, rebuilds)
	}
	if maxPause <= 0 {
		t.Fatalf("max pause = %v", maxPause)
	}
	// No goroutine leaks: everything the rebuilds spawned has exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after churn", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func errorsNewf(format string, args ...any) error { return fmt.Errorf(format, args...) }
