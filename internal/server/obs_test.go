package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/obs"
	"compactroute/internal/serve"
)

// scrapeMetrics fetches /v1/metrics and insists the body parses under
// the strict exposition-format parser — the pin behind the CI smoke's
// scrape check.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]*obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/v1/metrics content type %q", ct)
	}
	fams, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("/v1/metrics is not valid exposition text: %v\n%s", err, body)
	}
	return fams
}

// pointKey identifies one series within a family across scrapes.
func pointKey(p obs.ParsedPoint) string {
	return fmt.Sprintf("%v", p.Labels)
}

// TestMetricsEndpointParsesWithMonotonicCounters pins the scrape
// contract: the body is strict Prometheus text on every scrape, the
// advertised family set is present, and no counter ever decreases
// between scrapes.
func TestMetricsEndpointParsesWithMonotonicCounters(t *testing.T) {
	srv, net := buildDynamic(t, "tz", 80, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()

	route := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			u := g.Name(compactroute.NodeID(i % net.N()))
			v := g.Name(compactroute.NodeID((i*7 + 1) % net.N()))
			resp, err := http.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, u, v))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	route(8)
	// A fault round-trip so the event journal has recorded kinds — an
	// empty journal renders no samples and would hide the family.
	for _, m := range []compactroute.Mutation{
		compactroute.MutFailNode(g.Name(1)), compactroute.MutRecoverNode(g.Name(1)),
	} {
		if resp, body := postJSON(t, ts, "/v1/mutate", m); resp.StatusCode != http.StatusOK {
			t.Fatalf("fault mutation: %d %s", resp.StatusCode, body)
		}
	}
	first := scrapeMetrics(t, ts)
	for _, name := range []string{
		obs.MetricRequestsTotal, obs.MetricRequestLatency,
		obs.MetricRequestLatencyWindow, obs.MetricRouteStretch,
		obs.MetricPoolRequestsTotal, obs.MetricPoolHitsTotal,
		obs.MetricPoolWorkers, obs.MetricTopologyVersion,
		obs.MetricSwapPauseSeconds, obs.MetricRebuildWallSeconds,
		obs.MetricFaultDownNodes, obs.MetricTracesSampledTotal,
		obs.MetricEventsTotal,
	} {
		if first[name] == nil {
			t.Errorf("scrape missing family %s", name)
		}
	}

	route(16)
	second := scrapeMetrics(t, ts)
	for name, f1 := range first {
		if f1.Type != "counter" {
			continue
		}
		f2 := second[name]
		if f2 == nil {
			t.Errorf("counter family %s vanished on the second scrape", name)
			continue
		}
		after := make(map[string]float64, len(f2.Points))
		for _, p := range f2.Points {
			after[pointKey(p)] = p.Value
		}
		for _, p := range f1.Points {
			v2, ok := after[pointKey(p)]
			if !ok {
				t.Errorf("%s%v vanished on the second scrape", name, p.Labels)
				continue
			}
			if v2 < p.Value {
				t.Errorf("counter %s%v went backwards: %v → %v", name, p.Labels, p.Value, v2)
			}
		}
	}
	if a, b := first[obs.MetricPoolRequestsTotal].Points[0].Value, second[obs.MetricPoolRequestsTotal].Points[0].Value; b < a+16 {
		t.Errorf("pool requests counter %v → %v, want at least +16", a, b)
	}
}

// TestStatsSnapshotConsistentUnderChurn hammers the serving tier with
// concurrent routes, mutations, rebuilds, and hot swaps while reading
// Stats() snapshots, and checks the invariants every snapshot must
// satisfy regardless of interleaving: counters never go backwards,
// resolved outcomes never exceed admitted requests, and gauges stay
// in range. Run under -race this also pins that the snapshot path
// takes no unsynchronized reads.
func TestStatsSnapshotConsistentUnderChurn(t *testing.T) {
	srv, net := buildDynamic(t, "tz", 80, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()

	const iters = 60
	var wg sync.WaitGroup
	// Routers: cache hits, misses, and coalesced flights.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := g.Name(compactroute.NodeID((i + w) % net.N()))
				v := g.Name(compactroute.NodeID((i*3 + 1) % net.N()))
				resp, err := http.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, u, v))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	// Mutator: weight churn plus rebuild+swap, purging the cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			resp, _ := postJSON(t, ts, "/v1/mutate", []compactroute.Mutation{
				compactroute.MutSetWeight(g.Name(0), g.Name(1), float64(1+i%5)),
			})
			if resp.StatusCode != http.StatusOK {
				continue // edge may not exist on this topology; routes still churn
			}
			if resp, _ := postJSON(t, ts, "/v1/rebuild", nil); resp.StatusCode == http.StatusOK {
				postJSON(t, ts, "/v1/swap", nil)
			}
		}
	}()
	// Reader: successive snapshots must be internally consistent and
	// mutually monotonic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev serve.Stats
		for i := 0; i < iters*2; i++ {
			s := srv.pool.Stats()
			if s.Hits+s.Misses+s.Coalesced+s.Rejected > s.Requests {
				t.Errorf("snapshot %d: resolved %d exceeds admitted %d: %+v",
					i, s.Hits+s.Misses+s.Coalesced+s.Rejected, s.Requests, s)
				return
			}
			if s.InFlight < 0 || s.CacheLen < 0 || s.CacheLen > s.CacheCap {
				t.Errorf("snapshot %d: gauges out of range: %+v", i, s)
				return
			}
			if s.Requests < prev.Requests || s.Hits < prev.Hits || s.Misses < prev.Misses ||
				s.Coalesced < prev.Coalesced || s.Errors < prev.Errors ||
				s.Rejected < prev.Rejected || s.Purges < prev.Purges {
				t.Errorf("snapshot %d went backwards: %+v then %+v", i, prev, s)
				return
			}
			prev = s
		}
	}()
	wg.Wait()

	s := srv.pool.Stats()
	if s.Requests == 0 || s.Misses == 0 {
		t.Fatalf("churn produced no pool traffic: %+v", s)
	}
}
