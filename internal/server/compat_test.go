package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"compactroute"
)

// TestVersionedAndLegacyPathsAgree is the compatibility pin for the
// /v1 surface: every legacy unversioned path must answer exactly like
// its /v1 successor — same status, same body — while carrying the
// Deprecation marker, and the error-code mapping (422/503/500/409)
// must hold on both forms.
func TestVersionedAndLegacyPathsAgree(t *testing.T) {
	static, _ := buildStatic(t, Config{})
	tsStatic := httptest.NewServer(static.Handler())
	defer tsStatic.Close()
	dyn, net := buildDynamic(t, "fulltable", 60, 0)
	tsDyn := httptest.NewServer(dyn.Handler())
	defer tsDyn.Close()
	g := net.Graph()

	do := func(ts *httptest.Server, method, path, body string) (*http.Response, string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(out)
	}

	goodRoute := fmt.Sprintf("/route?src=%d&dst=%d", g.Name(0), g.Name(1))
	mut := `{"op":"setweight","u":` + fmt.Sprint(g.Name(0)) + `,"v":` + fmt.Sprint(firstNeighbor(net)) + `,"w":2}`
	for _, tc := range []struct {
		name     string
		ts       *httptest.Server
		method   string
		path     string // unversioned form; /v1 + path is the successor
		body     string
		want     int
		skipBody bool // response carries moving counters (seq, pending, stats)
	}{
		{"route ok", tsDyn, "GET", goodRoute, "", http.StatusOK, false},
		{"route unknown name 422", tsDyn, "GET", "/route?src=1&dst=2", "", http.StatusUnprocessableEntity, false},
		{"route bad name 400", tsDyn, "GET", "/route?src=zz&dst=1", "", http.StatusBadRequest, false},
		{"healthz ok", tsDyn, "GET", "/healthz", "", http.StatusOK, false},
		{"stats ok", tsDyn, "GET", "/stats", "", http.StatusOK, true},
		{"mutate ok", tsDyn, "POST", "/mutate", mut, http.StatusOK, true},
		{"mutate invalid 422", tsDyn, "POST", "/mutate", `{"op":"setweight","u":3405691582,"v":1,"w":2}`, http.StatusUnprocessableEntity, false},
		{"mutate static 409", tsStatic, "POST", "/mutate", mut, http.StatusConflict, false},
		{"rebuild static 409", tsStatic, "POST", "/rebuild", "", http.StatusConflict, false},
		{"rebuild async 202", tsDyn, "POST", "/rebuild?wait=0", "", http.StatusAccepted, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vResp, vBody := do(tc.ts, tc.method, "/v1"+tc.path, tc.body)
			if vResp.StatusCode != tc.want {
				t.Fatalf("/v1%s: %d %s, want %d", tc.path, vResp.StatusCode, vBody, tc.want)
			}
			if vResp.Header.Get("Deprecation") != "" {
				t.Fatalf("/v1%s marked deprecated", tc.path)
			}
			lResp, lBody := do(tc.ts, tc.method, tc.path, tc.body)
			if lResp.StatusCode != tc.want {
				t.Fatalf("%s: %d %s, want %d", tc.path, lResp.StatusCode, lBody, tc.want)
			}
			if lResp.Header.Get("Deprecation") != "true" {
				t.Fatalf("%s: legacy path without Deprecation header", tc.path)
			}
			if link := lResp.Header.Get("Link"); !strings.Contains(link, "/v1"+strings.SplitN(tc.path, "?", 2)[0]) {
				t.Fatalf("%s: Link header %q does not name the /v1 successor", tc.path, link)
			}
			// Bodies with moving counters are exempt; everything
			// else must be byte-identical across the two forms.
			if !tc.skipBody && vBody != lBody {
				t.Fatalf("%s: body diverged between forms:\n/v1: %s\nlegacy: %s", tc.path, vBody, lBody)
			}
		})
	}

	// /v1-only endpoints must NOT exist unversioned: the pre-v1
	// surface is frozen.
	for _, tc := range []struct{ method, path string }{
		{"GET", "/resolve?src=1&dst=2"},
		{"POST", "/swap"},
	} {
		resp, _ := do(tsDyn, tc.method, tc.path, `{"version":0}`)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: %d, want 404 (v1-only endpoint leaked unversioned)", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestStatusForMapping: every typed error maps to its pinned status
// code via errors.Is — 422 for names the caller invented, 502 for
// routes blocked by the transient fault overlay, 503 for
// saturation/cancellation, 409 for static-scheme mutation and
// coordinated-swap version skew, 500 for anything that would be a
// scheme invariant violation.
func TestStatusForMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{fmt.Errorf("route: %w", compactroute.ErrUnknownName), http.StatusUnprocessableEntity},
		{fmt.Errorf("route: %w", compactroute.ErrUnknownLabel), http.StatusUnprocessableEntity},
		{fmt.Errorf("serve: route 1→2: %w", compactroute.ErrUnreachable), http.StatusBadGateway},
		{fmt.Errorf("serve: %w: %w", compactroute.ErrSaturated, context.Canceled), http.StatusServiceUnavailable},
		{fmt.Errorf("serve: %w", context.Canceled), http.StatusServiceUnavailable},
		{fmt.Errorf("serve: %w", context.DeadlineExceeded), http.StatusServiceUnavailable},
		{fmt.Errorf("server: mutate: %w", ErrStatic), http.StatusConflict},
		{fmt.Errorf("dynamic: commit version 7: %w", compactroute.ErrVersionSkew), http.StatusConflict},
		{fmt.Errorf("sim: invariant violated"), http.StatusInternalServerError},
	} {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("StatusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
