package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"compactroute"
	"compactroute/internal/obs"
	"compactroute/internal/serve"
)

// ErrStatic reports a mutation-path operation (mutate, rebuild, stage,
// swap) on a server whose scheme was loaded from a file and is frozen.
// Conflict semantics: StatusFor maps it to 409.
var ErrStatic = errors.New("scheme is static (loaded from a file); serve a registry kind to mutate")

// endpoints is the route table shared by the /v1 surface and the
// deprecated unversioned aliases.
func (s *Server) endpoints() []struct {
	method, path string
	h            http.HandlerFunc
	legacy       bool // also registered unversioned (the pre-v1 surface)
} {
	return []struct {
		method, path string
		h            http.HandlerFunc
		legacy       bool
	}{
		{"GET", "/route", s.handleRoute, true},
		{"GET", "/resolve", s.handleResolve, false},
		{"GET", "/healthz", s.handleHealthz, true},
		{"GET", "/stats", s.handleStats, true},
		{"GET", "/metrics", s.handleMetrics, false},
		{"GET", "/trace/{id}", s.handleTrace, false},
		{"GET", "/traces/recent", s.handleTracesRecent, false},
		{"GET", "/events", s.handleEvents, false},
		{"POST", "/mutate", s.handleMutate, true},
		{"POST", "/rebuild", s.handleRebuild, true},
		{"POST", "/swap", s.handleSwap, false},
	}
}

// initRoutes wires the pool and the HTTP routes shared by both modes.
// Every endpoint lives under /v1; the original unversioned paths stay
// registered as deprecated aliases answering identically (plus a
// Deprecation header), so pre-v1 clients keep working.
func (s *Server) initRoutes(r serve.Router) {
	s.pool = serve.NewPool(r, serve.Options{Workers: s.cfg.Workers, CacheSize: s.cfg.CacheSize, Shards: s.cfg.Shards})
	s.mux = http.NewServeMux()
	// Every endpoint passes the observability boundary: trace minting
	// or adoption, per-endpoint status/latency metrics, slow log.
	o := &obs.HTTP{Tracer: s.tracer, Metrics: s.metrics, Slow: s.slow}
	for _, ep := range s.endpoints() {
		h := o.Observe(ep.path, ep.h)
		s.mux.HandleFunc(ep.method+" /v1"+ep.path, h)
		if ep.legacy {
			s.mux.HandleFunc(ep.method+" "+ep.path, deprecated(ep.path, h))
		}
	}
}

// deprecated marks a legacy unversioned endpoint: same handler, plus
// headers pointing clients at the /v1 successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// RouteResponse is the JSON shape of a routing answer. Version is the
// topology version the route was computed on (dynamic mode only; nil
// for a static scheme) — cluster front-doors compare it across shards
// to detect skew.
type RouteResponse struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
	Version      *uint64 `json:"version,omitempty"`
}

// ResolveResponse is the JSON shape of GET /v1/resolve: name existence
// plus the shortest-path distance between two names — the cheap
// destination-side half of a cluster scatter-gather (the source shard
// walks the route; the destination shard confirms the names and the
// stretch denominator on ITS serving version).
type ResolveResponse struct {
	SrcKnown     bool    `json:"srcKnown"`
	DstKnown     bool    `json:"dstKnown"`
	MetricKnown  bool    `json:"metricKnown"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Version      *uint64 `json:"version,omitempty"`
}

// StatusFor maps an error onto an HTTP status through the typed
// taxonomy — errors.Is on the sentinels, never error text. The crlint
// errtaxonomy analyzer keeps this mapper total over the routeerr
// sentinels: adding a sentinel without deciding its status here fails
// the lint.
//
//	422  the caller named a thing that does not exist: a node, a
//	     label, or a scheme kind (ErrUnknownName, ErrUnknownLabel,
//	     ErrUnknownKind)
//	503  saturation or cancellation: retryable back-pressure
//	409  the serving state cannot do this: mutating a static scheme,
//	     a coordinated-swap version mismatch, saving a kind with no
//	     persistent form, an operation needing an absent metric
//	     (ErrStatic, compactroute.ErrVersionSkew, ErrNotPersistable,
//	     ErrNoMetric)
//	502  the transient fault overlay blocks the query: an endpoint is
//	     down or every delivered path crosses a failed element
//	     (ErrUnreachable). Bad gateway, not 500 — the scheme did its
//	     job; the network under it is degraded, and the answer changes
//	     once the outage recovers or a rebuild absorbs the loss
//	500  a scheme invariant violation: a mandatory-delivery route
//	     that did not deliver (ErrNotDelivered), or anything unmapped
func StatusFor(err error) int {
	switch {
	case errors.Is(err, compactroute.ErrUnknownName),
		errors.Is(err, compactroute.ErrUnknownLabel),
		errors.Is(err, compactroute.ErrUnknownKind):
		return http.StatusUnprocessableEntity
	case errors.Is(err, compactroute.ErrUnreachable):
		return http.StatusBadGateway
	case errors.Is(err, compactroute.ErrSaturated),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStatic),
		errors.Is(err, compactroute.ErrVersionSkew),
		errors.Is(err, compactroute.ErrNotPersistable),
		errors.Is(err, compactroute.ErrNoMetric):
		return http.StatusConflict
	case errors.Is(err, compactroute.ErrNotDelivered):
		// Explicitly 500: delivery was mandatory and the scheme failed
		// its own guarantee. Listed so the mapper stays total.
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// errorStatus writes err with its StatusFor code, adding Retry-After
// on the retryable 503s.
func errorStatus(w http.ResponseWriter, err error) {
	code := StatusFor(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	HTTPError(w, code, "%v", err)
}

// routeVersioned routes through the pool and pins the topology version
// the answer belongs to. The version is read on both sides of the
// route: when the reads agree, no swap ran in between, so the route
// was computed on exactly that version. A swap racing the route (rare:
// swaps are sub-millisecond events) retries; after a few lost races
// the answer ships with the latest version, best effort.
func (s *Server) routeVersioned(ctx context.Context, src, dst uint64) (serve.Result, *uint64, error) {
	if s.dyn == nil {
		res, err := s.pool.Route(ctx, src, dst)
		return res, nil, err
	}
	var res serve.Result
	var err error
	for range 3 {
		before := s.dyn.Version().ID
		res, err = s.pool.Route(ctx, src, dst)
		if err != nil {
			return res, nil, err
		}
		if after := s.dyn.Version().ID; after == before {
			return res, &after, nil
		}
	}
	v := s.dyn.Version().ID
	return res, &v, nil
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := ParseName(r.URL.Query().Get("src"))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := ParseName(r.URL.Query().Get("dst"))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, version, err := s.routeVersioned(r.Context(), src, dst)
	if err != nil {
		errorStatus(w, err)
		return
	}
	resp := RouteResponse{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: res.HeaderBits,
		Version:    version,
	}
	if res.MetricKnown {
		resp.ShortestCost = res.ShortestCost
		if res.ShortestCost > 0 {
			resp.Stretch = res.Cost / res.ShortestCost
			if res.Delivered {
				s.metrics.ObserveStretch(s.servedKind(), resp.Stretch)
			}
		}
	}
	WriteJSON(w, resp)
}

// servedKind names the scheme kind answering routes, for the stretch
// histogram's kind label.
func (s *Server) servedKind() string {
	if s.dyn != nil {
		return s.kind
	}
	return s.scheme.Kind()
}

// handleResolve answers name existence and the shortest-path distance
// between two names, without walking a route — O(1) against the
// version's metric. Unknown names are data here, not errors: the
// scatter-gather caller needs to distinguish "my half doesn't know
// this name" from a failed request.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	src, err := ParseName(r.URL.Query().Get("src"))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := ParseName(r.URL.Query().Get("dst"))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	var resp ResolveResponse
	for range 3 {
		var before uint64
		if s.dyn != nil {
			before = s.dyn.Version().ID
		}
		resp = s.resolveOnce(src, dst)
		if s.dyn == nil {
			break
		}
		if after := s.dyn.Version().ID; after == before {
			resp.Version = &after
			break
		}
		v := s.dyn.Version().ID
		resp.Version = &v
	}
	WriteJSON(w, resp)
}

// resolveOnce resolves both names on the scheme serving right now.
func (s *Server) resolveOnce(src, dst uint64) ResolveResponse {
	net := s.currentScheme().Network()
	su, sok := net.Graph().Lookup(src)
	du, dok := net.Graph().Lookup(dst)
	resp := ResolveResponse{SrcKnown: sok, DstKnown: dok, MetricKnown: net.HasMetric()}
	if sok && dok && resp.MetricKnown {
		if d, err := net.TryDistance(su, du); err == nil {
			resp.ShortestCost = d
		}
	}
	return resp
}

// handleMutate appends topology mutations (dynamic mode only). The
// body is one mutation object or a JSON array; the batch is atomic —
// either every mutation is accepted or none is (422).
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		errorStatus(w, ErrStatic)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var muts []compactroute.Mutation
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		err = json.Unmarshal(body, &muts)
	} else {
		var m compactroute.Mutation
		if err = json.Unmarshal(body, &m); err == nil {
			muts = []compactroute.Mutation{m}
		}
	}
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return
	}
	if len(muts) == 0 {
		HTTPError(w, http.StatusBadRequest, "no mutations in body")
		return
	}
	// Through Mutate, not dyn.Apply: accepted fault events must reach
	// the repair layer (and purge the cache) before the 200 goes out.
	seq, err := s.Mutate(muts...)
	if err != nil {
		HTTPError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.maybeAutoRebuild()
	WriteJSON(w, map[string]any{
		"applied": len(muts),
		"seq":     seq,
		"pending": s.dyn.Pending(),
	})
}

// handleRebuild triggers a background rebuild (202). With ?wait=1 it
// blocks until the rebuild completes and reports the new version
// (200), the rebuild error (500), or the caller's cancellation (503).
// With ?stage=1 it runs the first half of a two-phase rebuild
// synchronously — build everything, swap nothing — and reports the
// staged version for a later POST /v1/swap; a cluster coordinator
// stages every shard, checks the IDs agree, then commits them all.
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		errorStatus(w, ErrStatic)
		return
	}
	q := r.URL.Query()
	// ?stage and ?wait are booleans: absent, "0", "false", or garbage
	// all mean the async 202 flow; only an affirmative value changes it.
	if stage, _ := strconv.ParseBool(q.Get("stage")); stage {
		v, err := s.dyn.Stage(r.Context())
		if err != nil {
			errorStatus(w, err)
			return
		}
		WriteJSON(w, v)
		return
	}
	if wait, _ := strconv.ParseBool(q.Get("wait")); !wait {
		status := "scheduled"
		if !s.triggerRebuild(nil) {
			status = "already scheduled"
		}
		WriteJSONStatus(w, http.StatusAccepted, map[string]any{"status": status, "pending": s.dyn.Pending()})
		return
	}
	reply := make(chan rebuildReply, 1)
	select {
	case s.rebuildReq <- reply:
	case <-r.Context().Done():
		w.Header().Set("Retry-After", "1")
		HTTPError(w, http.StatusServiceUnavailable, "canceled while waiting for the rebuild worker")
		return
	}
	select {
	case out := <-reply:
		if out.err != nil {
			HTTPError(w, http.StatusInternalServerError, "rebuild failed: %v", out.err)
			return
		}
		WriteJSON(w, out.v)
	case <-r.Context().Done():
		// The rebuild keeps running; the caller just stopped waiting.
		w.Header().Set("Retry-After", "1")
		HTTPError(w, http.StatusServiceUnavailable, "canceled while rebuilding (rebuild continues)")
	}
}

// handleSwap commits a staged version by ID (the second half of a
// two-phase rebuild). Committing the serving version's ID is an
// idempotent 200; naming anything else answers 409 so the coordinator
// learns this shard disagrees before the cluster does.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		errorStatus(w, ErrStatic)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req struct {
		Version *uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		HTTPError(w, http.StatusBadRequest, "bad swap body: %v", err)
		return
	}
	if req.Version == nil {
		HTTPError(w, http.StatusBadRequest, `swap body needs {"version": <id>}`)
		return
	}
	v, err := s.dyn.SwapTo(*req.Version)
	if err != nil {
		errorStatus(w, err)
		return
	}
	WriteJSON(w, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	scheme := s.currentScheme()
	resp := map[string]any{
		"status": "ok",
		"scheme": scheme.Name(),
		"kind":   scheme.Kind(),
		"nodes":  scheme.Network().N(),
		"edges":  scheme.Network().Graph().M(),
		"metric": scheme.Network().HasMetric(),
	}
	if s.dyn != nil {
		v := s.dyn.Version()
		swaps, _, _ := s.dyn.SwapStats()
		pending := s.dyn.Pending()
		resp["dynamic"] = true
		resp["version"] = v.ID
		resp["pending"] = pending
		// Log length: the cluster's re-admission check compares it (and
		// the version ID) against a healthy reference shard before
		// letting an ejected shard serve again.
		resp["mutations"] = v.MutTo + pending
		resp["swaps"] = swaps
		fs := s.repair.Stats()
		resp["downNodes"] = fs.DownNodes
		resp["downEdges"] = fs.DownEdges
		resp["damped"] = fs.Damped
	}
	WriteJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, s.Stats())
}

// ParseName parses a node name as decimal or 0x-prefixed hex — and
// nothing else. ParseUint's base 0 would accept octal ("010" → 8)
// and underscores, silently corrupting lookups of decimal names with
// leading zeros.
func ParseName(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing")
	}
	if len(s) > 2 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// WriteJSON writes v as a 200 application/json response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: writing response: %v", err)
	}
}

// WriteJSONStatus is WriteJSON with a non-200 status: the header must
// be set before WriteHeader commits the response, or the content type
// would be sniffed as text/plain.
func WriteJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: writing response: %v", err)
	}
}

// HTTPError writes a JSON error body {"error": ...} with the status.
func HTTPError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
