package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"compactroute"
	"compactroute/internal/serve"
)

// blockingServer builds a Server whose router parks every route on a
// channel, so tests control exactly when in-flight work completes.
func blockingServer(release <-chan struct{}, started chan<- struct{}) *Server {
	s := &Server{cfg: Config{Workers: 4, CacheSize: -1}, logf: discardLogf,
		done: make(chan struct{}), loopDone: make(chan struct{})}
	s.initRoutes(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return serve.Result{Delivered: true}, nil
		case <-ctx.Done():
			return serve.Result{}, ctx.Err()
		}
	}))
	return s
}

// TestDrainRejectsNewWorkCompletesInFlight: Drain flips the server
// into lame-duck mode — new requests (health checks included) answer
// 503 with Retry-After — while requests already admitted run to
// completion, and Drain returns only once they have.
func TestDrainRejectsNewWorkCompletesInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := blockingServer(release, started)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Park one request inside the router.
	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/route?src=1&dst=2")
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-started

	// A drain that cannot wait reports the in-flight request.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); err == nil {
		t.Fatal("Drain with a dead context and work in flight returned nil")
	}

	// Every NEW request is refused — the data path and the health
	// check alike, so a load balancer pulls the node.
	for _, path := range []string{"/v1/route?src=1&dst=2", "/v1/healthz", "/healthz", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while draining: 503 without Retry-After", path)
		}
	}

	// Release the parked request: it completes normally, and a real
	// Drain returns once it has.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	close(release)
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
}

// TestCloseLeaksNoGoroutines: a dynamic server's background rebuild
// worker exits on Close, whether or not it ever ran a rebuild —
// measured the same way the PR 4/5 pool and swapper tests do.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		srv, err := New(Config{Scheme: "fulltable", N: 50, K: 2, Seed: 5, SFactor: 0.5,
			Workers: 2, CacheSize: 64, Logf: discardLogf})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(t.Context())
		// Exercise the loop once so the test covers a worker that has
		// actually run, not only an idle one.
		g := srv.Scheme().Network().Graph()
		if _, err := srv.Mutate(compactroute.MutSetWeight(g.Name(0), firstNeighbor(srv.Scheme().Network()), 2)); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Rebuild(context.Background()); err != nil {
			t.Fatal(err)
		}
		srv.Close()
		srv.Close() // idempotent
	}
	// A server that is Closed without ever being Started must not hang
	// or leak either.
	srv, err := New(Config{Scheme: "fulltable", N: 50, K: 2, Seed: 5, SFactor: 0.5,
		Workers: 2, CacheSize: 64, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d, base %d — background workers leaked", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
