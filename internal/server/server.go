// Package server is the reusable serving tier over one routing
// scheme — the daemon logic cmd/routed used to inline, extracted so a
// shard of a cluster, a test, or an embedding program can run the same
// surface without a process boundary.
//
// A Server wraps either a STATIC scheme (loaded from a file persisted
// by compactroute.Save) or a DYNAMIC one (a registry kind served
// through compactroute.Dynamic: mutate → background rebuild → hot
// swap). Queries run on a bounded worker pool with a sharded
// single-flight LRU result cache (internal/serve); the HTTP surface is
// versioned under /v1 with the original unversioned paths kept as
// deprecated aliases:
//
//	GET  /v1/route    route between external names (+ live version)
//	GET  /v1/resolve  name resolution + shortest-path distance — the
//	                  destination-side half of a cluster scatter-gather
//	GET  /v1/healthz  liveness + scheme identity + live version
//	GET  /v1/stats    worker pool, cache, and swap counters
//	POST /v1/mutate   append topology mutations (dynamic mode)
//	POST /v1/rebuild  rebuild + hot-swap in the background
//	                  (?wait=1 blocks; ?stage=1 builds WITHOUT swapping)
//	POST /v1/swap     commit a staged version by ID (two-phase cut-over)
//
// Error responses follow the typed taxonomy via errors.Is (StatusFor):
// 422 for names the caller invented, 503 for saturation/cancellation
// (with Retry-After), 409 for mutating a static scheme or committing a
// version that is not staged, 500 for anything that would be a scheme
// invariant violation.
//
// # Lifecycle
//
// New builds or loads the scheme and assembles the pool and routes.
// Start launches the background rebuild worker (dynamic mode; a no-op
// otherwise) — the async POST /v1/rebuild flow and the RebuildAfter
// auto-trigger need it. Drain flips the server into lame-duck mode:
// every new request (health checks included, so load balancers pull
// the node) answers 503 + Retry-After while in-flight requests finish.
// Close stops the background worker; it does not wait for in-flight
// HTTP requests — Drain first, or use http.Server.Shutdown.
package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compactroute"
	"compactroute/internal/obs"
	"compactroute/internal/serve"
)

// Config configures New. Scheme is required: a registry kind (built,
// served dynamically) or a path to a scheme file (loaded, static).
type Config struct {
	// Scheme names a registry kind (compactroute.Kinds) or a scheme
	// file written by compactroute.Save; kinds win, so a file named
	// like a kind needs a path separator ("./tz").
	Scheme string

	// GraphFile builds a kind over this topology file (gio text
	// format) instead of generating one. Shards of a cluster MUST
	// share a graph file (or the generation parameters below): the
	// coordinated cut-over assumes every shard builds byte-identical
	// versions.
	GraphFile string
	// K is the trade-off parameter when building a kind (0: 3).
	K int
	// N is the node count for the generated topology (0: 512).
	N int
	// P is the gnp edge probability for the generated topology
	// (0: 8/n).
	P float64
	// Seed drives generation and construction (0 is a valid seed).
	Seed uint64
	// SFactor is the landmark S-set constant for kind paper (0: 0.25).
	SFactor float64

	// Metric computes the shortest-path metric at startup — and per
	// rebuilt version — so responses carry true stretch (costs one
	// APSP each time; kind-built schemes start with one regardless).
	Metric bool

	// Workers bounds concurrent route computations (0: GOMAXPROCS).
	Workers int
	// CacheSize is the result cache capacity in entries (0: 1<<16,
	// negative disables).
	CacheSize int
	// Shards is the cache shard count (0: 16).
	Shards int

	// BestOfBoth routes src→dst and dst→src concurrently and serves
	// the cheaper usable direction — the yggdrasil treesim mitigation
	// for transient loss (dynamic mode; see serve.RepairOptions).
	BestOfBoth bool
	// DampPenalty enables flap damping: the starting cost penalty per
	// recently failed element on a path, decaying with DampHalfLife
	// (dynamic mode; 0 disables).
	DampPenalty float64
	// DampHalfLife is the damping decay half-life (0: 30s).
	DampHalfLife time.Duration

	// RebuildAfter triggers a background rebuild automatically once
	// this many mutations are pending (0: POST /v1/rebuild only).
	// Needs Start.
	RebuildAfter int
	// SnapshotDir persists every topology version (graph, persistable
	// schemes with lineage, manifest); empty disables.
	SnapshotDir string

	// TraceSample traces 1 in N requests (0: 64; negative disables
	// sampling — propagated X-Compactroute-Trace IDs are still
	// honored, so a front-door-sampled request traces here too).
	TraceSample int
	// TraceRing is the trace ring-buffer capacity (0: 1024).
	TraceRing int
	// SlowLog receives the slow-query log as JSON lines (nil
	// disables): slow, refused, and divergent requests with their
	// trace IDs.
	SlowLog io.Writer
	// SlowThreshold gates the slow-query log (0: 100ms).
	SlowThreshold time.Duration

	// Logf receives operational log lines (nil: log.Printf).
	Logf func(format string, args ...any)
}

// rebuildReply carries one rebuild outcome back to a waiting caller.
type rebuildReply struct {
	v   compactroute.VersionInfo
	err error
}

// Server is the serving tier over one scheme: pool, HTTP surface,
// background rebuild worker, and drain/close lifecycle. Construct with
// New; all methods are safe for concurrent use.
type Server struct {
	cfg    Config
	logf   func(string, ...any)
	scheme *compactroute.Scheme  // static mode only
	dyn    *compactroute.Dynamic // dynamic mode only
	kind   string                // served kind in dynamic mode
	repair *serve.Repairer       // fault-aware routing layer (dynamic mode only)
	pool   *serve.Pool
	mux    *http.ServeMux

	// muteMu serializes Mutate's append + fault fan-in, so the repair
	// layer's overlay always reflects the log's event order (two racing
	// fail/recover batches for one element must not apply their
	// overlay updates in the opposite order of their log positions).
	muteMu sync.Mutex

	tracer  *obs.Tracer
	metrics *obs.Metrics
	journal *obs.Journal
	slow    *obs.SlowLog

	rebuildReq chan chan rebuildReply
	started    sync.Once
	closed     sync.Once
	done       chan struct{}
	loopDone   chan struct{}
	loopCancel context.CancelFunc // set by Start, called by Close

	draining atomic.Bool
	inflight atomic.Int64
}

// New resolves cfg.Scheme — registry kinds build and serve
// dynamically, anything else loads as a static scheme file — and
// assembles the serving tier. Call Start to arm the background rebuild
// worker and Close when done.
func New(cfg Config) (*Server, error) {
	if cfg.Scheme == "" {
		return nil, fmt.Errorf("server: Config.Scheme is required (a kind: %s — or a scheme file)",
			strings.Join(compactroute.Kinds(), ", "))
	}
	s := &Server{
		cfg:      cfg,
		logf:     cfg.Logf,
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	s.initObs(cfg)
	start := time.Now()
	if _, isKind := compactroute.LookupKind(cfg.Scheme); isKind {
		if err := s.initDynamic(cfg); err != nil {
			return nil, err
		}
		sc := s.currentScheme()
		s.logf("server: built %s dynamically (%d nodes, %d edges, max table %d bits/node) in %v",
			sc.Name(), sc.Network().N(), sc.Network().Graph().M(), sc.MaxTableBits(),
			time.Since(start).Round(time.Millisecond))
	} else {
		if err := s.initStatic(cfg); err != nil {
			return nil, err
		}
		sc := s.scheme
		s.logf("server: loaded %s (%d nodes, %d edges, max table %d bits/node) in %v",
			sc.Name(), sc.Network().N(), sc.Network().Graph().M(), sc.MaxTableBits(),
			time.Since(start).Round(time.Millisecond))
	}
	return s, nil
}

// initObs assembles the observability sinks before either init path
// builds the routes (the HTTP middleware closes over them).
func (s *Server) initObs(cfg Config) {
	sample := cfg.TraceSample
	switch {
	case sample == 0:
		sample = 64
	case sample < 0:
		sample = 0
	}
	s.tracer = obs.NewTracer(cfg.TraceRing, sample)
	s.metrics = obs.NewMetrics()
	s.journal = obs.NewJournal(256)
	s.slow = obs.NewSlowLog(cfg.SlowLog, cfg.SlowThreshold)
}

// initDynamic builds cfg.Scheme as a registry kind and serves it
// through a compactroute.Dynamic handle.
func (s *Server) initDynamic(cfg Config) error {
	net, err := BuildNetwork(cfg)
	if err != nil {
		return err
	}
	k := cfg.K
	if k == 0 {
		k = 3
	}
	sfactor := cfg.SFactor
	if sfactor == 0 {
		sfactor = 0.25
	}
	dyn, err := compactroute.NewDynamic(net, compactroute.DynamicOptions{
		Configs:      []compactroute.Config{{Kind: cfg.Scheme, K: k, Seed: cfg.Seed, SFactor: sfactor}},
		EnsureMetric: cfg.Metric,
		SnapshotDir:  cfg.SnapshotDir,
	})
	if err != nil {
		return err
	}
	s.dyn = dyn
	s.kind = cfg.Scheme
	s.rebuildReq = make(chan chan rebuildReply, 1)
	// Dynamic routes go through the repair layer: every walk is held
	// against the transient fault overlay (a dead link is dead the
	// moment its failure event is accepted, not at the next rebuild),
	// with best-of-both-directions and flap damping as configured.
	s.repair = serve.NewRepairer(func(ctx context.Context, src, dst uint64) (serve.Result, []uint64, error) {
		walk := time.Now()
		res, path, err := dyn.RoutePathByNameCtx(ctx, s.kind, src, dst)
		if err != nil {
			return serve.Result{}, nil, err
		}
		obs.SpanN(ctx, "scheme", "walk", s.kind, walk, int64(res.Hops))
		sres, _ := toServeResult(res, nil)
		return sres, path, nil
	}, serve.RepairOptions{
		BestOfBoth:   cfg.BestOfBoth,
		DampPenalty:  cfg.DampPenalty,
		DampHalfLife: cfg.DampHalfLife,
	})
	s.initRoutes(s.repair)
	// The swap hook purges the result cache inside the pause, so a
	// post-swap request can never read a pre-swap route. The journal
	// entry rides the same hook: every commit path (background
	// rebuild, synchronous rebuild, two-phase swap) is one event.
	dyn.OnSwap(func(v compactroute.VersionInfo) {
		s.pool.Purge()
		s.journal.Record("swap", fmt.Sprintf("version %d (mutations %d..%d, build %v)",
			v.ID, v.MutFrom, v.MutTo, v.BuildWall.Round(time.Microsecond)))
	})
	return nil
}

// initStatic loads cfg.Scheme as a persisted scheme file, ensuring the
// metric (when requested) strictly BEFORE the serving pool exists: the
// pool caches ShortestCost at computation time and never refreshes it,
// so a metric appearing after the first query would leave stale
// MetricKnown=false entries behind forever (the staleness invariant
// documented in internal/serve). Constructing the pool last makes that
// state unreachable.
func (s *Server) initStatic(cfg Config) error {
	f, err := os.Open(cfg.Scheme)
	if err != nil {
		return fmt.Errorf("%v (not a registered kind: %s)", err, strings.Join(compactroute.Kinds(), ", "))
	}
	defer f.Close()
	scheme, err := compactroute.Load(f)
	if err != nil {
		return fmt.Errorf("loading %s: %w", cfg.Scheme, err)
	}
	if cfg.Metric {
		scheme.Network().EnsureMetric()
	}
	s.scheme = scheme
	s.initRoutes(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		walk := time.Now()
		res, err := toServeResult(scheme.RouteByNameCtx(ctx, src, dst))
		if err == nil {
			obs.SpanN(ctx, "scheme", "walk", scheme.Kind(), walk, int64(res.Hops))
		}
		return res, err
	}))
	return nil
}

// newStatic wraps an already-built scheme — the in-process equivalent
// of loading a file (tests, embedders holding a *Scheme). Like
// initStatic, cfg.Metric is honored strictly before the pool exists.
func newStatic(scheme *compactroute.Scheme, cfg Config) *Server {
	s := &Server{cfg: cfg, logf: cfg.Logf, done: make(chan struct{}), loopDone: make(chan struct{}), scheme: scheme}
	if s.logf == nil {
		s.logf = log.Printf
	}
	if cfg.Metric {
		scheme.Network().EnsureMetric()
	}
	s.initObs(cfg)
	s.initRoutes(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		walk := time.Now()
		res, err := toServeResult(scheme.RouteByNameCtx(ctx, src, dst))
		if err == nil {
			obs.SpanN(ctx, "scheme", "walk", scheme.Kind(), walk, int64(res.Hops))
		}
		return res, err
	}))
	return s
}

// BuildNetwork materializes the topology a kind-built Server
// constructs over: cfg.GraphFile when set, else a generated gnp
// network from (Seed, N, P) with uniform [1, 8] weights. Exported so
// harnesses (benchmarks, tests, load generators) can mirror a shard's
// topology exactly without sharing a file.
func BuildNetwork(cfg Config) (*compactroute.Network, error) {
	if cfg.GraphFile != "" {
		f, err := os.Open(cfg.GraphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return compactroute.LoadNetwork(f)
	}
	n := cfg.N
	if n == 0 {
		n = 512
	}
	p := cfg.P
	if p <= 0 {
		p = 8 / float64(n)
	}
	return compactroute.RandomNetwork(cfg.Seed, n, p, compactroute.UniformWeights(1, 8)), nil
}

// Dynamic reports whether the server mutates and rebuilds (a
// kind-built scheme) or serves a frozen file.
func (s *Server) Dynamic() bool { return s.dyn != nil }

// currentScheme resolves the scheme answering queries right now: the
// serving version's in dynamic mode, the loaded one otherwise.
func (s *Server) currentScheme() *compactroute.Scheme {
	if s.dyn != nil {
		return s.dyn.Scheme(s.kind)
	}
	return s.scheme
}

// Scheme returns the scheme answering queries right now. In dynamic
// mode it is bound to the serving version and stays valid — on its
// version — across later swaps.
func (s *Server) Scheme() *compactroute.Scheme { return s.currentScheme() }

// Start launches the background rebuild worker (dynamic mode only; a
// no-op otherwise, and idempotent). The async POST /v1/rebuild flow
// and the RebuildAfter auto-trigger are queued onto this worker, so a
// dynamic Server that skips Start answers 202 without ever rebuilding.
//
// The worker lives until ctx is canceled or Close is called,
// whichever comes first — the owner's lifecycle context (routed hands
// in its signal context) is what lets shutdown abort an in-flight
// rebuild instead of waiting out a long build.
func (s *Server) Start(ctx context.Context) {
	s.started.Do(func() {
		if s.dyn == nil {
			close(s.loopDone)
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		s.loopCancel = cancel
		go s.rebuildLoop(ctx)
	})
}

// Close stops the background rebuild worker — canceling a rebuild in
// flight — and waits for it to exit. It does not wait for in-flight
// HTTP requests (Drain does) and is safe to call more than once, with
// or without Start.
func (s *Server) Close() {
	s.closed.Do(func() { close(s.done) })
	// Ensure loopDone has an owner even when Start was never called;
	// when it was, this Do is a no-op and loopCancel is visible (the
	// Once is the memory barrier).
	s.started.Do(func() { close(s.loopDone) })
	if s.loopCancel != nil {
		s.loopCancel()
	}
	<-s.loopDone
}

// Drain flips the server into lame-duck mode — every new request,
// health checks included, answers 503 with Retry-After — and waits for
// the in-flight requests to finish, or for ctx to expire (returning
// its error with requests still running). Draining is one-way.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Handler returns the HTTP surface: the /v1 routes (plus deprecated
// unversioned aliases) behind the drain gate.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Increment-before-check pairs with Drain's store-then-poll:
		// any request admitted here is visible to the drain poll.
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			HTTPError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Mutate validates and appends topology mutations atomically (all or
// none), returning the sequence number of the last one. Accepted
// transient failure/recovery events are fanned into the repair layer
// in the same critical section — and the result cache purged — so a
// route admitted after Mutate returns can neither cross a link it
// just learned is dead nor be served a cached answer that does. A
// static server wraps ErrStatic.
func (s *Server) Mutate(ms ...compactroute.Mutation) (uint64, error) {
	if s.dyn == nil {
		return 0, fmt.Errorf("server: mutate: %w", ErrStatic)
	}
	s.muteMu.Lock()
	defer s.muteMu.Unlock()
	seq, err := s.dyn.Apply(ms...)
	if err != nil {
		return seq, err
	}
	if s.observeFaults(ms) {
		s.pool.Purge()
	}
	return seq, nil
}

// observeFaults projects an accepted batch's fault events into the
// repair layer, reporting whether the overlay changed (cached results
// are stale the moment it does). Fault transitions land in the event
// journal here — the one place every accepted transition passes
// through. Caller holds muteMu.
func (s *Server) observeFaults(ms []compactroute.Mutation) bool {
	changed := false
	for _, m := range ms {
		switch m.Op {
		case compactroute.OpFailEdge:
			s.repair.FailEdge(m.U, m.V)
			s.journal.Record("fault", fmt.Sprintf("failedge %d-%d", m.U, m.V))
			changed = true
		case compactroute.OpRecoverEdge:
			s.repair.RecoverEdge(m.U, m.V)
			s.journal.Record("fault", fmt.Sprintf("recoveredge %d-%d", m.U, m.V))
			changed = true
		case compactroute.OpFailNode:
			s.repair.FailNode(m.Name)
			s.journal.Record("fault", fmt.Sprintf("failnode %d", m.Name))
			changed = true
		case compactroute.OpRecoverNode:
			s.repair.RecoverNode(m.Name)
			s.journal.Record("fault", fmt.Sprintf("recovernode %d", m.Name))
			changed = true
		case compactroute.OpRemoveEdge:
			if s.repair.DropEdge(m.U, m.V) {
				changed = true
			}
		}
	}
	return changed
}

// Rebuild synchronously replays the pending mutations, rebuilds every
// configured kind, and hot-swaps the new version in (serialized with
// the background worker). A static server wraps ErrStatic.
func (s *Server) Rebuild(ctx context.Context) (compactroute.VersionInfo, error) {
	if s.dyn == nil {
		return compactroute.VersionInfo{}, fmt.Errorf("server: rebuild: %w", ErrStatic)
	}
	return s.dyn.Rebuild(ctx)
}

// Stage runs the first half of a two-phase rebuild: build the next
// version without swapping it in. A static server wraps ErrStatic.
func (s *Server) Stage(ctx context.Context) (compactroute.VersionInfo, error) {
	if s.dyn == nil {
		return compactroute.VersionInfo{}, fmt.Errorf("server: stage: %w", ErrStatic)
	}
	return s.dyn.Stage(ctx)
}

// SwapTo commits the staged version named by id (the second half of a
// two-phase rebuild); committing the serving version's ID is a no-op.
// A mismatch wraps compactroute.ErrVersionSkew; a static server wraps
// ErrStatic.
func (s *Server) SwapTo(id uint64) (compactroute.VersionInfo, error) {
	if s.dyn == nil {
		return compactroute.VersionInfo{}, fmt.Errorf("server: swap: %w", ErrStatic)
	}
	return s.dyn.SwapTo(id)
}

// Version returns the serving version's lineage; ok is false for a
// static server (which has no version history).
func (s *Server) Version() (v compactroute.VersionInfo, ok bool) {
	if s.dyn == nil {
		return compactroute.VersionInfo{}, false
	}
	return s.dyn.Version(), true
}

// DynStats is the dynamic-serving block of Stats.
type DynStats struct {
	Version     uint64  `json:"version"`
	Staged      *uint64 `json:"staged,omitempty"` // staged-but-uncommitted version, if any
	Pending     uint64  `json:"pending"`
	Mutations   uint64  `json:"mutations"` // mutation log length
	Swaps       uint64  `json:"swaps"`
	LastPauseNs int64   `json:"lastPauseNs"`
	MaxPauseNs  int64   `json:"maxPauseNs"`
}

// Stats embeds the pool counters (flattened, the pre-dynamic shape)
// plus the optional dynamic block.
type Stats struct {
	serve.Stats
	Dynamic *DynStats         `json:"dynamic,omitempty"`
	Faults  *serve.FaultStats `json:"faults,omitempty"`
}

// Stats returns a point-in-time snapshot of the serving counters.
func (s *Server) Stats() Stats {
	out := Stats{Stats: s.pool.Stats()}
	if s.dyn != nil {
		v := s.dyn.Version()
		swaps, last, max := s.dyn.SwapStats()
		pending := s.dyn.Pending()
		out.Dynamic = &DynStats{
			Version:     v.ID,
			Pending:     pending,
			Mutations:   v.MutTo + pending,
			Swaps:       swaps,
			LastPauseNs: int64(last),
			MaxPauseNs:  int64(max),
		}
		if sv, ok := s.dyn.Staged(); ok {
			id := sv.ID
			out.Dynamic.Staged = &id
		}
		fs := s.repair.Stats()
		out.Faults = &fs
	}
	return out
}

// rebuildLoop is the background rebuild goroutine: triggers arrive
// from POST /v1/rebuild (with an optional reply channel for ?wait=1)
// and from the RebuildAfter auto-trigger; rebuilds run one at a time
// off the serving path. ctx is the worker's lifecycle (canceled by
// Close or the owner's context): it aborts an in-flight rebuild so
// shutdown never waits out a long build.
func (s *Server) rebuildLoop(ctx context.Context) {
	defer close(s.loopDone)
	for {
		select {
		case <-s.done:
			return
		case <-ctx.Done():
			return
		case reply := <-s.rebuildReq:
			before := s.dyn.Version().ID
			t0 := time.Now()
			v, err := s.dyn.Rebuild(ctx)
			switch {
			case err != nil:
				s.logf("server: rebuild failed (old version keeps serving): %v", err)
				s.journal.Record("rebuild-failed", err.Error())
			case v.ID == before:
				s.logf("server: rebuild no-op (version %d already current, nothing pending)", v.ID)
			default:
				_, pause, _ := s.dyn.SwapStats()
				s.logf("server: swapped in version %d (mutations %d..%d, build %v, pause %v, total %v)",
					v.ID, v.MutFrom, v.MutTo, v.BuildWall.Round(time.Microsecond),
					pause, time.Since(t0).Round(time.Microsecond))
			}
			if reply != nil {
				reply <- rebuildReply{v: v, err: err}
			}
			// Mutations can land mid-rebuild; honor the auto-trigger
			// for whatever is still pending.
			s.maybeAutoRebuild()
		}
	}
}

// triggerRebuild enqueues a rebuild, returning false when one is
// already queued (the queued run will absorb this caller's mutations
// too — the log is sealed at rebuild time, not trigger time).
func (s *Server) triggerRebuild(reply chan rebuildReply) bool {
	select {
	case s.rebuildReq <- reply:
		return true
	default:
		return false
	}
}

// maybeAutoRebuild enqueues a rebuild when the pending backlog crosses
// the RebuildAfter threshold.
func (s *Server) maybeAutoRebuild() {
	if s.cfg.RebuildAfter > 0 && s.dyn.Pending() >= uint64(s.cfg.RebuildAfter) {
		s.triggerRebuild(nil)
	}
}

// toServeResult adapts a facade result to the pool's cached shape.
func toServeResult(res compactroute.Result, err error) (serve.Result, error) {
	if err != nil {
		return serve.Result{}, err
	}
	return serve.Result{
		Delivered:    res.Delivered,
		Cost:         res.Cost,
		Hops:         res.Hops,
		HeaderBits:   res.HeaderBits,
		ShortestCost: res.ShortestCost,
		MetricKnown:  res.MetricKnown,
	}, nil
}
