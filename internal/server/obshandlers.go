package server

import (
	"net/http"
	"strconv"

	"compactroute/internal/obs"
)

// handleMetrics serves the full scrape in Prometheus text format:
// request-level families from the middleware, pool counters, the
// dynamic topology/swap/fault block, and journal/trace counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteText(w, s.metricFamilies()); err != nil {
		s.logf("server: writing metrics: %v", err)
	}
}

// metricFamilies assembles the scrape deterministically: fixed family
// order, sorted label sets within each family.
func (s *Server) metricFamilies() []obs.Family {
	ps := s.pool.Stats()
	fams := s.metrics.Families()
	fams = append(fams,
		obs.Counter(obs.MetricPoolRequestsTotal, "queries admitted by the worker pool", float64(ps.Requests)),
		obs.Counter(obs.MetricPoolHitsTotal, "queries served from the result cache", float64(ps.Hits)),
		obs.Counter(obs.MetricPoolMissesTotal, "queries routed by a worker", float64(ps.Misses)),
		obs.Counter(obs.MetricPoolCoalescedTotal, "queries that joined an identical in-flight computation", float64(ps.Coalesced)),
		obs.Counter(obs.MetricPoolErrorsTotal, "routing errors", float64(ps.Errors)),
		obs.Counter(obs.MetricPoolRejectedTotal, "queries canceled while waiting for a worker or a flight", float64(ps.Rejected)),
		obs.Counter(obs.MetricPoolPurgesTotal, "full result-cache invalidations", float64(ps.Purges)),
		obs.Gauge(obs.MetricPoolInflight, "queries routing right now", float64(ps.InFlight)),
		obs.Gauge(obs.MetricPoolCacheEntries, "result-cache entries resident", float64(ps.CacheLen)),
		obs.Gauge(obs.MetricPoolCacheCapacity, "result-cache configured capacity", float64(ps.CacheCap)),
		obs.Gauge(obs.MetricPoolWorkers, "worker pool size", float64(ps.Workers)),
	)
	if s.dyn != nil {
		v := s.dyn.Version()
		swaps, last, max := s.dyn.SwapStats()
		pending := s.dyn.Pending()
		fs := s.repair.Stats()
		fams = append(fams,
			obs.Gauge(obs.MetricTopologyVersion, "topology version serving right now", float64(v.ID)),
			obs.Counter(obs.MetricMutationsTotal, "mutation log length (applied + pending)", float64(v.MutTo+pending)),
			obs.Gauge(obs.MetricMutationsPending, "mutations awaiting a rebuild", float64(pending)),
			obs.Counter(obs.MetricSwapsTotal, "topology hot swaps committed", float64(swaps)),
			obs.Family{Name: obs.MetricSwapPauseSeconds, Type: "gauge",
				Help: "hot-swap serving pause, last and lifetime max",
				Points: []obs.Point{
					{Labels: []obs.Label{{Name: "window", Value: "last"}}, Value: last.Seconds()},
					{Labels: []obs.Label{{Name: "window", Value: "max"}}, Value: max.Seconds()},
				}},
			obs.Gauge(obs.MetricRebuildWallSeconds, "build wall time of the serving version", v.BuildWall.Seconds()),
			obs.Gauge(obs.MetricFaultDownNodes, "nodes currently down in the fault overlay", float64(fs.DownNodes)),
			obs.Gauge(obs.MetricFaultDownEdges, "edges currently down in the fault overlay", float64(fs.DownEdges)),
			obs.Gauge(obs.MetricFaultDamped, "elements currently flap-damped", float64(fs.Damped)),
		)
	}
	fams = append(fams,
		obs.Counter(obs.MetricTracesSampledTotal, "requests traced (sampled or forced by a propagated ID)", float64(s.tracer.Sampled())),
		s.journal.CountFamily(),
	)
	return fams
}

// handleTrace serves one stored trace by request ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.tracer.Get(id)
	if !ok {
		HTTPError(w, http.StatusNotFound, "no stored trace %q (ring may have evicted it)", id)
		return
	}
	WriteJSON(w, v)
}

// handleTracesRecent serves the newest stored traces (?n=, default
// 32, capped at the ring size).
func (s *Server) handleTracesRecent(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			HTTPError(w, http.StatusBadRequest, "bad n: %q", q)
			return
		}
		n = v
	}
	traces := s.tracer.Recent(n)
	if traces == nil {
		traces = []obs.TraceView{}
	}
	WriteJSON(w, map[string]any{"traces": traces})
}

// handleEvents serves the bounded event journal: swaps, fault
// transitions, rebuild failures — oldest first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events := s.journal.Events()
	if events == nil {
		events = []obs.Event{}
	}
	WriteJSON(w, map[string]any{"events": events})
}
