package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/internal/graph"
)

// buildDynamic boots the dynamic serving surface over a fresh
// generated topology, exactly as `routed -scheme <kind>` does, with
// the background rebuild worker armed.
func buildDynamic(t *testing.T, kind string, n int, rebuildAfter int) (*Server, *compactroute.Network) {
	t.Helper()
	srv, err := New(Config{
		Scheme: kind, N: n, K: 2, Seed: 11, SFactor: 0.5,
		Workers: 4, CacheSize: 1 << 10, RebuildAfter: rebuildAfter,
		Logf: discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(t.Context())
	t.Cleanup(srv.Close)
	// The base version's network — the starting point for replays.
	return srv, srv.Scheme().Network()
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(ts.URL+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestStaticServerRejectsMutations: file-loaded schemes answer 409 on
// every dynamic endpoint.
func TestStaticServerRejectsMutations(t *testing.T) {
	srv, _ := buildStatic(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/mutate", "/v1/rebuild", "/v1/swap", "/mutate", "/rebuild"} {
		resp, body := postJSON(t, ts, path, compactroute.MutSetWeight(1, 2, 3))
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on static scheme: %d %s", path, resp.StatusCode, body)
		}
	}
}

// TestMutateValidation: bad JSON is 400, a semantically invalid
// mutation is 422 and atomically rejected.
func TestMutateValidation(t *testing.T) {
	srv, net := buildDynamic(t, "fulltable", 60, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	g := net.Graph()
	// Batch with one invalid member: nothing applies.
	resp, body := postJSON(t, ts, "/v1/mutate", []compactroute.Mutation{
		compactroute.MutAddEdge(g.Name(0), g.Name(1), 2),
		compactroute.MutAddEdge(0xdeaddead, g.Name(1), 2), // unknown node
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch: %d %s", resp.StatusCode, body)
	}
	if got := srv.dyn.Pending(); got != 0 {
		t.Fatalf("invalid batch applied %d mutations", got)
	}
	// A valid single mutation (bare object, not array) applies.
	resp, body = postJSON(t, ts, "/v1/mutate", compactroute.MutSetWeight(g.Name(0), firstNeighbor(net), 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid mutate: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Applied int    `json:"applied"`
		Seq     uint64 `json:"seq"`
		Pending uint64 `json:"pending"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Applied != 1 || out.Seq != 1 || out.Pending != 1 {
		t.Fatalf("mutate response %+v", out)
	}
}

func firstNeighbor(net *compactroute.Network) uint64 {
	g := net.Graph()
	var name uint64
	g.Neighbors(0, func(e graph.Edge) bool {
		name = g.Name(e.To)
		return false
	})
	return name
}

// TestEndToEndChurn is the acceptance scenario: ≥100 mutations arrive
// over POST /v1/mutate while concurrent clients replay queries and
// rebuilds are triggered over HTTP. Zero requests may fail, the swap
// pause must stay under a millisecond, and after the final swap the
// served routes must be bit-identical to a cold build of the final
// graph.
func TestEndToEndChurn(t *testing.T) {
	const nodes = 110
	srv, net := buildDynamic(t, "fulltable", nodes, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()
	muts, err := compactroute.GenerateMutations(net, 120, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent query replay over base names (present in every
	// version): every response must be 200 and delivered.
	stop := make(chan struct{})
	var queries, failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % nodes))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % nodes))
				resp, err := client.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, src, dst))
				if err != nil {
					failures.Add(1)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"delivered":true`)) {
					t.Logf("query %d→%d: %d %s", src, dst, resp.StatusCode, body)
					failures.Add(1)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// Churn: 120 mutations in batches of 10, a synchronous rebuild
	// every 3 batches (4 rebuilds total).
	applied := 0
	for b := 0; b < 12; b++ {
		resp, body := postJSON(t, ts, "/v1/mutate", muts[b*10:(b+1)*10])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate batch %d: %d %s", b, resp.StatusCode, body)
		}
		applied += 10
		if (b+1)%3 == 0 {
			resp, body := postJSON(t, ts, "/v1/rebuild?wait=1", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("rebuild after batch %d: %d %s", b, resp.StatusCode, body)
			}
			var v compactroute.VersionInfo
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatal(err)
			}
			if v.MutTo != uint64(applied) {
				t.Fatalf("rebuild sealed at %d, want %d", v.MutTo, applied)
			}
		}
	}
	// Let the replay observe the final version, then stop it.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d churn-time queries failed", failures.Load(), queries.Load()+failures.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during churn")
	}

	// The daemon reports the final version and a sub-millisecond pause.
	resp, body := postJSON(t, ts, "/v1/rebuild?wait=1", nil) // no-op: nothing pending
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final rebuild: %d %s", resp.StatusCode, body)
	}
	st := srv.Stats()
	if st.Dynamic == nil || st.Dynamic.Version != 4 || st.Dynamic.Pending != 0 || st.Dynamic.Swaps != 4 {
		t.Fatalf("dynamic stats: %+v", st.Dynamic)
	}
	if st.Dynamic.Mutations != 120 {
		t.Fatalf("dynamic stats log length %d, want 120", st.Dynamic.Mutations)
	}
	if st.Dynamic.MaxPauseNs <= 0 || st.Dynamic.MaxPauseNs >= int64(time.Millisecond) {
		t.Fatalf("max swap pause %v, want (0, 1ms)", time.Duration(st.Dynamic.MaxPauseNs))
	}

	// Post-swap routes are bit-identical to a cold build of the final
	// graph: same delivery, cost, hops, and header bits for a full
	// strided sample, queried over HTTP against the live daemon.
	finalNet, err := compactroute.ReplayNetwork(net, muts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := compactroute.Build(finalNet, compactroute.Config{Kind: "fulltable", K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fg := finalNet.Graph()
	client := ts.Client()
	checked := 0
	for s := 0; s < fg.N(); s += 5 {
		for d := 1; d < fg.N(); d += 7 {
			src, dst := fg.Name(compactroute.NodeID(s)), fg.Name(compactroute.NodeID(d))
			want, err := cold.RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, src, dst))
			if err != nil {
				t.Fatal(err)
			}
			var got RouteResponse
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits {
				t.Fatalf("route %d→%d diverged from cold build: live %+v cold %+v", src, dst, got, want)
			}
			if got.Version == nil || *got.Version != 4 {
				t.Fatalf("route %d→%d version %v, want 4", src, dst, got.Version)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no routes checked against the cold build")
	}
}

// TestRebuildWaitParamIsBoolean: ?wait=0 (and garbage) takes the
// async 202 branch with an application/json body; only an affirmative
// value blocks for the outcome.
func TestRebuildWaitParamIsBoolean(t *testing.T) {
	srv, _ := buildDynamic(t, "fulltable", 50, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{"", "?wait=0", "?wait=false", "?wait=nope", "?stage=0"} {
		resp, _ := postJSON(t, ts, "/v1/rebuild"+q, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("rebuild%s: %d, want 202", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("rebuild%s content type %q", q, ct)
		}
	}
	resp, body := postJSON(t, ts, "/v1/rebuild?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild?wait=1: %d %s", resp.StatusCode, body)
	}
}

// TestAutoRebuild: RebuildAfter triggers the background rebuild once
// the pending backlog crosses the threshold.
func TestAutoRebuild(t *testing.T) {
	srv, net := buildDynamic(t, "fulltable", 60, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	muts, err := compactroute.GenerateMutations(net, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts, "/v1/mutate", muts); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := srv.dyn.Version(); v.ID >= 1 && srv.dyn.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto rebuild never happened (version %d, pending %d)",
				srv.dyn.Version().ID, srv.dyn.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDynamicHealthz: the health endpoint reports the live version and
// the log length the cluster's re-admission check compares.
func TestDynamicHealthz(t *testing.T) {
	srv, net := buildDynamic(t, "tz", 50, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, body := postJSON(t, ts, "/v1/mutate", compactroute.MutSetWeight(net.Graph().Name(0), firstNeighbor(net), 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h["dynamic"] != true || h["version"] != float64(0) || h["kind"] != "tz" {
		t.Fatalf("healthz: %+v", h)
	}
	if h["pending"] != float64(1) || h["mutations"] != float64(1) {
		t.Fatalf("healthz log fields: %+v", h)
	}
}

// TestStageAndSwap drives the two-phase cut-over over HTTP: stage
// builds without publishing, a wrong commit is a 409, the right commit
// publishes, and committing the serving ID again is idempotent.
func TestStageAndSwap(t *testing.T) {
	srv, net := buildDynamic(t, "fulltable", 60, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()

	if resp, body := postJSON(t, ts, "/v1/mutate", compactroute.MutSetWeight(g.Name(0), firstNeighbor(net), 4)); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}

	// Stage: the expensive half runs, nothing publishes.
	resp, body := postJSON(t, ts, "/v1/rebuild?stage=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage: %d %s", resp.StatusCode, body)
	}
	var staged compactroute.VersionInfo
	if err := json.Unmarshal(body, &staged); err != nil {
		t.Fatal(err)
	}
	if staged.ID != 1 {
		t.Fatalf("staged version %d, want 1", staged.ID)
	}
	if v, _ := srv.Version(); v.ID != 0 {
		t.Fatalf("stage published: serving %d", v.ID)
	}
	st := srv.Stats()
	if st.Dynamic.Staged == nil || *st.Dynamic.Staged != 1 {
		t.Fatalf("stats staged = %v, want 1", st.Dynamic.Staged)
	}

	// Committing the wrong ID is version skew: 409, serving untouched.
	resp, body = postJSON(t, ts, "/v1/swap", map[string]uint64{"version": 7})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("swap wrong id: %d %s", resp.StatusCode, body)
	}
	if v, _ := srv.Version(); v.ID != 0 {
		t.Fatalf("failed swap published: serving %d", v.ID)
	}

	// Committing the staged ID publishes it.
	resp, body = postJSON(t, ts, "/v1/swap", map[string]uint64{"version": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: %d %s", resp.StatusCode, body)
	}
	if v, _ := srv.Version(); v.ID != 1 {
		t.Fatalf("serving %d after swap, want 1", v.ID)
	}
	// Idempotent retry of the serving ID.
	resp, body = postJSON(t, ts, "/v1/swap", map[string]uint64{"version": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent swap: %d %s", resp.StatusCode, body)
	}
	// A commit with nothing staged and a foreign ID stays 409.
	resp, body = postJSON(t, ts, "/v1/swap", map[string]uint64{"version": 9})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("swap foreign id: %d %s", resp.StatusCode, body)
	}
	// Missing version field: caller error.
	resp, body = postJSON(t, ts, "/v1/swap", map[string]string{"nope": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("swap without version: %d %s", resp.StatusCode, body)
	}
}
