package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
)

// TestUnreachableStatusPinned pins the HTTP mapping for the fault
// overlay's refusal: a route blocked by transient failures is a bad
// gateway (502) — the serving tier is healthy, the modeled network
// path is not — and the mapping must survive wrapping.
func TestUnreachableStatusPinned(t *testing.T) {
	if got := StatusFor(compactroute.ErrUnreachable); got != http.StatusBadGateway {
		t.Fatalf("StatusFor(ErrUnreachable) = %d, want %d", got, http.StatusBadGateway)
	}
	wrapped := fmt.Errorf("serve: route 1→2: %w", compactroute.ErrUnreachable)
	if got := StatusFor(wrapped); got != http.StatusBadGateway {
		t.Fatalf("StatusFor(wrapped ErrUnreachable) = %d, want %d", got, http.StatusBadGateway)
	}
}

// TestFailedElementReturns502 drives the fault overlay end-to-end over
// HTTP: failing the destination makes the route a 502 with the fault
// counters visible in healthz, and recovery restores the 200 — no
// rebuild in between, because failures are views, not topology.
func TestFailedElementReturns502(t *testing.T) {
	srv, net := buildDynamic(t, "fulltable", 50, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()
	src, dst := g.Name(0), g.Name(1)

	routeStatus := func() int {
		t.Helper()
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, src, dst))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := routeStatus(); got != http.StatusOK {
		t.Fatalf("healthy route: %d", got)
	}
	if resp, body := postJSON(t, ts, "/v1/mutate", compactroute.MutFailNode(dst)); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail node: %d %s", resp.StatusCode, body)
	}
	if got := routeStatus(); got != http.StatusBadGateway {
		t.Fatalf("route to a down node: %d, want 502", got)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h["downNodes"] != float64(1) || h["downEdges"] != float64(0) {
		t.Fatalf("healthz fault fields: %+v", h)
	}
	if resp, body := postJSON(t, ts, "/v1/mutate", compactroute.MutRecoverNode(dst)); resp.StatusCode != http.StatusOK {
		t.Fatalf("recover node: %d %s", resp.StatusCode, body)
	}
	if got := routeStatus(); got != http.StatusOK {
		t.Fatalf("route after recovery: %d", got)
	}
}

// TestFaultHammer is the PR's -race acceptance test: concurrent
// clients replay queries through the serving pool while a failure
// trace is injected through Mutate and rebuilds hot-swap versions
// underneath them. Every query must either deliver or fail with the
// pinned ErrUnreachable mapping — no panics, no torn reads, no other
// error — and after the recovery tail quiesces the overlay, the
// server serves every pair again and leaks no goroutines.
func TestFaultHammer(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	srv, err := New(Config{
		Scheme: "fulltable", N: 90, K: 2, Seed: 11, SFactor: 0.5,
		Workers: 4, CacheSize: 256, Logf: discardLogf,
		BestOfBoth: true, DampPenalty: 4, DampHalfLife: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	g := srv.Scheme().Network().Graph()

	// Fail-only profile: the graph never changes, so every base name
	// stays valid across rebuilds and the queriers need no coordination
	// with the injector. Rebuilds still seal + swap real versions (the
	// transient ops replay under existence-only validation).
	trace, recovery, err := compactroute.GenerateFaultMutations(
		srv.Scheme().Network(), 80, 7,
		compactroute.FaultProfile{FailEdge: 3, FailNode: 1, Recover: 2})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, refused atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % g.N()))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % g.N()))
				_, err := srv.pool.Route(context.Background(), src, dst)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, compactroute.ErrUnreachable):
					if StatusFor(err) != http.StatusBadGateway {
						t.Errorf("refusal maps to %d, want 502: %v", StatusFor(err), err)
						return
					}
					refused.Add(1)
				default:
					t.Errorf("route %d→%d: unexpected error under faults: %v", src, dst, err)
					return
				}
			}
		}(w)
	}

	// On a single-CPU runner the injector can finish (and close stop)
	// before the queriers' first iteration ever runs; wait for one
	// completed query so the hammer actually overlaps the injection.
	// The overlay is still empty here, so that query delivered.
	for served.Load()+refused.Load() == 0 {
		runtime.Gosched()
	}

	// Inject the trace in small batches, hot-swapping a rebuild every
	// few batches so outages span version boundaries mid-query.
	for i := 0; i < len(trace); i += 4 {
		end := min(i+4, len(trace))
		if _, err := srv.Mutate(trace[i:end]...); err != nil {
			t.Fatal(err)
		}
		if (i/4)%5 == 4 {
			if _, err := srv.Rebuild(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Quiesce: recover every open outage, then one final swap.
	if len(recovery) > 0 {
		if _, err := srv.Mutate(recovery...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if served.Load() == 0 {
		t.Fatal("no queries delivered during the hammer")
	}
	t.Logf("hammer: %d delivered, %d refused (502)", served.Load(), refused.Load())

	// Quiescence: the overlay is empty and a strided sample over the
	// whole graph serves 100% — no fault may be remembered as topology.
	st := srv.Stats()
	if st.Faults == nil || st.Faults.DownNodes != 0 || st.Faults.DownEdges != 0 {
		t.Fatalf("fault view not empty after recovery tail: %+v", st.Faults)
	}
	for s := 0; s < g.N(); s += 7 {
		for d := 1; d < g.N(); d += 11 {
			res, err := srv.pool.Route(context.Background(), g.Name(compactroute.NodeID(s)), g.Name(compactroute.NodeID(d)))
			if err != nil {
				t.Fatalf("post-quiescence route %d→%d: %v", s, d, err)
			}
			if !res.Delivered {
				t.Fatalf("post-quiescence route %d→%d not delivered", s, d)
			}
		}
	}

	srv.Close()
	cancel()
	// Everything the hammer spawned — workers, rebuild loop, reverse
	// walks — must be gone (same tolerance as lifecycle_test.go).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
