package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/serve"
)

// discardLogf keeps test output quiet.
func discardLogf(string, ...any) {}

// buildStatic builds a small scheme, round-trips it through the codec
// (the exact path the daemon takes at startup), and wraps it in the
// serving tier.
func buildStatic(t *testing.T, cfg Config) (*Server, *compactroute.Network) {
	t.Helper()
	net := compactroute.RandomNetwork(7, 90, 0.07, compactroute.UniformWeights(1, 6))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logf = discardLogf
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1 << 10
	}
	srv := newStatic(loaded, cfg)
	t.Cleanup(srv.Close)
	return srv, net
}

func TestServerRoutesLoadedScheme(t *testing.T) {
	srv, net := buildStatic(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := net.Graph()
	for u := 0; u < net.N(); u += 13 {
		for v := 0; v < net.N(); v += 17 {
			url := fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v)))
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var rr RouteResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("route %d→%d: status %d", u, v, resp.StatusCode)
			}
			if !rr.Delivered {
				t.Fatalf("route %d→%d not delivered", u, v)
			}
			if rr.Version != nil {
				t.Fatalf("static route %d→%d carries a version: %+v", u, v, rr)
			}
		}
	}
}

func TestServerConcurrentLoad(t *testing.T) {
	srv, net := buildStatic(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := net.Graph()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				u := compactroute.NodeID((w*31 + i) % net.N())
				v := compactroute.NodeID((w*17 + i*13) % net.N())
				resp, err := http.Get(fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, g.Name(u), g.Name(v)))
				if err != nil {
					errs <- err
					return
				}
				var rr RouteResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if !rr.Delivered {
					errs <- fmt.Errorf("route %d→%d not delivered", u, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 16*60 {
		t.Fatalf("stats recorded %d requests, want %d", st.Requests, 16*60)
	}
	if st.Errors != 0 {
		t.Fatalf("stats recorded %d errors", st.Errors)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	srv, _ := buildStatic(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		q    string
		want int
	}{
		{"/v1/route", http.StatusBadRequest},                               // missing both
		{"/v1/route?src=1", http.StatusBadRequest},                         // missing dst
		{"/v1/route?src=zzz&dst=1", http.StatusBadRequest},                 // unparsable
		{"/v1/route?src=0o17&dst=1", http.StatusBadRequest},                // no octal
		{"/v1/route?src=1&dst=0xFFFFFFFF", http.StatusUnprocessableEntity}, // unknown name
		{"/v1/resolve?src=zzz&dst=1", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.q, resp.StatusCode, tc.want)
		}
	}
}

// TestParseNameBases: documented contract is decimal or 0x-hex — in
// particular ParseUint's base-0 octal reading of leading zeros
// ("010" → 8) must not resurface.
func TestParseNameBases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"010", 10, true}, // decimal, NOT octal 8
		{"018", 18, true}, // invalid as octal, fine as decimal
		{"16", 16, true},
		{"0x10", 16, true},
		{"0X1F", 31, true},
		{"0xDEADBEEF", 0xdeadbeef, true},
		{"18446744073709551615", ^uint64(0), true},
		{"", 0, false},
		{"zzz", 0, false},
		{"0x", 0, false},
		{"0xzz", 0, false},
		{"0b101", 0, false}, // no binary
		{"0o17", 0, false},  // no octal, explicit prefix included
		{"1_000", 0, false}, // no digit separators
		{"-1", 0, false},
	} {
		got, err := ParseName(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseName(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseName(%q) = %d, want error", tc.in, got)
		}
	}
}

// TestServer503OnCanceledWait: a request whose context is already
// dead is the daemon being saturated or the caller leaving — a
// retryable 503 with Retry-After, never a 422.
func TestServer503OnCanceledWait(t *testing.T) {
	srv, net := buildStatic(t, Config{})
	g := net.Graph()
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET",
		fmt.Sprintf("/v1/route?src=%d&dst=%d", g.Name(0), g.Name(1)), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// An unknown name through the same path stays a 422.
	req = httptest.NewRequest("GET", "/v1/route?src=1&dst=2", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown name: status %d, want 422", rec.Code)
	}
}

// TestMetricOrderingUnreachableStaleness: Config.Metric is applied
// strictly before the pool exists, so a server started with Metric can
// never cache a ShortestCost=0 result (the staleness invariant
// documented in internal/serve).
func TestMetricOrderingUnreachableStaleness(t *testing.T) {
	srv, net := buildStatic(t, Config{Metric: true, Workers: 2, CacheSize: 64})
	if !srv.Scheme().Network().HasMetric() {
		t.Fatal("newStatic(Metric) returned before the metric existed — stale cache entries are reachable")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()
	// Route the same cross-node pair twice: the second answer is the
	// cached entry, and it must carry the metric too.
	url := fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, g.Name(0), g.Name(1))
	for i, want := range []string{"cold", "cached"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var rr RouteResponse
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rr.ShortestCost <= 0 || rr.Stretch < 1 {
			t.Fatalf("%s response %d has no stretch: %+v", want, i, rr)
		}
	}
	st := srv.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one cold miss and one cached hit, got %+v", st)
	}
}

// TestServeEveryRegistryKind: server.New must serve each registry kind
// end-to-end (dynamically, as routed does) — build, answer /v1/route
// with a delivered result, and identify the kind on /v1/healthz.
func TestServeEveryRegistryKind(t *testing.T) {
	for _, kind := range compactroute.Kinds() {
		t.Run(kind, func(t *testing.T) {
			srv, err := New(Config{Scheme: kind, N: 70, K: 2, Seed: 9, SFactor: 0.5,
				Workers: 2, CacheSize: 64, Logf: discardLogf})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			if !srv.Dynamic() {
				t.Fatalf("kind %s did not serve dynamically", kind)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			g := srv.Scheme().Network().Graph()
			url := fmt.Sprintf("%s/v1/route?src=%d&dst=%d", ts.URL, g.Name(0), g.Name(compactroute.NodeID(g.N()-1)))
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var rr RouteResponse
			err = json.NewDecoder(resp.Body).Decode(&rr)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || !rr.Delivered {
				t.Fatalf("kind %s route: status %d, %+v, %v", kind, resp.StatusCode, rr, err)
			}
			if rr.Version == nil || *rr.Version != 0 {
				t.Fatalf("kind %s route version = %v, want 0", kind, rr.Version)
			}

			hresp, err := http.Get(ts.URL + "/v1/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h struct {
				Kind string `json:"kind"`
			}
			err = json.NewDecoder(hresp.Body).Decode(&h)
			hresp.Body.Close()
			if err != nil || h.Kind != kind {
				t.Fatalf("healthz kind = %q, want %q (%v)", h.Kind, kind, err)
			}
		})
	}
}

// TestNewSchemeFileFallback: a Config.Scheme that is not a kind loads
// as a file; garbage errors mentioning the registry.
func TestNewSchemeFileFallback(t *testing.T) {
	net := compactroute.RandomNetwork(3, 60, 0.1, compactroute.UniformWeights(1, 4))
	s, err := compactroute.NewScheme(net, compactroute.Options{K: 2, Seed: 4, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.crsc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := compactroute.Save(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Scheme: path, Workers: 2, CacheSize: 64, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Dynamic() || srv.Scheme().Kind() != "paper" {
		t.Fatalf("New(file) dynamic=%v kind=%q", srv.Dynamic(), srv.Scheme().Kind())
	}
	if _, ok := srv.Version(); ok {
		t.Fatal("static server reports a version")
	}

	_, err = New(Config{Scheme: filepath.Join(t.TempDir(), "nope.crsc"), Logf: discardLogf})
	if err == nil || !strings.Contains(err.Error(), "paper") {
		t.Fatalf("nonexistent file: err = %v, want registry kinds listed", err)
	}
	if _, err := New(Config{Logf: discardLogf}); err == nil {
		t.Fatal("empty Config.Scheme accepted")
	}
}

func TestServerHealthz(t *testing.T) {
	srv, net := buildStatic(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Metric bool   `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != net.N() {
		t.Fatalf("healthz %+v", h)
	}
	if h.Metric {
		t.Fatal("loaded scheme should start without a metric")
	}
}

// TestResolveEndpoint: /v1/resolve reports name existence and the
// shortest distance without walking a route — unknown names are data,
// not errors.
func TestResolveEndpoint(t *testing.T) {
	srv, net := buildStatic(t, Config{Metric: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := net.Graph()

	get := func(src, dst string) ResolveResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/resolve?src=%s&dst=%s", ts.URL, src, dst))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resolve %s→%s: status %d", src, dst, resp.StatusCode)
		}
		var rr ResolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	rr := get(fmt.Sprint(g.Name(0)), fmt.Sprint(g.Name(1)))
	if !rr.SrcKnown || !rr.DstKnown || !rr.MetricKnown || rr.ShortestCost <= 0 {
		t.Fatalf("resolve known pair: %+v", rr)
	}
	rr = get(fmt.Sprint(g.Name(0)), "0xFFFFFFFF")
	if !rr.SrcKnown || rr.DstKnown || rr.ShortestCost != 0 {
		t.Fatalf("resolve unknown dst: %+v", rr)
	}
}
