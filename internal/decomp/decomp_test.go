package decomp

import (
	"math"
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

func build(t *testing.T, g *graph.Graph, k int) *Decomposition {
	t.Helper()
	d, err := Build(g, sssp.AllPairs(g), Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRangesMonotoneAndGrowth(t *testing.T) {
	g := gen.Gnp(1, 120, 0.04, gen.Uniform(1, 8))
	k := 3
	d := build(t, g, k)
	growth := math.Pow(float64(g.N()), 1/float64(k))
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		prevSize := 1
		for i := 0; i <= k; i++ {
			a, next := d.Range(u, i), d.Range(u, i+1)
			if next < a {
				t.Fatalf("ranges not monotone at u=%d i=%d", u, i)
			}
			size := len(d.A(u, i))
			if i > 0 && a < d.Cap() && next < d.Cap() {
				// Growth: |A(u,i)| ≥ n^{1/k}·|A(u,i-1)| for uncapped.
				if float64(size) < growth*float64(prevSize)-1e-9 {
					t.Fatalf("u=%d i=%d: |A|=%d < growth·prev=%v", u, i, size, growth*float64(prevSize))
				}
			}
			prevSize = size
		}
	}
}

func TestRangeMinimality(t *testing.T) {
	// a(u,i+1) must be the *smallest* j with the required population.
	g := gen.Gnp(2, 80, 0.05, gen.Uniform(1, 5))
	k := 2
	d := build(t, g, k)
	growth := math.Pow(float64(g.N()), 1/float64(k))
	all := d.Results()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for i := 0; i < k; i++ {
			sizeA := float64(len(d.A(u, i)))
			next := d.Range(u, i+1)
			if next >= d.Cap() {
				continue
			}
			if float64(all[u].BallSize(d.Radius(next))) < growth*sizeA-1e-9 {
				t.Fatalf("u=%d: a(u,%d)=%d does not satisfy threshold", u, i+1, next)
			}
			if next-1 > d.Range(u, i) {
				if float64(all[u].BallSize(d.Radius(next-1))) >= growth*sizeA {
					t.Fatalf("u=%d: a(u,%d)=%d not minimal", u, i+1, next)
				}
			}
		}
	}
}

func TestAUK_IsWholeGraph(t *testing.T) {
	// On a connected graph A(u,k) must be all of V.
	for _, k := range []int{1, 2, 3, 4} {
		g := gen.Gnp(3, 60, 0.06, gen.Uniform(1, 4))
		d := build(t, g, k)
		for u := graph.NodeID(0); int(u) < g.N(); u++ {
			if len(d.A(u, k)) != g.N() {
				t.Fatalf("k=%d u=%d: |A(u,k)| = %d < n", k, u, len(d.A(u, k)))
			}
		}
	}
}

func TestDenseDefinition(t *testing.T) {
	g := gen.Geometric(4, 70, 0.22)
	k := 3
	d := build(t, g, k)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for i := 0; i < k; i++ { // level k is forced sparse
			gap := d.Range(u, i+1) - d.Range(u, i)
			want := gap > 0 && gap <= 3
			if d.Dense(u, i) != want {
				t.Fatalf("u=%d i=%d: dense=%v but gap=%d", u, i, d.Dense(u, i), gap)
			}
		}
		if d.Dense(u, k) {
			t.Fatal("terminal level classified dense")
		}
	}
}

func TestLemma2HoldsEverywhere(t *testing.T) {
	// Lemma 2 is deterministic — it must hold on every instance.
	cases := []*graph.Graph{
		gen.Gnp(5, 80, 0.06, gen.Uniform(1, 5)),
		gen.Grid(6, 8, 8, gen.Unit()),
		gen.Geometric(7, 60, 0.25),
		gen.AspectLadder(8, 2, 4, 16),
		gen.PrefAttach(9, 80, 2, gen.Unit()),
	}
	for gi, g := range cases {
		for _, k := range []int{2, 3} {
			d := build(t, g, k)
			checked, err := d.VerifyLemma2()
			if err != nil {
				t.Fatalf("graph %d k=%d: %v", gi, k, err)
			}
			_ = checked
		}
	}
}

func TestRangeSetWindow(t *testing.T) {
	g := gen.Gnp(10, 50, 0.08, gen.Uniform(1, 3))
	d := build(t, g, 2)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		// Every a ∈ L(u) must have its window in R(u).
		for i := 0; i <= 2; i++ {
			a := d.Range(u, i)
			for j := a - 4; j <= a+1; j++ {
				if j < 0 || j > d.Cap() {
					continue
				}
				if !d.InRangeSet(u, j) {
					t.Fatalf("u=%d: window index %d of a=%d missing from R(u)", u, j, a)
				}
			}
		}
		// |R(u)| = O(k): window of 6 per range, k+1 ranges.
		if len(d.RangeSet(u)) > 6*(2+1) {
			t.Fatalf("u=%d: |R(u)| = %d too large", u, len(d.RangeSet(u)))
		}
	}
}

func TestSubgraphMembership(t *testing.T) {
	g := gen.Gnp(11, 40, 0.1, gen.Uniform(1, 4))
	d := build(t, g, 2)
	for i := 0; i <= d.Cap(); i += 2 {
		for _, v := range d.Subgraph(i) {
			if !d.InRangeSet(v, i) {
				t.Fatalf("Subgraph(%d) contains %d with i ∉ R(v)", i, v)
			}
		}
	}
}

func TestERadiusTerminalInfinite(t *testing.T) {
	g := gen.Ring(12, 16, gen.Unit())
	k := 2
	d := build(t, g, k)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if !math.IsInf(d.ERadius(u, k), 1) {
			t.Fatal("terminal E radius not infinite")
		}
		if len(d.E(u, k)) != g.N() {
			t.Fatal("terminal E(u,k) must be V")
		}
	}
}

func TestFSubsetOfA(t *testing.T) {
	g := gen.Gnp(13, 60, 0.07, gen.Uniform(1, 6))
	d := build(t, g, 3)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for i := 1; i <= 3; i++ {
			if d.FRadius(u, i) > d.ARadius(u, i) {
				t.Fatalf("F radius exceeds A radius at u=%d i=%d", u, i)
			}
		}
	}
}

func TestCapCoversGraph(t *testing.T) {
	// Radius at the cap must cover the whole graph even divided by 6
	// (terminal-sparse coverage argument).
	g := gen.AspectLadder(14, 2, 3, 20)
	d := build(t, g, 2)
	diam, _ := sssp.Diameter(g)
	if d.Radius(d.Cap())/6 < diam {
		t.Fatalf("cap radius/6 = %v < diameter %v", d.Radius(d.Cap())/6, diam)
	}
}

func TestScaleFreeRangeSetSize(t *testing.T) {
	// The heart of scale-freeness: |R(u)| stays O(k) even when the
	// aspect ratio explodes.
	small := gen.AspectLadder(15, 2, 4, 8)
	big := gen.AspectLadder(15, 2, 4, 38)
	k := 3
	ds := build(t, small, k)
	db := build(t, big, k)
	maxLen := func(d *Decomposition, g *graph.Graph) int {
		m := 0
		for u := graph.NodeID(0); int(u) < g.N(); u++ {
			if l := len(d.RangeSet(u)); l > m {
				m = l
			}
		}
		return m
	}
	ms, mb := maxLen(ds, small), maxLen(db, big)
	bound := 6 * (k + 1)
	if ms > bound || mb > bound {
		t.Fatalf("|R(u)| grew with aspect ratio: %d vs %d (bound %d)", ms, mb, bound)
	}
}

func TestSingleNodeAndTiny(t *testing.T) {
	g1 := gen.Path(16, 1, gen.Unit())
	d, err := Build(g1, sssp.AllPairs(g1), Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.A(0, 2)) != 1 {
		t.Fatal("single node A wrong")
	}
	g2 := gen.Path(17, 2, gen.Unit())
	d2 := build(t, g2, 1)
	if len(d2.A(0, 1)) != 2 {
		t.Fatal("two-node A(u,1) must cover both")
	}
}

func TestMismatchedResultsRejected(t *testing.T) {
	g := gen.Path(18, 4, gen.Unit())
	if _, err := Build(g, nil, Params{K: 2}); err == nil {
		t.Fatal("nil results accepted")
	}
}
