package decomp

import (
	"fmt"

	"compactroute/internal/graph"
)

// Snapshot is the exported persistent form of a Decomposition: the
// ranges, level classes, and range sets of every node, plus the
// normalization scalars. The shortest-path results the decomposition
// was built from are deliberately excluded — they are the expensive
// build-time input persistence exists to avoid recomputing — so a
// rehydrated decomposition answers all range/class queries (Range,
// Dense, RangeSet, Radius, …) but not the ball queries (A, E, F),
// which only the builders use.
type Snapshot struct {
	K        int
	DenseGap int
	MinW     float64
	CapJ     int
	Ranges   [][]int32
	Dense    [][]bool
	RSet     [][]int32
}

// Snapshot captures the decomposition's persistent state.
func (d *Decomposition) Snapshot() *Snapshot {
	return &Snapshot{
		K:        d.k,
		DenseGap: d.denseGap,
		MinW:     d.minW,
		CapJ:     d.capJ,
		Ranges:   d.ranges,
		Dense:    d.dense,
		RSet:     d.rset,
	}
}

// FromSnapshot rehydrates a Decomposition over g without shortest-path
// results (see Snapshot for what that implies).
func FromSnapshot(g *graph.Graph, s *Snapshot) (*Decomposition, error) {
	n := g.N()
	if s.K < 1 {
		return nil, fmt.Errorf("decomp: snapshot k=%d", s.K)
	}
	if len(s.Ranges) != n || len(s.Dense) != n || len(s.RSet) != n {
		return nil, fmt.Errorf("decomp: snapshot sized for %d/%d/%d nodes, graph has %d",
			len(s.Ranges), len(s.Dense), len(s.RSet), n)
	}
	for u := 0; u < n; u++ {
		if len(s.Ranges[u]) != s.K+2 {
			return nil, fmt.Errorf("decomp: node %d has %d ranges, want %d", u, len(s.Ranges[u]), s.K+2)
		}
		if len(s.Dense[u]) != s.K+1 {
			return nil, fmt.Errorf("decomp: node %d has %d classes, want %d", u, len(s.Dense[u]), s.K+1)
		}
	}
	return &Decomposition{
		g:        g,
		k:        s.K,
		denseGap: s.DenseGap,
		minW:     s.MinW,
		capJ:     s.CapJ,
		ranges:   s.Ranges,
		dense:    s.Dense,
		rset:     s.RSet,
	}, nil
}

// HasMetric reports whether the decomposition still holds the
// shortest-path results it was built from (false after rehydration);
// the ball queries A, E, and F require them.
func (d *Decomposition) HasMetric() bool { return d.all != nil }
