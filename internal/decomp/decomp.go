// Package decomp implements §2 of the paper: the decomposition of each
// node's vicinity into a series of balls with combined combinatorial
// and geometric growth, and the classification of levels as dense or
// sparse.
//
// For every node u and level i ∈ {0..k}, the range a(u,i) is defined
// recursively (Definition 1): a(u,0) = 0, and a(u,i+1) is the smallest
// j > 0 with |B(u,2^j)| ≥ n^{1/k}·|A(u,i)|, where A(u,i) = B(u,2^{a(u,i)})
// (and A(u,0) = {u}). Level i is dense when a(u,i) < a(u,i+1) ≤
// a(u,i)+3 (Definition 2), i.e. the next n^{1/k}-fold population jump
// happens within a 2³ radius factor; otherwise it is sparse.
//
// Two deliberate deviations, both documented in DESIGN.md §3:
//
//   - Radii are measured in units of the minimum edge weight (the
//     paper normalizes min_{u≠v} d(u,v) = 1), so radius(j) = w_min·2^j.
//   - When no valid j exists, the paper caps a(u,i+1) at log Δ; we cap
//     at ⌈log₂ Δ⌉+3 and additionally force the top level k to be
//     *terminal-sparse* with E(u,k) = V, which makes the phase
//     iteration provably exhaustive (the paper's Theorem 1 proof
//     tacitly assumes some phase finds the destination).
//
// The package also exposes L(u), the extended range set R(u), the
// subgraph membership sets V_i = {u : i ∈ R(u)} of §3.4, and a
// checker for Lemma 2 (the dense-neighborhood property).
package decomp

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

// Params configures the decomposition.
type Params struct {
	// K is the trade-off parameter k ≥ 1.
	K int
	// DenseGap is the maximum range gap of a dense level (paper: 3).
	DenseGap int
}

func (p *Params) normalize() {
	if p.K < 1 {
		p.K = 1
	}
	if p.DenseGap <= 0 {
		p.DenseGap = 3
	}
}

// Decomposition holds the ranges and level classes of every node.
type Decomposition struct {
	g        *graph.Graph
	all      []*sssp.Result
	k        int
	denseGap int
	minW     float64
	capJ     int // range cap: ⌈log₂ Δ⌉ + DenseGap

	// ranges[u] has k+2 entries: a(u,0..k+1); a(u,k+1) is the capped
	// extension needed to classify level k before terminal-sparse
	// forcing.
	ranges [][]int32
	// dense[u][i] for i ∈ 0..k (level k is always forced sparse).
	dense [][]bool
	// rset[u] is R(u), sorted ascending.
	rset [][]int32
}

// Build computes the decomposition. all must hold one shortest-path
// result per node (sssp.AllPairs output); it is retained for ball
// queries.
func Build(g *graph.Graph, all []*sssp.Result, p Params) (*Decomposition, error) {
	p.normalize()
	if len(all) != g.N() {
		return nil, fmt.Errorf("decomp: got %d shortest-path results for %d nodes", len(all), g.N())
	}
	d := &Decomposition{
		g:        g,
		all:      all,
		k:        p.K,
		denseGap: p.DenseGap,
		minW:     g.MinEdgeWeight(),
	}
	if g.N() == 1 || g.M() == 0 {
		d.minW = 1
	}
	// Aspect ratio over reached pairs; Δ ≥ 1 always.
	maxD := 0.0
	for _, r := range all {
		if rad := r.Radius(); rad > maxD {
			maxD = rad
		}
	}
	aspect := maxD / d.minW
	if aspect < 1 {
		aspect = 1
	}
	d.capJ = int(math.Ceil(math.Log2(aspect))) + p.DenseGap
	if d.capJ < 1 {
		d.capJ = 1
	}
	d.computeRanges()
	d.computeRangeSets()
	return d, nil
}

// Radius converts a range index j to a metric radius.
func (d *Decomposition) Radius(j int) float64 {
	return d.minW * math.Ldexp(1, j)
}

func (d *Decomposition) computeRanges() {
	n := d.g.N()
	growth := math.Pow(float64(n), 1/float64(d.k))
	d.ranges = make([][]int32, n)
	d.dense = make([][]bool, n)
	for u := 0; u < n; u++ {
		r := d.all[u]
		a := make([]int32, d.k+2)
		a[0] = 0
		prevSize := 1 // |A(u,0)| = |{u}|
		for i := 0; i < d.k+1; i++ {
			threshold := growth * float64(prevSize)
			next := int32(-1)
			for j := int(a[i]) + 1; j <= d.capJ; j++ {
				if float64(r.BallSize(d.Radius(j))) >= threshold {
					next = int32(j)
					break
				}
			}
			if next < 0 {
				next = int32(d.capJ) // Definition 1's cap case
			}
			// Keep ranges monotone when already capped.
			if next < a[i] {
				next = a[i]
			}
			a[i+1] = next
			prevSize = r.BallSize(d.Radius(int(a[i+1])))
			if prevSize < 1 {
				prevSize = 1
			}
		}
		d.ranges[u] = a
		dn := make([]bool, d.k+1)
		for i := 0; i <= d.k; i++ {
			gap := a[i+1] - a[i]
			dn[i] = gap > 0 && int(gap) <= d.denseGap
		}
		// Terminal-sparse forcing (DESIGN.md #1): phase k must cover V.
		dn[d.k] = false
		d.dense[u] = dn
	}
}

func (d *Decomposition) computeRangeSets() {
	n := d.g.N()
	d.rset = make([][]int32, n)
	for u := 0; u < n; u++ {
		set := make(map[int32]bool)
		for i := 0; i <= d.k; i++ { // L(u) = {a(u,i) : i ∈ K}
			a := d.ranges[u][i]
			// R(u) = {i ∈ I : ∃a ∈ L(u), −1 ≤ a−i ≤ 4}, i.e. the
			// window [a−4, a+1] clamped to valid indices.
			lo := a - int32(d.denseGap) - 1
			hi := a + 1
			if lo < 0 {
				lo = 0
			}
			if hi > int32(d.capJ) {
				hi = int32(d.capJ)
			}
			for j := lo; j <= hi; j++ {
				set[j] = true
			}
		}
		out := make([]int32, 0, len(set))
		for j := range set {
			out = append(out, j)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		d.rset[u] = out
	}
}

// K returns the parameter k.
func (d *Decomposition) K() int { return d.k }

// Cap returns the range cap (the largest meaningful range index).
func (d *Decomposition) Cap() int { return d.capJ }

// MinWeight returns the normalization unit (minimum edge weight).
func (d *Decomposition) MinWeight() float64 { return d.minW }

// Range returns a(u,i) for i ∈ 0..k+1.
func (d *Decomposition) Range(u graph.NodeID, i int) int {
	return int(d.ranges[u][i])
}

// Dense reports whether level i is dense for u (level k never is; see
// package comment).
func (d *Decomposition) Dense(u graph.NodeID, i int) bool {
	return d.dense[u][i]
}

// RangeSet returns R(u), sorted ascending (do not mutate).
func (d *Decomposition) RangeSet(u graph.NodeID) []int32 { return d.rset[u] }

// InRangeSet reports whether i ∈ R(u).
func (d *Decomposition) InRangeSet(u graph.NodeID, i int) bool {
	rs := d.rset[u]
	p := sort.Search(len(rs), func(x int) bool { return rs[x] >= int32(i) })
	return p < len(rs) && rs[p] == int32(i)
}

// Subgraph returns V_i = {u : i ∈ R(u)} (§3.4), sorted.
func (d *Decomposition) Subgraph(i int) []graph.NodeID {
	var out []graph.NodeID
	for u := 0; u < d.g.N(); u++ {
		if d.InRangeSet(graph.NodeID(u), i) {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// ARadius returns the radius of A(u,i); zero for i = 0.
func (d *Decomposition) ARadius(u graph.NodeID, i int) float64 {
	if i == 0 {
		return 0
	}
	return d.Radius(int(d.ranges[u][i]))
}

// A returns A(u,i) in (distance, name) order.
func (d *Decomposition) A(u graph.NodeID, i int) []graph.NodeID {
	if i == 0 {
		return []graph.NodeID{u}
	}
	return d.all[u].Ball(d.ARadius(u, i))
}

// FRadius returns the radius of F(u,i) = B(u, 2^{a(u,i)-1}).
func (d *Decomposition) FRadius(u graph.NodeID, i int) float64 {
	return d.minW * math.Ldexp(1, int(d.ranges[u][i])-1)
}

// F returns F(u,i), the coverage of a dense-level phase (Lemma 2).
func (d *Decomposition) F(u graph.NodeID, i int) []graph.NodeID {
	return d.all[u].Ball(d.FRadius(u, i))
}

// ERadius returns the radius of E(u,i) = B(u, 2^{a(u,i+1)}/6); +Inf
// at the terminal level k (E(u,k) = V, DESIGN.md #1).
func (d *Decomposition) ERadius(u graph.NodeID, i int) float64 {
	if i >= d.k {
		return math.Inf(1)
	}
	return d.minW * math.Ldexp(1, int(d.ranges[u][i+1])) / 6
}

// E returns E(u,i), the coverage of a sparse-level phase (Lemma 3).
func (d *Decomposition) E(u graph.NodeID, i int) []graph.NodeID {
	return d.all[u].Ball(d.ERadius(u, i))
}

// VerifyLemma2 checks the dense-neighborhood property: for every u,
// every dense level i ≥ 1, and every v ∈ F(u,i), a(u,i) ∈ R(v). It
// returns the number of checked triples and any violation. Lemma 2 is
// deterministic, so violations indicate an implementation bug.
func (d *Decomposition) VerifyLemma2() (checked int, err error) {
	for u := 0; u < d.g.N(); u++ {
		for i := 1; i <= d.k; i++ {
			if !d.Dense(graph.NodeID(u), i) {
				continue
			}
			a := d.Range(graph.NodeID(u), i)
			for _, v := range d.F(graph.NodeID(u), i) {
				checked++
				if !d.InRangeSet(v, a) {
					return checked, fmt.Errorf(
						"decomp: Lemma 2 violated: u=%d i=%d a=%d v=%d R(v)=%v",
						u, i, a, v, d.RangeSet(v))
				}
			}
		}
	}
	return checked, nil
}

// DenseLevelCount returns how many (u, i≥1) pairs are dense — the
// quantity behind the "O(log n) dense scales" argument of §1.2.
func (d *Decomposition) DenseLevelCount() int {
	c := 0
	for u := range d.dense {
		for i := 1; i <= d.k; i++ {
			if d.dense[u][i] {
				c++
			}
		}
	}
	return c
}

// Results exposes the per-node shortest path results the decomposition
// was built from (shared with the enclosing scheme).
func (d *Decomposition) Results() []*sssp.Result { return d.all }
