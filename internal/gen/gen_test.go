package gen

import (
	"math"
	"testing"
	"testing/quick"

	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/xrand"
)

func checkConnected(t *testing.T, g *graph.Graph, what string) {
	t.Helper()
	if !g.Connected() {
		t.Fatalf("%s is not connected (n=%d, m=%d)", what, g.N(), g.M())
	}
}

func TestGnpConnectedAndSized(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		g := Gnp(1, n, 0.05, Unit())
		if g.N() != n {
			t.Fatalf("Gnp n = %d, want %d", g.N(), n)
		}
		checkConnected(t, g, "Gnp")
		if n > 1 && g.M() < n-1 {
			t.Fatalf("Gnp has %d edges, fewer than backbone", g.M())
		}
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(7, 50, 0.1, Uniform(1, 5))
	b := Gnp(7, 50, 0.1, Uniform(1, 5))
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for u := graph.NodeID(0); int(u) < a.N(); u++ {
		if a.Name(u) != b.Name(u) || a.Degree(u) != b.Degree(u) {
			t.Fatal("same seed produced different node data")
		}
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(2, 4, 5, Unit())
	if g.N() != 20 {
		t.Fatalf("grid n = %d", g.N())
	}
	// 4x5 grid: 4*(5-1) + 5*(4-1) = 16+15 = 31 edges
	if g.M() != 31 {
		t.Fatalf("grid m = %d, want 31", g.M())
	}
	checkConnected(t, g, "Grid")
	// Unweighted distances: corner to corner = (rows-1)+(cols-1).
	r := sssp.From(g, 0)
	if r.Dist[g.N()-1] != 7 {
		t.Fatalf("grid corner distance = %v, want 7", r.Dist[g.N()-1])
	}
}

func TestTorusShapeAndRegularity(t *testing.T) {
	g := Torus(3, 4, 4, Unit())
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("torus degree(%d) = %d", u, g.Degree(u))
		}
	}
	checkConnected(t, g, "Torus")
}

func TestRingPathStar(t *testing.T) {
	ring := Ring(4, 10, Unit())
	if ring.M() != 10 {
		t.Fatalf("ring m = %d", ring.M())
	}
	checkConnected(t, ring, "Ring")
	for u := graph.NodeID(0); u < 10; u++ {
		if ring.Degree(u) != 2 {
			t.Fatal("ring not 2-regular")
		}
	}

	path := Path(5, 10, Unit())
	if path.M() != 9 {
		t.Fatalf("path m = %d", path.M())
	}
	checkConnected(t, path, "Path")

	star := Star(6, 10, Unit())
	if star.M() != 9 || star.Degree(0) != 9 {
		t.Fatal("star malformed")
	}
	checkConnected(t, star, "Star")
}

func TestBalancedTree(t *testing.T) {
	g := BalancedTree(7, 2, 3, Unit()) // 1+2+4+8 = 15
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("tree n=%d m=%d", g.N(), g.M())
	}
	checkConnected(t, g, "BalancedTree")

	single := BalancedTree(7, 3, 0, Unit())
	if single.N() != 1 {
		t.Fatal("depth-0 tree should be single node")
	}
}

func TestGeometricConnectedAndNormalized(t *testing.T) {
	g := Geometric(8, 120, 0.12)
	checkConnected(t, g, "Geometric")
	if w := g.MinEdgeWeight(); math.Abs(w-1) > 1e-9 {
		t.Fatalf("geometric min weight = %v, want 1", w)
	}
}

func TestPrefAttachHeavyTail(t *testing.T) {
	g := PrefAttach(9, 300, 2, Unit())
	checkConnected(t, g, "PrefAttach")
	maxDeg := 0
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	// Preferential attachment should produce hubs well above the mean.
	meanDeg := 2 * float64(g.M()) / float64(g.N())
	if float64(maxDeg) < 3*meanDeg {
		t.Fatalf("no hub: max degree %d vs mean %.1f", maxDeg, meanDeg)
	}
}

func TestAspectLadderAspectRatioScales(t *testing.T) {
	small := AspectLadder(10, 2, 4, 8)
	big := AspectLadder(10, 2, 4, 32)
	if small.N() != big.N() {
		t.Fatal("ladder size must not depend on topExp")
	}
	checkConnected(t, small, "AspectLadder")
	checkConnected(t, big, "AspectLadder")
	_, aspectSmall := sssp.Diameter(small)
	_, aspectBig := sssp.Diameter(big)
	if aspectBig < aspectSmall*math.Pow(2, 20) {
		t.Fatalf("aspect ratio did not scale: %v vs %v", aspectSmall, aspectBig)
	}
}

func TestAspectLadderExactWeights(t *testing.T) {
	g := AspectLadder(11, 3, 3, 30)
	// All weights must be powers of two.
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		g.Neighbors(u, func(e graph.Edge) bool {
			f, exp := math.Frexp(e.Weight)
			if f != 0.5 {
				t.Fatalf("weight %v (exp %d) is not a power of two", e.Weight, exp)
			}
			return true
		})
	}
}

func TestNamesAreScrambledAndUnique(t *testing.T) {
	g := Gnp(12, 200, 0.02, Unit())
	seen := make(map[uint64]bool)
	ascending := 0
	var prev uint64
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		name := g.Name(u)
		if seen[name] {
			t.Fatal("duplicate node name")
		}
		seen[name] = true
		if u > 0 && name > prev {
			ascending++
		}
		prev = name
	}
	// Scrambled names should not be monotone in the internal index.
	if ascending > 150 {
		t.Fatalf("names look sequential: %d/199 ascending", ascending)
	}
}

func TestWeightings(t *testing.T) {
	r := xrand.New(1)
	u := Uniform(2, 5)
	for i := 0; i < 1000; i++ {
		w := u(r)
		if w < 2 || w >= 5 {
			t.Fatalf("Uniform out of range: %v", w)
		}
	}
	p := PowerOfTwo(10)
	for i := 0; i < 1000; i++ {
		w := p(r)
		f, _ := math.Frexp(w)
		if f != 0.5 || w < 1 || w > 1024 {
			t.Fatalf("PowerOfTwo bad weight %v", w)
		}
	}
	if Unit()(r) != 1 {
		t.Fatal("Unit weighting not 1")
	}
}

func TestGeneratorPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { Gnp(1, 0, 0.5, Unit()) },
		func() { Ring(1, 2, Unit()) },
		func() { Star(1, 1, Unit()) },
		func() { Torus(1, 2, 2, Unit()) },
		func() { Geometric(1, 0, 0.1) },
		func() { PrefAttach(1, 1, 1, Unit()) },
		func() { AspectLadder(1, 1, 1, 8) },
		func() { Uniform(0, 1) },
		func() { PowerOfTwo(99) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: every family yields connected graphs across seeds.
func TestAllFamiliesConnectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		return Gnp(seed, 40, 0.05, Uniform(1, 3)).Connected() &&
			Geometric(seed, 40, 0.2).Connected() &&
			PrefAttach(seed, 40, 2, Unit()).Connected() &&
			AspectLadder(seed, 2, 3, 16).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
