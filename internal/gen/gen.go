// Package gen builds the synthetic network families used as workloads.
//
// The paper's model is an arbitrary weighted undirected graph with
// arbitrary node names, so the generators cover the structural extremes
// the analysis cares about: expander-like random graphs (dense
// neighborhoods), meshes and rings (sparse growth), trees and stars
// (degenerate topologies), geometric graphs (doubling-like), and —
// crucially for the scale-free headline — "aspect ladders" whose edge
// weights span a configurable number of binary orders of magnitude, so
// the aspect ratio Δ can be pushed to 2^40 while n stays fixed.
//
// Node names are always scrambled 64-bit values uncorrelated with the
// topology. This keeps the name-independent model honest: a scheme that
// accidentally exploited name locality would be caught by tests.
package gen

import (
	"fmt"
	"math"

	"compactroute/internal/graph"
	"compactroute/internal/xrand"
)

// Weighting draws one edge weight.
type Weighting func(r *xrand.RNG) float64

// Unit returns the all-ones weighting (unweighted graphs).
func Unit() Weighting { return func(*xrand.RNG) float64 { return 1 } }

// Uniform returns weights uniform in [lo, hi).
func Uniform(lo, hi float64) Weighting {
	if lo <= 0 || hi < lo {
		panic("gen: invalid uniform weight range")
	}
	return func(r *xrand.RNG) float64 { return lo + (hi-lo)*r.Float64() }
}

// PowerOfTwo returns weights 2^j with j uniform in {0..maxExp}.
// Sums of such weights over short paths are exact in float64, which
// keeps huge-aspect-ratio experiments numerically trustworthy.
func PowerOfTwo(maxExp int) Weighting {
	if maxExp < 0 || maxExp > 50 {
		panic("gen: PowerOfTwo exponent out of [0,50]")
	}
	return func(r *xrand.RNG) float64 {
		return math.Ldexp(1, r.Intn(maxExp+1))
	}
}

// namer assigns scrambled unique names.
type namer struct {
	seed uint64
	used map[uint64]bool
}

func newNamer(seed uint64) *namer {
	return &namer{seed: seed, used: make(map[uint64]bool)}
}

func (nm *namer) name(i int) uint64 {
	v := xrand.Hash64(nm.seed, uint64(i))
	for nm.used[v] { // vanishingly rare; linear probe keeps uniqueness
		v++
	}
	nm.used[v] = true
	return v
}

func addNodes(b *graph.Builder, n int, seed uint64) {
	nm := newNamer(seed ^ 0xabcdef)
	for i := 0; i < n; i++ {
		b.AddNode(nm.name(i))
	}
}

func mustBuild(b *graph.Builder) *graph.Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("gen: internal build error: %v", err))
	}
	return g
}

func mustEdge(b *graph.Builder, u, v graph.NodeID, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(fmt.Sprintf("gen: internal edge error: %v", err))
	}
}

// Gnp returns a connected Erdős–Rényi-style graph: a uniform random
// spanning tree backbone plus each remaining pair independently with
// probability p.
func Gnp(seed uint64, n int, p float64, w Weighting) *graph.Graph {
	if n < 1 {
		panic("gen: Gnp needs n ≥ 1")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	perm := r.Perm(n) // random attachment order for an unbiased backbone
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[r.Intn(i)]
		mustEdge(b, graph.NodeID(u), graph.NodeID(v), w(r))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				mustEdge(b, graph.NodeID(i), graph.NodeID(j), w(r))
			}
		}
	}
	return mustBuild(b)
}

// Grid returns a rows×cols 4-neighbor mesh.
func Grid(seed uint64, rows, cols int, w Weighting) *graph.Graph {
	return lattice(seed, rows, cols, false, w)
}

// Torus returns a rows×cols 4-neighbor mesh with wraparound.
func Torus(seed uint64, rows, cols int, w Weighting) *graph.Graph {
	return lattice(seed, rows, cols, true, w)
}

func lattice(seed uint64, rows, cols int, wrap bool, w Weighting) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: lattice needs positive dimensions")
	}
	if wrap && (rows < 3 || cols < 3) {
		panic("gen: torus needs at least 3×3")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, rows*cols, seed)
	id := func(i, j int) graph.NodeID { return graph.NodeID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				mustEdge(b, id(i, j), id(i, j+1), w(r))
			} else if wrap {
				mustEdge(b, id(i, j), id(i, 0), w(r))
			}
			if i+1 < rows {
				mustEdge(b, id(i, j), id(i+1, j), w(r))
			} else if wrap {
				mustEdge(b, id(i, j), id(0, j), w(r))
			}
		}
	}
	return mustBuild(b)
}

// Ring returns an n-cycle (n ≥ 3).
func Ring(seed uint64, n int, w Weighting) *graph.Graph {
	if n < 3 {
		panic("gen: Ring needs n ≥ 3")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	for i := 0; i < n; i++ {
		mustEdge(b, graph.NodeID(i), graph.NodeID((i+1)%n), w(r))
	}
	return mustBuild(b)
}

// Path returns an n-node path.
func Path(seed uint64, n int, w Weighting) *graph.Graph {
	if n < 1 {
		panic("gen: Path needs n ≥ 1")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	for i := 0; i+1 < n; i++ {
		mustEdge(b, graph.NodeID(i), graph.NodeID(i+1), w(r))
	}
	return mustBuild(b)
}

// Star returns a star with n-1 leaves around node 0.
func Star(seed uint64, n int, w Weighting) *graph.Graph {
	if n < 2 {
		panic("gen: Star needs n ≥ 2")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	for i := 1; i < n; i++ {
		mustEdge(b, 0, graph.NodeID(i), w(r))
	}
	return mustBuild(b)
}

// BalancedTree returns a complete b-ary tree of the given depth
// (depth 0 is a single root).
func BalancedTree(seed uint64, branching, depth int, w Weighting) *graph.Graph {
	if branching < 1 || depth < 0 {
		panic("gen: BalancedTree needs branching ≥ 1, depth ≥ 0")
	}
	n := 1
	width := 1
	for d := 0; d < depth; d++ {
		width *= branching
		n += width
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	for i := 1; i < n; i++ {
		parent := (i - 1) / branching
		mustEdge(b, graph.NodeID(parent), graph.NodeID(i), w(r))
	}
	return mustBuild(b)
}

// Geometric returns a random geometric graph: n points uniform in the
// unit square, joined when within the given radius, weight = Euclidean
// distance rescaled so the minimum edge weight is 1. A nearest-neighbor
// chain over x-order guarantees connectivity.
func Geometric(seed uint64, n int, radius float64) *graph.Graph {
	if n < 1 || radius <= 0 {
		panic("gen: Geometric needs n ≥ 1, radius > 0")
	}
	r := xrand.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	type pair struct{ u, v int }
	var pairs []pair
	var dists []float64
	minW := math.Inf(1)
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return math.Sqrt(dx*dx + dy*dy)
	}
	connected := make([]bool, n)
	addPair := func(i, j int) {
		d := dist(i, j)
		if d == 0 {
			d = 1e-9 // coincident points; keep weights positive
		}
		pairs = append(pairs, pair{i, j})
		dists = append(dists, d)
		if d < minW {
			minW = d
		}
		connected[i], connected[j] = true, true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(i, j) <= radius {
				addPair(i, j)
			}
		}
	}
	// Connectivity backbone: chain points in x-order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by x (n is modest)
		for j := i; j > 0 && xs[order[j]] < xs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for i := 0; i+1 < n; i++ {
		u, v := order[i], order[i+1]
		if dist(u, v) > radius {
			addPair(u, v)
		}
	}
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	for i, p := range pairs {
		mustEdge(b, graph.NodeID(p.u), graph.NodeID(p.v), dists[i]/minW)
	}
	return mustBuild(b)
}

// PrefAttach returns a Barabási–Albert preferential-attachment graph:
// each new node attaches to m existing nodes with probability
// proportional to degree. Produces heavy-tailed degrees.
func PrefAttach(seed uint64, n, m int, w Weighting) *graph.Graph {
	if n < 2 || m < 1 {
		panic("gen: PrefAttach needs n ≥ 2, m ≥ 1")
	}
	r := xrand.New(seed)
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	// endpoint multiset: each edge contributes both endpoints, so
	// sampling uniformly from it is degree-proportional sampling.
	endpoints := []int{0, 1}
	mustEdge(b, 0, 1, w(r))
	for v := 2; v < n; v++ {
		chosen := make(map[int]bool)
		attempts := 0
		for len(chosen) < m && len(chosen) < v && attempts < 50*m {
			t := endpoints[r.Intn(len(endpoints))]
			attempts++
			if t != v && !chosen[t] {
				chosen[t] = true
			}
		}
		if len(chosen) == 0 {
			chosen[r.Intn(v)] = true
		}
		for t := range chosen {
			mustEdge(b, graph.NodeID(v), graph.NodeID(t), w(r))
			endpoints = append(endpoints, v, t)
		}
	}
	return mustBuild(b)
}

// AspectLadder returns the scale-freeness stress workload: a complete
// b-ary hierarchy of the given depth where an edge entering depth d has
// weight 2^(topExp·(depth-d)/depth), plus sibling rings at each level.
// Leaves see unit-weight local edges while root edges weigh 2^topExp,
// so Δ ≈ 2^topExp · depth with n fixed — exactly the regime where
// aspect-ratio-dependent schemes blow up (§1 of the paper).
func AspectLadder(seed uint64, branching, depth, topExp int) *graph.Graph {
	if branching < 2 || depth < 1 {
		panic("gen: AspectLadder needs branching ≥ 2, depth ≥ 1")
	}
	if topExp < 0 || topExp > 45 {
		panic("gen: AspectLadder topExp out of [0,45]")
	}
	n := 1
	width := 1
	firstAtDepth := []int{0}
	for d := 0; d < depth; d++ {
		width *= branching
		firstAtDepth = append(firstAtDepth, n)
		n += width
	}
	b := graph.NewBuilder()
	addNodes(b, n, seed)
	levelWeight := func(d int) float64 {
		// Integer exponent so path sums stay exact in float64. Edges
		// into depth 1 (root edges) get the full 2^topExp; leaf edges
		// get weight 1.
		if depth == 1 {
			return math.Ldexp(1, topExp)
		}
		e := topExp * (depth - d) / (depth - 1)
		return math.Ldexp(1, e)
	}
	nodeDepth := func(i int) int {
		d := 0
		for i > 0 {
			i = (i - 1) / branching
			d++
		}
		return d
	}
	for i := 1; i < n; i++ {
		parent := (i - 1) / branching
		mustEdge(b, graph.NodeID(parent), graph.NodeID(i), levelWeight(nodeDepth(i)))
	}
	// Sibling rings give each level local shortcuts so the graph is not
	// merely a tree (dense neighborhoods appear at every scale).
	for d := 1; d <= depth; d++ {
		lo := firstAtDepth[d]
		hi := lo
		if d < depth {
			hi = firstAtDepth[d+1]
		} else {
			hi = n
		}
		for i := lo; i+1 < hi; i++ {
			if (i-lo)%branching != branching-1 { // within a sibling group
				mustEdge(b, graph.NodeID(i), graph.NodeID(i+1), levelWeight(d))
			}
		}
	}
	return mustBuild(b)
}
