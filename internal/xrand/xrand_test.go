package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d appeared %d times, want about %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v negative", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("ExpFloat64 mean = %v, want about 1", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(21)
	f := a.Fork()
	// The fork must not replay the parent stream.
	av, fv := a.Uint64(), f.Uint64()
	if av == fv {
		t.Fatal("fork replayed parent stream")
	}
}

func TestHash64SeedSensitivity(t *testing.T) {
	if Hash64(1, 100) == Hash64(2, 100) {
		t.Fatal("Hash64 ignores seed")
	}
	if Hash64(1, 100) == Hash64(1, 101) {
		t.Fatal("Hash64 ignores input")
	}
}

func TestHash64Deterministic(t *testing.T) {
	f := func(seed, x uint64) bool {
		return Hash64(seed, x) == Hash64(seed, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64AvalancheRough(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	totalFlips := 0
	const samples = 200
	r := New(31)
	for i := 0; i < samples; i++ {
		x := r.Uint64()
		h0 := Hash64(9, x)
		h1 := Hash64(9, x^1)
		diff := h0 ^ h1
		for diff != 0 {
			totalFlips += int(diff & 1)
			diff >>= 1
		}
	}
	mean := float64(totalFlips) / samples
	if mean < 20 || mean > 44 {
		t.Fatalf("avalanche mean flips = %v, want near 32", mean)
	}
}
