// Package xrand provides a small, fast, deterministic random number
// generator used by every randomized construction in this repository.
//
// All sampling in the routing-scheme builders flows through a single
// seeded RNG so that builds are reproducible bit-for-bit. The generator
// is SplitMix64 (Steele, Lea, Flood; JVM reference implementation),
// which passes BigCrush and is trivially seedable, making it a good fit
// for simulation workloads where the standard library's global state
// would hurt reproducibility.
package xrand

import "math"

// RNG is a deterministic SplitMix64 random number generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// rejection sampling keeps the distribution exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1 - u)
}

// Fork derives an independent generator from this one. Forked streams
// are used so that construction stages consume randomness independently
// of each other, keeping builds stable when one stage changes.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Hash64 mixes x with the given seed through the SplitMix64 finalizer.
// It is the repository's standard stateless hash for node names; routing
// schemes must treat node names as opaque, so every name-keyed structure
// (tries, rendezvous tables) derives positions with Hash64.
func Hash64(seed, x uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
