package cover

import (
	"math"
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
)

func sparsityBound(n, k int) int {
	return int(math.Ceil(2 * float64(k) * math.Pow(float64(n), 1/float64(k))))
}

func buildAndValidate(t *testing.T, g *graph.Graph, k int, rho float64) *Cover {
	t.Helper()
	c, err := Build(g, Params{K: k, Rho: rho})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(sparsityBound(g.N(), k)); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoverOnPath(t *testing.T) {
	g := gen.Path(1, 20, gen.Unit())
	for _, k := range []int{1, 2, 3} {
		for _, rho := range []float64{1, 3, 100} {
			c := buildAndValidate(t, g, k, rho)
			if len(c.Trees) == 0 {
				t.Fatal("no trees")
			}
		}
	}
}

func TestCoverOnGnp(t *testing.T) {
	g := gen.Gnp(2, 60, 0.06, gen.Uniform(1, 4))
	for _, k := range []int{1, 2, 3} {
		buildAndValidate(t, g, k, 2.5)
	}
}

func TestCoverOnGrid(t *testing.T) {
	g := gen.Grid(3, 7, 7, gen.Unit())
	buildAndValidate(t, g, 2, 2)
}

func TestCoverOnStarAndRing(t *testing.T) {
	buildAndValidate(t, gen.Star(4, 25, gen.Uniform(1, 3)), 2, 1.5)
	buildAndValidate(t, gen.Ring(5, 24, gen.Unit()), 3, 4)
}

func TestCoverHugeRhoIsOneCluster(t *testing.T) {
	g := gen.Gnp(6, 40, 0.1, gen.Unit())
	c := buildAndValidate(t, g, 2, 1e6)
	if len(c.Trees) != 1 {
		t.Fatalf("huge ρ produced %d trees", len(c.Trees))
	}
	if c.Trees[0].Len() != g.N() {
		t.Fatal("single cluster does not span graph")
	}
}

func TestCoverTinyRho(t *testing.T) {
	// ρ below the minimum edge weight: balls are singletons; every
	// node still needs a home tree.
	g := gen.Gnp(7, 30, 0.1, gen.Uniform(2, 5))
	c := buildAndValidate(t, g, 2, 0.5)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if c.Home(v) < 0 {
			t.Fatalf("node %d has no home", v)
		}
	}
}

func TestCoverDisconnected(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode(uint64(i))
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g, _ := b.Build()
	c, err := Build(g, Params{K: 2, Rho: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(sparsityBound(g.N(), 2)); err != nil {
		t.Fatal(err)
	}
	// No tree may span both components.
	for i, tr := range c.Trees {
		hasLo, hasHi := false, false
		for j := 0; j < tr.Len(); j++ {
			if tr.Node(j) <= 2 {
				hasLo = true
			} else {
				hasHi = true
			}
		}
		if hasLo && hasHi {
			t.Fatalf("tree %d spans components", i)
		}
	}
}

func TestHomeTreeContainsBall(t *testing.T) {
	// Validate() already checks this; exercise the accessor shape too.
	g := gen.Geometric(8, 50, 0.25)
	c := buildAndValidate(t, g, 2, 1.8)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		found := false
		for _, ti := range c.TreesOf(v) {
			if int(ti) == c.Home(v) {
				found = true
			}
			if !c.Trees[ti].Contains(v) {
				t.Fatalf("membership list wrong for %d", v)
			}
		}
		if !found {
			t.Fatalf("home tree of %d not in its membership list", v)
		}
	}
}

func TestRadiusAndEdgeBoundsReported(t *testing.T) {
	g := gen.Gnp(9, 50, 0.08, gen.Uniform(1, 6))
	k, rho := 3, 3.0
	c := buildAndValidate(t, g, k, rho)
	if c.MaxRadius() > float64(2*k+1)*rho+1e-9 {
		t.Fatalf("MaxRadius %v exceeds bound", c.MaxRadius())
	}
	if c.MaxEdge() > 2*rho+1e-9 {
		t.Fatalf("MaxEdge %v exceeds 2ρ", c.MaxEdge())
	}
	if c.Rho() != rho || c.K() != k {
		t.Fatal("accessors wrong")
	}
}

func TestBadParamsRejected(t *testing.T) {
	g := gen.Path(10, 5, gen.Unit())
	if _, err := Build(g, Params{K: 0, Rho: 1}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(g, Params{K: 2, Rho: 0}); err == nil {
		t.Fatal("ρ=0 accepted")
	}
	if _, err := Build(g, Params{K: 2, Rho: math.Inf(1)}); err == nil {
		t.Fatal("ρ=∞ accepted")
	}
}

func TestAspectLadderCover(t *testing.T) {
	// Heavy-tailed weights: covers at a mid scale must keep edges ≤ 2ρ.
	g := gen.AspectLadder(11, 2, 4, 12)
	c := buildAndValidate(t, g, 2, 16)
	if c.MaxEdge() > 32+1e-9 {
		t.Fatalf("ladder cover uses edge %v > 2ρ", c.MaxEdge())
	}
}

func TestSingleNode(t *testing.T) {
	g := gen.Path(12, 1, gen.Unit())
	c, err := Build(g, Params{K: 2, Rho: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trees) != 1 || c.Trees[0].Len() != 1 || c.Home(0) != 0 {
		t.Fatal("single node cover malformed")
	}
}

func TestMemberFilteredCover(t *testing.T) {
	// Cover only the even-index nodes of a grid; trees must stay
	// inside the member set and satisfy all properties in the induced
	// metric.
	g := gen.Grid(13, 6, 6, gen.Unit())
	member := make([]bool, g.N())
	for i := 0; i < g.N(); i += 2 {
		member[i] = true
	}
	c, err := Build(g, Params{K: 2, Rho: 2, Member: member})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(sparsityBound(g.N(), 2)); err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Trees {
		for i := 0; i < tr.Len(); i++ {
			if !member[tr.Node(i)] {
				t.Fatalf("tree contains non-member %d", tr.Node(i))
			}
		}
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if member[v] && c.Home(v) < 0 {
			t.Fatalf("member %d lacks home tree", v)
		}
		if !member[v] && c.Home(v) >= 0 {
			t.Fatalf("non-member %d has home tree", v)
		}
	}
}

func TestMemberFilterLengthValidated(t *testing.T) {
	g := gen.Path(14, 5, gen.Unit())
	if _, err := Build(g, Params{K: 2, Rho: 1, Member: []bool{true}}); err == nil {
		t.Fatal("short member filter accepted")
	}
}
