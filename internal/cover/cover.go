// Package cover implements Lemma 6 of the paper: sparse tree covers
// TC_{k,ρ}(G) in the style of Awerbuch–Peleg sparse partitions [9]
// with the routing-oriented refinements of [3].
//
// Build produces a collection of rooted trees such that
//
//  1. (Cover)  every ball B(v,ρ) is fully contained in some tree,
//  2. (Sparse) each node belongs to few trees (O(k·n^{1/k});
//     measured and exposed via MaxMembership),
//  3. (Small radius) every tree has rad(T) ≤ (2k+1)·ρ,
//  4. (Small edges)  every tree edge weighs ≤ 2ρ.
//
// The construction is the classic coarsening procedure: repeatedly pick
// an uncovered ball and grow a cluster around it in layers, absorbing
// every still-uncovered ball that intersects the current kernel, until
// the cluster is no more than n^{1/k} times its kernel — which takes at
// most k layers, giving the radius bound. Cluster trees are shortest
// path trees from the seed center inside the cluster's induced
// subgraph restricted to edges of weight ≤ 2ρ; any two nodes of one
// merged ball connect through its center over such edges, so the
// restriction never disconnects a cluster (property 4 at no cost).
//
// The paper's [3]-refined constant is (2k−1)ρ; ours is (2k+1)ρ, a
// constant-factor difference absorbed by the O(k) stretch analysis
// (DESIGN.md substitution #4).
package cover

import (
	"fmt"
	"math"

	"compactroute/internal/graph"
	"compactroute/internal/tree"
)

// Params configures a cover construction.
type Params struct {
	// K is the trade-off parameter (layers bound).
	K int
	// Rho is the covered ball radius ρ.
	Rho float64
	// UniverseN is the n in the n^{1/k} coarsening threshold; the
	// enclosing scheme passes the full graph size even when covering a
	// subgraph G_i. If zero, g.N() is used.
	UniverseN int
	// Member restricts the cover to the induced subgraph on the nodes
	// with Member[v] == true (the G_i of §3.4). The trees still live
	// in the original graph — same node ids and ports — so routing on
	// them crosses real edges. nil means all nodes.
	Member []bool
}

// Cover is a sparse tree cover of one graph (or of an induced
// subgraph, when built with a member filter).
type Cover struct {
	g      *graph.Graph
	rho    float64
	k      int
	member []bool
	Trees  []*tree.Tree
	// home[v] is the index of a tree guaranteed to contain B(v, ρ).
	home []int32
	// membership[v] lists the trees containing v.
	membership [][]int32
}

// Build constructs TC_{k,ρ}(g). The graph may be disconnected;
// clusters never span components.
func Build(g *graph.Graph, p Params) (*Cover, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("cover: k must be ≥ 1, got %d", p.K)
	}
	if p.Rho <= 0 || math.IsNaN(p.Rho) || math.IsInf(p.Rho, 0) {
		return nil, fmt.Errorf("cover: invalid ρ %v", p.Rho)
	}
	n := g.N()
	universe := p.UniverseN
	if universe < n {
		universe = n
	}
	member := p.Member
	if member == nil {
		member = make([]bool, n)
		for i := range member {
			member[i] = true
		}
	} else if len(member) != n {
		return nil, fmt.Errorf("cover: member filter has %d entries for %d nodes", len(member), n)
	}
	growth := math.Pow(float64(universe), 1/float64(p.K))

	// Precompute B(v,ρ) within the induced subgraph for every member,
	// by truncated member-filtered Dijkstra.
	balls := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		if member[v] {
			balls[v] = filteredBall(g, graph.NodeID(v), member, p.Rho)
		}
	}

	c := &Cover{
		g:          g,
		rho:        p.Rho,
		k:          p.K,
		member:     member,
		home:       make([]int32, n),
		membership: make([][]int32, n),
	}
	for i := range c.home {
		c.home[i] = -1
	}

	unprocessed := make([]bool, n)
	remaining := 0
	for i := range unprocessed {
		if member[i] {
			unprocessed[i] = true
			remaining++
		}
	}
	inY := make([]bool, n) // kernel membership scratch
	inZ := make([]bool, n) // cluster membership scratch

	for remaining > 0 {
		// Deterministically pick the smallest unprocessed center.
		seed := -1
		for v := 0; v < n; v++ {
			if unprocessed[v] {
				seed = v
				break
			}
		}
		// Grow the cluster in layers.
		var yNodes, zNodes []graph.NodeID
		var absorbed []int // ball centers merged into this cluster
		for _, u := range balls[seed] {
			if !inY[u] {
				inY[u] = true
				yNodes = append(yNodes, u)
			}
		}
		for layer := 0; ; layer++ {
			// S: unprocessed balls intersecting the kernel Y.
			absorbed = absorbed[:0]
			zNodes = zNodes[:0]
			for i := range inZ {
				inZ[i] = false
			}
			for _, y := range yNodes {
				if !inZ[y] {
					inZ[y] = true
					zNodes = append(zNodes, y)
				}
			}
			for u := 0; u < n; u++ {
				if !unprocessed[u] {
					continue
				}
				hit := false
				for _, w := range balls[u] {
					if inY[w] {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				absorbed = append(absorbed, u)
				for _, w := range balls[u] {
					if !inZ[w] {
						inZ[w] = true
						zNodes = append(zNodes, w)
					}
				}
			}
			if float64(len(zNodes)) <= growth*float64(len(yNodes)) || layer >= p.K {
				break
			}
			// Coarsen: kernel becomes the current cluster.
			yNodes = yNodes[:0]
			for _, w := range zNodes {
				yNodes = append(yNodes, w)
			}
			for i := range inY {
				inY[i] = false
			}
			for _, w := range yNodes {
				inY[w] = true
			}
		}
		// Freeze the cluster: build its tree and retire absorbed balls.
		t, err := clusterTree(g, graph.NodeID(seed), inZ, 2*p.Rho)
		if err != nil {
			return nil, err
		}
		ti := int32(len(c.Trees))
		c.Trees = append(c.Trees, t)
		for _, u := range absorbed {
			unprocessed[u] = false
			remaining--
			if c.home[u] < 0 {
				c.home[u] = ti
			}
		}
		for i := range inY {
			inY[i] = false
		}
	}
	for ti, t := range c.Trees {
		for i := 0; i < t.Len(); i++ {
			v := t.Node(i)
			c.membership[v] = append(c.membership[v], int32(ti))
		}
	}
	return c, nil
}

// filteredBall returns B(v,ρ) in the subgraph induced by member, via
// truncated Dijkstra.
func filteredBall(g *graph.Graph, src graph.NodeID, member []bool, rho float64) []graph.NodeID {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := newLocalHeap(n)
	h.push(src, 0)
	var ball []graph.NodeID
	for h.len() > 0 {
		u, du := h.pop()
		if du > rho {
			break
		}
		ball = append(ball, u)
		g.Neighbors(u, func(e graph.Edge) bool {
			if !member[e.To] {
				return true
			}
			if alt := du + e.Weight; alt < dist[e.To] && alt <= rho {
				dist[e.To] = alt
				h.pushOrDecrease(e.To, alt)
			}
			return true
		})
	}
	return ball
}

// clusterTree builds the SPT from center over cluster members using
// only edges of weight ≤ maxEdge.
func clusterTree(g *graph.Graph, center graph.NodeID, member []bool, maxEdge float64) (*tree.Tree, error) {
	// Dijkstra restricted to the cluster and light edges.
	n := g.N()
	dist := make([]float64, n)
	parent := make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[center] = 0
	h := newLocalHeap(n)
	h.push(center, 0)
	for h.len() > 0 {
		u, du := h.pop()
		g.Neighbors(u, func(e graph.Edge) bool {
			if !member[e.To] || e.Weight > maxEdge {
				return true
			}
			if alt := du + e.Weight; alt < dist[e.To] {
				dist[e.To] = alt
				parent[e.To] = u
				h.pushOrDecrease(e.To, alt)
			}
			return true
		})
	}
	b := tree.NewBuilder(g, center)
	for v := 0; v < n; v++ {
		if member[v] && parent[v] >= 0 {
			if err := b.Add(graph.NodeID(v), parent[v]); err != nil {
				return nil, err
			}
		}
	}
	for v := 0; v < n; v++ {
		if member[v] && graph.NodeID(v) != center && parent[v] < 0 {
			return nil, fmt.Errorf("cover: cluster member %d unreachable over light edges", v)
		}
	}
	return b.Build()
}

// Rho returns the covered radius ρ.
func (c *Cover) Rho() float64 { return c.rho }

// K returns the parameter k.
func (c *Cover) K() int { return c.k }

// Home returns the index of a tree containing B(v, ρ).
func (c *Cover) Home(v graph.NodeID) int { return int(c.home[v]) }

// TreesOf returns the indices of the trees containing v (do not
// mutate).
func (c *Cover) TreesOf(v graph.NodeID) []int32 { return c.membership[v] }

// MaxMembership returns the largest number of trees any node belongs
// to — the "sparse" quantity of Lemma 6.
func (c *Cover) MaxMembership() int {
	max := 0
	for _, m := range c.membership {
		if len(m) > max {
			max = len(m)
		}
	}
	return max
}

// MaxRadius returns the largest tree radius.
func (c *Cover) MaxRadius() float64 {
	max := 0.0
	for _, t := range c.Trees {
		if r := t.Radius(); r > max {
			max = r
		}
	}
	return max
}

// MaxEdge returns the heaviest edge used by any tree.
func (c *Cover) MaxEdge() float64 {
	max := 0.0
	for _, t := range c.Trees {
		if e := t.MaxEdge(); e > max {
			max = e
		}
	}
	return max
}

// Validate rechecks all four Lemma 6 properties; used by tests and the
// T5 experiment. sparsityBound is the asserted per-node membership
// limit (pass 2k·n^{1/k} for the paper's bound).
func (c *Cover) Validate(sparsityBound int) error {
	g := c.g
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !c.member[v] {
			if len(c.TreesOf(v)) != 0 || c.Home(v) >= 0 {
				return fmt.Errorf("cover: non-member %d appears in cover", v)
			}
			continue
		}
		hi := c.Home(v)
		if hi < 0 || hi >= len(c.Trees) {
			return fmt.Errorf("cover: node %d has no home tree", v)
		}
		home := c.Trees[hi]
		for _, w := range filteredBall(g, v, c.member, c.rho) {
			if !home.Contains(w) {
				return fmt.Errorf("cover: B(%d,ρ) escapes its home tree at %d", v, w)
			}
		}
		if len(c.TreesOf(v)) > sparsityBound {
			return fmt.Errorf("cover: node %d in %d > %d trees", v, len(c.TreesOf(v)), sparsityBound)
		}
	}
	radBound := float64(2*c.k+1)*c.rho + 1e-9
	for i, t := range c.Trees {
		if t.Radius() > radBound {
			return fmt.Errorf("cover: tree %d radius %v > (2k+1)ρ = %v", i, t.Radius(), radBound)
		}
		if t.MaxEdge() > 2*c.rho+1e-9 {
			return fmt.Errorf("cover: tree %d edge %v > 2ρ", i, t.MaxEdge())
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("cover: tree %d: %w", i, err)
		}
	}
	return nil
}

// --- small local heap (ids keyed by float64, decrease-key) ---

type localHeap struct {
	keys []float64
	heap []graph.NodeID
	pos  []int32
}

func newLocalHeap(n int) *localHeap {
	h := &localHeap{keys: make([]float64, n), pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *localHeap) len() int { return len(h.heap) }

func (h *localHeap) push(u graph.NodeID, key float64) {
	h.keys[u] = key
	h.pos[u] = int32(len(h.heap))
	h.heap = append(h.heap, u)
	h.up(len(h.heap) - 1)
}

func (h *localHeap) pushOrDecrease(u graph.NodeID, key float64) {
	if h.pos[u] < 0 {
		h.push(u, key)
		return
	}
	if key < h.keys[u] {
		h.keys[u] = key
		h.up(int(h.pos[u]))
	}
}

func (h *localHeap) pop() (graph.NodeID, float64) {
	u := h.heap[0]
	key := h.keys[u]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[u] = -1
	if last > 0 {
		h.down(0)
	}
	return u, key
}

func (h *localHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *localHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[h.heap[i]] >= h.keys[h.heap[p]] {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *localHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && h.keys[h.heap[l]] < h.keys[h.heap[s]] {
			s = l
		}
		if r < n && h.keys[h.heap[r]] < h.keys[h.heap[s]] {
			s = r
		}
		if s == i {
			return
		}
		h.swap(i, s)
		i = s
	}
}
