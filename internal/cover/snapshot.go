package cover

import (
	"fmt"

	"compactroute/internal/graph"
	"compactroute/internal/tree"
)

// Snapshot is the exported persistent form of a Cover: its parameters,
// the member filter, every tree (in compact parent-relation form), and
// the home-tree assignment. The per-node membership lists are rebuilt
// from the trees on rehydration.
type Snapshot struct {
	Rho    float64
	K      int
	Member []bool
	Trees  []*tree.Snapshot
	Home   []int32
}

// Snapshot captures the cover's persistent state.
func (c *Cover) Snapshot() *Snapshot {
	s := &Snapshot{
		Rho:    c.rho,
		K:      c.k,
		Member: c.member,
		Home:   c.home,
		Trees:  make([]*tree.Snapshot, len(c.Trees)),
	}
	for i, t := range c.Trees {
		s.Trees[i] = t.Snapshot()
	}
	return s
}

// FromSnapshot rehydrates a Cover over g, rebuilding each tree and the
// membership index.
func FromSnapshot(g *graph.Graph, s *Snapshot) (*Cover, error) {
	n := g.N()
	if len(s.Member) != n || len(s.Home) != n {
		return nil, fmt.Errorf("cover: snapshot sized for %d/%d nodes, graph has %d",
			len(s.Member), len(s.Home), n)
	}
	c := &Cover{
		g:          g,
		rho:        s.Rho,
		k:          s.K,
		member:     s.Member,
		home:       s.Home,
		Trees:      make([]*tree.Tree, len(s.Trees)),
		membership: make([][]int32, n),
	}
	for i, ts := range s.Trees {
		t, err := tree.FromSnapshot(g, ts)
		if err != nil {
			return nil, fmt.Errorf("cover: tree %d: %w", i, err)
		}
		c.Trees[i] = t
	}
	for v := 0; v < n; v++ {
		if h := s.Home[v]; h >= int32(len(c.Trees)) || (h < 0 && s.Member[v]) {
			return nil, fmt.Errorf("cover: node %d has home tree %d of %d", v, h, len(c.Trees))
		}
	}
	for ti, t := range c.Trees {
		for i := 0; i < t.Len(); i++ {
			v := t.Node(i)
			c.membership[v] = append(c.membership[v], int32(ti))
		}
	}
	return c, nil
}
