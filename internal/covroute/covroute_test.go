package covroute

import (
	"testing"

	"compactroute/internal/cover"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
)

func buildSPT(t *testing.T, g *graph.Graph, root graph.NodeID) *tree.Tree {
	t.Helper()
	r := sssp.From(g, root)
	tr, err := tree.FromSPT(g, root, r.Parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pathCost(t *testing.T, g *graph.Graph, path []graph.NodeID) float64 {
	t.Helper()
	c := 0.0
	for i := 0; i+1 < len(path); i++ {
		p := g.PortTo(path[i], path[i+1])
		if p < 0 {
			t.Fatalf("hop %d→%d not an edge", path[i], path[i+1])
		}
		c += g.EdgeAt(path[i], p).Weight
	}
	return c
}

// lemma7Bound is 4·rad(T) + 2k·maxE(T) with k=2 as a representative
// consumer; our implementation must stay within 4·rad alone.
func lemma7Bound(tr *tree.Tree) float64 {
	return 4 * tr.Radius()
}

func TestLookupFindsEveryMemberFromEveryMember(t *testing.T) {
	g := gen.Gnp(1, 50, 0.08, gen.Uniform(1, 4))
	tr := buildSPT(t, g, 0)
	s := New(tr, 99)
	for src := 0; src < tr.Len(); src += 3 {
		for dst := 0; dst < tr.Len(); dst++ {
			ext := g.Name(tr.Node(dst))
			found, path, err := s.Run(ext, tr.Node(src))
			if err != nil {
				t.Fatalf("lookup %d→%d: %v", src, dst, err)
			}
			if !found || path[len(path)-1] != tr.Node(dst) {
				t.Fatalf("lookup %d→%d failed", src, dst)
			}
			if cost := pathCost(t, g, path); cost > lemma7Bound(tr)+1e-9 {
				t.Fatalf("lookup %d→%d cost %v > 4·rad %v", src, dst, cost, lemma7Bound(tr))
			}
		}
	}
}

func TestNegativeLookupClosedPath(t *testing.T) {
	g := gen.Gnp(2, 40, 0.1, gen.Uniform(1, 3))
	tr := buildSPT(t, g, 5)
	s := New(tr, 7)
	for src := 0; src < tr.Len(); src += 2 {
		for q := uint64(0); q < 20; q++ {
			ext := 0xbeef0000 + q*104729
			if _, ok := g.Lookup(ext); ok {
				continue
			}
			found, path, err := s.Run(ext, tr.Node(src))
			if err != nil {
				t.Fatal(err)
			}
			if found {
				t.Fatalf("phantom name found")
			}
			if path[len(path)-1] != tr.Node(src) {
				t.Fatal("negative lookup did not return to source")
			}
			if cost := pathCost(t, g, path); cost > lemma7Bound(tr)+1e-9 {
				t.Fatalf("negative lookup cost %v > bound %v", cost, lemma7Bound(tr))
			}
		}
	}
}

func TestLookupOnPrunedTree(t *testing.T) {
	// Cover trees contain a subset of the graph; names of non-members
	// must be reported missing.
	g := gen.Gnp(3, 60, 0.07, gen.Uniform(1, 5))
	r := sssp.From(g, 0)
	targets := []graph.NodeID{3, 9, 27, 42}
	tr, err := tree.FromPaths(g, 0, r.Parent, targets)
	if err != nil {
		t.Fatal(err)
	}
	s := New(tr, 3)
	for _, v := range targets {
		found, path, err := s.Run(g.Name(v), 0)
		if err != nil || !found || path[len(path)-1] != v {
			t.Fatalf("member %d not found: %v", v, err)
		}
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if tr.Contains(v) {
			continue
		}
		found, _, err := s.Run(g.Name(v), 0)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("non-member %d found", v)
		}
	}
}

func TestCoverTreesEndToEnd(t *testing.T) {
	// Drive Lemma 7 on actual Lemma 6 cover trees: for every node v
	// and home tree W, every member of B(v,ρ) must be reachable within
	// the combined bound.
	g := gen.Geometric(4, 45, 0.25)
	k, rho := 2, 1.5
	c, err := cover.Build(g, cover.Params{K: k, Rho: rho})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		home := c.Trees[c.Home(v)]
		s := New(home, 11)
		r := sssp.From(g, v)
		for _, w := range r.Ball(rho) {
			found, path, err := s.Run(g.Name(w), v)
			if err != nil || !found {
				t.Fatalf("ball member %d not found from %d: %v", w, v, err)
			}
			bound := 4*home.Radius() + 2*float64(k)*home.MaxEdge() + 1e-9
			if cost := pathCost(t, g, path); cost > bound {
				t.Fatalf("cover lookup cost %v > lemma bound %v", cost, bound)
			}
		}
	}
}

func TestRendezvousLoadModest(t *testing.T) {
	g := gen.Gnp(5, 300, 0.02, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := New(tr, 13)
	if load := s.MaxRendezvousLoad(); load > 12 {
		t.Fatalf("rendezvous load %d unexpectedly high", load)
	}
}

func TestStorageBitsSane(t *testing.T) {
	g := gen.Gnp(6, 100, 0.05, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := New(tr, 1)
	total := 0
	for i := 0; i < tr.Len(); i++ {
		b := int(s.StorageBits(i))
		if b <= 0 {
			t.Fatalf("StorageBits(%d) = %d", i, b)
		}
		total += b
	}
	// Aggregate storage is O(m · polylog): sanity ceiling.
	if total > 1<<22 {
		t.Fatalf("aggregate storage %d absurd", total)
	}
}

func TestNewRouteRejectsNonMember(t *testing.T) {
	g := gen.Star(7, 10, gen.Unit())
	r := sssp.From(g, 1)
	tr, _ := tree.FromPaths(g, 1, r.Parent, []graph.NodeID{2})
	s := New(tr, 5)
	if _, err := s.NewRoute(12345, 7); err == nil {
		t.Fatal("non-member source accepted")
	}
}

func TestSingleNodeTree(t *testing.T) {
	g := gen.Path(8, 1, gen.Unit())
	tr, err := tree.NewBuilder(g, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(tr, 2)
	found, _, err := s.Run(g.Name(0), 0)
	if err != nil || !found {
		t.Fatal("self lookup failed")
	}
	found, _, err = s.Run(999, 0)
	if err != nil || found {
		t.Fatal("phantom in single node tree")
	}
}

func TestHeaderBitsBounded(t *testing.T) {
	g := gen.Gnp(9, 120, 0.04, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := New(tr, 3)
	h, err := s.NewRoute(g.Name(5), tr.Node(10))
	if err != nil {
		t.Fatal(err)
	}
	if h.HeaderBits() <= 0 || h.HeaderBits() > 8192 {
		t.Fatalf("header bits = %d", h.HeaderBits())
	}
}

func TestDifferentSeedsStillCorrect(t *testing.T) {
	g := gen.Ring(10, 30, gen.Uniform(1, 2))
	tr := buildSPT(t, g, 0)
	for seed := uint64(0); seed < 5; seed++ {
		s := New(tr, seed)
		for dst := 0; dst < tr.Len(); dst += 5 {
			found, _, err := s.Run(g.Name(tr.Node(dst)), tr.Node(15))
			if err != nil || !found {
				t.Fatalf("seed %d: member %d not found", seed, dst)
			}
		}
	}
}
