// Package covroute implements Lemma 7 of the paper: name-independent
// error-reporting routing on a cover tree, with route length at most
// 4·rad(T) + 2k·maxE(T) and a closed error path of the same bound for
// names absent from the tree.
//
// The underlying [3] construction is from a companion paper; per
// DESIGN.md substitution #3 we implement a rendezvous scheme with the
// same interface and bounds. Every member is addressable by its DFS
// preorder number through interval routing: a node stores its own
// interval, its parent port, and one (interval, port) entry per child,
// which is O(deg_T) words — Θ(1) amortized over the tree. An external
// name hashes to a preorder number; the member owning that number (the
// rendezvous) stores the Lemma 5 label of every member whose name
// hashes to it. A route therefore runs source → rendezvous → target,
// each leg a tree path of length ≤ 2·rad(T), for a total of ≤ 4·rad(T)
// — strictly inside the lemma's budget. A miss at the rendezvous
// reports back to the source (whose label rides in the header),
// closing the path within the same bound.
package covroute

import (
	"fmt"
	"sort"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/tree"
	"compactroute/internal/treeroute"
	"compactroute/internal/xrand"
)

// childEntry is one interval-routing record.
type childEntry struct {
	pre, post int32
	port      int32 // graph port into the child
}

// local is one member's interval-routing state.
type local struct {
	pre, post  int32
	parentPort int32
	children   []childEntry // sorted by pre
}

// Scheme is the Lemma 7 structure for one tree.
type Scheme struct {
	t    *tree.Tree
	lr   *treeroute.Scheme
	seed uint64

	locals []local
	// byPre[p] = tree index of the member with preorder p.
	byPre []int32
	// rendezvous[i] maps external names hashing to member i onto their
	// labels.
	rendezvous []map[uint64]treeroute.Label
}

// New builds the rendezvous routing structures over t.
func New(t *tree.Tree, seed uint64) *Scheme {
	m := t.Len()
	s := &Scheme{
		t:          t,
		lr:         treeroute.New(t),
		seed:       seed,
		locals:     make([]local, m),
		byPre:      make([]int32, m),
		rendezvous: make([]map[uint64]treeroute.Label, m),
	}
	for i := 0; i < m; i++ {
		lo := local{
			pre:        int32(t.Pre(i)),
			post:       int32(t.Post(i)),
			parentPort: int32(t.ParentPort(i)),
		}
		for _, c := range t.Children(i) {
			lo.children = append(lo.children, childEntry{
				pre:  int32(t.Pre(int(c))),
				post: int32(t.Post(int(c))),
				port: int32(t.ChildPort(int(c))),
			})
		}
		sort.Slice(lo.children, func(a, b int) bool { return lo.children[a].pre < lo.children[b].pre })
		s.locals[i] = lo
		s.byPre[t.Pre(i)] = int32(i)
	}
	g := t.Graph()
	for i := 0; i < m; i++ {
		name := g.Name(t.Node(i))
		rv := s.rendezvousPre(name)
		owner := int(s.byPre[rv])
		if s.rendezvous[owner] == nil {
			s.rendezvous[owner] = make(map[uint64]treeroute.Label)
		}
		s.rendezvous[owner][name] = s.lr.Label(i)
	}
	return s
}

// rendezvousPre maps an external name to a preorder number.
func (s *Scheme) rendezvousPre(name uint64) int32 {
	return int32(xrand.Hash64(s.seed, name) % uint64(s.t.Len()))
}

// Tree returns the underlying tree.
func (s *Scheme) Tree() *tree.Tree { return s.t }

// Labeled returns the embedded Lemma 5 scheme.
func (s *Scheme) Labeled() *treeroute.Scheme { return s.lr }

// MaxRendezvousLoad returns the largest number of names stored at one
// rendezvous member (expected O(1), O(log m/log log m) whp).
func (s *Scheme) MaxRendezvousLoad() int {
	max := 0
	for _, r := range s.rendezvous {
		if len(r) > max {
			max = len(r)
		}
	}
	return max
}

// StorageBits returns the accounting size of member i's tables:
// interval routing entries, µ(T,u), its own label, and rendezvous
// entries.
func (s *Scheme) StorageBits(i int) bitsize.Bits {
	m := s.t.Len()
	idb := bitsize.IDBits(m)
	pb := bitsize.IDBits(s.t.Graph().Degree(s.t.Node(i)))
	b := 2*idb + pb                                             // own interval + parent port
	b += bitsize.Bits(len(s.locals[i].children)) * (2*idb + pb) // child entries
	b += s.lr.LocalBits(i)
	b += s.lr.Label(i).Bits() // node keeps its own label to hand to headers
	for range s.rendezvous[i] {
		b += bitsize.NameBits
	}
	for _, l := range s.rendezvous[i] {
		b += l.Bits()
	}
	return b
}

// --- routing step machine ---

type phase uint8

const (
	phaseToRendezvous phase = iota
	phaseToTarget
	phaseToSource
)

// Route is the header of one lookup in progress.
type Route struct {
	Target uint64
	phase  phase
	rvPre  int32           // rendezvous preorder number
	leg    treeroute.Label // in effect for phaseToTarget / phaseToSource
	ret    treeroute.Label // source's label (return address)
	// Outcome flags.
	Found    bool
	Negative bool
}

// HeaderBits returns the accounting size of the header.
func (h *Route) HeaderBits() bitsize.Bits {
	return bitsize.NameBits + 8 + 32 + h.leg.Bits() + h.ret.Bits()
}

// Action tells the driving engine what a step decided.
type Action uint8

const (
	// Forward: cross the returned port.
	Forward Action = iota
	// Delivered: the current node is the destination.
	Delivered
	// ReportedNotFound: the lookup failed and has returned to the
	// source.
	ReportedNotFound
)

// NewRoute prepares a lookup for ext starting at src, which must be a
// member. The source's own label is the return address.
func (s *Scheme) NewRoute(ext uint64, src graph.NodeID) (*Route, error) {
	ret, ok := s.lr.LabelOf(src)
	if !ok {
		return nil, fmt.Errorf("covroute: source %d is not a member", src)
	}
	return &Route{
		Target: ext,
		phase:  phaseToRendezvous,
		rvPre:  s.rendezvousPre(ext),
		ret:    ret,
	}, nil
}

// Step advances the lookup at graph node x using only x's local state
// and the header.
func (s *Scheme) Step(x graph.NodeID, h *Route) (Action, int, error) {
	i, ok := s.t.Index(x)
	if !ok {
		return 0, 0, fmt.Errorf("covroute: node %d is not a member", x)
	}
	switch h.phase {
	case phaseToRendezvous:
		lo := &s.locals[i]
		if h.rvPre == lo.pre {
			// At the rendezvous: resolve the name.
			if lbl, hit := s.rendezvous[i][h.Target]; hit {
				if s.t.Graph().Name(x) == h.Target {
					h.Found = true
					return Delivered, 0, nil
				}
				h.phase = phaseToTarget
				h.leg = lbl
				return s.Step(x, h)
			}
			h.phase = phaseToSource
			h.leg = h.ret
			return s.Step(x, h)
		}
		port, err := s.intervalStep(lo, h.rvPre, x)
		if err != nil {
			return 0, 0, err
		}
		return Forward, port, nil
	case phaseToTarget:
		arrived, port, err := s.lr.Step(x, h.leg)
		if err != nil {
			return 0, 0, err
		}
		if arrived {
			h.Found = true
			return Delivered, 0, nil
		}
		return Forward, port, nil
	default: // phaseToSource
		arrived, port, err := s.lr.Step(x, h.leg)
		if err != nil {
			return 0, 0, err
		}
		if arrived {
			h.Negative = true
			return ReportedNotFound, 0, nil
		}
		return Forward, port, nil
	}
}

// intervalStep picks the port toward the member with preorder target.
func (s *Scheme) intervalStep(lo *local, target int32, x graph.NodeID) (int, error) {
	if target < lo.pre || target >= lo.post {
		if lo.parentPort < 0 {
			return 0, fmt.Errorf("covroute: preorder %d outside tree at root %d", target, x)
		}
		return int(lo.parentPort), nil
	}
	// Binary search the child whose interval contains target. The
	// children intervals partition (pre, post).
	cs := lo.children
	idx := sort.Search(len(cs), func(j int) bool { return cs[j].post > target })
	if idx >= len(cs) || cs[idx].pre > target {
		return 0, fmt.Errorf("covroute: interval gap for preorder %d at node %d", target, x)
	}
	return int(cs[idx].port), nil
}

// Run drives a full lookup for tests: it returns whether the name was
// found, the traversed node path, and the node where the route ended
// (the target on success, the source on failure).
func (s *Scheme) Run(ext uint64, src graph.NodeID) (found bool, path []graph.NodeID, err error) {
	h, err := s.NewRoute(ext, src)
	if err != nil {
		return false, nil, err
	}
	g := s.t.Graph()
	cur := src
	path = []graph.NodeID{cur}
	for steps := 0; ; steps++ {
		if steps > 8*s.t.Len() {
			return false, path, fmt.Errorf("covroute: lookup not terminating")
		}
		act, port, err := s.Step(cur, h)
		if err != nil {
			return false, path, err
		}
		switch act {
		case Delivered:
			return true, path, nil
		case ReportedNotFound:
			return false, path, nil
		case Forward:
			cur = g.EdgeAt(cur, port).To
			path = append(path, cur)
		}
	}
}
