package gio

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	return g2
}

func TestRoundTripPreservesEverything(t *testing.T) {
	g := gen.Gnp(1, 60, 0.08, gen.Uniform(1, 9))
	g2 := roundTrip(t, g)
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("size changed: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if g2.Name(u) != g.Name(u) {
			t.Fatalf("name of %d changed", u)
		}
		if g2.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d changed", u)
		}
	}
	// The metric must be identical.
	d1 := sssp.From(g, 0)
	d2 := sssp.From(g2, 0)
	for v := range d1.Dist {
		if math.Abs(d1.Dist[v]-d2.Dist[v]) > 1e-12 {
			t.Fatalf("distance to %d changed", v)
		}
	}
}

func TestRoundTripWithLabels(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddLabeled("alpha")
	c := b.AddLabeled("beta")
	b.AddEdge(a, c, 2.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2 := roundTrip(t, g)
	if _, ok := g2.LookupLabel("alpha"); !ok {
		t.Fatal("label lost in round trip")
	}
	if g2.DisplayName(0) != "alpha" {
		t.Fatal("display name lost")
	}
}

func TestRoundTripExactWeights(t *testing.T) {
	// Power-of-two weights must survive exactly (the Δ experiments
	// depend on exactness).
	g := gen.AspectLadder(2, 2, 4, 40)
	g2 := roundTrip(t, g)
	// Port order may differ after a round trip; compare the incident
	// (neighbor, weight) multisets.
	pairs := func(gr *graph.Graph, u graph.NodeID) []string {
		var out []string
		gr.Neighbors(u, func(e graph.Edge) bool {
			out = append(out, fmt.Sprintf("%d:%v", e.To, e.Weight))
			return true
		})
		sort.Strings(out)
		return out
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		a, b := pairs(g, u), pairs(g2, u)
		if len(a) != len(b) {
			t.Fatalf("incidence of %d changed size", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("incidence of %d changed: %v vs %v", u, a[i], b[i])
			}
		}
	}
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"missing n":         "v 0 5\n",
		"duplicate n":       "n 1 0\nn 1 0\nv 0 5\n",
		"bad counts":        "n x 0\n",
		"short v":           "n 1 0\nv 0\n",
		"non-dense ids":     "n 2 0\nv 1 5\nv 0 6\n",
		"duplicate name":    "n 2 0\nv 0 5\nv 1 5\n",
		"edge before nodes": "n 1 1\ne 0 1 1\nv 0 5\n",
		"edge out of range": "n 1 1\nv 0 5\ne 0 7 1\n",
		"self loop":         "n 2 1\nv 0 5\nv 1 6\ne 0 0 1\n",
		"bad weight":        "n 2 1\nv 0 5\nv 1 6\ne 0 1 -3\n",
		"node undercount":   "n 3 0\nv 0 5\n",
		"edge overcount":    "n 2 0\nv 0 5\nv 1 6\ne 0 1 1\n",
		"unknown record":    "n 1 0\nv 0 5\nz 1 2\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestReadAcceptsCommentsAndBlanks(t *testing.T) {
	input := "# a workload\n\nn 2 1\nv 0 10\nv 1 20\n\n# edge list\ne 0 1 1.5\n"
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

// Property: any generated graph survives a round trip with its metric
// intact.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Gnp(seed, 30, 0.15, gen.Uniform(1, 9))
		var buf bytes.Buffer
		if Write(&buf, g) != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil || g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		d1 := sssp.From(g, 0)
		d2 := sssp.From(g2, 0)
		for v := range d1.Dist {
			if math.Abs(d1.Dist[v]-d2.Dist[v]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
