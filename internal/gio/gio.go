// Package gio reads and writes graphs in a line-oriented text format,
// so workloads can be generated once (cmd/graphgen), stored, and
// replayed through the simulators and benchmarks:
//
//	# comment
//	n <nodes> <edges>
//	v <id> <name> [label]
//	e <u> <v> <weight>
//
// Node ids are dense integers in declaration order; names are the
// 64-bit routing names; the optional label is a display string (no
// whitespace). The reader validates counts, ranges, weights and
// duplicate declarations, and returns line-numbered errors.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"compactroute/internal/graph"
)

// Write emits g in the text format.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d %d\n", g.N(), g.M())
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if label, ok := g.Label(u); ok {
			fmt.Fprintf(bw, "v %d %d %s\n", u, g.Name(u), label)
		} else {
			fmt.Fprintf(bw, "v %d %d\n", u, g.Name(u))
		}
	}
	var err error
	for u := graph.NodeID(0); int(u) < g.N() && err == nil; u++ {
		g.Neighbors(u, func(e graph.Edge) bool {
			if u < e.To {
				_, err = fmt.Fprintf(bw, "e %d %d %s\n", u, e.To,
					strconv.FormatFloat(e.Weight, 'g', -1, 64))
			}
			return err == nil
		})
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a graph from the text format.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := graph.NewBuilder()
	var (
		wantN, wantM = -1, -1
		seenV, seenE int
		lineNo       int
	)
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("gio: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if wantN >= 0 {
				return nil, fail("duplicate n line")
			}
			if len(fields) != 3 {
				return nil, fail("n needs 2 arguments")
			}
			var err1, err2 error
			wantN, err1 = strconv.Atoi(fields[1])
			wantM, err2 = strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || wantN < 0 || wantM < 0 {
				return nil, fail("invalid counts %q %q", fields[1], fields[2])
			}
		case "v":
			if wantN < 0 {
				return nil, fail("v before n")
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fail("v needs 2 or 3 arguments")
			}
			id, err1 := strconv.Atoi(fields[1])
			name, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fail("invalid node %q", line)
			}
			if id != seenV {
				return nil, fail("node ids must be dense and ordered: got %d, want %d", id, seenV)
			}
			var got graph.NodeID
			if len(fields) == 4 {
				got = b.AddLabeled(fields[3])
				// The label hash must agree with the declared name,
				// otherwise the file was produced by something else.
				_ = got
			} else {
				got = b.AddNode(name)
			}
			if int(got) != id {
				return nil, fail("duplicate node name or label in %q", line)
			}
			seenV++
		case "e":
			if len(fields) != 4 {
				return nil, fail("e needs 3 arguments")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("invalid edge %q", line)
			}
			if u < 0 || v < 0 || u >= seenV || v >= seenV {
				return nil, fail("edge endpoint out of range in %q", line)
			}
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), w); err != nil {
				return nil, fail("%v", err)
			}
			seenE++
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: %w", err)
	}
	if wantN < 0 {
		return nil, fmt.Errorf("gio: missing n line")
	}
	if seenV != wantN {
		return nil, fmt.Errorf("gio: declared %d nodes, found %d", wantN, seenV)
	}
	if seenE != wantM {
		return nil, fmt.Errorf("gio: declared %d edges, found %d", wantM, seenE)
	}
	return b.Build()
}
