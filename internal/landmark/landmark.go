// Package landmark implements §2.3 of the paper: the low-discrepancy
// landmark hierarchy used by sparse levels.
//
// A chain V = C₀ ⊇ C₁ ⊇ … ⊇ C_k = ∅ is sampled by keeping each member
// of C_{i−1} independently with probability (n/ln n)^{−1/k}. The rank
// of x is the largest j with x ∈ C_j. For every node u and level i,
// S(u,i) is the set of the ⌈16·n^{2/k}·ln n⌉ closest members of C_i
// (the paper's nearby landmarks; the 16 is tunable via SFactor),
// m(u,i) is the highest rank present in A(u,i), and the center c(u,i)
// is the closest member of C_{m(u,i)} — the landmark a sparse-level
// search routes through.
//
// Claims 1 and 2 (hitting and congestion of the sampled sets) hold
// with high probability; VerifyClaim1/VerifyClaim2 measure them on the
// actual instance, and VerifyLemma3 measures the sparse-neighborhood
// property they imply. To make routing deterministically complete, the
// S-set capacity at the top occupied rank is raised (if ever needed)
// so that every node's S contains *all* top-rank landmarks: the
// terminal phase of the routing scheme then always has a spanning tree
// to search (DESIGN.md substitution #1/#5).
package landmark

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/decomp"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/xrand"
)

// Params configures the hierarchy.
type Params struct {
	// K is the trade-off parameter k ≥ 1.
	K int
	// SFactor scales the S-set capacity ⌈SFactor·n^{2/k}·ln n⌉.
	// The paper's constant is 16; experiments may scale it down
	// (DESIGN.md #5). Default 16.
	SFactor float64
	// Seed drives the sampling (ignored when Deterministic).
	Seed uint64
	// Deterministic replaces the random sampling with the greedy
	// hitting-set derandomization of §2.3 (see derand.go): Claim 1
	// then holds by construction instead of whp.
	Deterministic bool
}

func (p *Params) normalize() {
	if p.K < 1 {
		p.K = 1
	}
	if p.SFactor <= 0 {
		p.SFactor = 16
	}
}

// Hierarchy is the landmark structure of one graph.
type Hierarchy struct {
	g   *graph.Graph
	all []*sssp.Result
	k   int

	rank    []int8 // rank(x): largest j with x ∈ C_j
	top     int    // largest j with C_j non-empty
	sCap    int    // base S-set capacity
	sCapTop int    // capacity at the top rank (≥ |C_top| for coverage)

	// s[u][i] = S(u,i), each in (distance, name) order.
	s [][][]graph.NodeID
	// members[c] = {v : c ∈ S(v)}, sorted, for every landmark c.
	members map[graph.NodeID][]graph.NodeID
	// m[u][i], c[u][i] for i ∈ 0..k.
	mRank   [][]int8
	centers [][]graph.NodeID
}

// Build samples the hierarchy and computes all derived structures.
// dec supplies the balls A(u,i); all must be the same results dec was
// built from.
func Build(g *graph.Graph, all []*sssp.Result, dec *decomp.Decomposition, p Params) (*Hierarchy, error) {
	p.normalize()
	if len(all) != g.N() {
		return nil, fmt.Errorf("landmark: got %d results for %d nodes", len(all), g.N())
	}
	if dec.K() != p.K {
		return nil, fmt.Errorf("landmark: decomposition k=%d, params k=%d", dec.K(), p.K)
	}
	n := g.N()
	h := &Hierarchy{g: g, all: all, k: p.K, rank: make([]int8, n)}

	if p.Deterministic {
		h.rank, h.top = buildDeterministicRanks(g, dec, p.K)
	} else {
		// Sample C₁..C_{k−1}.
		rng := xrand.New(p.Seed ^ 0x1a2dbeef)
		keep := math.Pow(float64(n)/math.Log(math.Max(float64(n), 3)), -1/float64(p.K))
		for v := 0; v < n; v++ {
			r := 0
			for j := 1; j <= p.K-1; j++ {
				if rng.Bool(keep) {
					r = j
				} else {
					break
				}
			}
			h.rank[v] = int8(r)
			if r > h.top {
				h.top = r
			}
		}
	}

	// S-set capacity.
	logn := math.Log(math.Max(float64(n), 2))
	h.sCap = int(math.Ceil(p.SFactor * math.Pow(float64(n), 2/float64(p.K)) * logn))
	if h.sCap < 1 {
		h.sCap = 1
	}
	// Terminal coverage: S(v, top) must hold every top-rank landmark.
	topCount := 0
	for v := 0; v < n; v++ {
		if int(h.rank[v]) == h.top {
			topCount++
		}
	}
	h.sCapTop = h.sCap
	if topCount > h.sCapTop {
		h.sCapTop = topCount
	}

	h.computeS()
	h.computeCenters(dec)
	return h, nil
}

func (h *Hierarchy) computeS() {
	n := h.g.N()
	h.s = make([][][]graph.NodeID, n)
	h.members = make(map[graph.NodeID][]graph.NodeID)
	for u := 0; u < n; u++ {
		h.s[u] = make([][]graph.NodeID, h.top+1)
		seen := make(map[graph.NodeID]bool)
		for i := 0; i <= h.top; i++ {
			cap := h.sCap
			if i == h.top {
				cap = h.sCapTop
			}
			set := h.all[u].Closest(cap, func(v graph.NodeID) bool {
				return int(h.rank[v]) >= i
			})
			h.s[u][i] = set
			for _, c := range set {
				if !seen[c] {
					seen[c] = true
					h.members[c] = append(h.members[c], graph.NodeID(u))
				}
			}
		}
	}
	for c := range h.members {
		m := h.members[c]
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	}
}

func (h *Hierarchy) computeCenters(dec *decomp.Decomposition) {
	n := h.g.N()
	h.mRank = make([][]int8, n)
	h.centers = make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		h.mRank[u] = make([]int8, h.k+1)
		h.centers[u] = make([]graph.NodeID, h.k+1)
		for i := 0; i <= h.k; i++ {
			maxR := int8(0)
			for _, v := range dec.A(graph.NodeID(u), i) {
				if h.rank[v] > maxR {
					maxR = h.rank[v]
				}
			}
			h.mRank[u][i] = maxR
			c := h.all[u].Closest(1, func(v graph.NodeID) bool {
				return h.rank[v] >= maxR
			})
			if len(c) == 0 {
				// Unreachable in connected graphs: u itself has rank ≥ 0.
				c = []graph.NodeID{graph.NodeID(u)}
			}
			h.centers[u][i] = c[0]
		}
	}
}

// K returns the parameter k.
func (h *Hierarchy) K() int { return h.k }

// Rank returns the rank of v.
func (h *Hierarchy) Rank(v graph.NodeID) int { return int(h.rank[v]) }

// TopRank returns the largest occupied rank.
func (h *Hierarchy) TopRank() int { return h.top }

// LevelSize returns |C_i|.
func (h *Hierarchy) LevelSize(i int) int {
	c := 0
	for v := range h.rank {
		if int(h.rank[v]) >= i {
			c++
		}
	}
	return c
}

// SCap returns the base S-set capacity.
func (h *Hierarchy) SCap() int { return h.sCap }

// SCapAt returns the S-set capacity at a level (top level may be
// raised for terminal coverage).
func (h *Hierarchy) SCapAt(i int) int {
	if i == h.top {
		return h.sCapTop
	}
	return h.sCap
}

// S returns S(u,i) in (distance, name) order (do not mutate). Levels
// above the top occupied rank are empty.
func (h *Hierarchy) S(u graph.NodeID, i int) []graph.NodeID {
	if i > h.top || h.s == nil {
		return nil
	}
	return h.s[u][i]
}

// InS reports whether c ∈ S(u) = ∪_i S(u,i).
func (h *Hierarchy) InS(u, c graph.NodeID) bool {
	m := h.members[c]
	p := sort.Search(len(m), func(x int) bool { return m[x] >= u })
	return p < len(m) && m[p] == u
}

// Members returns {v : c ∈ S(v)}, sorted — the span of the landmark
// tree T(c) (do not mutate).
func (h *Hierarchy) Members(c graph.NodeID) []graph.NodeID { return h.members[c] }

// Landmarks returns every node that appears in some S set (the roots
// of the landmark trees), sorted.
func (h *Hierarchy) Landmarks() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(h.members))
	for c := range h.members {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// M returns m(u,i), the highest rank present in A(u,i).
func (h *Hierarchy) M(u graph.NodeID, i int) int { return int(h.mRank[u][i]) }

// Center returns c(u,i), the closest rank-m(u,i) landmark to u.
func (h *Hierarchy) Center(u graph.NodeID, i int) graph.NodeID { return h.centers[u][i] }

// --- verification of the probabilistic claims ---

// VerifyClaim1 checks Claim 1 on every (u, radius-index) ball: if
// 4·(ln n)^{(k−j)/k}·n^{j/k} ≤ |B| then B ∩ C_j ≠ ∅. Returns the
// number of (ball, j) pairs checked and how many failed.
func (h *Hierarchy) VerifyClaim1(dec *decomp.Decomposition) (checked, violations int) {
	n := float64(h.g.N())
	logn := math.Log(math.Max(n, 2))
	for u := 0; u < h.g.N(); u++ {
		for i := 0; i <= dec.Cap(); i++ {
			ball := h.all[u].Ball(dec.Radius(i))
			for j := 0; j <= h.k-1; j++ {
				thr := 4 * math.Pow(logn, float64(h.k-j)/float64(h.k)) * math.Pow(n, float64(j)/float64(h.k))
				if float64(len(ball)) < thr {
					continue
				}
				checked++
				hit := false
				for _, v := range ball {
					if int(h.rank[v]) >= j {
						hit = true
						break
					}
				}
				if !hit {
					violations++
				}
			}
		}
	}
	return checked, violations
}

// VerifyClaim2 checks Claim 2 on every (u, radius-index) ball: if
// |B| < 4·(ln n)^{(k−j−1)/k}·n^{(j+2)/k} then |B ∩ C_j| ≤
// 16·n^{2/k}·ln n. Returns pairs checked and failures.
func (h *Hierarchy) VerifyClaim2(dec *decomp.Decomposition) (checked, violations int) {
	n := float64(h.g.N())
	logn := math.Log(math.Max(n, 2))
	capC := 16 * math.Pow(n, 2/float64(h.k)) * logn
	for u := 0; u < h.g.N(); u++ {
		for i := 0; i <= dec.Cap(); i++ {
			ball := h.all[u].Ball(dec.Radius(i))
			for j := 0; j <= h.k-1; j++ {
				thr := 4 * math.Pow(logn, float64(h.k-j-1)/float64(h.k)) * math.Pow(n, float64(j+2)/float64(h.k))
				if float64(len(ball)) >= thr {
					continue
				}
				checked++
				count := 0
				for _, v := range ball {
					if int(h.rank[v]) >= j {
						count++
					}
				}
				if float64(count) > capC {
					violations++
				}
			}
		}
	}
	return checked, violations
}

// VerifyLemma3 checks the sparse-neighborhood property on the
// instance: for every u, sparse level i, and v ∈ E(u,i), the center
// c(u,i) lies in S(v). Returns triples checked and failures. Failures
// are possible in principle (the lemma is whp) — the routing scheme
// repairs them constructively; see core.
func (h *Hierarchy) VerifyLemma3(dec *decomp.Decomposition) (checked, violations int) {
	for u := 0; u < h.g.N(); u++ {
		for i := 0; i <= h.k; i++ {
			if dec.Dense(graph.NodeID(u), i) {
				continue
			}
			c := h.Center(graph.NodeID(u), i)
			for _, v := range dec.E(graph.NodeID(u), i) {
				checked++
				if !h.InS(v, c) {
					violations++
				}
			}
		}
	}
	return checked, violations
}
