package landmark

import (
	"testing"

	"compactroute/internal/decomp"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

func build(t *testing.T, g *graph.Graph, k int, sFactor float64, seed uint64) (*Hierarchy, *decomp.Decomposition) {
	t.Helper()
	all := sssp.AllPairs(g)
	dec, err := decomp.Build(g, all, decomp.Params{K: k})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(g, all, dec, Params{K: k, SFactor: sFactor, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return h, dec
}

func TestRanksWellFormed(t *testing.T) {
	g := gen.Gnp(1, 200, 0.02, gen.Uniform(1, 4))
	k := 3
	h, _ := build(t, g, k, 16, 7)
	counts := make([]int, k)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		r := h.Rank(v)
		if r < 0 || r > k-1 {
			t.Fatalf("rank(%d) = %d out of [0,%d]", v, r, k-1)
		}
		counts[r]++
	}
	// C_0 = V.
	if h.LevelSize(0) != g.N() {
		t.Fatalf("|C_0| = %d", h.LevelSize(0))
	}
	// Chain: |C_i| non-increasing.
	for i := 1; i < k; i++ {
		if h.LevelSize(i) > h.LevelSize(i-1) {
			t.Fatal("C chain not nested")
		}
	}
	if h.TopRank() > k-1 {
		t.Fatal("top rank out of range")
	}
}

func TestK1Degenerate(t *testing.T) {
	g := gen.Path(2, 10, gen.Unit())
	h, _ := build(t, g, 1, 16, 1)
	if h.TopRank() != 0 {
		t.Fatalf("k=1 top rank = %d", h.TopRank())
	}
	// S(u,0) must be all of V (capacity exceeds n).
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if len(h.S(u, 0)) != g.N() {
			t.Fatalf("k=1: |S(%d,0)| = %d", u, len(h.S(u, 0)))
		}
	}
}

func TestSSetsAreClosestLandmarks(t *testing.T) {
	g := gen.Gnp(3, 100, 0.05, gen.Uniform(1, 5))
	k := 3
	h, _ := build(t, g, k, 0.05, 3) // small factor so S is a strict subset
	all := sssp.AllPairs(g)
	for u := graph.NodeID(0); int(u) < g.N(); u += 7 {
		for i := 0; i <= h.TopRank(); i++ {
			s := h.S(u, i)
			if len(s) == 0 {
				t.Fatalf("S(%d,%d) empty", u, i)
			}
			if len(s) > h.SCapAt(i) {
				t.Fatalf("S(%d,%d) overflows cap", u, i)
			}
			// Every member has rank ≥ i.
			for _, c := range s {
				if h.Rank(c) < i {
					t.Fatalf("S(%d,%d) contains rank-%d node", u, i, h.Rank(c))
				}
			}
			// No closer rank-≥i node is excluded.
			last := s[len(s)-1]
			r := all[u]
			for v := graph.NodeID(0); int(v) < g.N(); v++ {
				if h.Rank(v) >= i && r.Dist[v] < r.Dist[last] {
					found := false
					for _, c := range s {
						if c == v {
							found = true
							break
						}
					}
					if !found && len(s) == h.SCapAt(i) {
						t.Fatalf("closer landmark %d missing from full S(%d,%d)", v, u, i)
					}
				}
			}
		}
	}
}

func TestInSMatchesMembers(t *testing.T) {
	g := gen.Geometric(4, 60, 0.25)
	h, _ := build(t, g, 2, 0.2, 5)
	for _, c := range h.Landmarks() {
		for _, v := range h.Members(c) {
			if !h.InS(v, c) {
				t.Fatalf("Members/InS disagree for c=%d v=%d", c, v)
			}
		}
	}
	// Spot-check the converse on a few pairs.
	for u := graph.NodeID(0); int(u) < g.N(); u += 11 {
		for i := 0; i <= h.TopRank(); i++ {
			for _, c := range h.S(u, i) {
				if !h.InS(u, c) {
					t.Fatalf("c ∈ S(u,%d) but InS false", i)
				}
			}
		}
	}
}

func TestCenterProperties(t *testing.T) {
	g := gen.Gnp(5, 80, 0.06, gen.Uniform(1, 3))
	k := 3
	h, dec := build(t, g, k, 16, 9)
	all := dec.Results()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for i := 0; i <= k; i++ {
			m := h.M(u, i)
			c := h.Center(u, i)
			if h.Rank(c) < m {
				t.Fatalf("center rank %d < m(u,i)=%d", h.Rank(c), m)
			}
			// m(u,i) is realized inside A(u,i).
			found := false
			for _, v := range dec.A(u, i) {
				if h.Rank(v) >= m {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("m(%d,%d)=%d not present in A", u, i, m)
			}
			// The center is the closest such landmark, so it is within
			// the A(u,i) radius for i ≥ 1.
			if i >= 1 && all[u].Dist[c] > dec.ARadius(u, i)+1e-9 {
				t.Fatalf("center %d outside A(%d,%d)", c, u, i)
			}
		}
	}
}

func TestCenterAtLevelZeroIsSelfish(t *testing.T) {
	// A(u,0) = {u}, so m(u,0) = rank(u) and the closest rank-≥rank(u)
	// node is u itself.
	g := gen.Ring(6, 20, gen.Unit())
	h, _ := build(t, g, 2, 16, 11)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if h.Center(u, 0) != u {
			t.Fatalf("c(%d,0) = %d, want self", u, h.Center(u, 0))
		}
	}
}

func TestTerminalCoverage(t *testing.T) {
	// Every node's S must contain all top-rank landmarks, so the
	// terminal routing phase always has a spanning tree.
	g := gen.Gnp(7, 150, 0.03, gen.Uniform(1, 4))
	h, _ := build(t, g, 3, 0.05, 13) // tiny factor to stress the bump
	top := h.TopRank()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		s := h.S(u, top)
		want := h.LevelSize(top)
		if len(s) != want {
			t.Fatalf("S(%d,top) has %d of %d top landmarks", u, len(s), want)
		}
	}
}

func TestClaimsHoldOnTypicalInstances(t *testing.T) {
	// Claims 1–2 are whp statements; with the paper's constants they
	// should hold outright on moderate instances.
	g := gen.Gnp(8, 120, 0.04, gen.Uniform(1, 5))
	k := 3
	h, dec := build(t, g, k, 16, 17)
	if checked, bad := h.VerifyClaim1(dec); bad != 0 {
		t.Fatalf("Claim 1: %d/%d violations", bad, checked)
	}
	if checked, bad := h.VerifyClaim2(dec); bad != 0 {
		t.Fatalf("Claim 2: %d/%d violations", bad, checked)
	}
}

func TestLemma3WithPaperConstants(t *testing.T) {
	// With SFactor=16 the sparse-neighborhood property should hold on
	// instances of this size (whp statement, deterministic seeds).
	for _, seed := range []uint64{1, 2, 3} {
		g := gen.Gnp(seed, 100, 0.05, gen.Uniform(1, 6))
		h, dec := build(t, g, 2, 16, seed)
		checked, bad := h.VerifyLemma3(dec)
		if checked == 0 {
			t.Fatal("Lemma 3 test vacuous")
		}
		if bad != 0 {
			t.Fatalf("seed %d: Lemma 3 %d/%d violations with paper constants", seed, bad, checked)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := gen.Path(9, 5, gen.Unit())
	all := sssp.AllPairs(g)
	dec, _ := decomp.Build(g, all, decomp.Params{K: 2})
	if _, err := Build(g, nil, dec, Params{K: 2}); err == nil {
		t.Fatal("nil results accepted")
	}
	if _, err := Build(g, all, dec, Params{K: 3}); err == nil {
		t.Fatal("k mismatch accepted")
	}
}

func TestDeterministicHierarchyClaim1ByConstruction(t *testing.T) {
	for _, seedG := range []uint64{1, 2, 3} {
		g := gen.Gnp(seedG, 90, 0.06, gen.Uniform(1, 5))
		all := sssp.AllPairs(g)
		dec, err := decomp.Build(g, all, decomp.Params{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		h, err := Build(g, all, dec, Params{K: 3, SFactor: 16, Deterministic: true})
		if err != nil {
			t.Fatal(err)
		}
		checked, bad := h.VerifyClaim1(dec)
		if bad != 0 {
			t.Fatalf("deterministic hierarchy violated Claim 1: %d/%d", bad, checked)
		}
		// Level sizes must shrink.
		for i := 1; i <= h.TopRank(); i++ {
			if h.LevelSize(i) > h.LevelSize(i-1) {
				t.Fatal("deterministic chain not nested")
			}
		}
	}
}

func TestDeterministicHierarchyIsSeedFree(t *testing.T) {
	g := gen.Geometric(4, 60, 0.25)
	all := sssp.AllPairs(g)
	dec, _ := decomp.Build(g, all, decomp.Params{K: 3})
	a, err := Build(g, all, dec, Params{K: 3, Seed: 1, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, all, dec, Params{K: 3, Seed: 999, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if a.Rank(v) != b.Rank(v) {
			t.Fatal("deterministic hierarchy depends on seed")
		}
	}
}

func TestDeterministicK1AndTiny(t *testing.T) {
	g := gen.Path(5, 6, gen.Unit())
	all := sssp.AllPairs(g)
	dec, _ := decomp.Build(g, all, decomp.Params{K: 1})
	h, err := Build(g, all, dec, Params{K: 1, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.TopRank() != 0 {
		t.Fatal("k=1 deterministic top rank wrong")
	}
}
