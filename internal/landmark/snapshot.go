package landmark

import (
	"fmt"

	"compactroute/internal/graph"
)

// Snapshot is the exported persistent form of a Hierarchy: ranks,
// capacities, and the per-node per-level centers — everything the
// routing scheme consults after construction. The S sets and the
// members transpose are excluded: they can be Θ(n²) at small k, exist
// to seed tree construction, and the enclosing scheme persists the
// materialized trees themselves. A rehydrated hierarchy answers Rank,
// TopRank, SCap/SCapAt, M, and Center; S, Members, InS, and Landmarks
// report empty.
type Snapshot struct {
	K       int
	Rank    []int8
	Top     int
	SCap    int
	SCapTop int
	MRank   [][]int8
	Centers [][]graph.NodeID
}

// Snapshot captures the hierarchy's persistent state.
func (h *Hierarchy) Snapshot() *Snapshot {
	return &Snapshot{
		K:       h.k,
		Rank:    h.rank,
		Top:     h.top,
		SCap:    h.sCap,
		SCapTop: h.sCapTop,
		MRank:   h.mRank,
		Centers: h.centers,
	}
}

// FromSnapshot rehydrates a Hierarchy over g without S sets (see
// Snapshot for what that implies).
func FromSnapshot(g *graph.Graph, s *Snapshot) (*Hierarchy, error) {
	n := g.N()
	if s.K < 1 {
		return nil, fmt.Errorf("landmark: snapshot k=%d", s.K)
	}
	if len(s.Rank) != n || len(s.MRank) != n || len(s.Centers) != n {
		return nil, fmt.Errorf("landmark: snapshot sized for %d/%d/%d nodes, graph has %d",
			len(s.Rank), len(s.MRank), len(s.Centers), n)
	}
	for u := 0; u < n; u++ {
		if len(s.MRank[u]) != s.K+1 || len(s.Centers[u]) != s.K+1 {
			return nil, fmt.Errorf("landmark: node %d has %d/%d levels, want %d",
				u, len(s.MRank[u]), len(s.Centers[u]), s.K+1)
		}
		for i := 0; i <= s.K; i++ {
			if c := s.Centers[u][i]; c < 0 || int(c) >= n {
				return nil, fmt.Errorf("landmark: node %d level %d has center %d out of range", u, i, c)
			}
		}
	}
	return &Hierarchy{
		g:       g,
		k:       s.K,
		rank:    s.Rank,
		top:     s.Top,
		sCap:    s.SCap,
		sCapTop: s.SCapTop,
		mRank:   s.MRank,
		centers: s.Centers,
	}, nil
}
