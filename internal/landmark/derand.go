package landmark

import (
	"math"

	"compactroute/internal/decomp"
	"compactroute/internal/graph"
)

// The paper notes (§2.3) that the landmark sampling "can be
// de-randomized using the method of conditional probabilities and
// pessimistic estimators". This file implements a deterministic
// hierarchy with the same interface guarantee: Claim 1 — every ball
// B(u,2^j) with at least 4·(ln n)^{(k−j)/k}·n^{j/k} nodes of C_{j−1}…
// contains a C_j landmark — holds *by construction*, because C_j is a
// greedy hitting set for exactly those balls. Greedy hitting sets are
// the textbook constructive counterpart of the union-bound argument:
// each round picks the candidate covering the most unhit balls, giving
// a set within a ln(#balls) factor of optimal, i.e. |C_j| =
// Õ(n^{1−j/k}) like the sampled hierarchy. (Claim 2's congestion bound
// is not re-proved greedily; as with sampling, the S-set capacity
// enforcement keeps routing deterministic regardless.)

// buildDeterministicRanks computes ranks via greedy hitting sets,
// returning rank[v] and the top occupied rank.
func buildDeterministicRanks(g *graph.Graph, dec *decomp.Decomposition, k int) ([]int8, int) {
	n := g.N()
	rank := make([]int8, n) // all start at rank 0 = C_0 = V
	if k <= 1 || n < 2 {
		return rank, 0
	}
	logn := math.Log(math.Max(float64(n), 2))
	inPrev := make([]bool, n) // C_{i-1} membership
	for v := range inPrev {
		inPrev[v] = true
	}
	top := 0
	for level := 1; level <= k-1; level++ {
		threshold := 4 * math.Pow(logn, float64(k-level)/float64(k)) *
			math.Pow(float64(n), float64(level)/float64(k))
		// Collect the balls C_level must hit: every B(u, 2^j) holding
		// at least threshold members of C_{level-1}.
		type ball struct {
			members []graph.NodeID // C_{level-1} members of the ball
			hit     bool
		}
		var balls []ball
		results := dec.Results()
		for u := 0; u < n; u++ {
			for j := 0; j <= dec.Cap(); j++ {
				r := dec.Radius(j)
				full := results[u].Ball(r)
				var members []graph.NodeID
				for _, v := range full {
					if inPrev[v] {
						members = append(members, v)
					}
				}
				if float64(len(members)) >= threshold {
					balls = append(balls, ball{members: members})
				}
				// Once the ball is the whole component, larger radii
				// add nothing.
				if len(full) == n {
					break
				}
			}
		}
		if len(balls) == 0 {
			break // nothing requires this level; C_level stays empty
		}
		// Greedy hitting set over candidates = C_{level-1}.
		gain := make([]int, n)
		ballsAt := make([][]int32, n) // candidate -> ball indices
		for bi := range balls {
			for _, v := range balls[bi].members {
				gain[v]++
				ballsAt[v] = append(ballsAt[v], int32(bi))
			}
		}
		remaining := len(balls)
		chosen := make([]bool, n)
		for remaining > 0 {
			best, bestGain := -1, 0
			for v := 0; v < n; v++ {
				if !chosen[v] && gain[v] > bestGain {
					best, bestGain = v, gain[v]
				}
			}
			if best < 0 {
				break // unreachable: every remaining ball has members
			}
			chosen[best] = true
			for _, bi := range ballsAt[best] {
				if balls[bi].hit {
					continue
				}
				balls[bi].hit = true
				remaining--
				for _, v := range balls[bi].members {
					gain[v]--
				}
			}
		}
		// Promote chosen nodes to this level.
		any := false
		for v := 0; v < n; v++ {
			if chosen[v] {
				rank[v] = int8(level)
				any = true
			}
			inPrev[v] = chosen[v]
		}
		if !any {
			break
		}
		top = level
	}
	return rank, top
}
