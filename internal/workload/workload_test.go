package workload

import (
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
)

func testGraph() *graph.Graph {
	return gen.Gnp(5, 120, 0.05, gen.Uniform(1, 4))
}

func drawN(t *testing.T, s *Stream, n int) []Query {
	t.Helper()
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = s.Next()
	}
	return qs
}

func mustLookup(t *testing.T, g *graph.Graph, name uint64) graph.NodeID {
	t.Helper()
	id, ok := g.Lookup(name)
	if !ok {
		t.Fatalf("stream emitted unknown name %#x", name)
	}
	return id
}

func TestStreamsAreDeterministic(t *testing.T) {
	g := testGraph()
	rank := func(u, v graph.NodeID) float64 { return float64(u*31 + v) }
	for _, p := range Patterns() {
		o := Options{Seed: 42, Rank: rank, Candidates: 256, Keep: 16}
		a, err := New(p, g, o)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := New(p, g, o)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		qa, qb := drawN(t, a, 200), drawN(t, b, 200)
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("%s: query %d diverges between identical streams", p, i)
			}
		}
		c, err := New(p, g, Options{Seed: 43, Rank: rank, Candidates: 256, Keep: 16})
		if err != nil {
			t.Fatal(err)
		}
		qc := drawN(t, c, 200)
		same := 0
		for i := range qa {
			if qa[i] == qc[i] {
				same++
			}
		}
		// Adversarial replays a fixed set, so different seeds may
		// overlap heavily; every generative pattern must not.
		if p != Adversarial && same == len(qa) {
			t.Fatalf("%s: different seeds produced identical streams", p)
		}
	}
}

func TestQueriesAreValidPairs(t *testing.T) {
	g := testGraph()
	rank := func(u, v graph.NodeID) float64 { return float64(v) }
	for _, p := range Patterns() {
		s, err := New(p, g, Options{Seed: 7, Rank: rank, Candidates: 128})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range drawN(t, s, 500) {
			u := mustLookup(t, g, q.SrcName)
			v := mustLookup(t, g, q.DstName)
			if u == v {
				t.Fatalf("%s: self-pair %d", p, u)
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g := testGraph()
	s, err := New(Zipf, g, Options{Seed: 9, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const draws = 8000
	for _, q := range drawN(t, s, draws) {
		counts[q.DstName]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Under uniform traffic the hottest of 120 nodes gets ~1/120 of the
	// draws; zipf s=1.2 concentrates far more than 3× that on rank 1.
	if top < 3*draws/g.N() {
		t.Fatalf("hottest node got %d of %d draws — not skewed", top, draws)
	}
}

func TestGravityFavorsHubs(t *testing.T) {
	// A star: the center has degree n-1, every leaf degree 1, so the
	// center should appear in roughly half of all endpoint draws.
	g := gen.Star(3, 50, gen.Unit())
	s, err := New(Gravity, g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	centerName := g.Name(0)
	const draws = 2000
	hit := 0
	for _, q := range drawN(t, s, draws) {
		if q.SrcName == centerName || q.DstName == centerName {
			hit++
		}
	}
	if hit < draws/4 {
		t.Fatalf("hub appeared in %d of %d queries — degree mass ignored", hit, draws)
	}
}

func TestLocalStaysWithinBall(t *testing.T) {
	g := testGraph()
	const hops = 2
	s, err := New(Local, g, Options{Seed: 11, LocalHops: hops})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range drawN(t, s, 400) {
		u := mustLookup(t, g, q.SrcName)
		v := mustLookup(t, g, q.DstName)
		in := false
		for _, x := range hopBall(g, u, hops) {
			if x == v {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("local query %d→%d is outside the %d-hop ball", u, v, hops)
		}
	}
}

func TestAdversarialReplaysWorstPairs(t *testing.T) {
	g := testGraph()
	// Rank is a known function, so the kept set is checkable: the
	// stream must only emit pairs whose score ties or beats the best
	// score seen outside the kept set.
	rank := func(u, v graph.NodeID) float64 { return float64(u) + float64(v)/1000 }
	const keep = 8
	s, err := New(Adversarial, g, Options{Seed: 2, Rank: rank, Candidates: 512, Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	qs := drawN(t, s, 3*keep)
	distinct := make(map[Query]bool)
	for _, q := range qs {
		distinct[q] = true
	}
	if len(distinct) > keep {
		t.Fatalf("stream emitted %d distinct pairs, keep=%d", len(distinct), keep)
	}
	// Cyclic replay: draw i and draw i+keep must match.
	for i := 0; i+keep < len(qs); i++ {
		if qs[i] != qs[i+keep] {
			t.Fatalf("draws %d and %d differ — not a cycle of the kept set", i, i+keep)
		}
	}
	// Every emitted pair scores at least as high as a random sample's
	// median — they were chosen as the worst.
	worst := 0.0
	for q := range distinct {
		u, v := mustLookup(t, g, q.SrcName), mustLookup(t, g, q.DstName)
		if sc := rank(u, v); worst == 0 || sc < worst {
			worst = sc
		}
	}
	if worst < float64(g.N())/2 {
		t.Fatalf("kept pairs include score %v — not the top of the candidate set", worst)
	}
}

// TestForkVariesDrawsNotHotspots: forked streams (one per concurrent
// worker) must emit different query sequences while aiming at the
// same pattern structure — for zipf, the same hottest node — so the
// aggregate traffic keeps the pattern's shape.
func TestForkVariesDrawsNotHotspots(t *testing.T) {
	g := testGraph()
	hottest := func(fork uint64) (uint64, []Query) {
		s, err := New(Zipf, g, Options{Seed: 21, ZipfS: 1.3, Fork: fork})
		if err != nil {
			t.Fatal(err)
		}
		qs := drawN(t, s, 4000)
		counts := make(map[uint64]int)
		for _, q := range qs {
			counts[q.DstName]++
		}
		var top uint64
		for name, c := range counts {
			if c > counts[top] {
				top = name
			}
		}
		return top, qs
	}
	top0, qs0 := hottest(0)
	top1, qs1 := hottest(1)
	if top0 != top1 {
		t.Fatalf("forks disagree on the hottest node: %#x vs %#x — aggregate zipf is flattened", top0, top1)
	}
	same := 0
	for i := range qs0 {
		if qs0[i] == qs1[i] {
			same++
		}
	}
	if same == len(qs0) {
		t.Fatal("forked streams emitted identical sequences")
	}
	// Adversarial forks replay the same kept set, staggered.
	rank := func(u, v graph.NodeID) float64 { return float64(u*31 + v) }
	set := func(fork uint64) map[Query]bool {
		s, err := New(Adversarial, g, Options{Seed: 21, Rank: rank, Candidates: 128, Keep: 8, Fork: fork})
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[Query]bool)
		for _, q := range drawN(t, s, 8) {
			m[q] = true
		}
		return m
	}
	s0, s1 := set(0), set(3)
	for q := range s0 {
		if !s1[q] {
			t.Fatal("adversarial forks replay different kept sets")
		}
	}
}

func TestAdversarialNeedsRank(t *testing.T) {
	if _, err := New(Adversarial, testGraph(), Options{}); err == nil {
		t.Fatal("adversarial without Rank did not error")
	}
}

func TestUnknownPattern(t *testing.T) {
	if _, err := New(Pattern("bogus"), testGraph(), Options{}); err == nil {
		t.Fatal("unknown pattern did not error")
	}
}

func TestTinyGraphRejected(t *testing.T) {
	g := gen.Path(1, 1, gen.Unit())
	if _, err := New(Uniform, g, Options{}); err == nil {
		t.Fatal("1-node graph did not error")
	}
}
