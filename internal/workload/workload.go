// Package workload generates named traffic patterns over a network:
// deterministic, seedable streams of (src, dst) queries for driving
// the serving layer — the paper's economics only pay off under
// sustained query traffic, so the experiments need realistic (and
// adversarial) shapes of it, not just uniform pairs.
//
// Patterns:
//
//   - uniform: every ordered pair equally likely — the baseline the
//     stretch tables are measured over.
//   - zipf: Zipf-skewed hotspots — a seeded rank permutation of the
//     nodes with P(rank i) ∝ 1/(i+1)^s, applied independently to both
//     endpoints. Models the few-popular-destinations shape of real
//     traffic and maximizes cache leverage.
//   - gravity: P(u,v) ∝ deg(u)·deg(v) — the classic gravity model
//     with node degree as mass; hubs talk to hubs.
//   - local: src uniform, dst uniform within a small hop-ball around
//     src — neighbor-local traffic where compact schemes should shine
//     (short routes, bounded additive loss).
//   - adversarial: replays the worst pairs a ranking function can
//     find among a sampled candidate set — by convention the measured
//     stretch, so the stream hammers exactly where the scheme's O(k)
//     guarantee is loosest.
//
// Streams are infinite and cheap; every draw flows through one seeded
// RNG, so a (pattern, graph, options) triple reproduces the same query
// sequence on every run.
package workload

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/xrand"
)

// Query is one (src, dst) request by external node names — the form
// the serving layer and HTTP surface speak.
type Query struct {
	SrcName, DstName uint64
}

// Pattern names a traffic shape.
type Pattern string

// The named traffic shapes (see the package comment for semantics).
const (
	Uniform     Pattern = "uniform"     // independent uniform pairs
	Zipf        Pattern = "zipf"        // Zipf-skewed destination hotspots
	Gravity     Pattern = "gravity"     // P(u,v) ∝ deg(u)·deg(v)
	Local       Pattern = "local"       // destinations in a small hop-ball
	Adversarial Pattern = "adversarial" // replays the worst-stretch pairs
)

// Patterns returns every pattern in canonical order.
func Patterns() []Pattern {
	return []Pattern{Uniform, Zipf, Gravity, Local, Adversarial}
}

// Options configures a stream. The zero value of every field selects
// a sensible default.
type Options struct {
	// Seed makes the stream reproducible. Zero is a valid seed. The
	// pattern's structure — zipf hot-node identities, adversarial
	// candidate sets — derives from Seed alone, so streams that share
	// a Seed aim at the same targets.
	Seed uint64
	// Fork varies the draw sequence without changing the pattern
	// structure: give each concurrent worker a distinct Fork and the
	// workers emit different queries against the SAME hotspots, so
	// the aggregate traffic keeps the pattern's shape. Zero is a
	// valid fork.
	Fork uint64
	// ZipfS is the zipf skew exponent s; 0 means 1.1.
	ZipfS float64
	// LocalHops is the hop radius of the local pattern's ball; 0 means 2.
	LocalHops int
	// Candidates is how many random ordered pairs the adversarial
	// pattern scores; 0 means 4096 (always capped by n·(n−1)).
	Candidates int
	// Keep is how many top-ranked pairs the adversarial pattern
	// replays; 0 means 64.
	Keep int
	// Rank scores a pair for the adversarial pattern (higher = worse);
	// by convention the measured stretch. Required for Adversarial,
	// ignored otherwise.
	Rank func(u, v graph.NodeID) float64
}

// Stream is an infinite deterministic query sequence. Not safe for
// concurrent use: give each worker its own stream (fork the seed).
type Stream struct {
	pattern Pattern
	rng     *xrand.RNG
	draw    func(r *xrand.RNG) Query
}

// Pattern identifies the stream's traffic shape.
func (s *Stream) Pattern() Pattern { return s.pattern }

// Next returns the next query.
func (s *Stream) Next() Query { return s.draw(s.rng) }

// New builds a stream of the given pattern over g.
func New(p Pattern, g *graph.Graph, o Options) (*Stream, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("workload: need at least 2 nodes, have %d", n)
	}
	s := &Stream{pattern: p, rng: xrand.New(xrand.Hash64(o.Seed^0x10adc0de, o.Fork))}
	switch p {
	case Uniform:
		s.draw = func(r *xrand.RNG) Query { return uniformPair(r, g) }
	case Zipf:
		exp := o.ZipfS
		if exp == 0 {
			exp = 1.1
		}
		if exp < 0 {
			return nil, fmt.Errorf("workload: zipf exponent %v < 0", exp)
		}
		// A seeded rank permutation keeps hotspots uncorrelated with
		// node ids (and thus with names and topology).
		perm := xrand.New(o.Seed ^ 0x21bf).Perm(n)
		cdf := make([]float64, n)
		total := 0.0
		for i := range cdf {
			total += 1 / math.Pow(float64(i+1), exp)
			cdf[i] = total
		}
		pick := func(r *xrand.RNG) graph.NodeID {
			return graph.NodeID(perm[searchCDF(cdf, r.Float64()*total)])
		}
		s.draw = func(r *xrand.RNG) Query { return distinctPair(r, g, pick) }
	case Gravity:
		cdf := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			total += float64(g.Degree(graph.NodeID(i)))
			cdf[i] = total
		}
		pick := func(r *xrand.RNG) graph.NodeID {
			return graph.NodeID(searchCDF(cdf, r.Float64()*total))
		}
		s.draw = func(r *xrand.RNG) Query { return distinctPair(r, g, pick) }
	case Local:
		hops := o.LocalHops
		if hops == 0 {
			hops = 2
		}
		if hops < 1 {
			return nil, fmt.Errorf("workload: local hop radius %d < 1", hops)
		}
		balls := make(map[graph.NodeID][]graph.NodeID)
		s.draw = func(r *xrand.RNG) Query {
			u := graph.NodeID(r.Intn(n))
			ball, ok := balls[u]
			if !ok {
				ball = hopBall(g, u, hops)
				balls[u] = ball
			}
			if len(ball) == 0 { // isolated node: fall back to uniform
				return uniformPair(r, g)
			}
			v := ball[r.Intn(len(ball))]
			return Query{g.Name(u), g.Name(v)}
		}
	case Adversarial:
		if o.Rank == nil {
			return nil, fmt.Errorf("workload: adversarial pattern needs a Rank function")
		}
		worst := worstPairs(g, o)
		if len(worst) == 0 {
			return nil, fmt.Errorf("workload: adversarial pattern found no pairs")
		}
		i := int(o.Fork % uint64(len(worst))) // stagger forked replays
		s.draw = func(r *xrand.RNG) Query {
			q := worst[i%len(worst)]
			i++
			return Query{g.Name(q.u), g.Name(q.v)}
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q (have %v)", p, Patterns())
	}
	return s, nil
}

func uniformPair(r *xrand.RNG, g *graph.Graph) Query {
	n := g.N()
	u := r.Intn(n)
	v := r.Intn(n - 1)
	if v >= u {
		v++
	}
	return Query{g.Name(graph.NodeID(u)), g.Name(graph.NodeID(v))}
}

// distinctPair draws both endpoints from pick, rejecting self-pairs
// (bounded: after a few collisions it forces a uniform dst).
func distinctPair(r *xrand.RNG, g *graph.Graph, pick func(*xrand.RNG) graph.NodeID) Query {
	u := pick(r)
	for i := 0; i < 16; i++ {
		if v := pick(r); v != u {
			return Query{g.Name(u), g.Name(v)}
		}
	}
	// Degenerate weights (one node holds all the mass): any other node.
	v := graph.NodeID(r.Intn(g.N() - 1))
	if v >= u {
		v++
	}
	return Query{g.Name(u), g.Name(v)}
}

// searchCDF returns the first index whose cumulative weight exceeds x.
func searchCDF(cdf []float64, x float64) int {
	i := sort.SearchFloat64s(cdf, x)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// hopBall returns every node within the given number of hops of u
// (unweighted BFS), excluding u itself.
func hopBall(g *graph.Graph, u graph.NodeID, hops int) []graph.NodeID {
	depth := map[graph.NodeID]int{u: 0}
	frontier := []graph.NodeID{u}
	var ball []graph.NodeID
	for d := 0; d < hops && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, x := range frontier {
			g.Neighbors(x, func(e graph.Edge) bool {
				if _, seen := depth[e.To]; !seen {
					depth[e.To] = d + 1
					ball = append(ball, e.To)
					next = append(next, e.To)
				}
				return true
			})
		}
		frontier = next
	}
	return ball
}

type rankedPair struct {
	u, v  graph.NodeID
	score float64
}

// worstPairs samples candidate ordered pairs, scores them with Rank,
// and keeps the top o.Keep — ties and order broken deterministically.
func worstPairs(g *graph.Graph, o Options) []rankedPair {
	n := g.N()
	candidates := o.Candidates
	if candidates == 0 {
		candidates = 4096
	}
	if max := n * (n - 1); candidates > max {
		candidates = max
	}
	keep := o.Keep
	if keep == 0 {
		keep = 64
	}
	r := xrand.New(o.Seed ^ 0xadbeef)
	seen := make(map[[2]graph.NodeID]bool, candidates)
	pairs := make([]rankedPair, 0, candidates)
	for attempts := 0; len(pairs) < candidates && attempts < 20*candidates; attempts++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n - 1))
		if v >= u {
			v++
		}
		k := [2]graph.NodeID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		pairs = append(pairs, rankedPair{u: u, v: v, score: o.Rank(u, v)})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})
	if len(pairs) > keep {
		pairs = pairs[:keep]
	}
	return pairs
}
