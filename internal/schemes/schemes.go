// Package schemes is the registry every scheme in the repository is
// constructed, benchmarked, served, and selected through. The paper's
// point is a *family* of schemes parameterized along the space-stretch
// curve; the registry makes each family member addressable by a stable
// kind string so the facade (compactroute.Build), the experiment
// harness (internal/bench), and the daemons (cmd/routed, cmd/routebench)
// share one construction path instead of five hard-coded switches.
//
// Registered kinds at init:
//
//	paper      §3 / Theorem 1 (AGM SPAA'06), persistable
//	fulltable  stretch-1 next-hop tables, persistable
//	apcover    Awerbuch–Peleg-style hierarchy (log Δ space)
//	landmark   scale-free landmark chain (unbounded stretch)
//	tz         Thorup–Zwick labeled routing (weaker model)
package schemes

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"compactroute/internal/baseline"
	"compactroute/internal/bitsize"
	"compactroute/internal/core"
	"compactroute/internal/graph"
	"compactroute/internal/routeerr"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// The built-in kind names. This package is the single owner of these
// strings — the codec's kind tags and the facade's re-exports alias
// them, so a rename cannot silently diverge.
const (
	KindPaper         = "paper"
	KindFullTable     = "fulltable"
	KindAPCover       = "apcover"
	KindLandmarkChain = "landmark"
	KindTZ            = "tz"
)

// Config is the kind-independent construction knob set. Kinds ignore
// what they don't use (fulltable ignores K; only paper reads SFactor).
type Config struct {
	// Kind selects the scheme family member by registry name.
	Kind string
	// K is the space-stretch trade-off parameter.
	K int
	// Seed drives all randomized choices. Zero is a valid seed.
	Seed uint64
	// SFactor scales the paper scheme's landmark S-set constants;
	// 0 means the paper's 16.
	SFactor float64
}

// Scheme is what every registry kind builds: a router the simulation
// engine can drive plus the storage accounting the experiments report.
type Scheme interface {
	sim.Router
	MaxTableBits() bitsize.Bits
	MeanTableBits() float64
}

// Builder constructs one kind over a graph and its precomputed
// all-pairs shortest paths (construction needs the full metric by
// definition; serving does not — see the codec).
type Builder func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error)

// StreamBuilder constructs one kind from a per-source shortest-path
// stream (sssp.Source) instead of a materialized Θ(n²) metric. A
// builder that truly needs random access calls sssp.Materialize on the
// source explicitly; everything else consumes rows in source order and
// must produce a scheme bit-identical to its Builder counterpart
// (property-tested across the registry).
type StreamBuilder func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error)

// Info describes a registered kind.
type Info struct {
	// Kind is the registry name.
	Kind string
	// Description is a one-line summary for -help output and tables.
	Description string
	// Model names the routing model ("name-independent", "labeled").
	Model string
	// Persistable marks kinds with a persistent form (codec support).
	Persistable bool
	// Build constructs the scheme.
	Build Builder
	// BuildStream constructs the scheme from a result stream. Optional:
	// when nil, BuildStream materializes the source and falls back to
	// Build, so externally registered kinds keep working unchanged.
	BuildStream StreamBuilder
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Info)
)

// Register adds a kind. Registering an empty kind, a nil builder, or a
// duplicate name panics: registration happens at init time, where a
// bad registration is a programming error, not a runtime condition.
func Register(info Info) {
	if info.Kind == "" || info.Build == nil {
		panic("schemes: Register needs a kind name and a builder")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[info.Kind]; dup {
		panic(fmt.Sprintf("schemes: kind %q registered twice", info.Kind))
	}
	registry[info.Kind] = info
}

// Lookup returns the kind's registration.
func Lookup(kind string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := registry[kind]
	return info, ok
}

// Kinds returns every registered kind, sorted.
func Kinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	ks := make([]string, 0, len(registry))
	for k := range registry {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// PersistableKinds returns every registered kind with a persistent
// form (codec support), sorted — the kinds Save accepts and a dynamic
// snapshot store writes bytes for.
func PersistableKinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	var ks []string
	for k, info := range registry {
		if info.Persistable {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

// Build constructs a scheme of cfg.Kind, wrapping ErrUnknownKind when
// the kind is not registered.
func Build(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
	info, ok := Lookup(cfg.Kind)
	if !ok {
		return nil, fmt.Errorf("schemes: %w %q (have %v)", routeerr.ErrUnknownKind, cfg.Kind, Kinds())
	}
	return info.Build(g, apsp, cfg)
}

// BuildStream constructs a scheme of cfg.Kind from a per-source
// shortest-path stream — the scalable construction path. Kinds whose
// builders consume rows in order (fulltable, apcover, landmark, tz)
// never see a materialized metric, so their working memory is O(n) in
// shortest-path state; kinds that need random access (paper, plus any
// externally registered kind without a stream hook) materialize the
// source explicitly. The built scheme is identical to Build's over the
// same results. Cancelling ctx aborts the build with a wrapped
// context error and releases the stream's workers.
func BuildStream(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
	info, ok := Lookup(cfg.Kind)
	if !ok {
		return nil, fmt.Errorf("schemes: %w %q (have %v)", routeerr.ErrUnknownKind, cfg.Kind, Kinds())
	}
	if info.BuildStream != nil {
		return info.BuildStream(ctx, g, src, cfg)
	}
	all, err := sssp.Materialize(ctx, src)
	if err != nil {
		return nil, fmt.Errorf("schemes: materializing metric for kind %q: %w", cfg.Kind, err)
	}
	return info.Build(g, all, cfg)
}

func init() {
	Register(Info{
		Kind:        KindPaper,
		Description: "AGM SPAA'06 scheme (Theorem 1): stretch O(k), Õ(n^{1/k}) bits/node, scale-free",
		Model:       "name-independent, scale-free",
		Persistable: true,
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
			return core.BuildWithAPSP(g, apsp, core.Params{K: cfg.K, Seed: cfg.Seed, SFactor: cfg.SFactor})
		},
		// The paper's construction needs random access across sources
		// (its decomposition retains the metric for lazy ball queries),
		// so its stream hook materializes explicitly — see core.BuildStream.
		BuildStream: func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
			return core.BuildStream(ctx, g, src, core.Params{K: cfg.K, Seed: cfg.Seed, SFactor: cfg.SFactor})
		},
	})
	Register(Info{
		Kind:        KindFullTable,
		Description: "stretch-1 next-hop tables, Θ(n log n) bits/node (the §1 strawman)",
		Model:       "name-independent",
		Persistable: true,
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
			return baseline.NewFullTable(g, apsp)
		},
		BuildStream: func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
			return baseline.NewFullTableStream(ctx, g, src)
		},
	})
	Register(Info{
		Kind:        KindAPCover,
		Description: "Awerbuch–Peleg-style tree-cover hierarchy [9,10]+[3]: linear stretch, log Δ space",
		Model:       "name-independent, log Δ space",
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
			return baseline.NewAPCover(g, apsp, baseline.APCoverParams{K: cfg.K, Seed: cfg.Seed})
		},
		BuildStream: func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
			return baseline.NewAPCoverStream(ctx, g, src, baseline.APCoverParams{K: cfg.K, Seed: cfg.Seed})
		},
	})
	Register(Info{
		Kind:        KindLandmarkChain,
		Description: "scale-free landmark chain in the [7,8,6] space family: unbounded worst-case stretch",
		Model:       "name-independent, scale-free",
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
			return baseline.NewLandmarkChain(g, apsp, baseline.LandmarkChainParams{K: cfg.K, Seed: cfg.Seed})
		},
		BuildStream: func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
			return baseline.NewLandmarkChainStream(ctx, g, src, baseline.LandmarkChainParams{K: cfg.K, Seed: cfg.Seed})
		},
	})
	Register(Info{
		Kind:        KindTZ,
		Description: "Thorup–Zwick labeled compact routing [29]: stretch 4k−3 in the weaker labeled model",
		Model:       "labeled (weaker model)",
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg Config) (Scheme, error) {
			return baseline.NewTZ(g, apsp, baseline.TZParams{K: cfg.K, Seed: cfg.Seed})
		},
		BuildStream: func(ctx context.Context, g *graph.Graph, src sssp.Source, cfg Config) (Scheme, error) {
			return baseline.NewTZStream(ctx, g, src, baseline.TZParams{K: cfg.K, Seed: cfg.Seed})
		},
	})
}
