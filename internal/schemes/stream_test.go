package schemes_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// testGraph builds a connected gnp instance at the density every
// experiment uses (expected degree 8).
func testGraph(t testing.TB, seed uint64, n int) *graph.Graph {
	t.Helper()
	g := gen.Gnp(seed, n, 8/float64(n), gen.Uniform(1, 8))
	if !g.Connected() {
		t.Fatalf("gnp(seed=%d, n=%d) not connected; pick another seed", seed, n)
	}
	return g
}

// routeFingerprint routes every ordered pair and folds the full result
// (delivery, cost, hops, header bits) into a comparable table — the
// routes and the stretch table in one sweep.
func routeFingerprint(t *testing.T, g *graph.Graph, s schemes.Scheme) []sim.Result {
	t.Helper()
	e := sim.NewEngine(g)
	out := make([]sim.Result, 0, g.N()*g.N())
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			res, err := e.Route(s, graph.NodeID(u), g.Name(graph.NodeID(v)))
			if err != nil {
				t.Fatalf("%s: route %d→%d: %v", s.Name(), u, v, err)
			}
			out = append(out, res)
		}
	}
	return out
}

// TestStreamEqualsMaterialized is the streaming pipeline's acceptance
// property: for every registered kind, the scheme built from a
// streamed source set must equal the APSP-built scheme — same routes
// (delivery, cost, hops, headers) on every ordered pair, same storage
// accounting.
func TestStreamEqualsMaterialized(t *testing.T) {
	g := testGraph(t, 3, 48)
	apsp := sssp.AllPairs(g)
	for _, kind := range schemes.Kinds() {
		for _, workers := range []int{1, 4} {
			cfg := schemes.Config{Kind: kind, K: 2, Seed: 7}
			want, err := schemes.Build(g, apsp, cfg)
			if err != nil {
				t.Fatalf("Build(%q): %v", kind, err)
			}
			got, err := schemes.BuildStream(context.Background(), g, sssp.Streamed(g, workers), cfg)
			if err != nil {
				t.Fatalf("BuildStream(%q, workers=%d): %v", kind, workers, err)
			}
			if want.MaxTableBits() != got.MaxTableBits() || want.MeanTableBits() != got.MeanTableBits() {
				t.Fatalf("%q workers=%d: table bits diverge: max %d/%d mean %v/%v", kind, workers,
					got.MaxTableBits(), want.MaxTableBits(), got.MeanTableBits(), want.MeanTableBits())
			}
			wr := routeFingerprint(t, g, want)
			gr := routeFingerprint(t, g, got)
			for i := range wr {
				if wr[i].Delivered != gr[i].Delivered || wr[i].Cost != gr[i].Cost ||
					wr[i].Hops != gr[i].Hops || wr[i].MaxHeaderBits != gr[i].MaxHeaderBits {
					t.Fatalf("%q workers=%d: route %d diverges: streamed %+v, materialized %+v",
						kind, workers, i, gr[i], wr[i])
				}
			}
		}
	}
}

// TestStreamFromMaterializedSource: feeding the cached metric through
// the stream path (what the facade does on a warm Network) must also
// reproduce the materialized build.
func TestStreamFromMaterializedSource(t *testing.T) {
	g := testGraph(t, 3, 48)
	apsp := sssp.AllPairs(g)
	for _, kind := range schemes.Kinds() {
		cfg := schemes.Config{Kind: kind, K: 2, Seed: 7}
		want, err := schemes.Build(g, apsp, cfg)
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		got, err := schemes.BuildStream(context.Background(), g, sssp.Materialized(g, apsp), cfg)
		if err != nil {
			t.Fatalf("BuildStream(%q): %v", kind, err)
		}
		if want.MaxTableBits() != got.MaxTableBits() || want.MeanTableBits() != got.MeanTableBits() {
			t.Fatalf("%q: table bits diverge over materialized source", kind)
		}
	}
}

// cancelAfter wraps a Source and cancels the build after delivering a
// fixed number of rows — a deterministic mid-build cancellation.
type cancelAfter struct {
	sssp.Source
	cancel context.CancelFunc
	after  int
}

func (c *cancelAfter) Each(ctx context.Context, fn func(r *sssp.Result) error) error {
	seen := 0
	return c.Source.Each(ctx, func(r *sssp.Result) error {
		seen++
		if seen == c.after {
			c.cancel()
		}
		return fn(r)
	})
}

// TestBuildStreamCancellation: a context canceled mid-build must
// surface as a wrapped context.Canceled from every kind, and the
// stream's workers must all wind down (no goroutine leak).
func TestBuildStreamCancellation(t *testing.T) {
	g := testGraph(t, 3, 96)
	before := runtime.NumGoroutine()
	for _, kind := range schemes.Kinds() {
		ctx, cancel := context.WithCancel(context.Background())
		src := &cancelAfter{Source: sssp.Streamed(g, 4), cancel: cancel, after: 5}
		_, err := schemes.BuildStream(ctx, g, src, schemes.Config{Kind: kind, K: 2, Seed: 7})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("BuildStream(%q) after mid-build cancel: got %v, want wrapped context.Canceled", kind, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutine leak after canceled builds: %d before, %d after", before, got)
	}
}

// TestBuildStreamPreCanceled: an already-canceled context fails fast
// for every kind.
func TestBuildStreamPreCanceled(t *testing.T) {
	g := testGraph(t, 3, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range schemes.Kinds() {
		_, err := schemes.BuildStream(ctx, g, sssp.Streamed(g, 2), schemes.Config{Kind: kind, K: 2, Seed: 7})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("BuildStream(%q) pre-canceled: got %v", kind, err)
		}
	}
}

// TestBuildStreamFallback: a kind registered without a stream hook
// still builds through BuildStream via the materialize fallback.
func TestBuildStreamFallback(t *testing.T) {
	schemes.Register(schemes.Info{
		Kind:        "stream-test-fallback",
		Description: "test-only kind without a BuildStream hook",
		Build: func(g *graph.Graph, apsp []*sssp.Result, cfg schemes.Config) (schemes.Scheme, error) {
			if len(apsp) != g.N() {
				return nil, fmt.Errorf("fallback got %d rows for %d nodes", len(apsp), g.N())
			}
			return schemes.Build(g, apsp, schemes.Config{Kind: "fulltable"})
		},
	})
	g := testGraph(t, 3, 24)
	s, err := schemes.BuildStream(context.Background(), g, sssp.Streamed(g, 2),
		schemes.Config{Kind: "stream-test-fallback"})
	if err != nil {
		t.Fatalf("fallback BuildStream: %v", err)
	}
	if s.MaxTableBits() <= 0 {
		t.Fatal("fallback scheme has no storage")
	}
}

// TestBigStreamedBuild is the scale acceptance check: a gnp n=8192
// build through the streaming path, which holds O(workers·n)
// shortest-path state instead of the ~1.3 GiB materialized metric.
// It sweeps ~n single-source Dijkstra runs, so it only runs when
// explicitly requested:
//
//	COMPACTROUTE_BIG_BUILD=1 go test ./internal/schemes -run BigStreamed -v
func TestBigStreamedBuild(t *testing.T) {
	if os.Getenv("COMPACTROUTE_BIG_BUILD") == "" {
		t.Skip("set COMPACTROUTE_BIG_BUILD=1 to run the n=8192 streaming build")
	}
	n := 8192
	g := testGraph(t, 1, n)
	s, err := schemes.BuildStream(context.Background(), g, sssp.Streamed(g, 0),
		schemes.Config{Kind: schemes.KindLandmarkChain, K: 3, Seed: 1})
	if err != nil {
		t.Fatalf("streamed n=%d build: %v", n, err)
	}
	if s.MaxTableBits() <= 0 {
		t.Fatal("big build produced no storage")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("n=%d streamed build done: heap in use %d MiB", n, ms.HeapInuse>>20)
}
