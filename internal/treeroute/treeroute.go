// Package treeroute implements Lemma 5 of the paper: labeled routing
// on a weighted tree that, given any destination label, routes along
// the unique tree path (stretch 1 on the tree).
//
// The construction is the heavy-path variant of Thorup–Zwick [29] /
// Fraigniaud–Gavoille [15] tree routing. Every member stores O(1)
// words: its DFS interval, its parent port, and its heavy child's
// interval and port. A destination label carries the destination's
// preorder number plus one (preorder, port) pair per *light* edge on
// its root path — at most ⌊log₂ m⌋ pairs, since each light edge at
// least halves the subtree size. A node routing a message either moves
// up (target outside its interval), into its heavy child (target inside
// the heavy interval), or across the light port the label dictates.
//
// This sits at the k = O(log n) point of the lemma's storage/label
// trade-off: O(log n)-word tables and labels, i.e. O(log² n) bits, the
// Õ(1) regime every consumer in the paper needs.
package treeroute

import (
	"fmt"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/tree"
)

// LightHop records the port to take at the node with the given
// preorder number when descending across a light edge.
type LightHop struct {
	ParentPre int32 // preorder number of the branching node
	Port      int32 // graph port at that node toward the path child
}

// Label is the routing label λ(T,v) of a tree member.
type Label struct {
	Pre   int32 // destination's preorder number
	Light []LightHop
}

// Bits returns the accounting size of the label: each preorder number
// or port costs ⌈log₂ m⌉-ish bits; we charge 32 per field, matching
// the encoding a wire format would use at these scales.
func (l Label) Bits() bitsize.Bits {
	return bitsize.Bits(32 + 64*len(l.Light))
}

// local is µ(T,u): everything a member stores for labeled routing.
type local struct {
	pre, post  int32
	parentPort int32 // graph port to tree parent (-1 at root)
	heavyPre   int32 // heavy child's interval, [-1,-1) if leaf
	heavyPost  int32
	heavyPort  int32 // graph port into the heavy child
}

// Scheme holds the labeled tree routing structures for one tree.
type Scheme struct {
	t      *tree.Tree
	locals []local
	labels []Label
}

// New builds the Lemma 5 structures for every member of t.
func New(t *tree.Tree) *Scheme {
	n := t.Len()
	s := &Scheme{t: t, locals: make([]local, n), labels: make([]Label, n)}
	for i := 0; i < n; i++ {
		lo := local{
			pre:        int32(t.Pre(i)),
			post:       int32(t.Post(i)),
			parentPort: int32(t.ParentPort(i)),
			heavyPre:   -1,
			heavyPost:  -1,
			heavyPort:  -1,
		}
		if h := t.Heavy(i); h >= 0 {
			lo.heavyPre = int32(t.Pre(h))
			lo.heavyPost = int32(t.Post(h))
			lo.heavyPort = int32(t.ChildPort(h))
		}
		s.locals[i] = lo
	}
	for i := 0; i < n; i++ {
		s.labels[i] = s.buildLabel(i)
	}
	return s
}

func (s *Scheme) buildLabel(i int) Label {
	lbl := Label{Pre: int32(s.t.Pre(i))}
	// Walk the root path top-down collecting light-edge decisions.
	path := s.t.PathToRoot(i)
	for j := len(path) - 1; j > 0; j-- {
		parent, child := path[j], path[j-1]
		if s.t.Heavy(parent) != child {
			lbl.Light = append(lbl.Light, LightHop{
				ParentPre: int32(s.t.Pre(parent)),
				Port:      int32(s.t.ChildPort(child)),
			})
		}
	}
	return lbl
}

// Tree returns the underlying tree.
func (s *Scheme) Tree() *tree.Tree { return s.t }

// Label returns λ(T, member i).
func (s *Scheme) Label(i int) Label { return s.labels[i] }

// LabelOf returns the label of a graph node, which must be a member.
func (s *Scheme) LabelOf(v graph.NodeID) (Label, bool) {
	i, ok := s.t.Index(v)
	if !ok {
		return Label{}, false
	}
	return s.labels[i], true
}

// LocalBits returns the accounting size of µ(T, member i): seven
// bounded integers.
func (s *Scheme) LocalBits(i int) bitsize.Bits {
	m := s.t.Len()
	idb := bitsize.IDBits(m)
	g := s.t.Graph()
	pb := bitsize.IDBits(g.Degree(s.t.Node(i)))
	return 4*idb + 3*pb
}

// MaxLightHops returns the largest light-hop count over all labels;
// the heavy-path argument bounds it by ⌊log₂ m⌋.
func (s *Scheme) MaxLightHops() int {
	max := 0
	for _, l := range s.labels {
		if len(l.Light) > max {
			max = len(l.Light)
		}
	}
	return max
}

// Step makes one routing decision at graph node x for a message headed
// to lbl. It returns (arrived=true) when x is the destination, else the
// graph port to forward on. Step consults only x's local record and the
// label, preserving the distributed-routing discipline.
func (s *Scheme) Step(x graph.NodeID, lbl Label) (arrived bool, port int, err error) {
	i, ok := s.t.Index(x)
	if !ok {
		return false, 0, fmt.Errorf("treeroute: node %d is not a member", x)
	}
	lo := &s.locals[i]
	switch {
	case lbl.Pre == lo.pre:
		return true, 0, nil
	case lbl.Pre < lo.pre || lbl.Pre >= lo.post:
		// Destination outside our subtree: go up.
		if lo.parentPort < 0 {
			return false, 0, fmt.Errorf("treeroute: label %d not in tree rooted at %d", lbl.Pre, x)
		}
		return false, int(lo.parentPort), nil
	case lo.heavyPre >= 0 && lbl.Pre >= lo.heavyPre && lbl.Pre < lo.heavyPost:
		return false, int(lo.heavyPort), nil
	default:
		// Must be a light decision recorded in the label.
		for _, lh := range lbl.Light {
			if lh.ParentPre == lo.pre {
				return false, int(lh.Port), nil
			}
		}
		return false, 0, fmt.Errorf("treeroute: label has no light hop at node %d (pre %d)", x, lo.pre)
	}
}

// Route walks the full tree path from src to the label's destination,
// returning the node sequence (for tests; the simulator drives Step
// directly). The cost of the returned path is the tree distance.
func (s *Scheme) Route(src graph.NodeID, lbl Label) ([]graph.NodeID, error) {
	g := s.t.Graph()
	cur := src
	path := []graph.NodeID{cur}
	for hop := 0; ; hop++ {
		if hop > 2*s.t.Len() {
			return nil, fmt.Errorf("treeroute: routing loop from %d", src)
		}
		done, port, err := s.Step(cur, lbl)
		if err != nil {
			return nil, err
		}
		if done {
			return path, nil
		}
		cur = g.EdgeAt(cur, port).To
		path = append(path, cur)
	}
}
