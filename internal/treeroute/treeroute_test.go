package treeroute

import (
	"math"
	"testing"
	"testing/quick"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
)

func buildSPT(t *testing.T, g *graph.Graph, root graph.NodeID) *tree.Tree {
	t.Helper()
	r := sssp.From(g, root)
	tr, err := tree.FromSPT(g, root, r.Parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pathCost(t *testing.T, g *graph.Graph, path []graph.NodeID) float64 {
	t.Helper()
	c := 0.0
	for i := 0; i+1 < len(path); i++ {
		p := g.PortTo(path[i], path[i+1])
		if p < 0 {
			t.Fatalf("path hop %d→%d is not an edge", path[i], path[i+1])
		}
		c += g.EdgeAt(path[i], p).Weight
	}
	return c
}

// checkAllPairs verifies that routing between every member pair follows
// exactly the tree path.
func checkAllPairs(t *testing.T, tr *tree.Tree) {
	t.Helper()
	s := New(tr)
	g := tr.Graph()
	for a := 0; a < tr.Len(); a++ {
		for b := 0; b < tr.Len(); b++ {
			path, err := s.Route(tr.Node(a), s.Label(b))
			if err != nil {
				t.Fatalf("route %d→%d: %v", a, b, err)
			}
			if path[len(path)-1] != tr.Node(b) {
				t.Fatalf("route %d→%d ended at %d", a, b, path[len(path)-1])
			}
			got := pathCost(t, g, path)
			want := tr.Dist(a, b)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("route %d→%d cost %v, tree distance %v", a, b, got, want)
			}
		}
	}
}

func TestRouteOnPathGraph(t *testing.T) {
	g := gen.Path(1, 8, gen.Uniform(1, 3))
	checkAllPairs(t, buildSPT(t, g, 0))
}

func TestRouteOnStar(t *testing.T) {
	g := gen.Star(2, 12, gen.Uniform(1, 5))
	checkAllPairs(t, buildSPT(t, g, 3)) // rooted at a leaf
}

func TestRouteOnBalancedTree(t *testing.T) {
	g := gen.BalancedTree(3, 3, 3, gen.Uniform(1, 2))
	checkAllPairs(t, buildSPT(t, g, 0))
}

func TestRouteOnRandomSPT(t *testing.T) {
	g := gen.Gnp(4, 40, 0.08, gen.Uniform(1, 9))
	checkAllPairs(t, buildSPT(t, g, 11))
}

func TestSingleNodeRoute(t *testing.T) {
	g := gen.Path(5, 1, gen.Unit())
	tr, err := tree.NewBuilder(g, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(tr)
	path, err := s.Route(0, s.Label(0))
	if err != nil || len(path) != 1 {
		t.Fatalf("self route = %v, %v", path, err)
	}
}

func TestLightHopsLogBound(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.Gnp(seed, 200, 0.03, gen.Unit())
		tr := buildSPT(t, g, 0)
		s := New(tr)
		bound := int(math.Floor(math.Log2(float64(tr.Len()))))
		if got := s.MaxLightHops(); got > bound {
			t.Fatalf("seed %d: %d light hops > log bound %d", seed, got, bound)
		}
	}
}

func TestLabelOf(t *testing.T) {
	g := gen.Path(6, 5, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := New(tr)
	if _, ok := s.LabelOf(3); !ok {
		t.Fatal("LabelOf member failed")
	}
	// A node outside the tree.
	g2 := gen.Star(7, 6, gen.Unit())
	r := sssp.From(g2, 1)
	tr2, _ := tree.FromPaths(g2, 1, r.Parent, []graph.NodeID{2})
	s2 := New(tr2)
	if _, ok := s2.LabelOf(5); ok {
		t.Fatal("LabelOf non-member succeeded")
	}
}

func TestStepRejectsNonMember(t *testing.T) {
	g := gen.Star(8, 6, gen.Unit())
	r := sssp.From(g, 1)
	tr, _ := tree.FromPaths(g, 1, r.Parent, []graph.NodeID{2})
	s := New(tr)
	if _, _, err := s.Step(5, s.Label(0)); err == nil {
		t.Fatal("Step on non-member did not error")
	}
}

func TestStorageBitsPositiveAndSmall(t *testing.T) {
	g := gen.Gnp(9, 100, 0.05, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := New(tr)
	for i := 0; i < tr.Len(); i++ {
		b := s.LocalBits(i)
		if b <= 0 || b > 200 {
			t.Fatalf("LocalBits(%d) = %d out of expected range", i, b)
		}
	}
	// Label bits grow with light hops but stay O(log² n).
	for i := 0; i < tr.Len(); i++ {
		if s.Label(i).Bits() > 32+64*20 {
			t.Fatalf("label %d too large", i)
		}
	}
}

// Property: routing works on arbitrary random SPTs and costs exactly
// the tree distance.
func TestRouteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Gnp(seed, 25, 0.12, gen.Uniform(1, 4))
		r := sssp.From(g, 0)
		tr, err := tree.FromSPT(g, 0, r.Parent)
		if err != nil {
			return false
		}
		s := New(tr)
		// Check a sample of pairs.
		for a := 0; a < tr.Len(); a += 3 {
			for b := 1; b < tr.Len(); b += 4 {
				path, err := s.Route(tr.Node(a), s.Label(b))
				if err != nil || path[len(path)-1] != tr.Node(b) {
					return false
				}
				c := 0.0
				for i := 0; i+1 < len(path); i++ {
					p := g.PortTo(path[i], path[i+1])
					if p < 0 {
						return false
					}
					c += g.EdgeAt(path[i], p).Weight
				}
				if math.Abs(c-tr.Dist(a, b)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
