// Package sssp implements single-source shortest paths and the ordered
// neighborhood operators of §2.1: the metric d(u,v), the balls
// B(u,r) = {v | d(u,v) ≤ r}, and N(u,m,Z) — the m closest nodes of Z to
// u with ties broken by lexicographic (name) order. These operators are
// the vocabulary every construction in the paper is written in.
package sssp

import (
	"math"
	"sort"

	"compactroute/internal/graph"
)

// Result holds a shortest path tree from one source.
type Result struct {
	Source graph.NodeID
	// Dist[v] is d(source, v); +Inf if unreached.
	Dist []float64
	// Parent[v] is v's parent in the shortest path tree (-1 for the
	// source and unreached nodes).
	Parent []graph.NodeID
	// ParentPort[v] is the port at v crossing to Parent[v] (-1 when no
	// parent), so a message at v can step toward the source.
	ParentPort []int32
	// Order lists the reached nodes in nondecreasing distance, with
	// exact ties broken by ascending external name: precisely the
	// enumeration order the paper's N(u,m,Z) operator requires.
	Order []graph.NodeID

	g *graph.Graph
}

// From computes shortest paths in g from src using Dijkstra's algorithm
// with an indexed binary heap. Runs in O((n + m) log n).
func From(g *graph.Graph, src graph.NodeID) *Result {
	n := g.N()
	res := &Result{
		Source:     src,
		Dist:       make([]float64, n),
		Parent:     make([]graph.NodeID, n),
		ParentPort: make([]int32, n),
		Order:      make([]graph.NodeID, 0, n),
		g:          g,
	}
	for i := 0; i < n; i++ {
		res.Dist[i] = math.Inf(1)
		res.Parent[i] = -1
		res.ParentPort[i] = -1
	}
	res.Dist[src] = 0
	h := newIndexedHeap(n)
	h.Push(src, 0)
	// bestPort[v] tracks the tentative parent port so relaxations that
	// are later overwritten do not leave stale ports behind.
	for h.Len() > 0 {
		u, du := h.PopMin()
		res.Order = append(res.Order, u)
		g.Neighbors(u, func(e graph.Edge) bool {
			alt := du + e.Weight
			if alt < res.Dist[e.To] {
				res.Dist[e.To] = alt
				res.Parent[e.To] = u
				res.ParentPort[e.To] = int32(g.ReversePort(u, e.Port))
				if h.Contains(e.To) {
					h.DecreaseKey(e.To, alt)
				} else {
					h.Push(e.To, alt)
				}
			}
			return true
		})
	}
	// Dijkstra pops ties in id order; the paper breaks ties by
	// lexicographic *name* order, so re-sort equal-distance runs.
	sort.SliceStable(res.Order, func(i, j int) bool {
		a, b := res.Order[i], res.Order[j]
		if res.Dist[a] != res.Dist[b] {
			return res.Dist[a] < res.Dist[b]
		}
		return g.Name(a) < g.Name(b)
	})
	return res
}

// Reached reports whether v is reachable from the source.
func (r *Result) Reached(v graph.NodeID) bool { return !math.IsInf(r.Dist[v], 1) }

// PathTo returns the shortest path source→v as a node sequence, or nil
// if v is unreachable.
func (r *Result) PathTo(v graph.NodeID) []graph.NodeID {
	return PathFromParents(r.Parent, r.Source, v)
}

// PathFromParents reconstructs the shortest path source→to from a
// shortest-path tree's parent links alone, or nil if the chain from
// `to` does not reach the source (unreached). It is PathTo for
// consumers that retained only the Parent slice of a streamed row
// (see Source).
func PathFromParents(parent []graph.NodeID, source, to graph.NodeID) []graph.NodeID {
	var rev []graph.NodeID
	for u := to; u != -1; u = parent[u] {
		rev = append(rev, u)
	}
	if len(rev) == 0 || rev[len(rev)-1] != source {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Ball returns B(source, radius): every node within the given distance,
// in the canonical (distance, name) order.
func (r *Result) Ball(radius float64) []graph.NodeID {
	// Order is sorted by distance, so the ball is a prefix.
	hi := sort.Search(len(r.Order), func(i int) bool {
		return r.Dist[r.Order[i]] > radius
	})
	return r.Order[:hi]
}

// BallSize returns |B(source, radius)| without materializing the ball.
func (r *Result) BallSize(radius float64) int {
	return sort.Search(len(r.Order), func(i int) bool {
		return r.Dist[r.Order[i]] > radius
	})
}

// Closest implements N(u, m, Z) from §2.1: the m closest members of Z
// to the source, ties broken by ascending name. Z is given as a
// membership predicate; if fewer than m members are reachable, all of
// them are returned.
func (r *Result) Closest(m int, inZ func(graph.NodeID) bool) []graph.NodeID {
	if m <= 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, m)
	for _, v := range r.Order {
		if inZ(v) {
			out = append(out, v)
			if len(out) == m {
				break
			}
		}
	}
	return out
}

// Radius returns the distance to the farthest reached node
// (the eccentricity of the source within its component).
func (r *Result) Radius() float64 {
	if len(r.Order) == 0 {
		return 0
	}
	return r.Dist[r.Order[len(r.Order)-1]]
}

// AllPairs runs From for every node. It is Θ(n·(n+m) log n) and meant
// for verification and baselines, not for scheme construction.
func AllPairs(g *graph.Graph) []*Result {
	out := make([]*Result, g.N())
	for u := 0; u < g.N(); u++ {
		out[u] = From(g, graph.NodeID(u))
	}
	return out
}

// BellmanFord computes shortest path distances from src by iterated
// relaxation. It is O(n·m) and exists to cross-check Dijkstra in tests.
func BellmanFord(g *graph.Graph, src graph.NodeID) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := graph.NodeID(0); int(u) < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			du := dist[u]
			g.Neighbors(u, func(e graph.Edge) bool {
				if du+e.Weight < dist[e.To] {
					dist[e.To] = du + e.Weight
					changed = true
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return dist
}

// Diameter returns max_u ecc(u) and the aspect ratio Δ =
// (max distance)/(min distance) over a full APSP sweep.
func Diameter(g *graph.Graph) (diam, aspect float64) {
	minD := math.Inf(1)
	for u := 0; u < g.N(); u++ {
		r := From(g, graph.NodeID(u))
		for _, v := range r.Order {
			if v == r.Source {
				continue
			}
			d := r.Dist[v]
			if d > diam {
				diam = d
			}
			if d < minD {
				minD = d
			}
		}
	}
	if minD == 0 || math.IsInf(minD, 1) {
		return diam, 1
	}
	return diam, diam / minD
}
