package sssp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"compactroute/internal/graph"
)

// Source streams per-source shortest-path results, one Result per
// node, always in ascending source order. It is the construction-side
// counterpart of the metric: scheme builders that only need one source
// row at a time (next-hop emission, ball radii, closest-landmark
// queries) consume a Source in O(n) working memory, where the
// materialized []*Result they historically received is Θ(n²).
//
// Contract:
//
//   - Each invokes fn once per source, src = 0..N()-1, strictly in
//     that order, regardless of how results are computed internally.
//   - Results handed to fn are immutable and may be retained by the
//     consumer (retaining a field, e.g. Parent, keeps only that slice
//     alive — the point of streaming is that most rows are dropped).
//   - A Source is re-iterable: builders may call Each multiple times
//     (a streaming implementation recomputes; a materialized one
//     re-reads). Passes see identical results because From is
//     deterministic.
//   - Each returns a wrapped ctx.Err() when the context is canceled
//     mid-stream, or the first error fn returned, and in either case
//     releases every internal worker before returning.
type Source interface {
	// Graph returns the graph the shortest paths are computed over.
	Graph() *graph.Graph
	// N returns the number of sources (the graph's node count).
	N() int
	// Each streams the per-source results in source order.
	Each(ctx context.Context, fn func(r *Result) error) error
}

// Materialized wraps precomputed all-pairs results (AllPairs output)
// as a Source. Builders running over an already-paid metric — the
// facade's Network keeps one for stretch reporting — stream it for
// free, with no recomputation.
func Materialized(g *graph.Graph, all []*Result) Source {
	return &materialized{g: g, all: all}
}

type materialized struct {
	g   *graph.Graph
	all []*Result
}

func (m *materialized) Graph() *graph.Graph { return m.g }
func (m *materialized) N() int              { return len(m.all) }

func (m *materialized) Each(ctx context.Context, fn func(r *Result) error) error {
	for _, r := range m.all {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sssp: source stream: %w", err)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Results exposes the underlying slice, letting Materialize return an
// already-materialized source without copying.
func (m *materialized) Results() []*Result { return m.all }

// Streamed returns a Source that computes each row on demand, fanning
// single-source Dijkstra runs across workers (≤ 0 means GOMAXPROCS)
// while delivering results to the consumer in deterministic source
// order. At most ~2×workers rows are in flight at once, so a full
// build holds O(workers · n) shortest-path state instead of Θ(n²).
func Streamed(g *graph.Graph, workers int) Source {
	return &streamed{g: g, workers: workers}
}

type streamed struct {
	g       *graph.Graph
	workers int
}

func (s *streamed) Graph() *graph.Graph { return s.g }
func (s *streamed) N() int              { return s.g.N() }

func (s *streamed) Each(ctx context.Context, fn func(r *Result) error) error {
	n := s.g.N()
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial reference path (also the workers=1 baseline B1 times).
		for u := 0; u < n; u++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sssp: source stream: %w", err)
			}
			if err := fn(From(s.g, graph.NodeID(u))); err != nil {
				return err
			}
		}
		return nil
	}

	// Workers claim source indices in order and publish finished rows
	// into a reorder window; the caller's goroutine delivers them in
	// source order. The window caps claimed-but-undelivered rows, so
	// a slow consumer cannot accumulate unbounded results. Claimed
	// rows are always computed and published (workers check for
	// cancellation only between claims), which keeps the delivery loop
	// deadlock-free: the next row to deliver is either pending in the
	// window or being computed by a live worker.
	window := 2 * workers
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		next    int // next source index to claim
		deliver int // next source index to hand to fn
		ready   = make(map[int]*Result, window)
		stopped bool
	)
	stop := func() {
		mu.Lock()
		stopped = true
		cond.Broadcast()
		mu.Unlock()
	}

	// Wake the delivery loop promptly on cancellation.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			stop()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stopped && next < n && next-deliver >= window {
					cond.Wait()
				}
				if stopped || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				r := From(s.g, graph.NodeID(i))
				mu.Lock()
				ready[i] = r
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	defer wg.Wait()
	defer stop()

	for deliver < n {
		mu.Lock()
		for ready[deliver] == nil && !stopped {
			cond.Wait()
		}
		if stopped {
			mu.Unlock()
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sssp: source stream: %w", err)
			}
			return fmt.Errorf("sssp: source stream stopped")
		}
		r := ready[deliver]
		delete(ready, deliver)
		deliver++
		cond.Broadcast()
		mu.Unlock()
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sssp: source stream: %w", err)
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Materialize collects a Source into the historical []*Result form for
// builders that genuinely need random access across rows (the paper's
// scheme: its decomposition keeps the metric for lazy ball queries
// throughout construction and verification). An already-materialized
// source is returned as-is without copying or recomputation.
func Materialize(ctx context.Context, src Source) ([]*Result, error) {
	// The already-materialized fast path must still honor ctx, or a
	// canceled build over a warm network would sail through to the
	// (expensive) downstream construction.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sssp: source stream: %w", err)
	}
	if m, ok := src.(interface{ Results() []*Result }); ok {
		return m.Results(), nil
	}
	out := make([]*Result, 0, src.N())
	err := src.Each(ctx, func(r *Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
