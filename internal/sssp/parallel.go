package sssp

import (
	"runtime"
	"sync"

	"compactroute/internal/graph"
)

// AllPairsParallel computes From for every node across a worker pool.
// Each source's Dijkstra run is independent, so the result is
// identical to AllPairs; the speedup is near-linear in cores for the
// O(n·(n+m)·log n) preprocessing sweep every scheme build starts with.
// workers ≤ 0 selects GOMAXPROCS.
func AllPairsParallel(g *graph.Graph, workers int) []*Result {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]*Result, n)
	if workers <= 1 {
		return AllPairs(g)
	}
	var next int64 // atomically claimed source index
	var mu sync.Mutex
	var wg sync.WaitGroup
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		v := int(next)
		next++
		return v
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				v := claim()
				if v >= n {
					return
				}
				out[v] = From(g, graph.NodeID(v))
			}
		}()
	}
	wg.Wait()
	return out
}

// ParallelFor runs fn(i) for i in [0, n) over a bounded worker pool.
// It is the generic fan-out used by the scheme builders (landmark
// trees, per-scale covers), whose units of work are independent and
// deterministic given their index.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
