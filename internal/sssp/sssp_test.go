package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"compactroute/internal/graph"
	"compactroute/internal/xrand"
)

// buildRandom constructs a connected random graph: a random spanning
// tree plus extra random edges.
func buildRandom(seed uint64, n int, extra int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(xrand.Hash64(99, uint64(i))) // scrambled names
	}
	for i := 1; i < n; i++ {
		j := r.Intn(i)
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID(j), 1+r.Float64()*9)
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			_ = b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1+r.Float64()*9)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(uint64(i))
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 2); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLineDistances(t *testing.T) {
	g := lineGraph(t, 5)
	r := From(g, 0)
	for v := 0; v < 5; v++ {
		if r.Dist[v] != float64(2*v) {
			t.Fatalf("Dist[%d] = %v, want %v", v, r.Dist[v], 2*v)
		}
	}
}

func TestParentPortsWalkToSource(t *testing.T) {
	g := buildRandom(1, 40, 60)
	r := From(g, 3)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !r.Reached(v) {
			continue
		}
		// Walk parent ports back to the source, accumulating cost.
		cost := 0.0
		u := v
		for steps := 0; u != r.Source; steps++ {
			if steps > g.N() {
				t.Fatalf("parent walk from %d does not terminate", v)
			}
			p := r.ParentPort[u]
			e := g.EdgeAt(u, int(p))
			if e.To != r.Parent[u] {
				t.Fatalf("ParentPort[%d] leads to %d, want %d", u, e.To, r.Parent[u])
			}
			cost += e.Weight
			u = e.To
		}
		if math.Abs(cost-r.Dist[v]) > 1e-9 {
			t.Fatalf("parent walk cost %v != Dist %v for node %d", cost, r.Dist[v], v)
		}
	}
}

func TestPathToCostsMatch(t *testing.T) {
	g := buildRandom(2, 30, 40)
	r := From(g, 0)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		path := r.PathTo(v)
		if len(path) == 0 {
			t.Fatalf("unreached node %d in connected graph", v)
		}
		if path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		cost := 0.0
		for i := 0; i+1 < len(path); i++ {
			p := g.PortTo(path[i], path[i+1])
			if p < 0 {
				t.Fatalf("path %v uses non-edge", path)
			}
			cost += g.EdgeAt(path[i], p).Weight
		}
		if math.Abs(cost-r.Dist[v]) > 1e-9 {
			t.Fatalf("path cost %v != dist %v", cost, r.Dist[v])
		}
	}
}

func TestAgainstBellmanFord(t *testing.T) {
	f := func(seed uint64) bool {
		g := buildRandom(seed, 25, 30)
		src := graph.NodeID(int(seed) % g.N())
		if src < 0 {
			src = 0
		}
		d1 := From(g, src).Dist
		d2 := BellmanFord(g, src)
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderSortedByDistThenName(t *testing.T) {
	g := buildRandom(3, 50, 80)
	r := From(g, 0)
	if len(r.Order) != g.N() {
		t.Fatalf("order covers %d of %d nodes", len(r.Order), g.N())
	}
	for i := 1; i < len(r.Order); i++ {
		a, b := r.Order[i-1], r.Order[i]
		if r.Dist[a] > r.Dist[b] {
			t.Fatal("order not sorted by distance")
		}
		if r.Dist[a] == r.Dist[b] && g.Name(a) >= g.Name(b) {
			t.Fatal("ties not broken by name")
		}
	}
}

func TestBallPrefixSemantics(t *testing.T) {
	g := lineGraph(t, 6) // distances 0,2,4,6,8,10
	r := From(g, 0)
	cases := []struct {
		radius float64
		want   int
	}{{0, 1}, {1.9, 1}, {2, 2}, {5, 3}, {10, 6}, {100, 6}}
	for _, c := range cases {
		ball := r.Ball(c.radius)
		if len(ball) != c.want {
			t.Fatalf("Ball(%v) size = %d, want %d", c.radius, len(ball), c.want)
		}
		if r.BallSize(c.radius) != c.want {
			t.Fatalf("BallSize(%v) = %d, want %d", c.radius, r.BallSize(c.radius), c.want)
		}
		for _, v := range ball {
			if r.Dist[v] > c.radius {
				t.Fatalf("ball member %d outside radius", v)
			}
		}
	}
}

func TestClosestRespectsOrderAndMembership(t *testing.T) {
	g := buildRandom(4, 40, 40)
	r := From(g, 5)
	even := func(v graph.NodeID) bool { return v%2 == 0 }
	got := r.Closest(7, even)
	if len(got) != 7 {
		t.Fatalf("Closest returned %d", len(got))
	}
	// Every non-member of the result that is even must be farther (or
	// equal-distance with larger name) than the farthest member.
	last := got[len(got)-1]
	inResult := make(map[graph.NodeID]bool)
	for _, v := range got {
		if !even(v) {
			t.Fatalf("Closest returned non-member %d", v)
		}
		inResult[v] = true
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !even(v) || inResult[v] {
			continue
		}
		if r.Dist[v] < r.Dist[last] {
			t.Fatalf("node %d closer than selected %d but excluded", v, last)
		}
		if r.Dist[v] == r.Dist[last] && g.Name(v) < g.Name(last) {
			t.Fatal("lexicographic tie-break violated")
		}
	}
}

func TestClosestFewMembers(t *testing.T) {
	g := lineGraph(t, 4)
	r := From(g, 0)
	only3 := func(v graph.NodeID) bool { return v == 3 }
	got := r.Closest(10, only3)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Closest = %v", got)
	}
	if r.Closest(0, only3) != nil {
		t.Fatal("Closest(0) should be nil")
	}
}

func TestDisconnectedUnreached(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(uint64(i))
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	r := From(g, 0)
	if r.Reached(2) || r.Reached(3) {
		t.Fatal("cross-component node reached")
	}
	if r.PathTo(2) != nil {
		t.Fatal("PathTo across components should be nil")
	}
	if len(r.Order) != 2 {
		t.Fatalf("order should contain only reached nodes, got %d", len(r.Order))
	}
}

func TestRadius(t *testing.T) {
	g := lineGraph(t, 5)
	r := From(g, 2) // middle: max distance 4
	if r.Radius() != 4 {
		t.Fatalf("Radius = %v", r.Radius())
	}
}

func TestDiameterAndAspect(t *testing.T) {
	g := lineGraph(t, 4) // weights 2: diameter 6, min dist 2
	diam, aspect := Diameter(g)
	if diam != 6 || aspect != 3 {
		t.Fatalf("diam=%v aspect=%v", diam, aspect)
	}
}

func TestAllPairsSymmetry(t *testing.T) {
	g := buildRandom(5, 20, 25)
	all := AllPairs(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if math.Abs(all[u].Dist[v]-all[v].Dist[u]) > 1e-9 {
				t.Fatalf("asymmetric metric d(%d,%d)", u, v)
			}
		}
	}
}

func TestHeapBasics(t *testing.T) {
	h := newIndexedHeap(10)
	h.Push(3, 5)
	h.Push(7, 1)
	h.Push(2, 3)
	h.DecreaseKey(3, 0.5)
	u, k := h.PopMin()
	if u != 3 || k != 0.5 {
		t.Fatalf("PopMin = %d,%v", u, k)
	}
	u, _ = h.PopMin()
	if u != 7 {
		t.Fatalf("second PopMin = %d", u)
	}
	if h.Len() != 1 || !h.Contains(2) || h.Contains(7) {
		t.Fatal("heap bookkeeping broken")
	}
}

func TestHeapDecreaseKeyIgnoresIncrease(t *testing.T) {
	h := newIndexedHeap(4)
	h.Push(0, 1)
	h.DecreaseKey(0, 5) // must be ignored
	_, k := h.PopMin()
	if k != 1 {
		t.Fatalf("key changed upward: %v", k)
	}
}

func TestHeapSortsRandomKeys(t *testing.T) {
	r := xrand.New(8)
	h := newIndexedHeap(200)
	for i := 0; i < 200; i++ {
		h.Push(graph.NodeID(i), r.Float64())
	}
	prev := math.Inf(-1)
	for h.Len() > 0 {
		_, k := h.PopMin()
		if k < prev {
			t.Fatal("heap emitted out of order")
		}
		prev = k
	}
}
