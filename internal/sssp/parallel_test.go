package sssp

import (
	"math"
	"sync/atomic"
	"testing"

	"compactroute/internal/gen"
)

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	g := gen.Gnp(1, 120, 0.06, gen.Uniform(1, 7))
	seq := AllPairs(g)
	for _, workers := range []int{1, 2, 4, 13} {
		par := AllPairsParallel(g, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: length mismatch", workers)
		}
		for u := range seq {
			for v := range seq[u].Dist {
				if math.Abs(seq[u].Dist[v]-par[u].Dist[v]) > 1e-12 {
					t.Fatalf("workers=%d: dist(%d,%d) differs", workers, u, v)
				}
				if seq[u].Parent[v] != par[u].Parent[v] {
					t.Fatalf("workers=%d: parent(%d,%d) differs", workers, u, v)
				}
			}
			for i := range seq[u].Order {
				if seq[u].Order[i] != par[u].Order[i] {
					t.Fatalf("workers=%d: order differs at source %d", workers, u)
				}
			}
		}
	}
}

func TestAllPairsParallelDefaultWorkers(t *testing.T) {
	g := gen.Ring(2, 40, gen.Unit())
	par := AllPairsParallel(g, 0) // GOMAXPROCS
	if len(par) != g.N() {
		t.Fatal("default workers wrong length")
	}
	for u := range par {
		if par[u] == nil {
			t.Fatalf("source %d not computed", u)
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 257
		var hits [n]int32
		ParallelFor(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func BenchmarkAllPairsSequential(b *testing.B) {
	g := gen.Gnp(3, 512, 8.0/512, gen.Uniform(1, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllPairs(g)
	}
}

func BenchmarkAllPairsParallel(b *testing.B) {
	g := gen.Gnp(3, 512, 8.0/512, gen.Uniform(1, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllPairsParallel(g, 0)
	}
}
