package sssp

import "compactroute/internal/graph"

// indexedHeap is a binary min-heap over node ids keyed by tentative
// distance, with decrease-key support. It is the standard Dijkstra
// workhorse; positions are tracked so DecreaseKey is O(log n).
type indexedHeap struct {
	keys []float64      // key per node id
	heap []graph.NodeID // heap array of node ids
	pos  []int32        // node id -> index in heap, -1 if absent
}

func newIndexedHeap(n int) *indexedHeap {
	h := &indexedHeap{
		keys: make([]float64, n),
		heap: make([]graph.NodeID, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of queued nodes.
func (h *indexedHeap) Len() int { return len(h.heap) }

// Contains reports whether u is currently queued.
func (h *indexedHeap) Contains(u graph.NodeID) bool { return h.pos[u] >= 0 }

// Push inserts u with the given key. u must not already be present.
func (h *indexedHeap) Push(u graph.NodeID, key float64) {
	h.keys[u] = key
	h.pos[u] = int32(len(h.heap))
	h.heap = append(h.heap, u)
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers u's key. It is a no-op if the new key is not lower.
func (h *indexedHeap) DecreaseKey(u graph.NodeID, key float64) {
	if key >= h.keys[u] {
		return
	}
	h.keys[u] = key
	h.up(int(h.pos[u]))
}

// PopMin removes and returns the id with the smallest key.
func (h *indexedHeap) PopMin() (graph.NodeID, float64) {
	u := h.heap[0]
	key := h.keys[u]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[u] = -1
	if last > 0 {
		h.down(0)
	}
	return u, key
}

func (h *indexedHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b // deterministic tie-break
}

func (h *indexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *indexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *indexedHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
