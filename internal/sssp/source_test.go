package sssp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"compactroute/internal/graph"
)

// randomGraph builds a connected weighted graph for source tests.
func randomGraph(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(uint64(0xA000 + i))
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(ids[i], ids[rng.Intn(i)], 1+rng.Float64()*7); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = b.AddEdge(ids[u], ids[v], 1+rng.Float64()*7) // dup edges error; ignore
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameResult compares two per-source results field by field.
func sameResult(a, b *Result) error {
	if a.Source != b.Source {
		return fmt.Errorf("source %d vs %d", a.Source, b.Source)
	}
	if len(a.Dist) != len(b.Dist) || len(a.Order) != len(b.Order) {
		return fmt.Errorf("shape mismatch")
	}
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] || a.Parent[v] != b.Parent[v] || a.ParentPort[v] != b.ParentPort[v] {
			return fmt.Errorf("row %d differs at node %d", a.Source, v)
		}
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return fmt.Errorf("row %d order differs at %d", a.Source, i)
		}
	}
	return nil
}

// TestStreamedMatchesAllPairs: the streamed source must deliver the
// exact AllPairs results, in source order, at every worker count.
func TestStreamedMatchesAllPairs(t *testing.T) {
	g := randomGraph(t, 7, 80)
	want := AllPairs(g)
	for _, workers := range []int{1, 2, 3, 8, 64} {
		src := Streamed(g, workers)
		next := 0
		err := src.Each(context.Background(), func(r *Result) error {
			if int(r.Source) != next {
				return fmt.Errorf("workers=%d: got source %d, want %d (out of order)", workers, r.Source, next)
			}
			if err := sameResult(want[next], r); err != nil {
				return fmt.Errorf("workers=%d: %w", workers, err)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != g.N() {
			t.Fatalf("workers=%d: delivered %d rows, want %d", workers, next, g.N())
		}
	}
}

// TestStreamedReiterable: builders (tz) take two passes over a source;
// both passes must see identical rows.
func TestStreamedReiterable(t *testing.T) {
	g := randomGraph(t, 11, 40)
	src := Streamed(g, 4)
	var first []*Result
	if err := src.Each(context.Background(), func(r *Result) error {
		first = append(first, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := src.Each(context.Background(), func(r *Result) error {
		if err := sameResult(first[i], r); err != nil {
			return fmt.Errorf("pass 2 row %d: %w", i, err)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMaterializedSource: wrapping precomputed results streams the
// same pointers and Materialize returns them without copying.
func TestMaterializedSource(t *testing.T) {
	g := randomGraph(t, 3, 30)
	all := AllPairs(g)
	src := Materialized(g, all)
	i := 0
	if err := src.Each(context.Background(), func(r *Result) error {
		if r != all[i] {
			return fmt.Errorf("row %d: not the wrapped result", i)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	back, err := Materialize(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if &back[0] != &all[0] {
		t.Fatal("Materialize of a materialized source must not copy")
	}
}

// TestMaterializeStreamed: materializing a streamed source equals a
// plain AllPairs sweep.
func TestMaterializeStreamed(t *testing.T) {
	g := randomGraph(t, 5, 50)
	want := AllPairs(g)
	got, err := Materialize(context.Background(), Streamed(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if err := sameResult(want[i], got[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamedCancellation: canceling mid-stream returns a wrapped
// context.Canceled and releases every worker goroutine.
func TestStreamedCancellation(t *testing.T) {
	g := randomGraph(t, 9, 120)
	before := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		rows := 0
		err := Streamed(g, workers).Each(ctx, func(r *Result) error {
			rows++
			if rows == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want wrapped context.Canceled", workers, err)
		}
		if rows >= g.N() {
			t.Fatalf("workers=%d: stream ran to completion despite cancel", workers)
		}
	}
	// Workers must wind down; allow the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutine leak after cancellation: %d before, %d after", before, got)
	}
}

// TestStreamedFnError: a consumer error stops the stream and is
// returned verbatim.
func TestStreamedFnError(t *testing.T) {
	g := randomGraph(t, 13, 60)
	sentinel := errors.New("consumer says stop")
	rows := 0
	err := Streamed(g, 4).Each(context.Background(), func(r *Result) error {
		rows++
		if rows == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the consumer's error", err)
	}
	if rows != 3 {
		t.Fatalf("fn ran %d times after erroring at 3", rows)
	}
}

// TestStreamedPreCanceled: an already-canceled context yields no rows.
func TestStreamedPreCanceled(t *testing.T) {
	g := randomGraph(t, 1, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Streamed(g, 2).Each(ctx, func(r *Result) error {
		t.Fatal("fn must not run under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want wrapped context.Canceled", err)
	}
}
