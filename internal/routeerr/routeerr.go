// Package routeerr defines the typed error taxonomy every layer of the
// repository reports through. The sentinels are wrapped (never returned
// bare) so call sites can attach context while consumers classify with
// errors.Is:
//
//	res, err := scheme.RouteByNameCtx(ctx, src, dst)
//	switch {
//	case errors.Is(err, routeerr.ErrUnknownName):  // caller's fault: 422
//	case errors.Is(err, routeerr.ErrSaturated):    // back-pressure: 503
//	}
//
// The facade re-exports each sentinel (compactroute.ErrUnknownName and
// friends), so external callers never import this package directly;
// internal packages wrap these originals, and both spellings satisfy
// errors.Is because they are the same value.
package routeerr

import "errors"

var (
	// ErrUnknownName reports a routing query whose source name is not
	// in the network. (An unknown *destination* name is not an error:
	// name-independent schemes search for it and report non-delivery.)
	ErrUnknownName = errors.New("unknown node name")

	// ErrUnknownLabel reports a label-routing query for a string label
	// no node registered.
	ErrUnknownLabel = errors.New("unknown node label")

	// ErrNotDelivered reports a route that terminated without reaching
	// its destination, from paths where delivery is mandatory (stretch
	// measurement, batch sweeps).
	ErrNotDelivered = errors.New("route not delivered")

	// ErrNoMetric reports an operation that needs the all-pairs
	// shortest-path metric on a network that has none (schemes
	// rehydrated by Load start without one).
	ErrNoMetric = errors.New("network has no shortest-path metric")

	// ErrSaturated reports a query the serving layer could not admit
	// before the caller's context expired: every worker was busy for
	// the whole wait (or the caller arrived already canceled). It is
	// retryable by definition.
	ErrSaturated = errors.New("serving pool saturated")

	// ErrNotPersistable reports a Save of a scheme kind that has no
	// persistent form.
	ErrNotPersistable = errors.New("scheme kind has no persistent form")

	// ErrUnknownKind reports a Build (or Load) naming a scheme kind
	// absent from the registry.
	ErrUnknownKind = errors.New("unknown scheme kind")

	// ErrVersionSkew reports a coordinated-swap step whose topology
	// version disagrees with the serving or staged version — a commit
	// for a version that is not staged, or a cluster answer assembled
	// from shards serving different versions. Conflict semantics: the
	// HTTP layers map it to 409.
	ErrVersionSkew = errors.New("topology version skew")

	// ErrUnreachable reports a route blocked by the transient fault
	// overlay: the scheme found a path (or the endpoint itself is
	// failed), but every candidate crosses a down link or node
	// (serve.Repairer, DESIGN.md §10). Distinct from ErrNotDelivered
	// (the scheme failed on healthy topology) and from ErrSaturated
	// (back-pressure): the route exists and will likely work once the
	// outage recovers or the next rebuild lands — bad-gateway
	// semantics, so the HTTP layers map it to 502.
	ErrUnreachable = errors.New("route unreachable under current faults")
)
