// Package stats aggregates stretch measurements and renders the
// experiment tables. Stretch is the paper's figure of merit: the ratio
// between the routed cost and the shortest-path distance, maximized
// (and averaged) over source–destination pairs.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Stretch accumulates per-pair stretch samples over a Sample
// accumulator (the same one latency measurements use).
type Stretch struct {
	s Sample
}

// Add records one routed pair. Pairs at distance zero (self routes)
// are ignored; a routed cost below the distance indicates a metric
// bug, so Add panics on it (beyond float tolerance).
func (s *Stretch) Add(cost, dist float64) {
	if dist <= 0 {
		return
	}
	r := cost / dist
	if r < 1-1e-9 {
		panic(fmt.Sprintf("stats: stretch %v < 1 (cost %v, dist %v)", r, cost, dist))
	}
	if r < 1 {
		r = 1
	}
	s.s.Add(r)
}

// Merge appends all of o's samples to s in o's insertion order, so
// merging per-worker accumulators in worker order reproduces a serial
// measurement exactly. o is unchanged.
func (s *Stretch) Merge(o *Stretch) {
	if o != nil {
		s.s.Merge(&o.s)
	}
}

// N returns the number of samples.
func (s *Stretch) N() int { return s.s.N() }

// Max returns the maximum stretch (the paper's stretch factor).
func (s *Stretch) Max() float64 { return s.s.Max() }

// Mean returns the average stretch.
func (s *Stretch) Mean() float64 { return s.s.Mean() }

// Percentile returns the p-th percentile (p in [0,100]).
func (s *Stretch) Percentile(p float64) float64 { return s.s.Percentile(p) }

// Sample exposes the underlying accumulator (e.g. for histograms).
func (s *Stretch) Sample() *Sample { return &s.s }

// String summarizes the distribution.
func (s *Stretch) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
}

// Table renders aligned experiment tables.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable starts a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v, floats with
// four significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 1):
		return "inf"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// MarshalJSON renders the table as one machine-readable object:
// {"title": …, "columns": […], "rows": [[…]]}. Cells are the same
// formatted strings the text rendering prints, so the two views of a
// run are value-identical and JSON consumers need no locale-sensitive
// reparsing rules.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.title, Columns: t.header, Rows: rows})
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
