// Package stats aggregates stretch measurements and renders the
// experiment tables. Stretch is the paper's figure of merit: the ratio
// between the routed cost and the shortest-path distance, maximized
// (and averaged) over source–destination pairs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stretch accumulates per-pair stretch samples.
type Stretch struct {
	samples []float64
}

// Add records one routed pair. Pairs at distance zero (self routes)
// are ignored; a routed cost below the distance indicates a metric
// bug, so Add panics on it (beyond float tolerance).
func (s *Stretch) Add(cost, dist float64) {
	if dist <= 0 {
		return
	}
	r := cost / dist
	if r < 1-1e-9 {
		panic(fmt.Sprintf("stats: stretch %v < 1 (cost %v, dist %v)", r, cost, dist))
	}
	if r < 1 {
		r = 1
	}
	s.samples = append(s.samples, r)
}

// N returns the number of samples.
func (s *Stretch) N() int { return len(s.samples) }

// Max returns the maximum stretch (the paper's stretch factor).
func (s *Stretch) Max() float64 {
	m := 0.0
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average stretch.
func (s *Stretch) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.samples {
		t += v
	}
	return t / float64(len(s.samples))
}

// Percentile returns the p-th percentile (p in [0,100]).
func (s *Stretch) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String summarizes the distribution.
func (s *Stretch) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
}

// Table renders aligned experiment tables.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable starts a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v, floats with
// four significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 1):
		return "inf"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
