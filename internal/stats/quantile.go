package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a generic quantile accumulator over float64 observations:
// stretch ratios, request latencies, table sizes — anything whose
// distribution the experiments summarize by mean/percentiles/extremes.
// The zero value is an empty sample. Not safe for concurrent use; for
// parallel accumulation keep one Sample per worker and Merge them.
type Sample struct {
	xs     []float64
	sorted []float64 // cached sort of xs; nil when stale
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = nil
}

// Merge appends all of o's observations to s, preserving o's insertion
// order (so merging per-worker samples in worker order reproduces the
// serial accumulation exactly). o is unchanged.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the average observation (0 when empty). Observations
// are summed in insertion order, so the result is deterministic for a
// deterministic insertion sequence.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.xs {
		t += v
	}
	return t / float64(len(s.xs))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) by the
// nearest-rank method, 0 when empty. The sort is cached, so asking for
// several percentiles costs one sort.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.xs...)
		sort.Float64s(s.sorted)
	}
	idx := int(math.Ceil(p/100*float64(len(s.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.sorted) {
		idx = len(s.sorted) - 1
	}
	return s.sorted[idx]
}

// Bucket is one histogram cell: observations v with Lo <= v < Hi
// (the last bucket includes Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets partitions the observations into k cells between Min and
// Max — geometrically spaced when the sample is all-positive and spans
// more than a decade (latency-style heavy tails), linearly otherwise.
func (s *Sample) Buckets(k int) []Bucket {
	if k < 1 || len(s.xs) == 0 {
		return nil
	}
	lo, hi := s.Min(), s.Max()
	if lo == hi {
		return []Bucket{{Lo: lo, Hi: hi, Count: len(s.xs)}}
	}
	bs := make([]Bucket, k)
	geometric := lo > 0 && hi/lo > 10
	ratio := math.Pow(hi/lo, 1/float64(k))
	width := (hi - lo) / float64(k)
	for i := range bs {
		if geometric {
			bs[i].Lo = lo * math.Pow(ratio, float64(i))
			bs[i].Hi = lo * math.Pow(ratio, float64(i+1))
		} else {
			bs[i].Lo = lo + width*float64(i)
			bs[i].Hi = lo + width*float64(i+1)
		}
	}
	bs[k-1].Hi = hi
	for _, v := range s.xs {
		var i int
		if geometric {
			i = int(math.Log(v/lo) / math.Log(ratio))
		} else {
			i = int((v - lo) / width)
		}
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		// Float rounding can land a value one cell off its half-open
		// range; nudge rather than miscount.
		for i > 0 && v < bs[i].Lo {
			i--
		}
		for i < k-1 && v >= bs[i].Hi {
			i++
		}
		bs[i].Count++
	}
	return bs
}

// Histogram renders k buckets as aligned ASCII bars; format renders
// bucket bounds (e.g. a duration formatter for latencies).
func (s *Sample) Histogram(k int, format func(float64) string) string {
	bs := s.Buckets(k)
	if len(bs) == 0 {
		return "(empty)\n"
	}
	if format == nil {
		format = func(v float64) string { return formatFloat(v) }
	}
	maxCount := 0
	labels := make([]string, len(bs))
	wide := 0
	for i, b := range bs {
		if b.Count > maxCount {
			maxCount = b.Count
		}
		labels[i] = fmt.Sprintf("[%s, %s)", format(b.Lo), format(b.Hi))
		if len(labels[i]) > wide {
			wide = len(labels[i])
		}
	}
	var sb strings.Builder
	for i, b := range bs {
		bar := 0
		if maxCount > 0 {
			bar = b.Count * 40 / maxCount
		}
		if b.Count > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%-*s %7d %s\n", wide, labels[i], b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}
