package stats

import (
	"strings"
	"testing"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if s.N() != 4 || s.Min() != 1 || s.Max() != 4 || s.Mean() != 2.5 {
		t.Fatalf("N=%d Min=%v Max=%v Mean=%v", s.N(), s.Min(), s.Max(), s.Mean())
	}
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("p50 = %v", got)
	}
	// Percentile caches a sort; Add must invalidate it.
	s.Add(0.5)
	if got := s.Percentile(0); got != 0.5 {
		t.Fatalf("p0 after Add = %v", got)
	}
}

func TestSampleAllNegative(t *testing.T) {
	var s Sample
	s.Add(-3)
	s.Add(-1)
	if s.Max() != -1 || s.Min() != -3 {
		t.Fatalf("Min=%v Max=%v", s.Min(), s.Max())
	}
	bs := s.Buckets(2)
	if bs[0].Lo != -3 || bs[1].Hi != -1 {
		t.Fatalf("bucket bounds %+v", bs)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample not zero")
	}
	if s.Buckets(4) != nil {
		t.Fatal("empty sample has buckets")
	}
}

// TestSampleMergePreservesOrder: merging per-worker samples in worker
// order must reproduce the serial insertion sequence bit-for-bit —
// the property the parallel stretch measurement relies on.
func TestSampleMergePreservesOrder(t *testing.T) {
	var serial Sample
	workers := make([]Sample, 3)
	x := 1.0
	for round := 0; round < 50; round++ {
		for w := range workers {
			v := 1 + 1/x // irregular values so float sums are order-sensitive
			x *= 1.7
			if x > 1e12 {
				x = 1.3
			}
			serial.Add(v)
			workers[w].Add(v)
		}
	}
	var merged Sample
	// Interleave back in serial order: one value per worker per round.
	// Simpler equivalent: merge whole workers, then compare multisets;
	// here worker w received every (3i+w)-th value, so merging workers
	// in order yields a permutation — compare sorted and count.
	for w := range workers {
		merged.Merge(&workers[w])
	}
	if merged.N() != serial.N() {
		t.Fatalf("N %d vs %d", merged.N(), serial.N())
	}
	for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
		if merged.Percentile(p) != serial.Percentile(p) {
			t.Fatalf("p%v diverges: %v vs %v", p, merged.Percentile(p), serial.Percentile(p))
		}
	}
	if merged.Max() != serial.Max() || merged.Min() != serial.Min() {
		t.Fatal("extremes diverge under merge")
	}
	// Mean of a chunk-ordered merge equals a serial pass over the same
	// chunk order (Merge preserves each chunk's insertion order).
	var chunked Sample
	for w := range workers {
		for _, v := range workers[w].xs {
			chunked.Add(v)
		}
	}
	if merged.Mean() != chunked.Mean() {
		t.Fatalf("Mean not reproducible: %v vs %v", merged.Mean(), chunked.Mean())
	}
}

func TestSampleBucketsCoverEverything(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	for _, k := range []int{1, 3, 7, 16} {
		bs := s.Buckets(k)
		if len(bs) != k {
			t.Fatalf("k=%d: got %d buckets", k, len(bs))
		}
		total := 0
		for _, b := range bs {
			total += b.Count
		}
		if total != s.N() {
			t.Fatalf("k=%d: buckets count %d of %d observations", k, total, s.N())
		}
		if bs[0].Lo != 1 || bs[k-1].Hi != 1000 {
			t.Fatalf("k=%d: bounds [%v, %v]", k, bs[0].Lo, bs[k-1].Hi)
		}
	}
}

func TestSampleBucketsGeometricForHeavyTails(t *testing.T) {
	var s Sample
	// Latency-like: three decades of spread.
	for i := 0; i < 100; i++ {
		s.Add(1 + float64(i%10))
	}
	s.Add(5000)
	bs := s.Buckets(8)
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != s.N() {
		t.Fatalf("geometric buckets count %d of %d", total, s.N())
	}
	// Geometric spacing: first bucket much narrower than the last.
	if first, last := bs[0].Hi-bs[0].Lo, bs[7].Hi-bs[7].Lo; first >= last {
		t.Fatalf("buckets not geometric: first width %v, last %v", first, last)
	}
}

func TestSampleConstant(t *testing.T) {
	var s Sample
	for i := 0; i < 5; i++ {
		s.Add(7)
	}
	bs := s.Buckets(4)
	if len(bs) != 1 || bs[0].Count != 5 {
		t.Fatalf("constant sample buckets: %+v", bs)
	}
}

func TestHistogramRenders(t *testing.T) {
	var s Sample
	for i := 1; i <= 64; i++ {
		s.Add(float64(i))
	}
	out := s.Histogram(4, nil)
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars in histogram:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", got, out)
	}
	var empty Sample
	if !strings.Contains(empty.Histogram(4, nil), "empty") {
		t.Fatal("empty histogram not labeled")
	}
}

func TestStretchMerge(t *testing.T) {
	var a, b Stretch
	a.Add(2, 1)
	b.Add(3, 1)
	b.Add(4, 1)
	a.Merge(&b)
	a.Merge(nil)
	if a.N() != 3 || a.Max() != 4 {
		t.Fatalf("merged stretch N=%d Max=%v", a.N(), a.Max())
	}
	if b.N() != 2 {
		t.Fatal("merge mutated source")
	}
}
