package stats

import (
	"strings"
	"testing"
)

func TestStretchBasics(t *testing.T) {
	var s Stretch
	s.Add(10, 10) // 1.0
	s.Add(30, 10) // 3.0
	s.Add(20, 10) // 2.0
	s.Add(5, 0)   // ignored
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Max() != 3 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestStretchPercentiles(t *testing.T) {
	var s Stretch
	for i := 1; i <= 100; i++ {
		s.Add(float64(i), 1)
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestStretchPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stretch < 1 did not panic")
		}
	}()
	var s Stretch
	s.Add(5, 10)
}

func TestStretchToleratesRoundoff(t *testing.T) {
	var s Stretch
	s.Add(9.9999999999999, 10) // within tolerance
	if s.Max() != 1 {
		t.Fatalf("roundoff not clamped: %v", s.Max())
	}
}

func TestEmptyStretch(t *testing.T) {
	var s Stretch
	if s.Max() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty stretch not zero")
	}
	if !strings.Contains(s.String(), "n=0") {
		t.Fatal("empty summary wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "k", "bits", "stretch")
	tb.AddRow(2, 1024, 3.14159)
	tb.AddRow(3, "n/a", 0.0001)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "1.000e-04") {
		t.Fatalf("small float not scientific: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "x")
	tb.AddRow("aaaa", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}
