package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRouter returns a deterministic result derived from the pair and
// counts how many times it was actually invoked.
type echoRouter struct {
	calls atomic.Uint64
	block chan struct{} // when non-nil, Route blocks until closed
}

func (e *echoRouter) RouteByName(ctx context.Context, src, dst uint64) (Result, error) {
	e.calls.Add(1)
	if e.block != nil {
		<-e.block
	}
	if dst == 0xdead {
		return Result{}, errors.New("unknown destination")
	}
	return Result{Delivered: true, Cost: float64(src + dst), Hops: int(src % 7)}, nil
}

func TestPoolCachesDeterministicResults(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 4, CacheSize: 128})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := p.Route(ctx, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered || res.Cost != 30 {
			t.Fatalf("wrong result %+v", res)
		}
	}
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("router invoked %d times, want 1 (cache)", got)
	}
	st := p.Stats()
	if st.Requests != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolCacheDisabled(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 2, CacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, err := p.Route(context.Background(), 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.calls.Load(); got != 3 {
		t.Fatalf("router invoked %d times, want 3 (cache off)", got)
	}
}

func TestPoolErrorsAreNotCached(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 2, CacheSize: 64})
	for i := 0; i < 2; i++ {
		if _, err := p.Route(context.Background(), 1, 0xdead); err == nil {
			t.Fatal("expected error")
		}
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("router invoked %d times, want 2 (errors not cached)", got)
	}
	if st := p.Stats(); st.Errors != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	const workers = 3
	p := NewPool(r, Options{Workers: workers, CacheSize: -1})

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct pairs so caching could not collapse them anyway.
			p.Route(context.Background(), uint64(i), uint64(1000+i))
		}(i)
	}
	// Wait until the pool saturates, then verify it never exceeds the cap.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().InFlight < workers {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().InFlight; got != workers {
		t.Fatalf("in-flight %d, want exactly %d", got, workers)
	}
	close(r.block)
	wg.Wait()
	if got := p.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight %d after drain", got)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 1, CacheSize: -1})
	go p.Route(context.Background(), 1, 2) // occupies the only worker
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Route(ctx, 3, 4)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	// Both classifications must hold: the typed saturation sentinel for
	// status mapping, and the underlying context error for callers that
	// distinguish cancellation from deadline expiry.
	if !errors.Is(err, ErrSaturated) || !errors.Is(err, context.Canceled) {
		t.Fatalf("rejection error %v lacks ErrSaturated/context.Canceled", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
	close(r.block)
}

func TestLRUEviction(t *testing.T) {
	sh := newShard(2)
	sh.put(1, 10, 11, Result{Cost: 1}, sh.generation())
	sh.put(2, 20, 21, Result{Cost: 2}, sh.generation())
	sh.get(1, 10, 11) // touch 1 so 2 is the eviction victim
	sh.put(3, 30, 31, Result{Cost: 3}, sh.generation())
	if _, ok := sh.get(2, 20, 21); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []uint64{1, 3} {
		if _, ok := sh.get(k, k*10, k*10+1); !ok {
			t.Fatalf("%d should be resident", k)
		}
	}
}

// TestCollisionReadsAsMiss: two different pairs behind the same folded
// key must never see each other's results.
func TestCollisionReadsAsMiss(t *testing.T) {
	sh := newShard(4)
	sh.put(42, 1, 2, Result{Cost: 12}, sh.generation())
	if _, ok := sh.get(42, 3, 4); ok {
		t.Fatal("colliding pair served a foreign result")
	}
	if res, ok := sh.get(42, 1, 2); !ok || res.Cost != 12 {
		t.Fatalf("own pair should still hit: %+v %v", res, ok)
	}
}

func TestPoolConcurrentMixedLoad(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 4, CacheSize: 256, Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src, dst := uint64(i%40), uint64((g*i)%40)
				res, err := p.Route(context.Background(), src, dst)
				if err != nil {
					t.Errorf("route %d/%d: %v", src, dst, err)
					return
				}
				if want := float64(src + dst); res.Cost != want {
					t.Errorf("route %d/%d: cost %v want %v", src, dst, res.Cost, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Requests != 4000 || st.Hits+st.Misses != st.Requests {
		t.Fatalf("stats %+v", st)
	}
	if st.CacheLen > st.CacheCap {
		t.Fatalf("cache overflow: %+v", st)
	}
}

func TestShardDistribution(t *testing.T) {
	p := NewPool(RouterFunc(func(ctx context.Context, src, dst uint64) (Result, error) {
		return Result{}, nil
	}), Options{Shards: 16, CacheSize: 1 << 12})
	counts := make(map[*shard]int)
	for i := 0; i < 4096; i++ {
		counts[p.shard(cacheKey(uint64(i), uint64(i+1)))]++
	}
	if len(counts) != 16 {
		t.Fatalf("keys landed on %d of 16 shards", len(counts))
	}
	for sh, c := range counts {
		if c > 4096/16*4 {
			t.Fatalf("shard %p got %d of 4096 keys", sh, c)
		}
	}
}

// waitForWaiters polls until the flight for (src, dst) has the given
// number of attached followers.
func waitForWaiters(t *testing.T, p *Pool, src, dst uint64, want int) {
	t.Helper()
	key := cacheKey(src, dst)
	sh := p.shard(key)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.mu.Lock()
		fl := sh.flights[key]
		waiters := -1
		if fl != nil {
			waiters = fl.waiters
		}
		sh.mu.Unlock()
		if waiters >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight never reached %d waiters (have %d)", want, waiters)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightColdBurst: K concurrent identical cold queries must
// perform exactly one underlying route computation — the package's
// "never recompute a route it has already walked" promise under
// concurrency, not just sequentially.
func TestSingleFlightColdBurst(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 8, CacheSize: 128})
	const K = 8
	var wg sync.WaitGroup
	results := make([]Result, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Route(context.Background(), 5, 6)
		}(i)
	}
	waitForWaiters(t, p, 5, 6, K-1)
	close(r.block)
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !results[i].Delivered || results[i].Cost != 11 {
			t.Fatalf("request %d got %+v", i, results[i])
		}
	}
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("router invoked %d times for %d identical cold queries, want 1", got, K)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Coalesced != K-1 || st.Hits != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The coalesced result is now cached for everyone else.
	if _, err := p.Route(context.Background(), 5, 6); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("stats after warm query %+v", st)
	}
}

// TestSingleFlightErrorPropagates: a leader's routing error reaches
// every follower, and nothing is cached.
func TestSingleFlightErrorPropagates(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 4, CacheSize: 64})
	const K = 5
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Route(context.Background(), 1, 0xdead)
		}(i)
	}
	waitForWaiters(t, p, 1, 0xdead, K-1)
	close(r.block)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d did not see the error", i)
		}
	}
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("router invoked %d times, want 1", got)
	}
	if st := p.Stats(); st.Errors != K || st.Coalesced != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSingleFlightFollowerCancel: a follower honoring its own context
// can give up without disturbing the flight.
func TestSingleFlightFollowerCancel(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 2, CacheSize: 64})
	go p.Route(context.Background(), 7, 8) // leader, blocks in the router
	waitForWaiters(t, p, 7, 8, 0)
	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := p.Route(ctx, 7, 8)
		followerErr <- err
	}()
	waitForWaiters(t, p, 7, 8, 1)
	cancel()
	if err := <-followerErr; err == nil {
		t.Fatal("canceled follower returned no error")
	}
	close(r.block)
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSingleFlightLeaderCancelPromotesFollower: when the leader gives
// up waiting for a worker, a follower with a live context must take
// over the computation instead of inheriting the cancellation.
func TestSingleFlightLeaderCancelPromotesFollower(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 1, CacheSize: 64})
	// Occupy the only worker slot so the (3,4) leader queues on it.
	go p.Route(context.Background(), 1, 2)
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := p.Route(leaderCtx, 3, 4)
		leaderErr <- err
	}()
	waitForWaiters(t, p, 3, 4, 0) // leader registered its flight
	followerRes := make(chan Result, 1)
	followerErr := make(chan error, 1)
	go func() {
		res, err := p.Route(context.Background(), 3, 4)
		followerRes <- res
		followerErr <- err
	}()
	waitForWaiters(t, p, 3, 4, 1) // follower attached
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Fatal("canceled leader returned no error")
	}
	close(r.block) // free the worker; the promoted follower computes
	if err := <-followerErr; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if res := <-followerRes; !res.Delivered || res.Cost != 7 {
		t.Fatalf("follower result %+v", res)
	}
}

// TestFlightCollisionBypasses: a different pair behind the same folded
// key must not join a foreign flight.
func TestFlightCollisionBypasses(t *testing.T) {
	sh := newShard(4)
	if _, role := sh.joinFlight(42, 1, 2); role != flightLeader {
		t.Fatalf("first pair not leader: %v", role)
	}
	if fl, role := sh.joinFlight(42, 3, 4); role != flightBypass || fl != nil {
		t.Fatalf("colliding pair joined a foreign flight: %v", role)
	}
	if _, role := sh.joinFlight(42, 1, 2); role != flightFollower {
		t.Fatalf("identical pair not follower: %v", role)
	}
}

// TestNoCacheAllocatesNothing: a disabled cache must not pay for
// shards, and single-flight is off with it (every query computes).
func TestNoCacheAllocatesNothing(t *testing.T) {
	p := NewPool(&echoRouter{}, Options{Workers: 2, CacheSize: -1, Shards: 64})
	if p.shards != nil {
		t.Fatalf("disabled cache allocated %d shards", len(p.shards))
	}
	st := p.Stats()
	if !st.CacheOff || st.ShardsLen != 0 || st.CacheCap != 0 || st.CacheLen != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheCapExact: Stats.CacheCap reports the requested capacity,
// not a per-shard rounding of it, and per-shard quotas sum to it.
func TestCacheCapExact(t *testing.T) {
	for _, tc := range []struct {
		size, shards, wantShards int
	}{
		{100, 16, 16}, // 100/16 is fractional: old code reported 112
		{256, 8, 8},
		{4, 16, 4}, // fewer entries than shards: shards clamp down
		{1, 16, 1},
		{65536, 0, 16},
	} {
		p := NewPool(&echoRouter{}, Options{CacheSize: tc.size, Shards: tc.shards})
		st := p.Stats()
		if st.CacheCap != tc.size {
			t.Errorf("size %d shards %d: CacheCap %d, want %d", tc.size, tc.shards, st.CacheCap, tc.size)
		}
		if st.ShardsLen != tc.wantShards {
			t.Errorf("size %d shards %d: %d shards, want %d", tc.size, tc.shards, st.ShardsLen, tc.wantShards)
		}
		total := 0
		for _, sh := range p.shards {
			if sh.cap < 1 {
				t.Errorf("size %d shards %d: zero-quota shard", tc.size, tc.shards)
			}
			total += sh.cap
		}
		if total != tc.size {
			t.Errorf("size %d shards %d: quotas sum to %d", tc.size, tc.shards, total)
		}
	}
}

// TestShortestCostStalenessInvariant documents the cache staleness
// invariant: a result cached while the scheme had no metric keeps
// ShortestCost = 0 even after the metric appears. Serving processes
// must therefore ensure the metric before admitting queries (see the
// package comment and cmd/routed's -metric ordering).
func TestShortestCostStalenessInvariant(t *testing.T) {
	metricReady := false
	p := NewPool(RouterFunc(func(ctx context.Context, src, dst uint64) (Result, error) {
		res := Result{Delivered: true, Cost: 10}
		if metricReady {
			res.ShortestCost = 5
			res.MetricKnown = true
		}
		return res, nil
	}), Options{Workers: 1, CacheSize: 16})

	cold, err := p.Route(context.Background(), 1, 2)
	if err != nil || cold.ShortestCost != 0 {
		t.Fatalf("pre-metric route: %+v, %v", cold, err)
	}
	metricReady = true // EnsureMetric after the pool is warm: too late
	warm, err := p.Route(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ShortestCost != 0 {
		t.Fatalf("cached entry was refreshed: %+v — the documented invariant changed", warm)
	}
	// A pair never seen before the metric is fine.
	fresh, err := p.Route(context.Background(), 3, 4)
	if err != nil || fresh.ShortestCost != 5 {
		t.Fatalf("post-metric route: %+v, %v", fresh, err)
	}
}

func ExampleRouterFunc() {
	p := NewPool(RouterFunc(func(ctx context.Context, src, dst uint64) (Result, error) {
		return Result{Delivered: true, Cost: 1}, nil
	}), Options{Workers: 1})
	res, _ := p.Route(context.Background(), 1, 2)
	fmt.Println(res.Delivered)
	// Output: true
}

// TestPurgeEmptiesCache: Purge drops every resident entry, counts in
// Stats, and the next identical query recomputes.
func TestPurgeEmptiesCache(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 2, CacheSize: 64})
	ctx := context.Background()
	for i := uint64(0); i < 8; i++ {
		if _, err := p.Route(ctx, i, i+100); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.CacheLen != 8 {
		t.Fatalf("resident %d, want 8", st.CacheLen)
	}
	p.Purge()
	st := p.Stats()
	if st.CacheLen != 0 || st.Purges != 1 {
		t.Fatalf("after purge: %+v", st)
	}
	if _, err := p.Route(ctx, 0, 100); err != nil {
		t.Fatal(err)
	}
	if got := r.calls.Load(); got != 9 {
		t.Fatalf("router invoked %d times, want 9 (post-purge recompute)", got)
	}
}

// TestPurgeSuppressesInFlightRepopulation is the single-flight
// interaction the hot-swap path depends on: a computation that was in
// flight when Purge ran may answer its own caller (it resolved the
// old topology at admission), but its result must NOT enter the
// cache — otherwise a post-swap query could read a pre-swap route.
func TestPurgeSuppressesInFlightRepopulation(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 4, CacheSize: 64})
	done := make(chan error, 1)
	go func() {
		_, err := p.Route(context.Background(), 5, 6)
		done <- err
	}()
	// Wait until the leader is computing (router invoked), then purge.
	deadline := time.Now().Add(5 * time.Second)
	for r.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started computing")
		}
		time.Sleep(time.Millisecond)
	}
	p.Purge()
	close(r.block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.CacheLen != 0 {
		t.Fatalf("pre-purge in-flight result was cached: %+v", st)
	}
	// The same query now recomputes (a miss, not a hit).
	if _, err := p.Route(context.Background(), 5, 6); err != nil {
		t.Fatal(err)
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("router invoked %d times, want 2", got)
	}
	if st := p.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPurgeDetachesFlights: a request arriving after Purge must lead a
// fresh computation rather than follow a pre-purge leader, and the old
// leader resolving must not tear down the new flight (identity check
// in resolveFlight).
func TestPurgeDetachesFlights(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 4, CacheSize: 64})
	oldDone := make(chan error, 1)
	go func() {
		_, err := p.Route(context.Background(), 5, 6)
		oldDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for r.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started computing")
		}
		time.Sleep(time.Millisecond)
	}
	p.Purge()
	newDone := make(chan error, 1)
	go func() {
		_, err := p.Route(context.Background(), 5, 6)
		newDone <- err
	}()
	// The post-purge request must become a leader itself: the router
	// gets a second invocation even though the first never finished.
	for r.calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("post-purge request coalesced onto a purged flight (calls=%d)", r.calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(r.block)
	if err := <-oldDone; err != nil {
		t.Fatal(err)
	}
	if err := <-newDone; err != nil {
		t.Fatal(err)
	}
	// Old leader's resolve ran after the new flight existed; the new
	// leader's result (same generation as its admission? it started
	// after the purge, so it IS cached) must be resident exactly once.
	st := p.Stats()
	if st.Misses != 2 || st.Coalesced != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.CacheLen != 1 {
		t.Fatalf("resident %d, want 1 (only the post-purge result)", st.CacheLen)
	}
}

// TestPurgeNoCacheIsNoop: Purge on a cacheless pool must not panic or
// count.
func TestPurgeNoCacheIsNoop(t *testing.T) {
	p := NewPool(&echoRouter{}, Options{Workers: 1, CacheSize: -1})
	p.Purge()
	if st := p.Stats(); st.Purges != 0 {
		t.Fatalf("stats %+v", st)
	}
}
