package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRouter returns a deterministic result derived from the pair and
// counts how many times it was actually invoked.
type echoRouter struct {
	calls atomic.Uint64
	block chan struct{} // when non-nil, Route blocks until closed
}

func (e *echoRouter) RouteByName(src, dst uint64) (Result, error) {
	e.calls.Add(1)
	if e.block != nil {
		<-e.block
	}
	if dst == 0xdead {
		return Result{}, errors.New("unknown destination")
	}
	return Result{Delivered: true, Cost: float64(src + dst), Hops: int(src % 7)}, nil
}

func TestPoolCachesDeterministicResults(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 4, CacheSize: 128})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := p.Route(ctx, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered || res.Cost != 30 {
			t.Fatalf("wrong result %+v", res)
		}
	}
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("router invoked %d times, want 1 (cache)", got)
	}
	st := p.Stats()
	if st.Requests != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolCacheDisabled(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 2, CacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, err := p.Route(context.Background(), 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.calls.Load(); got != 3 {
		t.Fatalf("router invoked %d times, want 3 (cache off)", got)
	}
}

func TestPoolErrorsAreNotCached(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 2, CacheSize: 64})
	for i := 0; i < 2; i++ {
		if _, err := p.Route(context.Background(), 1, 0xdead); err == nil {
			t.Fatal("expected error")
		}
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("router invoked %d times, want 2 (errors not cached)", got)
	}
	if st := p.Stats(); st.Errors != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	const workers = 3
	p := NewPool(r, Options{Workers: workers, CacheSize: -1})

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct pairs so caching could not collapse them anyway.
			p.Route(context.Background(), uint64(i), uint64(1000+i))
		}(i)
	}
	// Wait until the pool saturates, then verify it never exceeds the cap.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().InFlight < workers {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().InFlight; got != workers {
		t.Fatalf("in-flight %d, want exactly %d", got, workers)
	}
	close(r.block)
	wg.Wait()
	if got := p.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight %d after drain", got)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	r := &echoRouter{block: make(chan struct{})}
	p := NewPool(r, Options{Workers: 1, CacheSize: -1})
	go p.Route(context.Background(), 1, 2) // occupies the only worker
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Route(ctx, 3, 4); err == nil {
		t.Fatal("expected cancellation error")
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
	close(r.block)
}

func TestLRUEviction(t *testing.T) {
	sh := newShard(2)
	sh.put(1, 10, 11, Result{Cost: 1})
	sh.put(2, 20, 21, Result{Cost: 2})
	sh.get(1, 10, 11) // touch 1 so 2 is the eviction victim
	sh.put(3, 30, 31, Result{Cost: 3})
	if _, ok := sh.get(2, 20, 21); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []uint64{1, 3} {
		if _, ok := sh.get(k, k*10, k*10+1); !ok {
			t.Fatalf("%d should be resident", k)
		}
	}
}

// TestCollisionReadsAsMiss: two different pairs behind the same folded
// key must never see each other's results.
func TestCollisionReadsAsMiss(t *testing.T) {
	sh := newShard(4)
	sh.put(42, 1, 2, Result{Cost: 12})
	if _, ok := sh.get(42, 3, 4); ok {
		t.Fatal("colliding pair served a foreign result")
	}
	if res, ok := sh.get(42, 1, 2); !ok || res.Cost != 12 {
		t.Fatalf("own pair should still hit: %+v %v", res, ok)
	}
}

func TestPoolConcurrentMixedLoad(t *testing.T) {
	r := &echoRouter{}
	p := NewPool(r, Options{Workers: 4, CacheSize: 256, Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src, dst := uint64(i%40), uint64((g*i)%40)
				res, err := p.Route(context.Background(), src, dst)
				if err != nil {
					t.Errorf("route %d/%d: %v", src, dst, err)
					return
				}
				if want := float64(src + dst); res.Cost != want {
					t.Errorf("route %d/%d: cost %v want %v", src, dst, res.Cost, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Requests != 4000 || st.Hits+st.Misses != st.Requests {
		t.Fatalf("stats %+v", st)
	}
	if st.CacheLen > st.CacheCap {
		t.Fatalf("cache overflow: %+v", st)
	}
}

func TestShardDistribution(t *testing.T) {
	p := NewPool(RouterFunc(func(src, dst uint64) (Result, error) {
		return Result{}, nil
	}), Options{Shards: 16, CacheSize: 1 << 12})
	counts := make(map[*shard]int)
	for i := 0; i < 4096; i++ {
		counts[p.shard(cacheKey(uint64(i), uint64(i+1)))]++
	}
	if len(counts) != 16 {
		t.Fatalf("keys landed on %d of 16 shards", len(counts))
	}
	for sh, c := range counts {
		if c > 4096/16*4 {
			t.Fatalf("shard %p got %d of 4096 keys", sh, c)
		}
	}
}

func ExampleRouterFunc() {
	p := NewPool(RouterFunc(func(src, dst uint64) (Result, error) {
		return Result{Delivered: true, Cost: 1}, nil
	}), Options{Workers: 1})
	res, _ := p.Route(context.Background(), 1, 2)
	fmt.Println(res.Delivered)
	// Output: true
}
