package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pathRouter is a fixed table of directional paths with unit-ish
// costs: route(src,dst) returns the registered path or non-delivery.
type pathRouter struct {
	mu    sync.Mutex
	calls map[[2]uint64]int
	paths map[[2]uint64]struct {
		path []uint64
		cost float64
	}
}

func newPathRouter() *pathRouter {
	return &pathRouter{
		calls: make(map[[2]uint64]int),
		paths: make(map[[2]uint64]struct {
			path []uint64
			cost float64
		}),
	}
}

func (p *pathRouter) set(src, dst uint64, cost float64, path ...uint64) {
	p.paths[[2]uint64{src, dst}] = struct {
		path []uint64
		cost float64
	}{path, cost}
}

func (p *pathRouter) route(ctx context.Context, src, dst uint64) (Result, []uint64, error) {
	p.mu.Lock()
	p.calls[[2]uint64{src, dst}]++
	p.mu.Unlock()
	e, ok := p.paths[[2]uint64{src, dst}]
	if !ok {
		return Result{}, nil, nil // honest non-delivery
	}
	return Result{Delivered: true, Cost: e.cost, Hops: len(e.path) - 1}, e.path, nil
}

func (p *pathRouter) callCount(src, dst uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[[2]uint64{src, dst}]
}

func TestRepairerPassThroughWhenClear(t *testing.T) {
	pr := newPathRouter()
	pr.set(1, 2, 5, 1, 3, 2)
	r := NewRepairer(pr.route, RepairOptions{})
	res, err := r.RouteByName(context.Background(), 1, 2)
	if err != nil || !res.Delivered || res.Cost != 5 {
		t.Fatalf("clear route: %+v, %v", res, err)
	}
	// No BestOfBoth: the reverse direction must never be walked.
	if pr.callCount(2, 1) != 0 {
		t.Fatal("reverse walked without BestOfBoth")
	}
	// Honest non-delivery passes through without error.
	res, err = r.RouteByName(context.Background(), 1, 9)
	if err != nil || res.Delivered {
		t.Fatalf("unknown destination: %+v, %v", res, err)
	}
}

func TestRepairerBlocksDownElements(t *testing.T) {
	pr := newPathRouter()
	pr.set(1, 2, 5, 1, 3, 2)
	r := NewRepairer(pr.route, RepairOptions{})

	r.FailEdge(3, 1) // orientation must not matter
	if _, err := r.RouteByName(context.Background(), 1, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("down edge on path: err = %v", err)
	}
	r.RecoverEdge(1, 3)
	if _, err := r.RouteByName(context.Background(), 1, 2); err != nil {
		t.Fatalf("after recovery: %v", err)
	}

	r.FailNode(3) // interior node down
	if _, err := r.RouteByName(context.Background(), 1, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("down interior node: err = %v", err)
	}
	r.RecoverNode(3)

	r.FailNode(2) // endpoint down: unreachable without any walk
	if _, err := r.RouteByName(context.Background(), 1, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("down endpoint: err = %v", err)
	}
	r.RecoverNode(2)

	// DropEdge clears fault state: a removed-then-readded link is up.
	r.FailEdge(1, 3)
	if !r.DropEdge(1, 3) {
		t.Fatal("DropEdge of a down pair reported no change")
	}
	if r.DropEdge(1, 3) {
		t.Fatal("DropEdge of an up pair reported a change")
	}
	if _, err := r.RouteByName(context.Background(), 1, 2); err != nil {
		t.Fatalf("after drop: %v", err)
	}
}

func TestRepairerBestOfBothServesCheaperClearDirection(t *testing.T) {
	pr := newPathRouter()
	pr.set(1, 2, 10, 1, 3, 2) // forward via 3
	pr.set(2, 1, 7, 2, 4, 1)  // reverse via 4, cheaper
	r := NewRepairer(pr.route, RepairOptions{BestOfBoth: true})

	res, path, err := r.RoutePathByName(context.Background(), 1, 2)
	if err != nil || res.Cost != 7 {
		t.Fatalf("cheaper reverse not served: %+v, %v", res, err)
	}
	if len(path) != 3 || path[1] != 4 {
		t.Fatalf("served path = %v, want the reverse walk via 4", path)
	}

	// Forward blocked, reverse clear: the reverse rescues the query.
	r.FailNode(3)
	if res, _, err = r.RoutePathByName(context.Background(), 1, 2); err != nil || res.Cost != 7 {
		t.Fatalf("reverse rescue: %+v, %v", res, err)
	}
	// Both blocked: unreachable.
	r.FailNode(4)
	if _, err := r.RouteByName(context.Background(), 1, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("both directions blocked: err = %v", err)
	}
	r.RecoverNode(3)
	r.RecoverNode(4)

	// Equal effective cost ties to forward (determinism).
	pr2 := newPathRouter()
	pr2.set(5, 6, 9, 5, 7, 6)
	pr2.set(6, 5, 9, 6, 8, 5)
	r2 := NewRepairer(pr2.route, RepairOptions{BestOfBoth: true})
	for range 8 {
		_, path, err := r2.RoutePathByName(context.Background(), 5, 6)
		if err != nil || path[1] != 7 {
			t.Fatalf("tie not broken toward forward: %v, %v", path, err)
		}
	}
	// Self-routes never spawn a reverse walk.
	if _, err := r2.RouteByName(context.Background(), 5, 5); err != nil {
		t.Fatal(err)
	}
	if pr2.callCount(5, 5) != 1 {
		t.Fatalf("self-route walked %d times", pr2.callCount(5, 5))
	}
}

func TestRepairerFlapDampingDecays(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	pr := newPathRouter()
	pr.set(1, 2, 10, 1, 3, 2) // forward, cheaper
	pr.set(2, 1, 12, 2, 4, 1) // reverse, dearer but never flapped
	r := NewRepairer(pr.route, RepairOptions{
		BestOfBoth:   true,
		DampPenalty:  8,
		DampHalfLife: 10 * time.Second,
		Now:          clock,
	})

	// Flap the forward link: fail + recover. It is up again — but
	// damped, so the clean reverse direction wins (10+8 > 12).
	r.FailEdge(1, 3)
	r.RecoverEdge(1, 3)
	if st := r.Stats(); st.DownEdges != 0 || st.Damped != 1 {
		t.Fatalf("after flap: %+v", st)
	}
	res, err := r.RouteByName(context.Background(), 1, 2)
	if err != nil || res.Cost != 12 {
		t.Fatalf("damped element not avoided: %+v, %v", res, err)
	}
	// Three half-lives later the penalty has decayed to 1: 10+1 beats
	// 12 and the forward direction is trusted again.
	advance(30 * time.Second)
	res, err = r.RouteByName(context.Background(), 1, 2)
	if err != nil || res.Cost != 10 {
		t.Fatalf("decayed penalty still steering: %+v, %v", res, err)
	}
	// Decayed entries are swept on the next stamp (10 half-lives).
	advance(100 * 10 * time.Second)
	r.FailNode(9)
	if st := r.Stats(); st.Damped != 1 {
		t.Fatalf("stale damp entries not swept: %+v", st)
	}
}

func TestRepairerErrorPassThrough(t *testing.T) {
	boom := errors.New("boom")
	r := NewRepairer(func(ctx context.Context, src, dst uint64) (Result, []uint64, error) {
		return Result{}, nil, fmt.Errorf("route %d→%d: %w", src, dst, boom)
	}, RepairOptions{BestOfBoth: true})
	if _, err := r.RouteByName(context.Background(), 1, 2); !errors.Is(err, boom) {
		t.Fatalf("routing error rewritten: %v", err)
	}
}
