// Package serve is the concurrent query-serving layer over a built
// routing scheme: a bounded worker pool that turns unbounded HTTP
// concurrency into a fixed routing parallelism, fronted by a sharded
// LRU cache of routing results with single-flight duplicate
// suppression.
//
// The shape follows the paper's economics. A compact routing scheme
// spends its budget at construction time (Õ(n^{1/k}) bits per node,
// APSP, tree covers) precisely so that queries are cheap; a serving
// process therefore wants to (a) admit any number of callers, (b)
// bound the number of simultaneously-walking route computations to the
// hardware, and (c) never recompute a route it has already walked —
// routes are deterministic for a fixed scheme, so caching is sound,
// and N concurrent identical misses coalesce onto one computation
// (single flight) rather than racing N workers over the same walk.
// Shards keep the cache's lock fine-grained under the -race detector
// and real contention alike.
//
// Staleness invariant: a cached Result snapshots ShortestCost (and
// MetricKnown) at computation time. A scheme served before its network
// has a metric (compactroute.Load without EnsureMetric) caches
// MetricKnown = false, and those entries are never refreshed — the
// cache trusts the scheme to be immutable. A daemon that wants true
// stretch in responses must therefore ensure the metric BEFORE the
// first query is admitted (cmd/routed computes it between Load and
// pool construction); calling EnsureMetric on a warm pool leaves every
// already-cached pair stale.
//
// The one sanctioned way to serve a scheme that DOES change is to
// swap in a new immutable scheme and call Purge in the same breath:
// Purge discards every cached result and suppresses in-flight
// re-population (a generation counter), which is exactly what the
// dynamic-topology swap hook does (internal/dynamic, DESIGN.md §7).
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compactroute/internal/obs"
	"compactroute/internal/routeerr"
)

// ErrSaturated wraps every rejection: a query that could not be
// admitted (or whose flight could not be joined) before its context
// expired. Callers classify with errors.Is; the underlying context
// error (Canceled or DeadlineExceeded) stays in the chain too.
var ErrSaturated = routeerr.ErrSaturated

// Router is the query interface the pool serves: the facade's
// RouteByNameCtx shape. The context is the caller's — the pool hands
// it through so a canceled request aborts its route mid-walk.
type Router interface {
	RouteByName(ctx context.Context, srcName, dstName uint64) (Result, error)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(ctx context.Context, srcName, dstName uint64) (Result, error)

// RouteByName implements Router.
func (f RouterFunc) RouteByName(ctx context.Context, srcName, dstName uint64) (Result, error) {
	return f(ctx, srcName, dstName)
}

// Result is the cached routing outcome. It mirrors the facade's Result
// fields that are deterministic for a fixed scheme (stretch-related
// fields are meaningful only when MetricKnown — see the staleness
// invariant in the package comment).
type Result struct {
	Delivered    bool
	Cost         float64
	Hops         int
	HeaderBits   int64
	ShortestCost float64
	// MetricKnown marks ShortestCost as real: the scheme's network had
	// its metric when this result was computed. A false value means
	// "unknown", never "zero distance".
	MetricKnown bool
}

// Stats is a point-in-time snapshot of pool counters. Every admitted
// request lands in exactly one of Hits, Misses, Coalesced, Errors, or
// Rejected.
type Stats struct {
	Requests  uint64 // queries admitted
	Hits      uint64 // served from cache
	Misses    uint64 // routed by a worker
	Coalesced uint64 // joined an identical in-flight computation
	Errors    uint64 // routing errors
	Rejected  uint64 // canceled while waiting for a worker or a flight
	Purges    uint64 // full cache invalidations (Purge calls)
	InFlight  int64  // currently routing
	CacheLen  int    // entries resident
	CacheCap  int    // configured capacity (exactly as requested)
	Workers   int    // pool size
	CacheOff  bool   // cache disabled
	ShardsLen int    // number of cache shards (0 when disabled)
}

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent route computations; 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the total cached results across shards; 0 means
	// 1<<16, negative disables caching (and single-flight with it).
	CacheSize int
	// Shards is the cache shard count; 0 means 16, rounded up to a
	// power of two (and down so no shard has a zero quota).
	Shards int
}

// Pool serves routing queries through a bounded worker pool and a
// sharded LRU result cache. It is safe for concurrent use.
type Pool struct {
	router   Router
	slots    chan struct{}
	shards   []*shard
	mask     uint64
	cacheCap int
	noCache  bool

	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	errors    atomic.Uint64
	rejected  atomic.Uint64
	purges    atomic.Uint64
	inFlight  atomic.Int64
}

// NewPool builds a pool over r. With caching disabled (negative
// CacheSize) no shard structures are allocated at all.
func NewPool(r Router, o Options) *Pool {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		router:  r,
		slots:   make(chan struct{}, workers),
		noCache: o.CacheSize < 0,
	}
	if p.noCache {
		return p
	}
	size := o.CacheSize
	if size == 0 {
		size = 1 << 16
	}
	shards := o.Shards
	if shards <= 0 {
		shards = 16
	}
	// Round up to a power of two so shard selection is a mask…
	for shards&(shards-1) != 0 {
		shards++
	}
	// …then down so every shard holds at least one entry and the
	// per-shard quotas sum to exactly the requested capacity.
	for shards > size {
		shards /= 2
	}
	p.shards = make([]*shard, shards)
	p.mask = uint64(shards - 1)
	p.cacheCap = size
	for i := range p.shards {
		quota := size / shards
		if i < size%shards {
			quota++
		}
		p.shards[i] = newShard(quota)
	}
	return p
}

// Route answers one query, consulting the cache first and bounding the
// underlying computation by the worker pool. Concurrent identical
// misses coalesce: one caller leads the computation, the rest wait for
// its result. It blocks while all workers are busy; cancel ctx to give
// up waiting.
//
//crlint:hotpath
func (p *Pool) Route(ctx context.Context, srcName, dstName uint64) (Result, error) {
	p.requests.Add(1)
	if err := ctx.Err(); err != nil {
		p.rejected.Add(1)
		return Result{}, fmt.Errorf("serve: %w: %w", ErrSaturated, err)
	}
	if p.noCache {
		return p.compute(ctx, srcName, dstName)
	}
	key := cacheKey(srcName, dstName)
	sh := p.shard(key)
	for {
		// The shard generation is read at admission: if a Purge lands
		// anywhere between here and the result store, the store is
		// suppressed — sh.put re-checks the generation under the shard
		// lock, so the check and the insert are atomic (see Purge).
		gen := sh.generation()
		if res, ok := sh.get(key, srcName, dstName); ok {
			p.hits.Add(1)
			obs.Mark(ctx, "pool", "cache", "hit")
			return res, nil
		}
		fl, role := sh.joinFlight(key, srcName, dstName)
		switch role {
		case flightFollower:
			select {
			case <-fl.done:
				if fl.err != nil {
					if isCanceled(fl.err) {
						// The leader gave up waiting for a worker, but
						// this follower's own context is still live:
						// re-run the admission so a healthy caller
						// becomes the new leader instead of inheriting
						// a stranger's cancellation.
						continue
					}
					p.errors.Add(1)
					return Result{}, fl.err
				}
				p.coalesced.Add(1)
				obs.Mark(ctx, "pool", "flight", "coalesced")
				return fl.res, nil
			case <-ctx.Done():
				p.rejected.Add(1)
				return Result{}, fmt.Errorf("serve: %w: %w", ErrSaturated, ctx.Err())
			}
		case flightBypass:
			// A different pair behind the same folded key is in
			// flight; a collision must never read as someone else's
			// route, so this request computes independently.
			return p.compute(ctx, srcName, dstName)
		}
		res, err := p.compute(ctx, srcName, dstName)
		if err == nil {
			sh.put(key, srcName, dstName, res, gen)
		}
		sh.resolveFlight(key, fl, res, err)
		return res, err
	}
}

// Purge discards every cached result and in-flight registration — the
// hot-swap hook: after a topology swap, results computed on the old
// version must neither be served nor re-populated. In-flight
// computations are not interrupted (their callers resolved the old
// version at admission and legitimately receive its answer), but the
// per-shard generation bump prevents their results from entering the
// cache — the admission generation is re-checked under the shard lock
// at insert time, so no pre-purge result can slip in after the purge —
// and clearing the flight tables makes every post-purge request lead
// a fresh computation instead of following a pre-purge leader.
//
// Purge is cheap — a per-shard counter bump plus map reset — and safe
// to call concurrently with serving; it is a no-op on a pool with
// caching disabled.
func (p *Pool) Purge() {
	if p.noCache {
		return
	}
	for _, sh := range p.shards {
		sh.purge()
	}
	p.purges.Add(1)
}

// compute takes a worker slot and walks the route, maintaining the
// per-request counters.
//
//crlint:hotpath
func (p *Pool) compute(ctx context.Context, srcName, dstName uint64) (Result, error) {
	start := time.Now()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.rejected.Add(1)
		return Result{}, fmt.Errorf("serve: %w: %w", ErrSaturated, ctx.Err())
	}
	p.inFlight.Add(1)
	res, err := p.router.RouteByName(ctx, srcName, dstName)
	p.inFlight.Add(-1)
	<-p.slots
	if err != nil {
		// A route aborted mid-walk because the caller left is the same
		// condition as a canceled wait (the context threads through the
		// hop loop now), not a scheme error — so it carries the same
		// ErrSaturated classification as every other rejection.
		if isCanceled(err) {
			p.rejected.Add(1)
			return Result{}, fmt.Errorf("serve: %w: %w", ErrSaturated, err)
		}
		p.errors.Add(1)
		return Result{}, err
	}
	p.misses.Add(1)
	obs.SpanN(ctx, "pool", "compute", "miss", start, int64(res.Hops))
	return res, nil
}

func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats returns a point-in-time snapshot of the counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Requests:  p.requests.Load(),
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Coalesced: p.coalesced.Load(),
		Errors:    p.errors.Load(),
		Rejected:  p.rejected.Load(),
		Purges:    p.purges.Load(),
		InFlight:  p.inFlight.Load(),
		Workers:   cap(p.slots),
		CacheOff:  p.noCache,
		ShardsLen: len(p.shards),
	}
	if !p.noCache {
		for _, sh := range p.shards {
			s.CacheLen += sh.len()
		}
		s.CacheCap = p.cacheCap
	}
	return s
}

func (p *Pool) shard(key uint64) *shard {
	// Multiply-shift mix so adjacent (src,dst) pairs spread across
	// shards; the low bits of the raw key are highly regular.
	key *= 0x9e3779b97f4a7c15
	return p.shards[(key>>33)&p.mask]
}

// cacheKey folds an ordered (src, dst) name pair into one 64-bit key.
// Names are arbitrary uint64s, so the fold must mix both halves; this
// is the 128→64 finalizer step of splitmix applied to each half.
func cacheKey(src, dst uint64) uint64 {
	h := src + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= dst + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// --- one LRU shard ---

type shard struct {
	mu      sync.Mutex
	cap     int
	items   map[uint64]*list.Element
	order   *list.List // front = most recent
	flights map[uint64]*flight
	// gen is the shard's purge generation. Written only under mu
	// (purge); read lock-free at admission (generation) and re-checked
	// under mu at insert (put), which makes check-and-insert atomic
	// with respect to a concurrent purge.
	gen atomic.Uint64
}

// entry keeps the original (src, dst) pair alongside the result: the
// map is keyed by a 64-bit fold of the pair, and a fold collision must
// read as a miss, never as someone else's route.
type entry struct {
	key      uint64
	src, dst uint64
	res      Result
}

// flight is one in-progress computation that identical concurrent
// misses attach to. The leader publishes res/err before closing done,
// so followers reading after <-done need no further synchronization.
type flight struct {
	src, dst uint64
	waiters  int // followers attached (under the shard lock)
	done     chan struct{}
	res      Result
	err      error
}

type flightRole uint8

const (
	flightLeader flightRole = iota
	flightFollower
	flightBypass // fold collision with a different in-flight pair
)

func newShard(capacity int) *shard {
	return &shard{
		cap:     capacity,
		items:   make(map[uint64]*list.Element, capacity),
		order:   list.New(),
		flights: make(map[uint64]*flight),
	}
}

func (s *shard) get(key, src, dst uint64) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Result{}, false
	}
	e := el.Value.(*entry)
	if e.src != src || e.dst != dst {
		return Result{}, false // key collision: not our pair
	}
	s.order.MoveToFront(el)
	return e.res, true
}

// generation returns the shard's purge generation for admission-time
// capture.
func (s *shard) generation() uint64 { return s.gen.Load() }

// put inserts a result computed by a request admitted at generation
// gen, dropping it when a purge has intervened — a stale-topology
// result must never re-populate a purged cache.
func (s *shard) put(key, src, dst uint64, res Result, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen.Load() != gen {
		return
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		e.src, e.dst, e.res = src, dst, res
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&entry{key: key, src: src, dst: dst, res: res})
	if s.order.Len() > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*entry).key)
	}
}

// joinFlight attaches to the in-flight computation for (src, dst), or
// registers a new one with the caller as leader.
func (s *shard) joinFlight(key, src, dst uint64) (*flight, flightRole) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl, ok := s.flights[key]; ok {
		if fl.src != src || fl.dst != dst {
			return nil, flightBypass
		}
		fl.waiters++
		return fl, flightFollower
	}
	fl := &flight{src: src, dst: dst, done: make(chan struct{})}
	s.flights[key] = fl
	return fl, flightLeader
}

// resolveFlight publishes the leader's outcome and releases followers.
// The identity check matters under Purge: a purge replaces the flight
// table, and a post-purge request may have registered a NEW flight
// under this key — the old leader must release its own followers
// without tearing down the new flight.
func (s *shard) resolveFlight(key uint64, fl *flight, res Result, err error) {
	s.mu.Lock()
	if s.flights[key] == fl {
		delete(s.flights, key)
	}
	s.mu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
}

// purge resets the shard: cached entries and flight registrations are
// dropped (the flight objects themselves stay live for their leaders
// to resolve). The fresh maps deliberately carry NO capacity hint:
// purge runs inside the hot-swap pause, and pre-sizing a large
// quota's buckets (newShard's job on the cold path) costs around a
// millisecond at default capacity — the budget the entire swap must
// stay under. Post-purge inserts re-grow the maps gradually instead.
func (s *shard) purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Add(1)
	s.items = make(map[uint64]*list.Element)
	s.order.Init()
	s.flights = make(map[uint64]*flight)
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
