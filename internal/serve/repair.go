package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"compactroute/internal/obs"
	"compactroute/internal/routeerr"
)

// ErrUnreachable wraps every route the fault overlay blocks: the
// scheme produced a path, but a failed link or node sits on every
// candidate (or an endpoint itself is down). See routeerr.
var ErrUnreachable = routeerr.ErrUnreachable

// RoutePathFunc is the traced counterpart of RouterFunc: it returns
// the traversed path as external names (source first) alongside the
// result, so the repair layer can hold the walk against the fault
// overlay. The dynamic tier's Version.RoutePath has exactly this shape.
type RoutePathFunc func(ctx context.Context, srcName, dstName uint64) (Result, []uint64, error)

// RepairOptions configures a Repairer. The zero value is a pure
// fault-view enforcer: no best-of-both, no damping, routes checked
// against the overlay and blocked ones reported as ErrUnreachable.
type RepairOptions struct {
	// BestOfBoth routes src→dst and dst→src concurrently and serves
	// the cheaper usable direction (the yggdrasil treesim mitigation:
	// the two greedy walks see different parts of the graph, so one
	// often dodges a fault the other walks into). Ties — and equal
	// effective costs — go to the forward direction, which keeps the
	// choice deterministic for a fixed fault view and damp table.
	BestOfBoth bool
	// DampPenalty is the starting cost penalty added per recently
	// failed element on a path (flap damping: an element that just
	// failed is distrusted for a while even after it recovers). The
	// penalty decays exponentially with DampHalfLife; 0 disables
	// damping.
	DampPenalty float64
	// DampHalfLife is the decay half-life; 0 means 30s.
	DampHalfLife time.Duration
	// Now is the clock, injectable so decay is testable; nil means
	// time.Now.
	Now func() time.Time
}

// dampKey identifies a damped element: an unordered name pair for an
// edge, or {name, name} for a node (self-pairs cannot collide with
// edges — self-loops are rejected at every ingress).
type dampKey [2]uint64

// Repairer is the fault-aware routing layer: it implements Router, so
// it slots directly under a Pool, and wraps a path-returning route
// with (a) a transient fault view routes are held against, (b)
// optional best-of-both-directions selection, and (c) an optional
// flap-damping table that penalizes recently failed elements for a
// decaying window. It is safe for concurrent use.
//
// The fault view is fed by the mutation path (internal/server fans
// accepted failure events in); because faults change what a query
// answers, the owner must Purge any result cache above this layer
// whenever the view changes — a cached "delivered" from before a
// failure is exactly the stale answer the repair layer exists to
// prevent.
type Repairer struct {
	route RoutePathFunc
	opts  RepairOptions

	mu        sync.RWMutex
	downNodes map[uint64]bool
	downEdges map[[2]uint64]bool
	damp      map[dampKey]time.Time // element -> last failure time
}

// NewRepairer wraps route with the repair layer.
func NewRepairer(route RoutePathFunc, o RepairOptions) *Repairer {
	if o.DampHalfLife <= 0 {
		o.DampHalfLife = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Repairer{
		route:     route,
		opts:      o,
		downNodes: make(map[uint64]bool),
		downEdges: make(map[[2]uint64]bool),
		damp:      make(map[dampKey]time.Time),
	}
}

func pairKey(u, v uint64) [2]uint64 {
	if u > v {
		u, v = v, u
	}
	return [2]uint64{u, v}
}

// FailEdge marks the unordered pair down and stamps its damp entry.
func (r *Repairer) FailEdge(u, v uint64) {
	k := pairKey(u, v)
	now := r.opts.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downEdges[k] = true
	r.stampLocked(dampKey(k), now)
}

// RecoverEdge brings the pair back up. Its damp entry survives —
// distrusting a link that just flapped is the whole point of damping.
func (r *Repairer) RecoverEdge(u, v uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.downEdges, pairKey(u, v))
}

// FailNode marks the node down and stamps its damp entry.
func (r *Repairer) FailNode(name uint64) {
	now := r.opts.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downNodes[name] = true
	r.stampLocked(dampKey{name, name}, now)
}

// RecoverNode brings the node back up (damp entry survives).
func (r *Repairer) RecoverNode(name uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.downNodes, name)
}

// DropEdge clears the pair's fault state on permanent removal: the
// element is gone, not down, and a later re-add starts life up (and
// undamped — a fresh link is not the one that flapped). It reports
// whether the pair was down, i.e. whether the removal changed what a
// query would answer beyond the eventual rebuild.
func (r *Repairer) DropEdge(u, v uint64) bool {
	k := pairKey(u, v)
	r.mu.Lock()
	defer r.mu.Unlock()
	wasDown := r.downEdges[k]
	delete(r.downEdges, k)
	delete(r.damp, dampKey(k))
	return wasDown
}

// stampLocked records a failure instant and opportunistically sweeps
// entries decayed past relevance (10 half-lives ≈ a 1/1024 penalty),
// bounding the table by the recent-failure working set. Caller holds
// r.mu exclusively; now is read outside the lock (the clock is a
// func-typed option, and exclusive locks are not held across those).
func (r *Repairer) stampLocked(k dampKey, now time.Time) {
	horizon := now.Add(-10 * r.opts.DampHalfLife)
	for old, t := range r.damp {
		if t.Before(horizon) {
			delete(r.damp, old)
		}
	}
	r.damp[k] = now
}

// FaultStats is a point-in-time snapshot of the repair layer's state.
type FaultStats struct {
	DownNodes int `json:"down_nodes"`
	DownEdges int `json:"down_edges"`
	Damped    int `json:"damped"`
}

// Stats snapshots the fault view.
func (r *Repairer) Stats() FaultStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return FaultStats{DownNodes: len(r.downNodes), DownEdges: len(r.downEdges), Damped: len(r.damp)}
}

// leg is one direction's outcome.
type leg struct {
	res  Result
	path []uint64
	err  error
}

// RouteByName implements Router. It routes forward (and, under
// BestOfBoth, backward concurrently), evaluates each delivered path
// against the fault view, and serves the usable direction with the
// lowest effective cost (path cost + decayed damping penalties); ties
// prefer forward. A query whose endpoints are down, or whose every
// delivered path crosses a down element, wraps ErrUnreachable. A
// query nothing delivered for on clear paths passes through unchanged
// — an unknown destination is still the name-independent model's
// honest non-delivery, not an outage.
func (r *Repairer) RouteByName(ctx context.Context, srcName, dstName uint64) (Result, error) {
	res, _, err := r.RoutePathByName(ctx, srcName, dstName)
	return res, err
}

// RoutePathByName is RouteByName plus the served walk (external names,
// source first) — nil when nothing was served. The path lets callers
// (experiments, tests) see WHICH direction won and what it crossed.
func (r *Repairer) RoutePathByName(ctx context.Context, srcName, dstName uint64) (Result, []uint64, error) {
	var rev chan leg
	if r.opts.BestOfBoth && srcName != dstName {
		rev = make(chan leg, 1)
		// The reverse walk is advisory: shadow the trace so its hops
		// do not interleave with the forward walk's recorded path.
		rctx := obs.WithTrace(ctx, nil)
		go func() {
			res, path, err := r.route(rctx, dstName, srcName)
			rev <- leg{res: res, path: path, err: err}
		}()
	}
	fres, fpath, ferr := r.route(ctx, srcName, dstName)
	fwd := leg{res: fres, path: fpath, err: ferr}
	legs := []leg{fwd}
	if rev != nil {
		legs = append(legs, <-rev)
	}
	res, path, best, blocked, err := r.choose(srcName, dstName, legs)
	switch {
	case errors.Is(err, ErrUnreachable) && blocked > 0:
		obs.Mark(ctx, "repair", "verdict", "blocked")
	case errors.Is(err, ErrUnreachable):
		obs.Mark(ctx, "repair", "verdict", "endpoint-down")
	case best == 1:
		obs.Mark(ctx, "repair", "verdict", "reverse-won")
	case best == 0 && rev != nil:
		obs.Mark(ctx, "repair", "verdict", "forward-won")
	}
	return res, path, err
}

// choose evaluates the candidate legs under one read of the fault
// view. legs[0] is the forward direction and wins ties. Alongside
// the chosen route it reports which leg won (-1: none) and how many
// delivered legs the overlay blocked, so the caller can record the
// repair verdict in the request trace.
func (r *Repairer) choose(srcName, dstName uint64, legs []leg) (Result, []uint64, int, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.downNodes[srcName] || r.downNodes[dstName] {
		return Result{}, nil, -1, 0, fmt.Errorf("serve: %d→%d: endpoint down: %w", srcName, dstName, ErrUnreachable)
	}
	now := r.opts.Now()
	best := -1
	bestEff := math.Inf(1)
	blocked := 0
	for i, l := range legs {
		if l.err != nil || !l.res.Delivered {
			continue
		}
		if r.blockedLocked(l.path) {
			blocked++
			continue
		}
		if eff := l.res.Cost + r.penaltyLocked(l.path, now); eff < bestEff {
			best, bestEff = i, eff
		}
	}
	if best >= 0 {
		return legs[best].res, legs[best].path, best, blocked, nil
	}
	if blocked > 0 {
		return Result{}, nil, -1, blocked, fmt.Errorf("serve: %d→%d: every delivered path crosses a down element: %w", srcName, dstName, ErrUnreachable)
	}
	// Nothing usable and nothing blocked: pass the forward outcome
	// through — scheme-level non-delivery and routing errors keep
	// their own taxonomy.
	return legs[0].res, legs[0].path, -1, 0, legs[0].err
}

// blockedLocked reports whether any element of the path is down.
// Caller holds r.mu (read).
func (r *Repairer) blockedLocked(path []uint64) bool {
	for i, n := range path {
		if r.downNodes[n] {
			return true
		}
		if i > 0 && r.downEdges[pairKey(path[i-1], n)] {
			return true
		}
	}
	return false
}

// penaltyLocked sums the decayed damping penalty over the path's
// elements. Caller holds r.mu (read).
func (r *Repairer) penaltyLocked(path []uint64, now time.Time) float64 {
	if r.opts.DampPenalty <= 0 || len(r.damp) == 0 {
		return 0
	}
	total := 0.0
	add := func(k dampKey) {
		t, ok := r.damp[k]
		if !ok {
			return
		}
		age := now.Sub(t)
		if age < 0 {
			age = 0
		}
		total += r.opts.DampPenalty * math.Exp2(-float64(age)/float64(r.opts.DampHalfLife))
	}
	for i, n := range path {
		add(dampKey{n, n})
		if i > 0 {
			add(dampKey(pairKey(path[i-1], n)))
		}
	}
	return total
}
