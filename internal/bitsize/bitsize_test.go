package bitsize

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLog2CeilProperty(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x)
		if n < 2 {
			return true
		}
		b := Log2Ceil(n)
		// 2^(b-1) < n <= 2^b
		return (1<<uint(b)) >= n && (1<<uint(b-1)) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDBitsMinimumOne(t *testing.T) {
	if IDBits(0) != 1 || IDBits(1) != 1 || IDBits(2) != 1 {
		t.Fatal("IDBits must be at least 1")
	}
	if IDBits(1024) != 10 {
		t.Fatalf("IDBits(1024) = %d", IDBits(1024))
	}
}

func TestAccountantTotals(t *testing.T) {
	a := NewAccountant(3)
	a.Add(0, "labels", 100)
	a.Add(1, "labels", 50)
	a.Add(1, "trie", 20)
	a.Add(2, "trie", 5)

	if a.TotalBits() != 175 {
		t.Fatalf("TotalBits = %d", a.TotalBits())
	}
	if a.MaxNodeBits() != 100 {
		t.Fatalf("MaxNodeBits = %d", a.MaxNodeBits())
	}
	if a.NodeBits(1) != 70 {
		t.Fatalf("NodeBits(1) = %d", a.NodeBits(1))
	}
	if got := a.MeanNodeBits(); got != 175.0/3 {
		t.Fatalf("MeanNodeBits = %v", got)
	}
	if a.CategoryBits("labels") != 150 || a.CategoryBits("trie") != 25 {
		t.Fatal("category totals wrong")
	}
}

func TestAccountantCategoriesSorted(t *testing.T) {
	a := NewAccountant(1)
	a.Add(0, "small", 1)
	a.Add(0, "big", 1000)
	a.Add(0, "mid", 10)
	got := a.Categories()
	want := []string{"big", "mid", "small"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Categories() = %v, want %v", got, want)
		}
	}
}

func TestAccountantNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	NewAccountant(1).Add(0, "x", -1)
}

func TestReportContainsCategories(t *testing.T) {
	a := NewAccountant(2)
	a.Add(0, "cover-trees", 12345)
	r := a.Report()
	if !strings.Contains(r, "cover-trees") {
		t.Fatalf("report missing category: %q", r)
	}
}

func TestHumanUnits(t *testing.T) {
	if Human(100) != "100b" {
		t.Fatalf("Human(100) = %s", Human(100))
	}
	if !strings.HasSuffix(Human(1<<20), "KiB") {
		t.Fatalf("Human(1MiBit) = %s", Human(1<<20))
	}
	if !strings.HasSuffix(Human(1<<30), "MiB") {
		t.Fatalf("Human(2^30) = %s", Human(1<<30))
	}
	if !strings.HasSuffix(Human(1<<34), "GiB") {
		t.Fatalf("Human(2^34) = %s", Human(1<<34))
	}
}

func TestEmptyAccountant(t *testing.T) {
	a := NewAccountant(0)
	if a.TotalBits() != 0 || a.MaxNodeBits() != 0 || a.MeanNodeBits() != 0 {
		t.Fatal("empty accountant not zero")
	}
}
