// Package bitsize provides the storage-accounting vocabulary used to
// measure routing tables against the paper's bit bounds.
//
// The SPAA'06 paper states every bound in bits (for example Theorem 1:
// O(k² n^{1/k} log³ n)-bit tables per node). To compare measured tables
// against those bounds honestly we count the information-theoretic size
// of everything a node stores, with a fixed costing model:
//
//   - a node identifier costs ⌈log₂ n⌉ bits,
//   - a port number costs ⌈log₂ deg(u)⌉ bits (at least 1),
//   - a distance/weight costs 64 bits (IEEE 754 double),
//   - small integers (ranges, levels, digit positions) cost their
//     natural width,
//   - composite objects (tree-routing labels, headers) report their own
//     measured size.
//
// An Accountant accumulates per-node totals broken down by category so
// experiment tables can show where the space goes.
package bitsize

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bits counts the width of a binary encoding.
type Bits int64

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (and 0 for n ≤ 1), the number of
// bits needed to distinguish n values ... well, to index n values it is
// max(1, ⌈log₂ n⌉); callers that need an index width should use IDBits.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// IDBits returns the number of bits needed to store one of n distinct
// identifiers (at least 1 bit).
func IDBits(n int) Bits {
	b := Log2Ceil(n)
	if b < 1 {
		b = 1
	}
	return Bits(b)
}

// DistanceBits is the accounting cost of a stored distance.
const DistanceBits Bits = 64

// NameBits is the accounting cost of a stored arbitrary node name.
// The model grants nodes polylog(n)-bit arbitrary names; we store them
// as 64-bit values.
const NameBits Bits = 64

// Accountant accumulates the bit cost of one scheme's storage, broken
// down per node and per category.
type Accountant struct {
	n        int
	perNode  []Bits
	category map[string]Bits
}

// NewAccountant returns an accountant for a scheme over n nodes.
func NewAccountant(n int) *Accountant {
	return &Accountant{
		n:        n,
		perNode:  make([]Bits, n),
		category: make(map[string]Bits),
	}
}

// Add charges b bits to node u under the given category.
func (a *Accountant) Add(u int, category string, b Bits) {
	if b < 0 {
		panic("bitsize: negative charge")
	}
	a.perNode[u] += b
	a.category[category] += b
}

// NodeBits returns the total charged to node u.
func (a *Accountant) NodeBits(u int) Bits { return a.perNode[u] }

// TotalBits returns the total across all nodes.
func (a *Accountant) TotalBits() Bits {
	var t Bits
	for _, b := range a.perNode {
		t += b
	}
	return t
}

// MaxNodeBits returns the maximum per-node total, the quantity the
// paper's "routing tables per node" bounds refer to.
func (a *Accountant) MaxNodeBits() Bits {
	var m Bits
	for _, b := range a.perNode {
		if b > m {
			m = b
		}
	}
	return m
}

// MeanNodeBits returns the average per-node total.
func (a *Accountant) MeanNodeBits() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.TotalBits()) / float64(a.n)
}

// Categories returns category names sorted by descending cost.
func (a *Accountant) Categories() []string {
	names := make([]string, 0, len(a.category))
	for c := range a.category {
		names = append(names, c)
	}
	sort.Slice(names, func(i, j int) bool {
		if a.category[names[i]] != a.category[names[j]] {
			return a.category[names[i]] > a.category[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// CategoryBits returns the total charged under a category.
func (a *Accountant) CategoryBits(c string) Bits { return a.category[c] }

// Report renders a human-readable storage breakdown.
func (a *Accountant) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "storage: total=%s max/node=%s mean/node=%s\n",
		Human(a.TotalBits()), Human(a.MaxNodeBits()), Human(Bits(a.MeanNodeBits())))
	for _, c := range a.Categories() {
		fmt.Fprintf(&sb, "  %-28s %s\n", c, Human(a.category[c]))
	}
	return sb.String()
}

// Human renders a bit count with a binary unit suffix.
func Human(b Bits) string {
	switch {
	case b >= 1<<33:
		return fmt.Sprintf("%.2fGiB", float64(b)/(8*(1<<30)))
	case b >= 1<<23:
		return fmt.Sprintf("%.2fMiB", float64(b)/(8*(1<<20)))
	case b >= 1<<13:
		return fmt.Sprintf("%.2fKiB", float64(b)/(8*(1<<10)))
	default:
		return fmt.Sprintf("%db", int64(b))
	}
}
