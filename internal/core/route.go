package core

import (
	"fmt"

	"compactroute/internal/bitsize"
	"compactroute/internal/covroute"
	"compactroute/internal/graph"
	"compactroute/internal/nitree"
	"compactroute/internal/sim"
	"compactroute/internal/treeroute"
)

// labelT is the tree-routing label type carried in headers.
type labelT = treeroute.Label

// stage of the phase router.
type stage uint8

const (
	stageStart stage = iota // at the source, about to open phase `level`
	stageSparseToCenter
	stageSparseSearch
	stageSparseReturn
	stageDenseLookup
)

// header is the routing header of the full scheme: the §3.3/§3.6
// iterative protocol's in-flight state.
type header struct {
	dst   uint64
	src   graph.NodeID // identifies the phase anchor (sanity checks)
	level int          // current phase i ∈ 1..k
	stage stage

	// Sparse phase state.
	center graph.NodeID
	leg    labelT // current labeled-routing leg
	ret    labelT // λ(T(c), src): the return address
	search *nitree.Search
	// Dense phase state.
	cov *covroute.Route

	// PhaseCosts records the cost incurred per phase (filled by the
	// engine-independent tracer; the sim engine ignores it).
	PhaseCosts []float64
}

// Bits reports the header size: destination name, counters, and the
// live legs/labels.
func (h *header) Bits() bitsize.Bits {
	b := bitsize.NameBits + 16 // name + level/stage counters
	b += h.leg.Bits() + h.ret.Bits()
	if h.search != nil {
		b += h.search.HeaderBits()
	}
	if h.cov != nil {
		b += h.cov.HeaderBits()
	}
	return b
}

// Name implements sim.Router.
func (s *Scheme) Name() string {
	if s.mode != Combined {
		return fmt.Sprintf("agm06-k%d-%s", s.k, s.mode)
	}
	return fmt.Sprintf("agm06-k%d", s.k)
}

// Begin implements sim.Router.
func (s *Scheme) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	if int(src) < 0 || int(src) >= s.g.N() {
		return nil, fmt.Errorf("core: invalid source %d", src)
	}
	return &header{dst: dstName, src: src, level: 0, stage: stageStart}, nil
}

// Step implements sim.Router: one local decision of the iterative
// protocol. Only x's local state and the header are consulted.
func (s *Scheme) Step(x graph.NodeID, hh sim.Header) (sim.Action, int, error) {
	h, ok := hh.(*header)
	if !ok {
		return 0, 0, fmt.Errorf("core: foreign header %T", hh)
	}
	// Self-delivery short-circuit: the source recognizes its own name.
	if h.stage == stageStart && s.g.Name(x) == h.dst {
		return sim.Delivered, 0, nil
	}
	for guard := 0; guard < 4*s.k+16; guard++ {
		switch h.stage {
		case stageStart:
			if x != h.src {
				return 0, 0, fmt.Errorf("core: phase start at %d, expected source %d", x, h.src)
			}
			if h.level > s.k {
				// Unreachable by construction: the terminal phase
				// spans V (DESIGN.md #1). Fail loudly if violated.
				return sim.Failed, 0, nil
			}
			info := &s.levels[x][h.level]
			if info.skip {
				// Dense level 0: F(u,0) = {u}, nothing to search.
				h.level++
				continue
			}
			if info.dense {
				cas := s.covers[info.scale]
				cr, err := cas.routes[info.treeIdx].NewRoute(h.dst, x)
				if err != nil {
					return 0, 0, err
				}
				h.cov = cr
				h.stage = stageDenseLookup
				continue
			}
			h.center = info.center
			h.ret = s.selfLabels[x][h.level]
			if x == info.center {
				h.search = s.trees[info.center].ni.NewSearch(h.dst, int(info.bound))
				h.stage = stageSparseSearch
				continue
			}
			// Route to the root; the root's label is the canonical
			// empty label (preorder 0, no light hops).
			h.leg = labelT{Pre: 0}
			h.stage = stageSparseToCenter
			continue

		case stageSparseToCenter:
			lt := s.trees[h.center]
			arrived, port, err := lt.ni.Labeled().Step(x, h.leg)
			if err != nil {
				return 0, 0, err
			}
			if !arrived {
				return sim.Forward, port, nil
			}
			info := &s.levels[h.src][h.level]
			h.search = lt.ni.NewSearch(h.dst, int(info.bound))
			h.stage = stageSparseSearch
			continue

		case stageSparseSearch:
			lt := s.trees[h.center]
			act, port, err := lt.ni.Step(x, h.search)
			if err != nil {
				return 0, 0, err
			}
			switch act {
			case nitree.Forward:
				return sim.Forward, port, nil
			case nitree.Delivered:
				return sim.Delivered, 0, nil
			default: // back at the root with a negative response
				h.search = nil
				h.leg = h.ret
				h.stage = stageSparseReturn
				continue
			}

		case stageSparseReturn:
			lt := s.trees[h.center]
			arrived, port, err := lt.ni.Labeled().Step(x, h.leg)
			if err != nil {
				return 0, 0, err
			}
			if !arrived {
				return sim.Forward, port, nil
			}
			h.level++
			h.stage = stageStart
			continue

		case stageDenseLookup:
			info := &s.levels[h.src][h.level]
			cas := s.covers[info.scale]
			act, port, err := cas.routes[info.treeIdx].Step(x, h.cov)
			if err != nil {
				return 0, 0, err
			}
			switch act {
			case covroute.Forward:
				return sim.Forward, port, nil
			case covroute.Delivered:
				return sim.Delivered, 0, nil
			default: // negative, already back at the source
				h.cov = nil
				h.level++
				h.stage = stageStart
				continue
			}
		}
	}
	return 0, 0, fmt.Errorf("core: step did not make progress at %d", x)
}

// PhaseResult describes one phase of a traced route.
type PhaseResult struct {
	Level  int
	Dense  bool
	Cost   float64
	Found  bool
	AUBits int // a(u,level): the phase's range, for T10 bounds
}

// RouteTrace routes src → (node named dstName) outside the engine,
// recording per-phase costs for experiment T10. The walk still crosses
// only real edges.
func (s *Scheme) RouteTrace(src graph.NodeID, dstName uint64) (delivered bool, phases []PhaseResult, total float64, err error) {
	delivered, phases, total, _, err = s.RouteTracePath(src, dstName)
	return delivered, phases, total, err
}

// RouteTracePath is RouteTrace plus the traversed node sequence, for
// visualization (cmd/routesim -dot).
func (s *Scheme) RouteTracePath(src graph.NodeID, dstName uint64) (delivered bool, phases []PhaseResult, total float64, path []graph.NodeID, err error) {
	hh, err := s.Begin(src, dstName)
	if err != nil {
		return false, nil, 0, nil, err
	}
	h := hh.(*header)
	cur := src
	path = []graph.NodeID{src}
	phaseCost := 0.0
	lastLevel := 0
	flush := func(found bool) {
		if lastLevel > s.k {
			return
		}
		info := &s.levels[src][lastLevel]
		phases = append(phases, PhaseResult{
			Level:  lastLevel,
			Dense:  info.dense,
			Cost:   phaseCost,
			Found:  found,
			AUBits: s.dec.Range(src, lastLevel),
		})
		phaseCost = 0
	}
	maxHops := 64 * s.g.N() * (s.k + 2)
	for hop := 0; ; hop++ {
		if hop > maxHops {
			return false, phases, total, path, fmt.Errorf("core: trace exceeded %d hops", maxHops)
		}
		if h.level != lastLevel {
			flush(false)
			lastLevel = h.level
		}
		act, port, err := s.Step(cur, h)
		if err != nil {
			return false, phases, total, path, err
		}
		switch act {
		case sim.Delivered:
			flush(true)
			return true, phases, total, path, nil
		case sim.Failed:
			flush(false)
			return false, phases, total, path, nil
		case sim.Forward:
			w := s.g.EdgeAt(cur, port).Weight
			phaseCost += w
			total += w
			cur = s.g.EdgeAt(cur, port).To
			path = append(path, cur)
		}
	}
}
