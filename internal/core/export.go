package core

import (
	"fmt"
	"sort"

	"compactroute/internal/cover"
	"compactroute/internal/covroute"
	"compactroute/internal/decomp"
	"compactroute/internal/graph"
	"compactroute/internal/landmark"
	"compactroute/internal/nitree"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
	"compactroute/internal/xrand"
)

// Snapshot is the exported persistent form of a built Scheme: the
// graph, the build parameters and report, the compact decomposition
// and landmark state, every per-(node, level) routing pointer, and the
// landmark/cover trees in parent-relation form.
//
// The split between what is stored and what is recomputed is the
// design center of persistence: everything whose construction needs
// all-pairs shortest paths (ranges, classes, centers, bounds, tree
// shapes, home assignments) is stored; everything that is a cheap
// deterministic function of the stored state (tries, rendezvous
// tables, labels, storage accounting) is rebuilt on rehydration from
// the seeds carried in Params. Rehydration therefore costs O(scheme
// size), not O(n·SSSP), and reproduces the original scheme exactly.
type Snapshot struct {
	Params   Params
	Report   BuildReport
	Graph    *graph.Snapshot
	Decomp   *decomp.Snapshot
	Landmark *landmark.Snapshot
	// Levels[u][i] is the routing state of node u's phase i.
	Levels [][]LevelState
	// Trees holds the landmark trees sorted by center id.
	Trees []CenterTree
	// Covers holds the per-scale covers sorted by scale.
	Covers []ScaleCover
}

// LevelState is the persistent form of one (node, level) routing
// pointer.
type LevelState struct {
	Dense   bool
	Skip    bool
	Center  graph.NodeID
	Bound   uint8
	Scale   int32
	TreeIdx int32
}

// CenterTree pairs a landmark with its tree.
type CenterTree struct {
	Center graph.NodeID
	Tree   *tree.Snapshot
}

// ScaleCover pairs a dense scale with its cover.
type ScaleCover struct {
	Scale int32
	Cover *cover.Snapshot
}

// Export captures the scheme's persistent state. The result shares
// memory with the scheme; treat it as read-only.
func (s *Scheme) Export() *Snapshot {
	snap := &Snapshot{
		Params:   s.params,
		Report:   s.Report,
		Graph:    s.g.Snapshot(),
		Decomp:   s.dec.Snapshot(),
		Landmark: s.lm.Snapshot(),
		Levels:   make([][]LevelState, len(s.levels)),
	}
	for u := range s.levels {
		ls := make([]LevelState, len(s.levels[u]))
		for i, info := range s.levels[u] {
			ls[i] = LevelState{
				Dense:   info.dense,
				Skip:    info.skip,
				Center:  info.center,
				Bound:   info.bound,
				Scale:   info.scale,
				TreeIdx: info.treeIdx,
			}
		}
		snap.Levels[u] = ls
	}
	centers := make([]graph.NodeID, 0, len(s.trees))
	for c := range s.trees {
		centers = append(centers, c)
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	for _, c := range centers {
		snap.Trees = append(snap.Trees, CenterTree{Center: c, Tree: s.trees[c].t.Snapshot()})
	}
	scales := make([]int32, 0, len(s.covers))
	for j := range s.covers {
		scales = append(scales, j)
	}
	sort.Slice(scales, func(i, j int) bool { return scales[i] < scales[j] })
	for _, j := range scales {
		snap.Covers = append(snap.Covers, ScaleCover{Scale: j, Cover: s.covers[j].cov.Snapshot()})
	}
	return snap
}

// FromSnapshot rehydrates a ready-to-route Scheme without recomputing
// shortest paths. Tries and rendezvous tables are rebuilt from the
// persisted trees and the seeds in snap.Params — the same deterministic
// constructions the original build ran — so the rehydrated scheme
// routes identically to the exported one.
func FromSnapshot(snap *Snapshot) (*Scheme, error) {
	g, err := graph.FromSnapshot(snap.Graph)
	if err != nil {
		return nil, err
	}
	p := snap.Params
	if p.K < 1 {
		return nil, fmt.Errorf("core: snapshot k=%d", p.K)
	}
	dec, err := decomp.FromSnapshot(g, snap.Decomp)
	if err != nil {
		return nil, err
	}
	if dec.K() != p.K {
		return nil, fmt.Errorf("core: snapshot decomposition k=%d, params k=%d", dec.K(), p.K)
	}
	lm, err := landmark.FromSnapshot(g, snap.Landmark)
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		g:      g,
		k:      p.K,
		mode:   p.Mode,
		params: p,
		dec:    dec,
		lm:     lm,
		trees:  make(map[graph.NodeID]*landmarkTree, len(snap.Trees)),
		covers: make(map[int32]*coverAtScale, len(snap.Covers)),
		Report: snap.Report,
	}

	// Landmark trees: rebuild each tree and its Lemma 4 trie with the
	// center-derived seed the original build used. Independent per
	// center, so fan out.
	built := make([]*landmarkTree, len(snap.Trees))
	errs := make([]error, len(snap.Trees))
	sssp.ParallelFor(len(snap.Trees), 0, func(ci int) {
		ct := snap.Trees[ci]
		t, err := tree.FromSnapshot(g, ct.Tree)
		if err != nil {
			errs[ci] = fmt.Errorf("core: tree of center %d: %w", ct.Center, err)
			return
		}
		if t.Root() != ct.Center {
			errs[ci] = fmt.Errorf("core: tree of center %d rooted at %d", ct.Center, t.Root())
			return
		}
		ni, err := nitree.New(t, nitree.Params{
			K:          p.K,
			UniverseN:  g.N(),
			LoadFactor: p.LoadFactor,
			Seed:       xrand.Hash64(p.Seed, uint64(ct.Center)),
		})
		if err != nil {
			errs[ci] = fmt.Errorf("core: trie of center %d: %w", ct.Center, err)
			return
		}
		built[ci] = &landmarkTree{t: t, ni: ni}
	})
	for ci, err := range errs {
		if err != nil {
			return nil, err
		}
		c := snap.Trees[ci].Center
		if _, dup := s.trees[c]; dup {
			return nil, fmt.Errorf("core: snapshot repeats center %d", c)
		}
		s.trees[c] = built[ci]
	}

	// Covers: rebuild each scale's trees and rendezvous structures.
	for _, sc := range snap.Covers {
		cov, err := cover.FromSnapshot(g, sc.Cover)
		if err != nil {
			return nil, fmt.Errorf("core: cover at scale %d: %w", sc.Scale, err)
		}
		cas := &coverAtScale{cov: cov, routes: make([]*covroute.Scheme, len(cov.Trees))}
		for ti, t := range cov.Trees {
			cas.routes[ti] = covroute.New(t, xrand.Hash64(p.Seed^0xc0ffee, uint64(sc.Scale)<<20|uint64(ti)))
		}
		if _, dup := s.covers[sc.Scale]; dup {
			return nil, fmt.Errorf("core: snapshot repeats scale %d", sc.Scale)
		}
		s.covers[sc.Scale] = cas
	}

	// Levels: restore and validate every routing pointer against the
	// rebuilt structures so a corrupt snapshot fails here, not mid-route.
	if len(snap.Levels) != g.N() {
		return nil, fmt.Errorf("core: snapshot has levels for %d of %d nodes", len(snap.Levels), g.N())
	}
	s.levels = make([][]levelInfo, g.N())
	for u := range snap.Levels {
		if len(snap.Levels[u]) != p.K+1 {
			return nil, fmt.Errorf("core: node %d has %d levels, want %d", u, len(snap.Levels[u]), p.K+1)
		}
		infos := make([]levelInfo, p.K+1)
		for i, ls := range snap.Levels[u] {
			info := levelInfo{
				dense:   ls.Dense,
				skip:    ls.Skip,
				center:  ls.Center,
				bound:   ls.Bound,
				scale:   ls.Scale,
				treeIdx: ls.TreeIdx,
			}
			switch {
			case info.skip:
			case info.dense:
				cas, ok := s.covers[info.scale]
				if !ok {
					return nil, fmt.Errorf("core: node %d level %d references missing scale %d", u, i, info.scale)
				}
				if info.treeIdx < 0 || int(info.treeIdx) >= len(cas.routes) {
					return nil, fmt.Errorf("core: node %d level %d references tree %d of %d at scale %d",
						u, i, info.treeIdx, len(cas.routes), info.scale)
				}
				if !cas.cov.Trees[info.treeIdx].Contains(graph.NodeID(u)) {
					return nil, fmt.Errorf("core: node %d not in its level-%d home tree", u, i)
				}
			default:
				lt, ok := s.trees[info.center]
				if !ok {
					return nil, fmt.Errorf("core: node %d level %d references missing center %d", u, i, info.center)
				}
				if !lt.t.Contains(graph.NodeID(u)) {
					return nil, fmt.Errorf("core: node %d not in the tree of its level-%d center %d", u, i, info.center)
				}
			}
			infos[i] = info
		}
		s.levels[u] = infos
	}
	s.cacheSelfLabels()
	s.account()
	return s, nil
}
