package core

import (
	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
)

// account charges every stored word to its node, reproducing the
// storage model of §3.2 and §3.5:
//
//   - decomposition state: the range set a(u,·) and per-level class,
//   - sparse levels: c(u,i), b(u,i), the node's own label λ(T(c),u),
//     and τ(T(c),x) for every landmark tree containing x,
//   - dense levels: the scale and home-tree pointer w(u,i), and
//     φ(T,x) for every cover tree containing x.
func (s *Scheme) account() {
	n := s.g.N()
	s.acct = bitsize.NewAccountant(n)
	idb := bitsize.IDBits(n)
	rangeBits := bitsize.Bits(bitsize.Log2Ceil(s.dec.Cap() + 2))
	if rangeBits < 1 {
		rangeBits = 1
	}

	for u := 0; u < n; u++ {
		// Ranges a(u, 0..k+1) and the dense/sparse classification.
		s.acct.Add(u, "decomposition", bitsize.Bits(s.k+2)*rangeBits+bitsize.Bits(s.k+1))
		for i := 0; i <= s.k; i++ {
			info := &s.levels[u][i]
			switch {
			case info.skip:
				// One flag bit, already charged with the class bits.
			case info.dense:
				// scale j, home tree index, root pointer w(u,i).
				s.acct.Add(u, "dense-level-pointers", rangeBits+32+idb)
			default:
				// c(u,i), b(u,i), λ(T(c),u).
				s.acct.Add(u, "sparse-level-pointers", idb+8+s.selfLabels[u][i].Bits())
			}
		}
	}
	// τ(T(c), x) for every member x of every landmark tree.
	for _, lt := range s.trees {
		for i := 0; i < lt.t.Len(); i++ {
			x := int(lt.t.Node(i))
			s.acct.Add(x, "landmark-trees", lt.ni.StorageBits(i))
		}
	}
	// φ(T, x) for every member of every cover tree.
	for _, cas := range s.covers {
		for ti, t := range cas.cov.Trees {
			rt := cas.routes[ti]
			for i := 0; i < t.Len(); i++ {
				x := int(t.Node(i))
				s.acct.Add(x, "cover-trees", rt.StorageBits(i))
			}
		}
	}
}

// NodeTableBits returns the measured table size of one node.
func (s *Scheme) NodeTableBits(u graph.NodeID) bitsize.Bits {
	return s.acct.NodeBits(int(u))
}

// CategoryBits returns the total bits charged under one storage
// category (see account for the category names).
func (s *Scheme) CategoryBits(category string) bitsize.Bits {
	return s.acct.CategoryBits(category)
}
