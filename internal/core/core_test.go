package core

import (
	"math"
	"testing"

	"compactroute/internal/bitsize"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

func mustBuild(t *testing.T, g *graph.Graph, p Params) *Scheme {
	t.Helper()
	s, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// routeAllPairs routes every ordered pair and returns the stretch
// distribution, failing the test on any non-delivery.
func routeAllPairs(t *testing.T, s *Scheme) *stats.Stretch {
	t.Helper()
	g := s.G()
	all := sssp.AllPairs(g)
	e := sim.NewEngine(g)
	var st stats.Stretch
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			res, err := e.Route(s, u, g.Name(v))
			if err != nil {
				t.Fatalf("route %d→%d: %v", u, v, err)
			}
			if !res.Delivered {
				t.Fatalf("route %d→%d not delivered", u, v)
			}
			if u != v {
				st.Add(res.Cost, all[u].Dist[v])
			} else if res.Cost != 0 {
				t.Fatalf("self route %d cost %v", u, res.Cost)
			}
		}
	}
	return &st
}

func TestAllPairsDeliveryGnp(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := gen.Gnp(uint64(k), 60, 0.07, gen.Uniform(1, 5))
		s := mustBuild(t, g, Params{K: k, Seed: 42, SFactor: 1})
		st := routeAllPairs(t, s)
		t.Logf("k=%d: %s", k, st)
	}
}

func TestAllPairsDeliveryAcrossFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(1, 6, 6, gen.Unit())},
		{"ring", gen.Ring(2, 30, gen.Uniform(1, 4))},
		{"star", gen.Star(3, 30, gen.Uniform(1, 3))},
		{"path", gen.Path(4, 30, gen.Uniform(1, 2))},
		{"geometric", gen.Geometric(5, 40, 0.3)},
		{"prefattach", gen.PrefAttach(6, 40, 2, gen.Unit())},
		{"ladder", gen.AspectLadder(7, 2, 3, 20)},
		{"tree", gen.BalancedTree(8, 3, 3, gen.Uniform(1, 6))},
	}
	for _, c := range cases {
		s := mustBuild(t, c.g, Params{K: 2, Seed: 9, SFactor: 2})
		st := routeAllPairs(t, s)
		t.Logf("%s: %s", c.name, st)
	}
}

func TestStretchLinearInK(t *testing.T) {
	// The headline: max stretch bounded by c·k with a modest constant.
	// The analysis constants (Lemmas 9/11) are generous; empirically
	// the stretch is far below them. We assert a conservative 8k.
	for _, k := range []int{1, 2, 3, 4} {
		g := gen.Gnp(100+uint64(k), 80, 0.05, gen.Uniform(1, 6))
		s := mustBuild(t, g, Params{K: k, Seed: 7, SFactor: 4})
		st := routeAllPairs(t, s)
		if st.Max() > float64(14*k) {
			t.Fatalf("k=%d: max stretch %v exceeds 14k", k, st.Max())
		}
	}
}

func TestK1IsNearShortest(t *testing.T) {
	// k=1 degenerates to full tables: stretch must be 1 (the level-1
	// search routes on the SPT of the source's own tree).
	g := gen.Gnp(11, 40, 0.1, gen.Uniform(1, 4))
	s := mustBuild(t, g, Params{K: 1, Seed: 3})
	st := routeAllPairs(t, s)
	if st.Max() > 1+1e-9 {
		t.Fatalf("k=1 stretch %v > 1", st.Max())
	}
}

func TestLemma3RepairAccounting(t *testing.T) {
	g := gen.Gnp(12, 70, 0.06, gen.Uniform(1, 4))
	// Paper constants: no repairs expected beyond the sources forced
	// into their own centers' trees.
	s := mustBuild(t, g, Params{K: 2, Seed: 5, SFactor: 16})
	if s.Report.Lemma3Violations != 0 {
		t.Fatalf("Lemma 3 violated %d/%d times with paper constants",
			s.Report.Lemma3Violations, s.Report.Lemma3Checked)
	}
	// Tiny constants at k=3: non-top landmark S-sets shrink to near
	// nothing, so Lemma 3 fails somewhere (seed chosen to exhibit it),
	// repairs kick in, and routing must still deliver everything.
	g2 := gen.Gnp(3, 120, 0.06, gen.Uniform(1, 4))
	s2 := mustBuild(t, g2, Params{K: 3, Seed: 3, SFactor: 0.01})
	if s2.Report.ForcedMembers == 0 {
		t.Fatal("tiny SFactor produced no forced members — test vacuous")
	}
	if s2.Report.ForcedMembers != s2.Report.Lemma3Violations {
		t.Fatalf("repairs %d != violations %d", s2.Report.ForcedMembers, s2.Report.Lemma3Violations)
	}
	routeAllPairs(t, s2)
}

func TestScaleFreeTables(t *testing.T) {
	// Core claim (T2): same topology, aspect ratio varied by 2^24 —
	// per-node tables must stay essentially flat.
	k := 2
	build := func(topExp int) *Scheme {
		g := gen.AspectLadder(77, 2, 4, topExp)
		return mustBuild(t, g, Params{K: k, Seed: 13, SFactor: 2})
	}
	small := build(8)
	big := build(32)
	ratio := float64(big.MaxTableBits()) / float64(small.MaxTableBits())
	if ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("table bits scaled with aspect ratio: %d vs %d (ratio %.3f)",
			small.MaxTableBits(), big.MaxTableBits(), ratio)
	}
	// And routing still works at the huge aspect ratio.
	routeAllPairs(t, big)
}

func TestAblationSparseOnlyWorksButCostsStorage(t *testing.T) {
	g := gen.Geometric(14, 50, 0.3)
	base := mustBuild(t, g, Params{K: 2, Seed: 11, SFactor: 1})
	ab := mustBuild(t, g, Params{K: 2, Seed: 11, SFactor: 1, Mode: SparseOnly})
	routeAllPairs(t, ab)
	if ab.Report.DenseLevels != 0 {
		t.Fatal("sparse-only still has dense levels")
	}
	// The ablation must not be cheaper than the combined scheme's
	// sparse side (it pays for every dense level by forcing).
	if ab.Report.ForcedMembers < base.Report.ForcedMembers {
		t.Fatalf("sparse-only forced %d < combined %d", ab.Report.ForcedMembers, base.Report.ForcedMembers)
	}
}

func TestAblationDenseOnlyWorksButCostsStretch(t *testing.T) {
	g := gen.Gnp(15, 50, 0.08, gen.Uniform(1, 5))
	ab := mustBuild(t, g, Params{K: 3, Seed: 17, SFactor: 2, Mode: DenseOnly})
	st := routeAllPairs(t, ab)
	t.Logf("dense-only stretch: %s", st)
	// Terminal phases keep it correct; stretch may degrade but must
	// stay finite — delivery already asserted by routeAllPairs.
}

func TestRouteTracePhases(t *testing.T) {
	g := gen.Gnp(16, 60, 0.06, gen.Uniform(1, 4))
	s := mustBuild(t, g, Params{K: 3, Seed: 19, SFactor: 2})
	all := sssp.AllPairs(g)
	for u := graph.NodeID(0); int(u) < g.N(); u += 7 {
		for v := graph.NodeID(0); int(v) < g.N(); v += 5 {
			ok, phases, total, err := s.RouteTrace(u, g.Name(v))
			if err != nil || !ok {
				t.Fatalf("trace %d→%d: %v", u, v, err)
			}
			if u == v {
				continue
			}
			sum := 0.0
			for _, ph := range phases {
				sum += ph.Cost
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Fatalf("phase costs %v do not sum to total %v", sum, total)
			}
			if len(phases) == 0 || !phases[len(phases)-1].Found {
				t.Fatal("last phase must be the finding one")
			}
			// Engine agreement.
			e := sim.NewEngine(g)
			res, err := e.Route(s, u, g.Name(v))
			if err != nil || !res.Delivered {
				t.Fatal(err)
			}
			if math.Abs(res.Cost-total) > 1e-9 {
				t.Fatalf("trace cost %v != engine cost %v", total, res.Cost)
			}
			_ = all
		}
	}
}

func TestPhaseCostBoundsT10(t *testing.T) {
	// Lemmas 9/11: a phase-i search costs O(k·2^{a(u,i)}) when it
	// fails and O(k·(d(u,v)+2^{a(u,i)})) when it succeeds. Check with
	// explicit constants: failed dense ≤ (8k+6)·2^a; failed sparse ≤
	// 2·2^a + (2k)·2^{a(u,i+1)} — we assert the looser combined form
	// c·k·2^{a(u,i+1)} for sparse and c·k·2^{a(u,i)} for dense.
	g := gen.Gnp(17, 70, 0.06, gen.Uniform(1, 4))
	k := 3
	s := mustBuild(t, g, Params{K: k, Seed: 23, SFactor: 2})
	minW := s.Decomposition().MinWeight()
	for u := graph.NodeID(0); int(u) < g.N(); u += 3 {
		for v := graph.NodeID(0); int(v) < g.N(); v += 7 {
			if u == v {
				continue
			}
			ok, phases, _, err := s.RouteTrace(u, g.Name(v))
			if err != nil || !ok {
				t.Fatal(err)
			}
			for _, ph := range phases {
				if ph.Found {
					continue
				}
				radius := minW * math.Ldexp(1, ph.AUBits)
				var bound float64
				if ph.Dense {
					bound = float64(8*k+8) * radius
				} else {
					next := s.Decomposition().Range(u, ph.Level+1)
					if ph.Level+1 > k {
						next = s.Decomposition().Cap()
					}
					bound = float64(4*k+4) * minW * math.Ldexp(1, next)
				}
				if ph.Cost > bound+1e-9 {
					t.Fatalf("failed phase %d (dense=%v) cost %v > bound %v (u=%d v=%d)",
						ph.Level, ph.Dense, ph.Cost, bound, u, v)
				}
			}
		}
	}
}

func TestHeaderBitsPolylog(t *testing.T) {
	g := gen.Gnp(18, 80, 0.05, gen.Uniform(1, 4))
	s := mustBuild(t, g, Params{K: 3, Seed: 29, SFactor: 2})
	e := sim.NewEngine(g)
	maxBits := 0
	for u := graph.NodeID(0); int(u) < 20; u++ {
		res, err := e.Route(s, u, g.Name(graph.NodeID(79-int(u))))
		if err != nil || !res.Delivered {
			t.Fatal(err)
		}
		if int(res.MaxHeaderBits) > maxBits {
			maxBits = int(res.MaxHeaderBits)
		}
	}
	logn := math.Log2(float64(g.N()))
	if float64(maxBits) > 64*logn*logn {
		t.Fatalf("header %d bits exceeds polylog budget", maxBits)
	}
}

func TestStorageBreakdownComplete(t *testing.T) {
	g := gen.Gnp(19, 50, 0.08, gen.Uniform(1, 4))
	s := mustBuild(t, g, Params{K: 2, Seed: 31, SFactor: 1})
	sum := s.CategoryBits("decomposition") + s.CategoryBits("sparse-level-pointers") +
		s.CategoryBits("dense-level-pointers") + s.CategoryBits("landmark-trees") +
		s.CategoryBits("cover-trees")
	total := bitsize.Bits(bitsTotal(s))
	if sum != total {
		t.Fatalf("category sum %d != total %d", sum, total)
	}
	if s.MaxTableBits() <= 0 {
		t.Fatal("no storage accounted")
	}
}

func bitsTotal(s *Scheme) (t int64) {
	for u := 0; u < s.G().N(); u++ {
		t += int64(s.NodeTableBits(graph.NodeID(u)))
	}
	return t
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := gen.Path(20, 5, gen.Unit())
	if _, err := Build(g, Params{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	b := graph.NewBuilder()
	b.AddNode(1)
	b.AddNode(2)
	dg, _ := b.Build()
	if _, err := Build(dg, Params{K: 2}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := gen.Path(21, 1, gen.Unit())
	s := mustBuild(t, g, Params{K: 2, Seed: 1})
	e := sim.NewEngine(g)
	res, err := e.Route(s, 0, g.Name(0))
	if err != nil || !res.Delivered || res.Cost != 0 {
		t.Fatalf("single node self route: %+v, %v", res, err)
	}
}

func TestTwoNodeGraph(t *testing.T) {
	g := gen.Path(22, 2, gen.Uniform(1, 2))
	s := mustBuild(t, g, Params{K: 2, Seed: 1})
	routeAllPairs(t, s)
}

func TestDeterministicBuild(t *testing.T) {
	g := gen.Gnp(23, 40, 0.08, gen.Uniform(1, 3))
	a := mustBuild(t, g, Params{K: 2, Seed: 77, SFactor: 1})
	b := mustBuild(t, g, Params{K: 2, Seed: 77, SFactor: 1})
	if a.MaxTableBits() != b.MaxTableBits() || a.Report != b.Report {
		t.Fatal("same seed produced different schemes")
	}
	e := sim.NewEngine(g)
	for u := graph.NodeID(0); int(u) < g.N(); u += 5 {
		for v := graph.NodeID(0); int(v) < g.N(); v += 3 {
			ra, err1 := e.Route(a, u, g.Name(v))
			rb, err2 := e.Route(b, u, g.Name(v))
			if err1 != nil || err2 != nil || ra.Cost != rb.Cost {
				t.Fatal("same seed routed differently")
			}
		}
	}
}

func TestDeterministicLandmarksEndToEnd(t *testing.T) {
	g := gen.Gnp(24, 60, 0.08, gen.Uniform(1, 5))
	s := mustBuild(t, g, Params{K: 3, Seed: 1, SFactor: 1, DeterministicLandmarks: true})
	st := routeAllPairs(t, s)
	if st.Max() > 14*3 {
		t.Fatalf("deterministic landmarks stretch %v", st.Max())
	}
	// Seed must not matter for the hierarchy: two builds with
	// different seeds route identically except for hash choices, and
	// at minimum deliver everything (already checked above). Verify
	// the rank structure is seed-free.
	s2 := mustBuild(t, g, Params{K: 3, Seed: 999, SFactor: 1, DeterministicLandmarks: true})
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		if s.Landmarks().Rank(u) != s2.Landmarks().Rank(u) {
			t.Fatal("deterministic hierarchy varied with seed")
		}
	}
}
