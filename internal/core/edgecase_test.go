package core

import (
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
)

// TestHugeUniformWeights: the decomposition normalizes by the minimum
// edge weight (the paper assumes min distance 1); a graph whose edges
// all weigh 10⁶ must behave exactly like its unit-weight twin.
func TestHugeUniformWeights(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 20; i++ {
		b.AddNode(uint64(i) * 977)
	}
	for i := 0; i < 19; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustBuild(t, g, Params{K: 2, Seed: 1, SFactor: 1})
	st := routeAllPairs(t, s)
	if st.Max() > 14*2 {
		t.Fatalf("huge-weight stretch %v", st.Max())
	}
}

// TestParallelEdgesGraph: multigraphs must route correctly (the
// lightest parallel edge defines the metric).
func TestParallelEdgesGraph(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode(uint64(i) + 100)
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 5)
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1) // lighter twin
	}
	b.AddEdge(0, 5, 100)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustBuild(t, g, Params{K: 2, Seed: 2, SFactor: 1})
	routeAllPairs(t, s)
}

// TestExtremeTopologies: stars and deep paths push the decomposition
// to its degenerate corners (max degree; max diameter).
func TestExtremeTopologies(t *testing.T) {
	for _, k := range []int{2, 4} {
		star := gen.Star(uint64(k), 50, gen.Uniform(1, 3))
		s := mustBuild(t, star, Params{K: k, Seed: 3, SFactor: 1})
		routeAllPairs(t, s)

		path := gen.Path(uint64(k)+10, 50, gen.Uniform(1, 2))
		s2 := mustBuild(t, path, Params{K: k, Seed: 4, SFactor: 1})
		st := routeAllPairs(t, s2)
		if st.Max() > float64(14*k) {
			t.Fatalf("path graph k=%d stretch %v", k, st.Max())
		}
	}
}

// TestDenseGapParameter: widening Definition 2's gap shifts levels
// toward dense; routing must stay correct for any gap.
func TestDenseGapParameter(t *testing.T) {
	g := gen.Geometric(5, 40, 0.3)
	for _, gap := range []int{1, 3, 6} {
		s := mustBuild(t, g, Params{K: 3, Seed: 5, SFactor: 1, DenseGap: gap})
		routeAllPairs(t, s)
	}
}
