// Package core assembles the paper's primary contribution (Theorem 1):
// a name-independent, scale-free compact routing scheme for arbitrary
// weighted graphs with stretch O(k) and Õ(n^{1/k})-bit tables whose
// sizes are independent of the aspect ratio.
//
// Construction (§3):
//
//   - the sparse/dense decomposition classifies each node's k levels
//     (package decomp);
//   - sparse levels route through the nearest highest-rank landmark
//     c(u,i): its tree T(c) spans {v : c ∈ S(v)} and carries the
//     Lemma 4 error-reporting trie (packages landmark, tree, nitree);
//   - dense levels route on the node's home tree W(u,i) in the sparse
//     cover TC_{k,2^j}(G_j) at scale j = a(u,i), searched with the
//     Lemma 7 rendezvous structure (packages cover, covroute);
//   - the router iterates phases i = 1..k from the source, following
//     §3.3/§3.6: each failed phase reports back to the source, whose
//     label in the relevant tree rides in the header as the return
//     address. The terminal level is always sparse with E(u,k) = V, so
//     delivery is guaranteed deterministically (DESIGN.md #1).
//
// Lemma 3 is a whp property; Build *verifies* it and constructively
// repairs any violated (u,i) pair by forcing E(u,i) into the members
// of T(c(u,i)). Repairs are counted in the BuildReport and their
// storage is charged honestly, so the experiments can show how rare
// they are (with paper constants: zero on all tested instances).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"compactroute/internal/bitsize"
	"compactroute/internal/cover"
	"compactroute/internal/covroute"
	"compactroute/internal/decomp"
	"compactroute/internal/graph"
	"compactroute/internal/landmark"
	"compactroute/internal/nitree"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
	"compactroute/internal/xrand"
)

// Mode selects the decomposition ablation (experiment T9).
type Mode uint8

const (
	// Combined is the paper's scheme: dense levels use covers, sparse
	// levels use landmark trees.
	Combined Mode = iota
	// SparseOnly treats every level as sparse. Coverage survives but
	// Lemma 3 no longer protects dense levels, so forced memberships
	// (and storage) blow up — the measured cost of dropping the dense
	// strategy.
	SparseOnly
	// DenseOnly uses the cover strategy on every non-terminal level.
	// Sparse levels lose the Lemma 2 guarantee, so searches miss and
	// fall through to the terminal phase — the measured stretch cost
	// of dropping the sparse strategy.
	DenseOnly
)

// String names the ablation for tables and flags.
func (m Mode) String() string {
	switch m {
	case SparseOnly:
		return "sparse-only"
	case DenseOnly:
		return "dense-only"
	default:
		return "combined"
	}
}

// Params configures a scheme build.
type Params struct {
	// K is the space-stretch trade-off parameter, k ≥ 1.
	K int
	// Seed drives all randomized choices (landmark sampling, hashes).
	Seed uint64
	// SFactor scales the landmark S-set capacity ⌈SFactor·n^{2/k}·ln n⌉.
	// The paper's constant is 16; 0 means 16. Experiments may scale it
	// down (DESIGN.md #5).
	SFactor float64
	// LoadFactor scales the Lemma 4 bucket capacity; 0 means 1.
	LoadFactor float64
	// DenseGap is Definition 2's gap bound; 0 means the paper's 3.
	DenseGap int
	// Mode selects the T9 ablation; default Combined.
	Mode Mode
	// DeterministicLandmarks uses the §2.3 derandomization (greedy
	// hitting sets) instead of sampling; Claim 1 then holds by
	// construction and the build ignores Seed for landmark selection.
	DeterministicLandmarks bool
}

// BuildReport records what the probabilistic machinery did.
type BuildReport struct {
	// ForcedMembers counts nodes added to landmark trees to repair
	// Lemma 3 violations (0 when the whp property held).
	ForcedMembers int
	// Lemma3Checked/Lemma3Violations are the raw verification counts.
	Lemma3Checked, Lemma3Violations int
	// TrieLoadViolations counts Lemma 4 structures that needed their
	// bucket capacity raised beyond the theoretical cap.
	TrieLoadViolations int
	// LandmarkTrees and CoverTrees count the materialized trees.
	LandmarkTrees, CoverTrees int
	// CoverScales counts distinct dense scales (the O(log n) quantity
	// of §1.2).
	CoverScales int
	// DenseLevels and SparseLevels count (u, i ≥ 1) pairs by class as
	// routed (after ablation overrides).
	DenseLevels, SparseLevels int
}

// levelInfo is one node's routing state for one phase.
type levelInfo struct {
	dense bool
	// skip marks the degenerate dense level 0: F(u,0) = {u}, so the
	// phase has nothing to search and advances for free.
	skip bool
	// Sparse strategy.
	center graph.NodeID
	bound  uint8
	// Dense strategy.
	scale   int32 // j = a(u,i)
	treeIdx int32 // index of W(u,i) within covers[scale].cov.Trees
}

// landmarkTree bundles one center's tree with its Lemma 4 trie.
type landmarkTree struct {
	t  *tree.Tree
	ni *nitree.Scheme
}

// coverAtScale bundles one scale's cover with per-tree Lemma 7 state.
type coverAtScale struct {
	cov    *cover.Cover
	routes []*covroute.Scheme
}

// Scheme is a built routing scheme. It implements sim.Router.
type Scheme struct {
	g      *graph.Graph
	k      int
	mode   Mode
	params Params // normalized build parameters, kept for persistence
	dec    *decomp.Decomposition
	lm     *landmark.Hierarchy
	trees  map[graph.NodeID]*landmarkTree
	covers map[int32]*coverAtScale
	// levels[u][i] holds phase i's routing state for u, i ∈ 0..k.
	// Phase 0 is the §3.7 analysis' iteration 0: a search of u's own
	// landmark tree covering E(u,0) (see DESIGN.md #1) — without it,
	// nearby destinations in sparse neighborhoods would pay the
	// O(k·2^{a(u,1)}) phase-1 cost and the stretch would not be O(k).
	levels [][]levelInfo
	// selfLabels[u] caches λ(T(c(u,i)), u) per level for the return
	// address (part of u's storage).
	selfLabels [][]treerouteLabel

	Report BuildReport
	acct   *bitsize.Accountant
}

// treerouteLabel alias keeps struct literals short.
type treerouteLabel = labelT

// Build constructs the scheme over a connected graph. It computes the
// all-pairs shortest paths it needs (in parallel); use BuildWithAPSP
// to share precomputed results across schemes.
func Build(g *graph.Graph, p Params) (*Scheme, error) {
	return BuildWithAPSP(g, sssp.AllPairsParallel(g, 0), p)
}

// BuildStream is Build fed by a per-source shortest-path stream. The
// paper's construction is the one scheme in the registry that
// genuinely needs random access across sources — the decomposition
// retains the full metric for lazy ball queries (E, F, A sets) during
// classification, tree construction, bound computation, and lemma
// verification — so it requests a materialized view explicitly rather
// than pretending to stream. Cancellation is honored while the view
// materializes (the dominant cost at scale).
func BuildStream(ctx context.Context, g *graph.Graph, src sssp.Source, p Params) (*Scheme, error) {
	all, err := sssp.Materialize(ctx, src)
	if err != nil {
		return nil, fmt.Errorf("core: materializing metric: %w", err)
	}
	return BuildWithAPSP(g, all, p)
}

// BuildWithAPSP is Build with precomputed per-node shortest paths
// (sssp.AllPairs output), which experiments share across schemes.
func BuildWithAPSP(g *graph.Graph, all []*sssp.Result, p Params) (*Scheme, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: graph must be connected (route within components by building per component)")
	}
	if p.K < 1 {
		return nil, fmt.Errorf("core: k must be ≥ 1, got %d", p.K)
	}
	if p.SFactor == 0 {
		p.SFactor = 16
	}
	if p.LoadFactor == 0 {
		p.LoadFactor = 1
	}
	if p.DenseGap == 0 {
		p.DenseGap = 3
	}

	dec, err := decomp.Build(g, all, decomp.Params{K: p.K, DenseGap: p.DenseGap})
	if err != nil {
		return nil, err
	}
	lm, err := landmark.Build(g, all, dec, landmark.Params{
		K: p.K, SFactor: p.SFactor, Seed: p.Seed, Deterministic: p.DeterministicLandmarks,
	})
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		g:      g,
		k:      p.K,
		mode:   p.Mode,
		params: p,
		dec:    dec,
		lm:     lm,
		trees:  make(map[graph.NodeID]*landmarkTree),
		covers: make(map[int32]*coverAtScale),
		levels: make([][]levelInfo, g.N()),
	}
	checked, violations := lm.VerifyLemma3(dec)
	s.Report.Lemma3Checked, s.Report.Lemma3Violations = checked, violations

	if err := s.classifyLevels(); err != nil {
		return nil, err
	}
	if err := s.buildSparseSide(all, p); err != nil {
		return nil, err
	}
	if err := s.buildDenseSide(p); err != nil {
		return nil, err
	}
	s.computeBounds()
	s.cacheSelfLabels()
	s.account()
	return s, nil
}

// classifyLevels fixes each (u,i) phase strategy, applying ablations.
func (s *Scheme) classifyLevels() error {
	for u := 0; u < s.g.N(); u++ {
		infos := make([]levelInfo, s.k+1)
		for i := 0; i <= s.k; i++ {
			dense := s.dec.Dense(graph.NodeID(u), i)
			switch s.mode {
			case SparseOnly:
				if i > 0 {
					dense = false
				}
				// Dense level 0 keeps its skip: F(u,0) = {u} has
				// nothing to search under either strategy.
			case DenseOnly:
				if i > 0 && i < s.k {
					dense = true
				} else if i == s.k {
					dense = false // terminal phase must stay sparse
				}
			}
			info := levelInfo{dense: dense}
			switch {
			case i == 0 && dense:
				// F(u,0) = B(u, 2^{-1}) = {u}: nothing to search.
				info.skip = true
			case dense:
				info.scale = int32(s.dec.Range(graph.NodeID(u), i))
				s.Report.DenseLevels++
			default:
				info.center = s.lm.Center(graph.NodeID(u), i)
				s.Report.SparseLevels++
			}
			infos[i] = info
		}
		s.levels[u] = infos
	}
	return nil
}

// buildSparseSide materializes the landmark trees T(c) with their
// Lemma 4 tries, forcing coverage where Lemma 3 failed.
//
// Per §3.2 a tree exists for *every* landmark in anyone's S set (not
// only the centers some node actually routes through); this keeps the
// storage profile independent of the aspect ratio, since the S sets
// are metric-local and Δ-free.
func (s *Scheme) buildSparseSide(all []*sssp.Result, p Params) error {
	need := make(map[graph.NodeID]map[graph.NodeID]bool)
	for _, c := range s.lm.Landmarks() {
		m := make(map[graph.NodeID]bool)
		for _, v := range s.lm.Members(c) {
			m[v] = true
		}
		need[c] = m
	}
	// Add every E(u,i) the router will search through a center (the
	// constructive Lemma 3 repair) and the sources themselves.
	for u := 0; u < s.g.N(); u++ {
		for i := 0; i <= s.k; i++ {
			info := &s.levels[u][i]
			if info.dense || info.skip {
				continue
			}
			c := info.center
			m, ok := need[c]
			if !ok {
				m = make(map[graph.NodeID]bool)
				need[c] = m
			}
			// u itself must be a member to hold its return label.
			if !m[graph.NodeID(u)] {
				m[graph.NodeID(u)] = true
				s.Report.ForcedMembers++
			}
			for _, v := range s.dec.E(graph.NodeID(u), i) {
				if !m[v] {
					m[v] = true
					s.Report.ForcedMembers++
				}
			}
		}
	}
	// Tree construction per center is independent and deterministic
	// (each trie is seeded from its center's id), so fan out.
	centers := make([]graph.NodeID, 0, len(need))
	for c := range need {
		centers = append(centers, c)
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	built := make([]*landmarkTree, len(centers))
	errs := make([]error, len(centers))
	sssp.ParallelFor(len(centers), 0, func(ci int) {
		c := centers[ci]
		members := need[c]
		targets := make([]graph.NodeID, 0, len(members))
		for v := range members {
			targets = append(targets, v)
		}
		t, err := tree.FromPaths(s.g, c, all[c].Parent, targets)
		if err != nil {
			errs[ci] = fmt.Errorf("core: tree of center %d: %w", c, err)
			return
		}
		ni, err := nitree.New(t, nitree.Params{
			K:          s.k,
			UniverseN:  s.g.N(),
			LoadFactor: p.LoadFactor,
			Seed:       xrand.Hash64(p.Seed, uint64(c)),
		})
		if err != nil {
			errs[ci] = fmt.Errorf("core: trie of center %d: %w", c, err)
			return
		}
		built[ci] = &landmarkTree{t: t, ni: ni}
	})
	for ci, err := range errs {
		if err != nil {
			return err
		}
		if built[ci].ni.LoadViolation {
			s.Report.TrieLoadViolations++
		}
		s.trees[centers[ci]] = built[ci]
	}
	s.Report.LandmarkTrees = len(s.trees)
	return nil
}

// buildDenseSide materializes the covers of the scales dense levels
// use and resolves each (u,i) to its home tree W(u,i).
func (s *Scheme) buildDenseSide(p Params) error {
	scales := make(map[int32]bool)
	for u := range s.levels {
		for i := range s.levels[u] {
			if s.levels[u][i].dense && !s.levels[u][i].skip {
				scales[s.levels[u][i].scale] = true
			}
		}
	}
	s.Report.CoverScales = len(scales)
	scaleList := make([]int32, 0, len(scales))
	for j := range scales {
		scaleList = append(scaleList, j)
	}
	sort.Slice(scaleList, func(i, j int) bool { return scaleList[i] < scaleList[j] })
	covBuilt := make([]*coverAtScale, len(scaleList))
	covErrs := make([]error, len(scaleList))
	// Per-scale covers are independent; fan out across scales.
	sssp.ParallelFor(len(scaleList), 0, func(si int) {
		j := scaleList[si]
		member := make([]bool, s.g.N())
		for v := 0; v < s.g.N(); v++ {
			if s.dec.InRangeSet(graph.NodeID(v), int(j)) {
				member[v] = true
			}
		}
		cov, err := cover.Build(s.g, cover.Params{
			K:         s.k,
			Rho:       s.dec.Radius(int(j)),
			UniverseN: s.g.N(),
			Member:    member,
		})
		if err != nil {
			covErrs[si] = fmt.Errorf("core: cover at scale %d: %w", j, err)
			return
		}
		cas := &coverAtScale{cov: cov, routes: make([]*covroute.Scheme, len(cov.Trees))}
		for ti, t := range cov.Trees {
			cas.routes[ti] = covroute.New(t, xrand.Hash64(p.Seed^0xc0ffee, uint64(j)<<20|uint64(ti)))
		}
		covBuilt[si] = cas
	})
	for si, err := range covErrs {
		if err != nil {
			return err
		}
		s.Report.CoverTrees += len(covBuilt[si].cov.Trees)
		s.covers[scaleList[si]] = covBuilt[si]
	}
	// Resolve home trees.
	for u := 0; u < s.g.N(); u++ {
		for i := 0; i <= s.k; i++ {
			info := &s.levels[u][i]
			if !info.dense || info.skip {
				continue
			}
			cas := s.covers[info.scale]
			home := cas.cov.Home(graph.NodeID(u))
			if home < 0 {
				return fmt.Errorf("core: node %d has no home tree at scale %d", u, info.scale)
			}
			info.treeIdx = int32(home)
		}
	}
	return nil
}

// computeBounds fills b(u,i): the minimal trie depth finding all of
// E(u,i) in T(c(u,i)) (§3.1).
func (s *Scheme) computeBounds() {
	for u := 0; u < s.g.N(); u++ {
		for i := 0; i <= s.k; i++ {
			info := &s.levels[u][i]
			if info.dense || info.skip {
				continue
			}
			lt := s.trees[info.center]
			b := 1
			for _, v := range s.dec.E(graph.NodeID(u), i) {
				mb := lt.ni.MinBound(s.g.Name(v))
				if mb == 0 {
					// Unreachable: E(u,i) was forced into the tree.
					mb = s.k
				}
				if mb > b {
					b = mb
				}
			}
			info.bound = uint8(b)
		}
	}
}

// cacheSelfLabels stores λ(T(c(u,i)), u) per sparse level: the return
// address the header carries.
func (s *Scheme) cacheSelfLabels() {
	s.selfLabels = make([][]labelT, s.g.N())
	for u := 0; u < s.g.N(); u++ {
		s.selfLabels[u] = make([]labelT, s.k+1)
		for i := 0; i <= s.k; i++ {
			info := &s.levels[u][i]
			if info.dense || info.skip {
				continue
			}
			lbl, ok := s.trees[info.center].ni.Labeled().LabelOf(graph.NodeID(u))
			if !ok {
				panic(fmt.Sprintf("core: source %d missing from tree of %d", u, info.center))
			}
			s.selfLabels[u][i] = lbl
		}
	}
}

// G returns the underlying graph.
func (s *Scheme) G() *graph.Graph { return s.g }

// K returns the trade-off parameter.
func (s *Scheme) K() int { return s.k }

// Decomposition exposes the underlying decomposition (read-only).
func (s *Scheme) Decomposition() *decomp.Decomposition { return s.dec }

// Landmarks exposes the underlying hierarchy (read-only).
func (s *Scheme) Landmarks() *landmark.Hierarchy { return s.lm }

// MaxTableBits returns the largest per-node table, the quantity of
// Theorem 1.
func (s *Scheme) MaxTableBits() bitsize.Bits { return s.acct.MaxNodeBits() }

// MeanTableBits returns the average per-node table size.
func (s *Scheme) MeanTableBits() float64 { return s.acct.MeanNodeBits() }

// StorageReport renders the per-category storage breakdown.
func (s *Scheme) StorageReport() string { return s.acct.Report() }

// TheoremBound returns the per-node table bound of Lemmas 9 and 11,
// k²·n^{3/k}·log³n bits (without the hidden constant). Theorem 1's
// headline O(k²·n^{1/k}·log³n) follows by the standard rescaling
// k → 3k; experiments report measured bits against this un-rescaled
// bound so the ratio is meaningful at small k.
func (s *Scheme) TheoremBound() float64 {
	n := float64(s.g.N())
	logn := math.Log2(math.Max(n, 2))
	return float64(s.k*s.k) * math.Pow(n, 3/float64(s.k)) * logn * logn * logn
}
