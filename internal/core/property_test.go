package core

import (
	"testing"
	"testing/quick"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// Property: on arbitrary random graphs, seeds, k and constants, the
// scheme delivers every sampled pair with bounded stretch and every
// phase-cost invariant intact. This is the library's master invariant.
func TestEndToEndProperty(t *testing.T) {
	f := func(seed uint64, kRaw, sfRaw uint8) bool {
		k := 1 + int(kRaw%4)                      // k ∈ {1..4}
		sf := []float64{0.1, 0.5, 1, 16}[sfRaw%4] // constants from tiny to paper
		g := gen.Gnp(seed, 36, 0.12, gen.Uniform(1, 6))
		all := sssp.AllPairs(g)
		s, err := BuildWithAPSP(g, all, Params{K: k, Seed: seed, SFactor: sf})
		if err != nil {
			return false
		}
		e := sim.NewEngine(g)
		for u := 0; u < g.N(); u += 3 {
			for v := 0; v < g.N(); v += 2 {
				res, err := e.Route(s, graph.NodeID(u), g.Name(graph.NodeID(v)))
				if err != nil || !res.Delivered {
					return false
				}
				if u == v && res.Cost != 0 {
					return false
				}
				if u != v {
					// Generous master bound: stretch ≤ 20k under any
					// constants (repairs keep correctness; stretch
					// constants degrade gracefully with tiny S).
					if res.Cost > float64(20*k)*all[u].Dist[v]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase classification is a partition — every (u, i) pair is
// exactly one of skip, dense, or sparse, with the required state set.
func TestLevelInfoWellFormedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Geometric(seed, 40, 0.3)
		s, err := Build(g, Params{K: 3, Seed: seed, SFactor: 1})
		if err != nil {
			return false
		}
		for u := range s.levels {
			for i, info := range s.levels[u] {
				switch {
				case info.skip:
					if i != 0 || info.dense == false {
						// skip only arises from dense level 0
						return false
					}
				case info.dense:
					cas := s.covers[info.scale]
					if cas == nil || int(info.treeIdx) >= len(cas.cov.Trees) {
						return false
					}
					if !cas.cov.Trees[info.treeIdx].Contains(graph.NodeID(u)) {
						return false
					}
				default:
					lt := s.trees[info.center]
					if lt == nil || !lt.t.Contains(graph.NodeID(u)) {
						return false
					}
					if info.bound < 1 || int(info.bound) > s.k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
