package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// Measure routes a strided sample of ordered pairs through a router
// and returns the stretch distribution, fanning source rows across
// the given number of workers (0 means GOMAXPROCS). Built schemes are
// immutable and per-message state lives in the header, so the fan-out
// is safe for every router in this repository. Each row accumulates
// into its own Stretch and rows merge in row order, so the result is
// identical — sample order included — to a serial sweep regardless of
// worker count. It errors on non-delivery when requireDelivery is set
// (routers that must always deliver) and skips the pair otherwise.
func Measure(g *graph.Graph, apsp []*sssp.Result, r sim.Router, stride, workers int, requireDelivery bool) (*stats.Stretch, error) {
	if stride < 1 {
		stride = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := make([]int, 0, (g.N()+stride-1)/stride)
	for u := 0; u < g.N(); u += stride {
		rows = append(rows, u)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	perRow := make([]*stats.Stretch, len(rows))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fail != nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			e := sim.NewEngine(g)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rows) || failed() {
					return
				}
				st, err := measureRow(e, apsp, r, rows[i], requireDelivery)
				if err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
				perRow[i] = st
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	var st stats.Stretch
	for _, row := range perRow {
		st.Merge(row)
	}
	return &st, nil
}

// measureRow routes one source against every destination.
func measureRow(e *sim.Engine, apsp []*sssp.Result, r sim.Router, u int, requireDelivery bool) (*stats.Stretch, error) {
	g := e.Graph()
	var st stats.Stretch
	for v := 0; v < g.N(); v++ {
		if u == v {
			continue
		}
		res, err := e.Route(r, graph.NodeID(u), g.Name(graph.NodeID(v)))
		if err != nil {
			return nil, err
		}
		if !res.Delivered {
			if requireDelivery {
				return nil, fmt.Errorf("%s: %d→%d not delivered", r.Name(), u, v)
			}
			continue
		}
		st.Add(res.Cost, apsp[u].Dist[v])
	}
	return &st, nil
}

// measureSerial is the single-core reference sweep P1 compares
// against (and the pre-parallelization behavior of every experiment).
func measureSerial(g *graph.Graph, apsp []*sssp.Result, r sim.Router, stride int, requireDelivery bool) (*stats.Stretch, error) {
	if stride < 1 {
		stride = 1
	}
	e := sim.NewEngine(g)
	var st stats.Stretch
	for u := 0; u < g.N(); u += stride {
		row, err := measureRow(e, apsp, r, u, requireDelivery)
		if err != nil {
			return nil, err
		}
		st.Merge(row)
	}
	return &st, nil
}
