package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// serialRowThreshold mirrors the compactroute.MeasureStretch fallback:
// below this many source rows the fan-out machinery costs more than it
// saves (P1 measures 0.88× "speedup" at 128 rows on a single-core
// runner), so auto mode (workers 0) runs serially. An explicit worker
// count is always honored — P1 relies on that to measure the fan-out
// itself at quick sizes.
const serialRowThreshold = 256

// Measure routes a strided sample of ordered pairs through a router
// and returns the stretch distribution, fanning source rows across
// the given number of workers (0 means GOMAXPROCS, or serial below
// serialRowThreshold rows). Built schemes are immutable and
// per-message state lives in the header, so the fan-out is safe for
// every router in this repository. Each row accumulates into its own
// Stretch and rows merge in row order, so the result is identical —
// sample order included — to a serial sweep regardless of worker
// count. It errors on non-delivery when requireDelivery is set
// (routers that must always deliver) and skips the pair otherwise.
func Measure(g *graph.Graph, apsp []*sssp.Result, r sim.Router, stride, workers int, requireDelivery bool) (*stats.Stretch, error) {
	if stride < 1 {
		stride = 1
	}
	nRows := (g.N() + stride - 1) / stride
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if nRows < serialRowThreshold {
			workers = 1
		}
	}
	rows := make([]int, 0, nRows)
	for u := 0; u < g.N(); u += stride {
		rows = append(rows, u)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers == 1 {
		// A single worker coordinates with nobody: skip the goroutine
		// machinery and merge rows inline (identical distribution).
		e := sim.NewEngine(g)
		var st stats.Stretch
		for _, u := range rows {
			row, err := measureRow(e, apsp, r, u, requireDelivery)
			if err != nil {
				return nil, err
			}
			st.Merge(row)
		}
		return &st, nil
	}
	perRow := make([]*stats.Stretch, len(rows))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fail != nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			e := sim.NewEngine(g)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rows) || failed() {
					return
				}
				st, err := measureRow(e, apsp, r, rows[i], requireDelivery)
				if err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
				perRow[i] = st
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	var st stats.Stretch
	for _, row := range perRow {
		st.Merge(row)
	}
	return &st, nil
}

// measureRow routes one source against every destination.
func measureRow(e *sim.Engine, apsp []*sssp.Result, r sim.Router, u int, requireDelivery bool) (*stats.Stretch, error) {
	g := e.Graph()
	var st stats.Stretch
	for v := 0; v < g.N(); v++ {
		if u == v {
			continue
		}
		res, err := e.Route(r, graph.NodeID(u), g.Name(graph.NodeID(v)))
		if err != nil {
			return nil, err
		}
		if !res.Delivered {
			if requireDelivery {
				return nil, fmt.Errorf("%s: %d→%d not delivered", r.Name(), u, v)
			}
			continue
		}
		st.Add(res.Cost, apsp[u].Dist[v])
	}
	return &st, nil
}

// measureSerial is the single-core reference sweep P1 compares
// against (and the pre-parallelization behavior of every experiment).
func measureSerial(g *graph.Graph, apsp []*sssp.Result, r sim.Router, stride int, requireDelivery bool) (*stats.Stretch, error) {
	if stride < 1 {
		stride = 1
	}
	e := sim.NewEngine(g)
	var st stats.Stretch
	for u := 0; u < g.N(); u += stride {
		row, err := measureRow(e, apsp, r, u, requireDelivery)
		if err != nil {
			return nil, err
		}
		st.Merge(row)
	}
	return &st, nil
}
