package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"compactroute/internal/dynamic"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/serve"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// RunD1 measures the dynamic-topology control plane (internal/dynamic,
// DESIGN.md §7) per scheme kind and churn rate (mutations per
// rebuild): background rebuild latency, the serving swap pause
// (pointer store + cache purge — the only serving-visible cost, which
// must stay far below a millisecond), and the staleness-induced
// stretch — how far routes answered by the OLD version drift from the
// true shortest paths of the mutated topology while the rebuild is
// pending. After the final swap it verifies the hot-swapped schemes
// route bit-identically to a cold build of the final graph, the
// correctness contract the whole subsystem rests on (an error here
// fails the experiment, it is not a reported number).
func RunD1(ctx context.Context, w io.Writer, cfg Config) error {
	n, rebuilds := 384, 3
	kinds := []string{
		schemes.KindPaper, schemes.KindFullTable, schemes.KindAPCover,
		schemes.KindLandmarkChain, schemes.KindTZ,
	}
	churns := []int{16, 64}
	if cfg.Quick {
		n, rebuilds = 128, 2
		kinds = []string{schemes.KindFullTable, schemes.KindLandmarkChain}
		churns = []int{8, 32}
	}
	tb := stats.NewTable("D1: dynamic topology — rebuild latency, swap pause, staleness vs churn",
		"kind", "n", "churn", "rebuilds", "mean rebuild", "max swap pause", "pause<1ms",
		"stale stretch mean", "stale stretch max", "cold-identical")
	for ki, kind := range kinds {
		for _, churn := range churns {
			g := gen.Gnp(cfg.Seed, n, 8/float64(n), gen.Uniform(1, 8))
			scfg := schemes.Config{Kind: kind, K: 3, Seed: cfg.Seed, SFactor: 0.25}
			top, err := dynamic.NewTopology(ctx, g, dynamic.TopologyOptions{Configs: []schemes.Config{scfg}})
			if err != nil {
				return fmt.Errorf("D1: %s: %w", kind, err)
			}
			// The swap pause is measured as production pays it: with a
			// serving pool's cache purge registered as a swap hook.
			pool := serve.NewPool(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
				res, err := top.Current().Route(ctx, kind, src, dst)
				if err != nil {
					return serve.Result{}, err
				}
				return serve.Result{Delivered: res.Delivered, Cost: res.Cost, Hops: res.Hops}, nil
			}), serve.Options{CacheSize: 1 << 12})
			top.Swapper().OnSwap(func(*dynamic.Version) { pool.Purge() })

			muts, err := dynamic.GenerateTrace(g, churn*rebuilds, cfg.Seed+uint64(ki)*101)
			if err != nil {
				return fmt.Errorf("D1: %s: %w", kind, err)
			}
			// Staleness is a plain Sample, not a Stretch: the ratio can
			// drop below 1 (a weight increase raises the true distance
			// above the stale route's old-topology cost), which Stretch
			// rightly treats as a metric bug in its own domain.
			var (
				buildWall time.Duration
				stale     stats.Sample
			)
			for r := 0; r < rebuilds; r++ {
				batch := muts[r*churn : (r+1)*churn]
				if _, err := top.Apply(batch...); err != nil {
					return fmt.Errorf("D1: %s churn %d: %w", kind, churn, err)
				}
				// Staleness window: the topology has moved, the serving
				// version has not. Sample stale answers against the true
				// distances of the mutated graph.
				if err := sampleStaleness(ctx, top, kind, batch, &stale); err != nil {
					return fmt.Errorf("D1: %s churn %d: %w", kind, churn, err)
				}
				v, _, err := top.Rebuild(ctx)
				if err != nil {
					return fmt.Errorf("D1: %s churn %d rebuild %d: %w", kind, churn, r, err)
				}
				buildWall += v.BuildWall
				// Keep the pool honest: a few post-swap queries must
				// recompute (the purge emptied the cache).
				gNow := v.Graph()
				for q := 0; q < 8; q++ {
					src := gNow.Name(graph.NodeID(q % gNow.N()))
					dst := gNow.Name(graph.NodeID((q*13 + 1) % gNow.N()))
					if _, err := pool.Route(ctx, src, dst); err != nil {
						return fmt.Errorf("D1: %s post-swap query: %w", kind, err)
					}
				}
			}
			identical, err := coldIdentical(ctx, top, kind, scfg)
			if err != nil {
				return fmt.Errorf("D1: %s churn %d: %w", kind, churn, err)
			}
			if !identical {
				return fmt.Errorf("D1: %s churn %d: hot-swapped routes diverge from a cold build of the final graph", kind, churn)
			}
			maxPause := top.Swapper().MaxPause()
			tb.AddRow(kind, n, churn, rebuilds,
				(buildWall / time.Duration(rebuilds)).Round(time.Microsecond).String(),
				maxPause.Round(time.Microsecond).String(),
				maxPause < time.Millisecond,
				stale.Mean(), stale.Max(), identical)
		}
	}
	return cfg.emit(w, tb,
		"expected: swap pause ≪ 1ms (pointer store + cache purge; rebuild cost is background wall time),",
		"stale stretch grows with churn (weights moved under the served tables), cold-identical always true")
}

// sampleStaleness routes a strided pair sample on the CURRENT (stale)
// version and accumulates cost/d_new over the mutated graph's true
// distances — the stretch clients experience between a topology change
// and the swap that absorbs it.
func sampleStaleness(ctx context.Context, top *dynamic.Topology, kind string, pending []dynamic.Mutation, acc *stats.Sample) error {
	cur := top.Current()
	gOld := cur.Graph()
	gNew, err := dynamic.Replay(gOld, pending)
	if err != nil {
		return err
	}
	for s := 0; s < gOld.N(); s += 29 {
		srcOld := graph.NodeID(s)
		srcNew, ok := gNew.Lookup(gOld.Name(srcOld))
		if !ok {
			continue
		}
		rows := sssp.From(gNew, srcNew)
		for d := 1; d < gOld.N(); d += 31 {
			dstOld := graph.NodeID(d)
			if dstOld == srcOld {
				continue
			}
			dstNew, ok := gNew.Lookup(gOld.Name(dstOld))
			if !ok {
				continue
			}
			res, err := cur.Route(ctx, kind, gOld.Name(srcOld), gOld.Name(dstOld))
			if err != nil {
				return err
			}
			dNew := rows.Dist[dstNew]
			if !res.Delivered || dNew <= 0 || math.IsInf(dNew, 1) {
				continue
			}
			acc.Add(res.Cost / dNew)
		}
	}
	return nil
}

// coldIdentical verifies the serving version routes bit-identically
// (delivery, cost, hops, header bits) to a scheme built cold over the
// final graph with the same config.
func coldIdentical(ctx context.Context, top *dynamic.Topology, kind string, scfg schemes.Config) (bool, error) {
	v := top.Current()
	g := v.Graph()
	cold, err := schemes.Build(g, sssp.AllPairsParallel(g, 0), scfg)
	if err != nil {
		return false, err
	}
	eng := sim.NewEngine(g)
	for s := 0; s < g.N(); s += 17 {
		for d := 0; d < g.N(); d += 13 {
			src := graph.NodeID(s)
			dstName := g.Name(graph.NodeID(d))
			hot, err := v.Route(ctx, kind, g.Name(src), dstName)
			if err != nil {
				return false, err
			}
			want, err := eng.RouteCtx(ctx, cold, src, dstName)
			if err != nil {
				return false, err
			}
			if hot.Delivered != want.Delivered || hot.Cost != want.Cost ||
				hot.Hops != want.Hops || hot.MaxHeaderBits != want.MaxHeaderBits {
				return false, nil
			}
		}
	}
	return true, nil
}
