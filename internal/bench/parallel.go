package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"compactroute/internal/core"
	"compactroute/internal/gen"
	"compactroute/internal/stats"
)

// RunP1 measures the parallel stretch-measurement speedup: the same
// strided all-pairs sweep through the paper's scheme, single-core vs
// fanned across GOMAXPROCS. The sweep dominates every experiment run
// (it is the only Ω(n²) consumer of a built scheme), so this is the
// harness's own hot path. The runner also re-verifies the contract
// that makes the fan-out safe to rely on everywhere: both sweeps must
// produce the identical distribution.
func RunP1(ctx context.Context, w io.Writer, cfg Config) error {
	n, k, stride := 2000, 4, 4
	if cfg.Quick {
		n, k, stride = 256, 3, 2
	}
	g := gen.Gnp(cfg.Seed, n, 8/float64(n), gen.Uniform(1, 8))
	nn := newNet(g)
	s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 0.25})
	if err != nil {
		return err
	}
	workers := runtime.GOMAXPROCS(0)

	t0 := time.Now()
	serial, err := measureSerial(nn.g, nn.apsp, s, stride, true)
	if err != nil {
		return err
	}
	serialTime := time.Since(t0)
	t1 := time.Now()
	parallel, err := Measure(nn.g, nn.apsp, s, stride, workers, true)
	if err != nil {
		return err
	}
	parallelTime := time.Since(t1)

	if serial.N() != parallel.N() || serial.Mean() != parallel.Mean() || serial.Max() != parallel.Max() {
		return fmt.Errorf("P1: parallel sweep diverges from serial: n %d/%d mean %v/%v max %v/%v",
			parallel.N(), serial.N(), parallel.Mean(), serial.Mean(), parallel.Max(), serial.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if serial.Percentile(p) != parallel.Percentile(p) {
			return fmt.Errorf("P1: p%v diverges: %v vs %v", p, parallel.Percentile(p), serial.Percentile(p))
		}
	}

	speedup := 0.0
	if parallelTime > 0 {
		speedup = float64(serialTime) / float64(parallelTime)
	}
	tb := stats.NewTable("P1: parallel stretch-measurement speedup",
		"n", "k", "pairs", "workers", "serial", "parallel", "speedup")
	tb.AddRow(n, k, serial.N(), workers,
		serialTime.Round(time.Millisecond).String(),
		parallelTime.Round(time.Millisecond).String(),
		speedup)
	return cfg.emit(w, tb, fmt.Sprintf(
		"distributions identical (n=%d mean=%.4f max=%.4f); expected shape: speedup → workers as n grows",
		serial.N(), serial.Mean(), serial.Max()))
}
