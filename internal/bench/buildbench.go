package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// peakTracker samples runtime.ReadMemStats on a short interval and
// tracks the peak heap allocation above a GC'd baseline — the working
// memory a build actually demanded, the quantity B1 contrasts between
// the materialized and streaming pipelines.
type peakTracker struct {
	baseline uint64
	peak     atomic.Uint64
	stop     chan struct{}
	done     chan struct{}
}

// startPeakTracker GCs to a clean baseline, then samples until Stop.
func startPeakTracker(interval time.Duration) *peakTracker {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t := &peakTracker{
		baseline: ms.HeapAlloc,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				for {
					old := t.peak.Load()
					if ms.HeapAlloc <= old || t.peak.CompareAndSwap(old, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	return t
}

// Stop halts sampling, takes one final sample, and returns the peak
// allocation above the baseline. known follows the Result.MetricKnown
// convention: false means the sampler cannot vouch for the number (no
// sample — tick or final — ever exceeded the baseline, e.g. the build
// finished and freed between ticks), and callers must render "n/a"
// rather than a misleading 0.
func (t *peakTracker) Stop() (extraBytes uint64, known bool) {
	close(t.stop)
	<-t.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > t.peak.Load() {
		t.peak.Store(ms.HeapAlloc)
	}
	peak := t.peak.Load()
	if peak <= t.baseline {
		return 0, false
	}
	return peak - t.baseline, true
}

// fmtPeak renders a peak-allocation measurement, honoring the n/a
// guard.
func fmtPeak(bytes uint64, known bool) string {
	if !known {
		return "n/a"
	}
	return fmt.Sprintf("%.1fMiB", float64(bytes)/(1<<20))
}

// b1Mode is one build-pipeline configuration B1 times.
type b1Mode struct {
	name    string
	workers int
	build   func(ctx context.Context, g *graph.Graph, cfg schemes.Config, workers int) (schemes.Scheme, error)
}

// b1Modes contrasts the historical materialize-APSP-then-build flow
// with the streaming pipeline at one and all cores.
var b1Modes = []b1Mode{
	{"apsp+build", 0, func(ctx context.Context, g *graph.Graph, cfg schemes.Config, workers int) (schemes.Scheme, error) {
		return schemes.Build(g, sssp.AllPairsParallel(g, workers), cfg)
	}},
	{"stream-1", 1, func(ctx context.Context, g *graph.Graph, cfg schemes.Config, workers int) (schemes.Scheme, error) {
		return schemes.BuildStream(ctx, g, sssp.Streamed(g, workers), cfg)
	}},
	{"stream-N", 0, func(ctx context.Context, g *graph.Graph, cfg schemes.Config, workers int) (schemes.Scheme, error) {
		return schemes.BuildStream(ctx, g, sssp.Streamed(g, workers), cfg)
	}},
}

// RunB1 measures construction cost — wall time and peak working
// memory vs n — across the build pipelines, for a streaming-friendly
// kind (landmark: retains only landmark rows) and the strawman
// (fulltable: output-dominated). Serial-vs-parallel speedup of the
// streaming path is reported per size; the streamed schemes are
// property-tested elsewhere to be identical to the materialized ones,
// so B1 is purely a cost measurement.
func RunB1(ctx context.Context, w io.Writer, cfg Config) error {
	sizes := []int{512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{256}
	}
	return RunB1Sizes(ctx, w, cfg, sizes)
}

// RunB1Sizes is RunB1 over explicit graph sizes (cmd/routebench
// -bench b1 -n).
func RunB1Sizes(ctx context.Context, w io.Writer, cfg Config, sizes []int) error {
	kinds := []string{schemes.KindLandmarkChain, schemes.KindFullTable}
	workers := runtime.GOMAXPROCS(0)
	tb := stats.NewTable("B1: build pipeline cost (streaming vs materialized APSP)",
		"kind", "n", "mode", "workers", "wall", "peak-alloc", "speedup")
	for _, kind := range kinds {
		for _, n := range sizes {
			g := gen.Gnp(cfg.Seed, n, 8/float64(n), gen.Uniform(1, 8))
			type outcome struct {
				wall  time.Duration
				peak  uint64
				known bool
			}
			results := make([]outcome, len(b1Modes))
			for mi, mode := range b1Modes {
				bcfg := schemes.Config{Kind: kind, K: 3, Seed: cfg.Seed}
				tracker := startPeakTracker(2 * time.Millisecond)
				t0 := time.Now()
				s, err := mode.build(ctx, g, bcfg, mode.workers)
				wall := time.Since(t0)
				peak, known := tracker.Stop()
				if err != nil {
					return fmt.Errorf("B1: %s/%s n=%d: %w", kind, mode.name, n, err)
				}
				if s.MaxTableBits() <= 0 {
					return fmt.Errorf("B1: %s/%s n=%d: built scheme reports no storage", kind, mode.name, n)
				}
				results[mi] = outcome{wall: wall, peak: peak, known: known}
			}
			serial := results[1].wall // stream-1 is the speedup baseline
			for mi, mode := range b1Modes {
				mw := mode.workers
				if mw <= 0 {
					mw = workers
				}
				speedup := 0.0
				if results[mi].wall > 0 {
					speedup = float64(serial) / float64(results[mi].wall)
				}
				tb.AddRow(kind, n, mode.name, mw,
					results[mi].wall.Round(time.Millisecond).String(),
					fmtPeak(results[mi].peak, results[mi].known),
					fmt.Sprintf("%.2f", speedup))
			}
		}
	}
	return cfg.emit(w, tb,
		"speedup is stream-1 wall time over the row's wall time; expected shape: stream-N → workers as n grows",
		"peak-alloc is sampled heap above a GC'd baseline; n/a means the sampler cannot vouch for a number (never 0)")
}
