package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/cluster"
	"compactroute/internal/server"
	"compactroute/internal/stats"
)

// RunS1 measures the sharded serving tier (internal/cluster,
// DESIGN.md §8) as a function of shard count: cluster throughput and
// tail latency through the front-door under a uniform replay, then a
// churn phase whose coordinated rebuilds report the cut-over pause —
// the window during which the front-door holds routes while every
// shard commits the same staged version. After the churn it verifies
// the invariants the tier rests on: every shard serves the identical
// final version, and no version skew was ever observed (a violation
// fails the experiment, it is not a reported number).
func RunS1(ctx context.Context, w io.Writer, cfg Config) error {
	shardCounts := []int{1, 2, 4}
	n, queries, workers := 256, 4000, 8
	batches, batch := 6, 8
	if cfg.Quick {
		shardCounts = []int{1, 2}
		n, queries, workers = 96, 800, 4
		batches = 4
	}
	tb := stats.NewTable("S1: sharded serving tier — throughput, latency, cut-over pause vs shard count",
		"shards", "n", "queries", "qps", "p50", "p99", "cutovers", "max cutover pause", "pause<1s", "skew")
	for _, sc := range shardCounts {
		if err := runS1One(ctx, tb, cfg, sc, n, queries, workers, batches, batch); err != nil {
			return err
		}
	}
	return cfg.emit(w, tb,
		"expected: qps roughly flat in shard count at this scale (every shard holds the full scheme;",
		"sharding buys mutation/rebuild isolation, not single-box query speedup), cut-over pause well",
		"under a second (stage is off-path; the pause covers only the commit fan-out), zero skew")
}

// runS1One boots one cluster of sc shards and runs the replay and
// churn phases against its front-door.
func runS1One(ctx context.Context, tb *stats.Table, cfg Config, sc, n, queries, workers, batches, batch int) error {
	var servers []*server.Server
	var tss []*httptest.Server
	defer func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}()
	urls := make([]string, sc)
	for i := range urls {
		srv, err := server.New(server.Config{
			Scheme: "fulltable", N: n, K: 3, Seed: cfg.Seed, SFactor: 0.25,
			Workers: 4, Logf: func(string, ...any) {},
		})
		if err != nil {
			return fmt.Errorf("S1: shard %d: %w", i, err)
		}
		srv.Start(ctx)
		servers = append(servers, srv)
		ts := httptest.NewServer(srv.Handler())
		tss = append(tss, ts)
		urls[i] = ts.URL
	}
	c, err := cluster.New(cluster.Options{
		Shards: urls, HealthEvery: time.Hour, Logf: func(string, ...any) {},
	})
	if err != nil {
		return fmt.Errorf("S1: %w", err)
	}
	c.Start()
	defer c.Close()
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	net := servers[0].Scheme().Network()
	g := net.Graph()

	// Phase 1: uniform replay through the front-door, one deterministic
	// stream per worker.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lat     stats.Sample
		rideErr error
	)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			fc := client.New(front.URL)
			var local stats.Sample
			state := cfg.Seed + uint64(wk)*0x9e3779b97f4a7c15
			next := func() uint64 { // splitmix64 stream per worker
				state += 0x9e3779b97f4a7c15
				z := state
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			for q := 0; q < queries/workers; q++ {
				src := g.Name(compactroute.NodeID(next() % uint64(g.N())))
				dst := g.Name(compactroute.NodeID(next() % uint64(g.N())))
				t0 := time.Now()
				if _, err := fc.RouteByName(ctx, src, dst); err != nil {
					mu.Lock()
					if rideErr == nil {
						rideErr = fmt.Errorf("S1: %d shards, worker %d: %w", len(urls), wk, err)
					}
					mu.Unlock()
					return
				}
				local.Add(time.Since(t0).Seconds())
			}
			mu.Lock()
			lat.Merge(&local)
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if rideErr != nil {
		return rideErr
	}
	qps := float64(lat.N()) / elapsed.Seconds()

	// Phase 2: churn with coordinated cut-overs. Mutations fan out
	// through the cluster (so every shard's log stays identical) and
	// each batch ends in a two-phase stage + commit.
	muts, err := compactroute.GenerateMutations(net, batches*batch, cfg.Seed+3)
	if err != nil {
		return fmt.Errorf("S1: %w", err)
	}
	var maxPause time.Duration
	for b := 0; b < batches; b++ {
		if _, err := c.Mutate(ctx, muts[b*batch:(b+1)*batch]...); err != nil {
			return fmt.Errorf("S1: %d shards, mutate batch %d: %w", len(urls), b, err)
		}
		if _, pause, err := c.Rebuild(ctx); err != nil {
			return fmt.Errorf("S1: %d shards, cut-over %d: %w", len(urls), b, err)
		} else if pause > maxPause {
			maxPause = pause
		}
	}

	// Invariants: identical final versions everywhere, no skew.
	want, _ := servers[0].Version()
	for i, s := range servers {
		if v, ok := s.Version(); !ok || v.ID != want.ID || v.MutTo != want.MutTo {
			return fmt.Errorf("S1: %d shards: shard %d at version %d, shard 0 at %d", len(urls), i, v.ID, want.ID)
		}
	}
	st := c.Stats()
	if st.SkewObserved != 0 {
		return fmt.Errorf("S1: %d shards: %d skew events during coordinated churn", len(urls), st.SkewObserved)
	}
	tb.AddRow(sc, n, lat.N(),
		fmt.Sprintf("%.0f", qps),
		fmtLat(lat.Percentile(50)), fmtLat(lat.Percentile(99)),
		batches, maxPause.Round(time.Microsecond).String(),
		maxPause < time.Second, st.SkewObserved)
	return nil
}

// fmtLat renders a latency sample value (seconds) as a duration.
func fmtLat(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}
