package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"compactroute/internal/baseline"
	"compactroute/internal/core"
	"compactroute/internal/cover"
	"compactroute/internal/covroute"
	"compactroute/internal/decomp"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/landmark"
	"compactroute/internal/nitree"
	"compactroute/internal/schemes"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
	"compactroute/internal/tree"
)

// RunT1 reproduces the Theorem 1 trade-off: per-node table bits fall
// like Õ(n^{1/k}) while stretch grows linearly in k.
func RunT1(ctx context.Context, w io.Writer, cfg Config) error {
	n, stride := 512, 8
	ks := []int{2, 3, 4, 5}
	if cfg.Quick {
		n, stride = 128, 4
		ks = []int{2, 3}
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(cfg.Seed, n, 8/float64(n), gen.Uniform(1, 8))},
		{"geometric", gen.Geometric(cfg.Seed+1, n, 1.6/math.Sqrt(float64(n)))},
	}
	tb := stats.NewTable("T1: space-stretch trade-off (Theorem 1)",
		"family", "k", "max bits/node", "mean bits/node", "k²n^{3/k}log³n", "bits/bound",
		"mean stretch", "max stretch", "max/k")
	for _, fam := range families {
		nn := newNet(fam.g)
		for _, k := range ks {
			s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 1})
			if err != nil {
				return err
			}
			st, err := nn.measure(s, stride, true)
			if err != nil {
				return err
			}
			bound := s.TheoremBound()
			tb.AddRow(fam.name, k, int64(s.MaxTableBits()), s.MeanTableBits(), bound,
				float64(s.MaxTableBits())/bound, st.Mean(), st.Max(), st.Max()/float64(k))
		}
	}
	return cfg.emit(w, tb, "expected shape: bits/node falls with k, stretch rises ~linearly (max/k roughly flat)")
}

// RunT2 reproduces the scale-free headline: the scheme's tables stay
// flat as the aspect ratio explodes, while the Awerbuch–Peleg-style
// hierarchy grows with log Δ.
func RunT2(ctx context.Context, w io.Writer, cfg Config) error {
	depth, k := 5, 2
	exps := []int{8, 16, 24, 32, 40}
	if cfg.Quick {
		depth = 4
		exps = []int{8, 24}
	}
	tb := stats.NewTable("T2: storage vs aspect ratio (scale-freeness)",
		"log2(Δ)≈", "n", "agm06 max bits", "agm06 max stretch", "apcover scales",
		"apcover max bits", "apcover max stretch")
	for _, te := range exps {
		g := gen.AspectLadder(cfg.Seed+7, 2, depth, te)
		nn := newNet(g)
		s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 2})
		if err != nil {
			return err
		}
		stS, err := nn.measure(s, 2, true)
		if err != nil {
			return err
		}
		ap, err := baseline.NewAPCover(nn.g, nn.apsp, baseline.APCoverParams{K: k, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		stA, err := nn.measure(ap, 2, true)
		if err != nil {
			return err
		}
		tb.AddRow(te, g.N(), int64(s.MaxTableBits()), stS.Max(),
			ap.Scales(), int64(ap.MaxTableBits()), stA.Max())
	}
	return cfg.emit(w, tb, "expected shape: agm06 bits flat in Δ; apcover scales/bits grow ∝ log Δ")
}

// RunT3 reproduces the §1 comparison: linear stretch at Õ(n^{1/k})
// space vs the scale-free landmark-chain family (unbounded stretch)
// and the labeled TZ scheme.
func RunT3(ctx context.Context, w io.Writer, cfg Config) error {
	n, stride := 256, 4
	ks := []int{2, 3, 4}
	if cfg.Quick {
		n, stride = 80, 3
		ks = []int{2, 3}
	}
	// High-diameter workloads: the regime where the exponential/
	// unbounded-stretch family visibly loses to the O(k) guarantee
	// (on expanders every scheme looks fine — the guarantee is the
	// product).
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", gen.Ring(cfg.Seed+11, n, gen.Uniform(1, 8))},
		{"geometric", gen.Geometric(cfg.Seed+12, n, 1.6/math.Sqrt(float64(n)))},
	}
	tb := stats.NewTable("T3: stretch guarantees on high-diameter networks",
		"workload", "scheme", "k", "max bits/node", "mean stretch", "p99 stretch", "max stretch")
	for _, wl := range workloads {
		nn := newNet(wl.g)
		ft, err := baseline.NewFullTable(nn.g, nn.apsp)
		if err != nil {
			return err
		}
		st, err := nn.measure(ft, stride, true)
		if err != nil {
			return err
		}
		tb.AddRow(wl.name, "full-table", "-", int64(ft.MaxTableBits()), st.Mean(), st.Percentile(99), st.Max())
		for _, k := range ks {
			s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 1})
			if err != nil {
				return err
			}
			st, err := nn.measure(s, stride, true)
			if err != nil {
				return err
			}
			tb.AddRow(wl.name, "agm06 (this paper)", k, int64(s.MaxTableBits()), st.Mean(), st.Percentile(99), st.Max())

			lc, err := baseline.NewLandmarkChain(nn.g, nn.apsp, baseline.LandmarkChainParams{K: k, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			st, err = nn.measure(lc, stride, true)
			if err != nil {
				return err
			}
			tb.AddRow(wl.name, "landmark-chain [7,8,6]-family", k, int64(lc.MaxTableBits()), st.Mean(), st.Percentile(99), st.Max())

			z, err := baseline.NewTZ(nn.g, nn.apsp, baseline.TZParams{K: k, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			st, err = nn.measure(z, stride, true)
			if err != nil {
				return err
			}
			tb.AddRow(wl.name, "tz labeled [29] (weaker model)", k, int64(z.MaxTableBits()), st.Mean(), st.Percentile(99), st.Max())
		}
	}
	return cfg.emit(w, tb, "expected shape: agm06 max stretch stays O(k); landmark-chain max stretch grows with the diameter; tz lower but labeled")
}

func familySet(cfg Config, n int) []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(cfg.Seed+21, n, 8/float64(n), gen.Uniform(1, 8))},
		{"grid", gen.Grid(cfg.Seed+22, isqrt(n), isqrt(n), gen.Unit())},
		{"geometric", gen.Geometric(cfg.Seed+23, n, 1.6/math.Sqrt(float64(n)))},
		{"prefattach", gen.PrefAttach(cfg.Seed+24, n, 2, gen.Uniform(1, 4))},
		{"ladder", gen.AspectLadder(cfg.Seed+25, 2, 5, 24)},
	}
}

func isqrt(n int) int { return int(math.Sqrt(float64(n))) }

// RunF1 reproduces Figure 1 / Lemma 2: the dense-neighborhood
// property holds on every (u, dense i, v ∈ F(u,i)) triple.
func RunF1(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 256, 3
	if cfg.Quick {
		n = 96
	}
	tb := stats.NewTable("F1: Lemma 2 (dense neighborhoods) verification",
		"family", "n", "dense (u,i) pairs", "triples checked", "violations", "max |R(u)|", "6(k+1) bound")
	for _, fam := range familySet(cfg, n) {
		all := sssp.AllPairs(fam.g)
		d, err := decomp.Build(fam.g, all, decomp.Params{K: k})
		if err != nil {
			return err
		}
		checked, err := d.VerifyLemma2()
		viol := 0
		if err != nil {
			viol = 1 // VerifyLemma2 stops at the first violation
		}
		maxR := 0
		for u := 0; u < fam.g.N(); u++ {
			if l := len(d.RangeSet(graph.NodeID(u))); l > maxR {
				maxR = l
			}
		}
		tb.AddRow(fam.name, fam.g.N(), d.DenseLevelCount(), checked, viol, maxR, 6*(k+1))
	}
	return cfg.emit(w, tb, "expected: zero violations (Lemma 2 is deterministic); |R(u)| = O(k), independent of Δ")
}

// RunF2 reproduces Figure 2 / Lemma 3: the sparse-neighborhood
// property, measured with the paper's constants.
func RunF2(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 256, 3
	if cfg.Quick {
		n = 96
	}
	tb := stats.NewTable("F2: Lemma 3 (sparse neighborhoods) verification, paper constants",
		"family", "n", "triples checked", "violations", "violation rate")
	for _, fam := range familySet(cfg, n) {
		all := sssp.AllPairs(fam.g)
		d, err := decomp.Build(fam.g, all, decomp.Params{K: k})
		if err != nil {
			return err
		}
		lm, err := landmark.Build(fam.g, all, d, landmark.Params{K: k, SFactor: 16, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		checked, viol := lm.VerifyLemma3(d)
		rate := 0.0
		if checked > 0 {
			rate = float64(viol) / float64(checked)
		}
		tb.AddRow(fam.name, fam.g.N(), checked, viol, rate)
	}
	return cfg.emit(w, tb, "expected: zero violations whp with the paper's constant 16")
}

// RunT4 reproduces Lemma 4: j-bounded search stretch ≤ 2j−1, negative
// cost within bound, storage Õ(k·n^{1/k}).
func RunT4(ctx context.Context, w io.Writer, cfg Config) error {
	n := 400
	if cfg.Quick {
		n = 120
	}
	g := gen.Gnp(cfg.Seed+31, n, 8/float64(n), gen.Uniform(1, 6))
	r := sssp.From(g, 0)
	tr, err := tree.FromSPT(g, 0, r.Parent)
	if err != nil {
		return err
	}
	tb := stats.NewTable("T4: Lemma 4 name-independent tree routing",
		"k", "σ", "bucket cap", "max search stretch", "2k-1 bound", "max neg cost ratio",
		"max store bits", "reseeds")
	for _, k := range []int{2, 3, 4, 5} {
		ni, err := nitree.New(tr, nitree.Params{K: k, UniverseN: g.N(), Seed: cfg.Seed})
		if err != nil {
			return err
		}
		maxStretch, maxNegRatio := 0.0, 0.0
		// Positive searches for every member.
		for i := 0; i < tr.Len(); i++ {
			ext := g.Name(tr.Node(i))
			found, path, err := ni.RunSearch(ext, k)
			if err != nil || !found {
				return fmt.Errorf("T4: member %d not found: %v", i, err)
			}
			if d := tr.Depth(i); d > 0 {
				if s := pathCost(g, path) / d; s > maxStretch {
					maxStretch = s
				}
			}
		}
		// Negative searches: names absent from the graph.
		maxDepth := tr.Radius()
		for q := uint64(0); q < 64; q++ {
			ext := 0xffff00000000 + q*2654435761
			if _, ok := g.Lookup(ext); ok {
				continue
			}
			found, path, err := ni.RunSearch(ext, k)
			if err != nil || found {
				return fmt.Errorf("T4: phantom search wrong: %v", err)
			}
			if maxDepth > 0 {
				if ratio := pathCost(g, path) / (float64(2*k-2) * maxDepth); ratio > maxNegRatio {
					maxNegRatio = ratio
				}
			}
		}
		maxBits := int64(0)
		for i := 0; i < tr.Len(); i++ {
			if b := int64(ni.StorageBits(i)); b > maxBits {
				maxBits = b
			}
		}
		tb.AddRow(k, ni.Sigma(), ni.BucketCap(), maxStretch, 2*k-1, maxNegRatio, maxBits, ni.ReseedCount)
	}
	return cfg.emit(w, tb, "expected: search stretch ≤ 2k-1; negative ratio ≤ 1; bits fall with k")
}

func pathCost(g *graph.Graph, path []graph.NodeID) float64 {
	c := 0.0
	for i := 0; i+1 < len(path); i++ {
		p := g.PortTo(path[i], path[i+1])
		c += g.EdgeAt(path[i], p).Weight
	}
	return c
}

// RunT5 reproduces Lemma 6: the four cover properties across families
// and radii.
func RunT5(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 256, 3
	if cfg.Quick {
		n = 96
	}
	tb := stats.NewTable("T5: Lemma 6 sparse cover properties",
		"family", "ρ", "trees", "max membership", "2k·n^{1/k}", "max rad/(2k+1)ρ", "max edge/2ρ")
	for _, fam := range familySet(cfg, n) {
		minW := fam.g.MinEdgeWeight()
		for _, mult := range []float64{2, 8} {
			rho := minW * mult
			c, err := cover.Build(fam.g, cover.Params{K: k, Rho: rho})
			if err != nil {
				return err
			}
			bound := 2 * float64(k) * math.Pow(float64(fam.g.N()), 1/float64(k))
			if err := c.Validate(int(math.Ceil(bound))); err != nil {
				return fmt.Errorf("T5: %s: %w", fam.name, err)
			}
			tb.AddRow(fam.name, rho, len(c.Trees), c.MaxMembership(), bound,
				c.MaxRadius()/(float64(2*k+1)*rho), c.MaxEdge()/(2*rho))
		}
	}
	return cfg.emit(w, tb, "expected: membership ≤ 2k·n^{1/k}; radius and edge ratios ≤ 1")
}

// RunT6 reproduces Lemma 7: lookups on cover trees stay within
// 4·rad(T) + 2k·maxE(T), including misses.
func RunT6(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 200, 2
	if cfg.Quick {
		n = 80
	}
	g := gen.Geometric(cfg.Seed+41, n, 1.8/math.Sqrt(float64(n)))
	// ρ at a mid scale so clusters are non-trivial (tiny ρ yields
	// singleton trees and vacuous bounds).
	diam, _ := sssp.Diameter(g)
	c, err := cover.Build(g, cover.Params{K: k, Rho: diam / 8})
	if err != nil {
		return err
	}
	tb := stats.NewTable("T6: Lemma 7 cover-tree lookup bounds",
		"trees", "largest tree", "max pos cost/bound", "max neg cost/bound", "max rendezvous load")
	maxPos, maxNeg, maxLoad, maxTree := 0.0, 0.0, 0, 0
	for ti, t := range c.Trees {
		rt := covroute.New(t, cfg.Seed+uint64(ti))
		bound := 4*t.Radius() + 2*float64(k)*t.MaxEdge()
		if t.Len() > maxTree {
			maxTree = t.Len()
		}
		if bound == 0 {
			continue
		}
		if l := rt.MaxRendezvousLoad(); l > maxLoad {
			maxLoad = l
		}
		for src := 0; src < t.Len(); src += 3 {
			for dst := 0; dst < t.Len(); dst += 2 {
				found, path, err := rt.Run(g.Name(t.Node(dst)), t.Node(src))
				if err != nil || !found {
					return fmt.Errorf("T6: lookup failed: %v", err)
				}
				if r := pathCost(g, path) / bound; r > maxPos {
					maxPos = r
				}
			}
			found, path, err := rt.Run(0xbad00000000+uint64(ti), t.Node(src))
			if err != nil || found {
				return fmt.Errorf("T6: phantom lookup wrong: %v", err)
			}
			if r := pathCost(g, path) / bound; r > maxNeg {
				maxNeg = r
			}
		}
	}
	tb.AddRow(len(c.Trees), maxTree, maxPos, maxNeg, maxLoad)
	if maxTree < 10 || maxPos == 0 {
		return fmt.Errorf("T6 vacuous: largest tree %d, max ratio %v", maxTree, maxPos)
	}
	return cfg.emit(w, tb, "expected: both ratios ≤ 1 and positive (implementation achieves ≤ 4·rad alone)")
}

// RunT7 reproduces Claims 1 and 2: landmark hitting and congestion.
func RunT7(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 256, 3
	if cfg.Quick {
		n = 96
	}
	tb := stats.NewTable("T7: Claims 1–2 landmark hierarchy properties",
		"family", "hierarchy", "claim1 checked", "claim1 viol", "claim2 checked", "claim2 viol", "|C_1|", "|C_2|")
	for _, fam := range familySet(cfg, n) {
		all := sssp.AllPairs(fam.g)
		d, err := decomp.Build(fam.g, all, decomp.Params{K: k})
		if err != nil {
			return err
		}
		for _, det := range []bool{false, true} {
			lm, err := landmark.Build(fam.g, all, d, landmark.Params{
				K: k, SFactor: 16, Seed: cfg.Seed, Deterministic: det,
			})
			if err != nil {
				return err
			}
			kind := "sampled"
			if det {
				kind = "derandomized"
			}
			c1, v1 := lm.VerifyClaim1(d)
			c2, v2 := lm.VerifyClaim2(d)
			tb.AddRow(fam.name, kind, c1, v1, c2, v2, lm.LevelSize(1), lm.LevelSize(2))
		}
	}
	return cfg.emit(w, tb, "expected: zero Claim 1 violations (by construction for derandomized); zero Claim 2 whp")
}

// t8Ks maps each registry kind to the trade-off parameters T8 sweeps
// for it (fulltable has none; nil means "build once, k irrelevant").
// Kinds registered after init are compared at k = 2 and 3 like the
// paper's scheme — the comparison table grows with the registry.
var t8Ks = map[string][]int{
	schemes.KindPaper:         {2, 3},
	schemes.KindTZ:            {2, 3},
	schemes.KindAPCover:       {2},
	schemes.KindLandmarkChain: {3},
	schemes.KindFullTable:     nil,
}

// RunT8 reproduces the related-work comparison (§1.3) on one graph:
// space and stretch for every scheme kind in the registry — the table
// enumerates schemes.Kinds() rather than a hard-coded constructor
// list, so a newly registered kind shows up without touching T8.
func RunT8(ctx context.Context, w io.Writer, cfg Config) error {
	n, stride := 256, 2
	if cfg.Quick {
		n, stride = 96, 2
	}
	g := gen.Gnp(cfg.Seed+51, n, 8/float64(n), gen.Uniform(1, 8))
	nn := newNet(g)
	tb := stats.NewTable(fmt.Sprintf("T8: scheme comparison (gnp n=%d)", n),
		"kind", "scheme", "model", "max bits/node", "mean bits/node", "mean stretch", "max stretch")

	for _, kind := range schemes.Kinds() {
		info, _ := schemes.Lookup(kind)
		ks, pinned := t8Ks[kind]
		if !pinned {
			ks = []int{2, 3}
		}
		if ks == nil {
			ks = []int{0}
		}
		for _, k := range ks {
			s, err := schemes.Build(nn.g, nn.apsp, schemes.Config{Kind: kind, K: k, Seed: cfg.Seed, SFactor: 1})
			if err != nil {
				return fmt.Errorf("T8: kind %s k=%d: %w", kind, k, err)
			}
			st, err := nn.measure(s, stride, true)
			if err != nil {
				return fmt.Errorf("T8: kind %s k=%d: %w", kind, k, err)
			}
			tb.AddRow(kind, s.Name(), info.Model,
				int64(s.MaxTableBits()), s.MeanTableBits(), st.Mean(), st.Max())
		}
	}
	return cfg.emit(w, tb)
}

// RunT9 reproduces the §1.2 ablation: why the decomposition needs both
// the dense and the sparse strategy.
func RunT9(ctx context.Context, w io.Writer, cfg Config) error {
	n, k, stride := 200, 3, 2
	if cfg.Quick {
		n = 80
	}
	tb := stats.NewTable("T9: decomposition ablation",
		"workload", "mode", "dense lvls", "sparse lvls", "max bits/node", "forced members",
		"mean stretch", "max stretch")
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(cfg.Seed+61, n, 8/float64(n), gen.Uniform(1, 8))},
		{"geometric", gen.Geometric(cfg.Seed+62, n, 1.8/math.Sqrt(float64(n)))},
	}
	for _, wl := range workloads {
		nn := newNet(wl.g)
		for _, mode := range []core.Mode{core.Combined, core.SparseOnly, core.DenseOnly} {
			s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 0.25, Mode: mode})
			if err != nil {
				return err
			}
			st, err := nn.measure(s, stride, true)
			if err != nil {
				return err
			}
			tb.AddRow(wl.name, mode.String(), s.Report.DenseLevels, s.Report.SparseLevels,
				int64(s.MaxTableBits()), s.Report.ForcedMembers, st.Mean(), st.Max())
		}
	}
	return cfg.emit(w, tb,
		"expected: dense-only pays stretch (no Lemma 2 guarantee on sparse levels).",
		"note: sparse-only is competitive at these sizes — its cost (Lemma 3 repairs on",
		"dense levels) grows with n and with tighter S-set caps; see EXPERIMENTS.md.")
}

// RunT10 reproduces Lemmas 9/11: per-phase search costs stay within
// O(k·2^{a(u,i)}) for failures and O(k·(d(u,v)+2^{a(u,i)})) for the
// finding phase.
func RunT10(ctx context.Context, w io.Writer, cfg Config) error {
	n, k := 256, 3
	if cfg.Quick {
		n = 96
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(cfg.Seed+71, n, 8/float64(n), gen.Uniform(1, 6))},
		{"geometric", gen.Geometric(cfg.Seed+72, n, 1.6/math.Sqrt(float64(n)))},
	}
	tb := stats.NewTable("T10: per-phase cost bounds (Lemmas 9 and 11)",
		"workload", "phase kind", "count", "max cost / (k·scale)")
	for _, wl := range workloads {
		nn := newNet(wl.g)
		s, err := core.BuildWithAPSP(nn.g, nn.apsp, core.Params{K: k, Seed: cfg.Seed, SFactor: 0.25})
		if err != nil {
			return err
		}
		minW := s.Decomposition().MinWeight()
		maxFailDense, maxFailSparse, maxFind := 0.0, 0.0, 0.0
		failDense, failSparse, finds := 0, 0, 0
		for u := 0; u < wl.g.N(); u += 4 {
			for v := 0; v < wl.g.N(); v += 3 {
				if u == v {
					continue
				}
				ok, phases, _, err := s.RouteTrace(graph.NodeID(u), wl.g.Name(graph.NodeID(v)))
				if err != nil || !ok {
					return fmt.Errorf("T10: trace failed: %v", err)
				}
				d := nn.apsp[u].Dist[v]
				for _, ph := range phases {
					radius := minW * math.Ldexp(1, ph.AUBits)
					if ph.Found {
						finds++
						denom := float64(k) * (d + radius)
						if r := ph.Cost / denom; r > maxFind {
							maxFind = r
						}
						continue
					}
					if ph.Dense {
						failDense++
						if r := ph.Cost / (float64(k) * radius); r > maxFailDense {
							maxFailDense = r
						}
					} else {
						next := s.Decomposition().Range(graph.NodeID(u), ph.Level+1)
						if ph.Level+1 > k {
							next = s.Decomposition().Cap()
						}
						failSparse++
						nr := minW * math.Ldexp(1, next)
						if r := ph.Cost / (float64(k) * nr); r > maxFailSparse {
							maxFailSparse = r
						}
					}
				}
			}
		}
		tb.AddRow(wl.name, "failed dense (÷ k·2^{a(u,i)})", failDense, maxFailDense)
		tb.AddRow(wl.name, "failed sparse (÷ k·2^{a(u,i+1)})", failSparse, maxFailSparse)
		tb.AddRow(wl.name, "finding (÷ k·(d+2^{a(u,i)}))", finds, maxFind)
	}
	return cfg.emit(w, tb, "expected: all ratios O(1) — the lemmas' hidden constants, measured")
}
