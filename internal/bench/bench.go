// Package bench implements the experiment harness: one runner per
// table/figure of DESIGN.md §2 (T1–T10, F1–F2) plus the harness's own
// performance runners (P1 parallel query sweep, B1 build pipeline, D1
// dynamic-topology churn, D2 failure resilience, S1 sharded serving
// tier), each printing the series the reproduction reports in
// EXPERIMENTS.md.
//
// Every runner is deterministic given its seed and comes in two sizes:
// Quick (used by the testing.B wrappers and smoke tests) and full
// (used by cmd/routebench to regenerate the recorded tables).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// Config configures a run.
type Config struct {
	// Quick shrinks sizes for smoke tests and benchmarks.
	Quick bool
	// Seed drives all sampling.
	Seed uint64
	// JSON switches every runner's output from aligned text tables to
	// one JSON object per table (JSON Lines), the machine-readable form
	// cmd/routebench -json emits for perf-trajectory tracking. Prose
	// notes ("expected shape: …") appear only in text mode.
	JSON bool
}

// emit writes one experiment table in the configured format, plus any
// explanatory notes (text mode only — the notes restate expectations,
// not measurements, so they would be noise in a data stream).
func (cfg Config) emit(w io.Writer, tb *stats.Table, notes ...string) error {
	if cfg.JSON {
		enc := json.NewEncoder(w)
		return enc.Encode(tb)
	}
	if _, err := fmt.Fprint(w, tb.String()); err != nil {
		return err
	}
	for _, n := range notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

// Runner is one experiment. The context is honored between (and,
// where the underlying paths support it, inside) measurement units,
// so an interrupted benchmark run stops instead of finishing the
// sweep: cmd/routebench hands every runner its signal context.
type Runner func(ctx context.Context, w io.Writer, cfg Config) error

// Experiments maps experiment ids to runners.
var Experiments = map[string]Runner{
	"T1":  RunT1,
	"T2":  RunT2,
	"T3":  RunT3,
	"F1":  RunF1,
	"F2":  RunF2,
	"T4":  RunT4,
	"T5":  RunT5,
	"T6":  RunT6,
	"T7":  RunT7,
	"T8":  RunT8,
	"T9":  RunT9,
	"T10": RunT10,
	"P1":  RunP1,
	"O1":  RunO1,
	"B1":  RunB1,
	"D1":  RunD1,
	"D2":  RunD2,
	"S1":  RunS1,
}

// IDs returns the experiment ids in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	rank := func(id string) int { // tables, then figures, then perf
		switch id[0] {
		case 'T':
			return 0
		case 'F':
			return 1
		default:
			return 2
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

// RunAll executes every experiment in order. In JSON mode the stream
// is pure JSON Lines (tables identify themselves by title); in text
// mode each experiment gets a banner.
func RunAll(ctx context.Context, w io.Writer, cfg Config) error {
	for _, id := range IDs() {
		if !cfg.JSON {
			fmt.Fprintf(w, "\n### experiment %s ###\n", id)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("bench: %s: %w", id, err)
		}
		if err := Experiments[id](ctx, w, cfg); err != nil {
			return fmt.Errorf("bench: %s: %w", id, err)
		}
	}
	return nil
}

// net bundles a graph with its metric.
type net struct {
	g    *graph.Graph
	apsp []*sssp.Result
}

func newNet(g *graph.Graph) *net { return &net{g: g, apsp: sssp.AllPairs(g)} }

// measure routes a strided sample of ordered pairs through a router
// and returns the stretch distribution; it errors on non-delivery for
// routers that must always deliver. Rows fan across all cores (see
// Measure); the distribution is identical to a serial sweep.
func (n *net) measure(r sim.Router, stride int, requireDelivery bool) (*stats.Stretch, error) {
	return Measure(n.g, n.apsp, r, stride, 0, requireDelivery)
}
