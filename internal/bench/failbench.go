package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"compactroute/internal/dynamic"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/serve"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// RunD2 measures resilience to transient failures (DESIGN.md §10):
// for every scheme kind × failure kind × failure rate, the delivery
// rate and stretch over the degraded network, raw (a packet dies at
// the first down element on its path) versus mitigated through the
// repair layer's best-of-both-directions selection. The stretch
// denominator is the shortest distance in the DEGRADED graph — the
// honest baseline once links are gone — with the healthy-graph mean
// alongside so the degradation itself is visible. A second table
// isolates flap damping: after a set of links flaps (fails and
// recovers), a damped router routes around the recently flapped
// elements while an undamped one walks right back across them.
func RunD2(ctx context.Context, w io.Writer, cfg Config) error {
	n, sStride, dStride := 256, 7, 11
	kinds := []string{
		schemes.KindPaper, schemes.KindFullTable, schemes.KindAPCover,
		schemes.KindLandmarkChain, schemes.KindTZ,
	}
	rates := []float64{0.02, 0.08}
	if cfg.Quick {
		n, sStride, dStride = 96, 5, 7
		kinds = []string{schemes.KindPaper, schemes.KindFullTable}
		rates = []float64{0.05}
	}
	failKinds := []struct {
		name    string
		profile dynamic.TraceProfile
		overN   bool // rate counts nodes, not edges
	}{
		{"edge", dynamic.TraceProfile{FailEdge: 1}, false},
		{"node", dynamic.TraceProfile{FailNode: 1}, true},
		{"mixed", dynamic.TraceProfile{FailEdge: 3, FailNode: 1}, false},
	}

	tb := stats.NewTable("D2: delivery and stretch under transient failures, raw vs best-of-both",
		"kind", "fail kind", "rate", "down e/n", "pairs",
		"deliv raw", "deliv +bob", "stretch healthy", "stretch raw", "stretch +bob")
	flapTb := stats.NewTable("D2: flap damping — served paths crossing recently flapped links",
		"kind", "flapped", "pairs", "flap-hit undamped", "flap-hit damped", "cost undamped", "cost damped")

	for ki, kind := range kinds {
		g := gen.Gnp(cfg.Seed+81, n, 8/float64(n), gen.Uniform(1, 8))
		nn := newNet(g)
		s, err := schemes.Build(nn.g, nn.apsp, schemes.Config{Kind: kind, K: 3, Seed: cfg.Seed, SFactor: 0.25})
		if err != nil {
			return fmt.Errorf("D2: %s: %w", kind, err)
		}
		for _, fk := range failKinds {
			for _, rate := range rates {
				base := g.M()
				if fk.overN {
					base = g.N()
				}
				count := int(rate * float64(base))
				if count < 1 {
					count = 1
				}
				_, fs, err := dynamic.GenerateFaultTrace(g, count, cfg.Seed+uint64(ki)*131, fk.profile)
				if err != nil {
					return fmt.Errorf("D2: %s %s rate %g: %w", kind, fk.name, rate, err)
				}
				row, err := measureFaults(ctx, g, nn.apsp, s, fs, sStride, dStride)
				if err != nil {
					return fmt.Errorf("D2: %s %s rate %g: %w", kind, fk.name, rate, err)
				}
				tb.AddRow(kind, fk.name, rate,
					fmt.Sprintf("%d/%d", len(fs.DownEdges()), len(fs.DownNodes())), row.pairs,
					row.delivRaw, row.delivBob,
					row.healthy.Mean(), row.raw.Mean(), row.bob.Mean())
			}
		}
		flap, err := measureFlap(ctx, g, s, cfg.Seed+uint64(ki)*137, sStride, dStride)
		if err != nil {
			return fmt.Errorf("D2: %s flap: %w", kind, err)
		}
		flapTb.AddRow(kind, flap.flapped, flap.pairs,
			flap.hitUndamped, flap.hitDamped, flap.costUndamped, flap.costDamped)
	}
	if err := cfg.emit(w, tb,
		"expected: deliv +bob ≥ deliv raw at every nonzero rate (the reverse walk dodges faults the",
		"forward walk hits); stretch columns are survivor-biased — only pairs that still deliver",
		"count, and those skew toward well-served routes, so degraded stretch can sit BELOW healthy"); err != nil {
		return err
	}
	return cfg.emit(w, flapTb,
		"expected: flap-hit damped ≤ undamped at slightly higher served cost — the damping penalty",
		"buys routes that avoid the links most likely to fail again")
}

// d2Row accumulates one (kind, failkind, rate) cell.
type d2Row struct {
	pairs              int
	delivRaw, delivBob float64
	healthy, raw, bob  stats.Sample
}

// traceRoute walks src→dst on eng and returns the result with the
// path converted to external names.
func traceRoute(ctx context.Context, eng *sim.Engine, s sim.Router, g *graph.Graph, src graph.NodeID, dstName uint64) (sim.Result, []uint64, error) {
	res, err := eng.RouteCtx(ctx, s, src, dstName)
	if err != nil {
		return sim.Result{}, nil, err
	}
	names := make([]uint64, len(res.Path))
	for i, id := range res.Path {
		names[i] = g.Name(id)
	}
	return res, names, nil
}

// pathClear reports whether no element of the named path is down.
func pathClear(fs *dynamic.FaultSet, path []uint64) bool {
	for i, nm := range path {
		if fs.NodeDown(nm) {
			return false
		}
		if i > 0 && fs.EdgeDown(path[i-1], nm) {
			return false
		}
	}
	return true
}

// degradedGraph builds the up-subgraph: every up node, every edge
// whose pair and endpoints are all up. The generator keeps this
// connected, so its distances are finite and the honest stretch
// denominator under the fault set.
func degradedGraph(g *graph.Graph, fs *dynamic.FaultSet) (*graph.Graph, error) {
	b := graph.NewBuilder()
	for u := 0; u < g.N(); u++ {
		if !fs.NodeDown(g.Name(graph.NodeID(u))) {
			b.AddNode(g.Name(graph.NodeID(u)))
		}
	}
	var addErr error
	g.ForEachEdge(func(u, v graph.NodeID, w float64) bool {
		un, vn := g.Name(u), g.Name(v)
		if fs.EdgeDown(un, vn) { // also true when either endpoint is down
			return true
		}
		if err := b.AddEdge(b.AddNode(un), b.AddNode(vn), w); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build()
}

// repairerOver wraps scheme s in a repair layer whose walks run on a
// fresh traced engine per call (the layer routes both directions
// concurrently). The clock is pinned so damping penalties — and with
// them every tie-break — are identical run to run.
func repairerOver(g *graph.Graph, s sim.Router, o serve.RepairOptions) *serve.Repairer {
	t0 := time.Unix(0, 0)
	o.Now = func() time.Time { return t0 }
	return serve.NewRepairer(func(ctx context.Context, srcName, dstName uint64) (serve.Result, []uint64, error) {
		src, ok := g.Lookup(srcName)
		if !ok {
			return serve.Result{}, nil, fmt.Errorf("D2: unknown source %d", srcName)
		}
		eng := sim.NewEngine(g)
		eng.Trace = true
		res, path, err := traceRoute(ctx, eng, s, g, src, dstName)
		if err != nil {
			return serve.Result{}, nil, err
		}
		return serve.Result{Delivered: res.Delivered, Cost: res.Cost, Hops: res.Hops}, path, nil
	}, o)
}

// measureFaults sweeps strided up-endpoint pairs and accumulates raw
// and best-of-both delivery and stretch under the fault set.
func measureFaults(ctx context.Context, g *graph.Graph, apsp []*sssp.Result, s sim.Router, fs *dynamic.FaultSet, sStride, dStride int) (*d2Row, error) {
	deg, err := degradedGraph(g, fs)
	if err != nil {
		return nil, err
	}
	rep := repairerOver(g, s, serve.RepairOptions{BestOfBoth: true})
	for _, e := range fs.DownEdges() {
		rep.FailEdge(e[0], e[1])
	}
	for _, nm := range fs.DownNodes() {
		rep.FailNode(nm)
	}
	eng := sim.NewEngine(g)
	eng.Trace = true

	row := &d2Row{}
	rawOK, bobOK := 0, 0
	for si := 0; si < g.N(); si += sStride {
		src := graph.NodeID(si)
		srcName := g.Name(src)
		if fs.NodeDown(srcName) {
			continue
		}
		srcDeg, _ := deg.Lookup(srcName)
		degDist := sssp.From(deg, srcDeg)
		for di := 1; di < g.N(); di += dStride {
			dst := graph.NodeID(di)
			if dst == src {
				continue
			}
			dstName := g.Name(dst)
			if fs.NodeDown(dstName) {
				continue
			}
			dstDeg, _ := deg.Lookup(dstName)
			dDeg := degDist.Dist[dstDeg]
			if dDeg <= 0 || math.IsInf(dDeg, 1) {
				continue
			}
			row.pairs++
			if dHealthy := apsp[src].Dist[dst]; dHealthy > 0 {
				// Healthy reference on the same pair sample: what the
				// scheme's stretch was before anything failed.
				res, err := eng.RouteCtx(ctx, s, src, dstName)
				if err != nil {
					return nil, err
				}
				if res.Delivered {
					row.healthy.Add(res.Cost / dHealthy)
				}
			}
			// Raw: the forward walk either dodges every down element by
			// luck or the packet dies at the first one it crosses.
			res, path, err := traceRoute(ctx, eng, s, g, src, dstName)
			if err != nil {
				return nil, err
			}
			if res.Delivered && pathClear(fs, path) {
				rawOK++
				row.raw.Add(res.Cost / dDeg)
			}
			// Mitigated: the repair layer serves whichever direction is
			// clear and cheaper, or reports unreachable.
			bres, err := rep.RouteByName(ctx, srcName, dstName)
			if err == nil && bres.Delivered {
				bobOK++
				row.bob.Add(bres.Cost / dDeg)
			}
		}
	}
	if row.pairs > 0 {
		row.delivRaw = float64(rawOK) / float64(row.pairs)
		row.delivBob = float64(bobOK) / float64(row.pairs)
	}
	return row, nil
}

// flapRow is one kind's flap-damping measurement.
type flapRow struct {
	flapped, pairs           int
	hitUndamped, hitDamped   float64
	costUndamped, costDamped float64
}

// measureFlap fails a connectivity-safe link set, recovers it, and
// compares a damped and an undamped best-of-both router on the fully
// recovered network: both always deliver (nothing is down), but the
// damped one pays its penalty to route around the links that just
// flapped. Reported per router: the fraction of served paths crossing
// a flapped link and the mean served cost.
func measureFlap(ctx context.Context, g *graph.Graph, s sim.Router, seed uint64, sStride, dStride int) (*flapRow, error) {
	count := g.M() / 25
	if count < 2 {
		count = 2
	}
	_, fs, err := dynamic.GenerateFaultTrace(g, count, seed, dynamic.TraceProfile{FailEdge: 1})
	if err != nil {
		return nil, err
	}
	flapped := make(map[[2]uint64]bool, count)
	for _, e := range fs.DownEdges() {
		flapped[e] = true
	}
	// DampPenalty far above any path cost: a damped route crosses a
	// flapped link only when every alternative does too.
	damped := repairerOver(g, s, serve.RepairOptions{BestOfBoth: true, DampPenalty: 1e9, DampHalfLife: time.Hour})
	undamped := repairerOver(g, s, serve.RepairOptions{BestOfBoth: true})
	for e := range flapped {
		damped.FailEdge(e[0], e[1])
		damped.RecoverEdge(e[0], e[1])
		undamped.FailEdge(e[0], e[1])
		undamped.RecoverEdge(e[0], e[1])
	}

	crosses := func(path []uint64) bool {
		for i := 1; i < len(path); i++ {
			k := [2]uint64{path[i-1], path[i]}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			if flapped[k] {
				return true
			}
		}
		return false
	}
	row := &flapRow{flapped: len(flapped)}
	hitU, hitD := 0, 0
	var costU, costD stats.Sample
	for si := 0; si < g.N(); si += sStride {
		srcName := g.Name(graph.NodeID(si))
		for di := 1; di < g.N(); di += dStride {
			if di == si {
				continue
			}
			dstName := g.Name(graph.NodeID(di))
			ures, upath, err := undamped.RoutePathByName(ctx, srcName, dstName)
			if err != nil {
				return nil, err
			}
			dres, dpath, err := damped.RoutePathByName(ctx, srcName, dstName)
			if err != nil {
				return nil, err
			}
			if !ures.Delivered || !dres.Delivered {
				continue
			}
			row.pairs++
			if crosses(upath) {
				hitU++
			}
			if crosses(dpath) {
				hitD++
			}
			costU.Add(ures.Cost)
			costD.Add(dres.Cost)
		}
	}
	if row.pairs > 0 {
		row.hitUndamped = float64(hitU) / float64(row.pairs)
		row.hitDamped = float64(hitD) / float64(row.pairs)
	}
	row.costUndamped, row.costDamped = costU.Mean(), costD.Mean()
	return row, nil
}
