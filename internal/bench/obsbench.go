package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"compactroute"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/obs"
	"compactroute/internal/serve"
	"compactroute/internal/stats"
)

// RunO1 measures the cost of observability on the serving hot path:
// the same single-threaded query loop through a cache-disabled pool
// (every query walks the scheme) in three arms — tracing off, the
// production-default 1-in-64 sampling, and every request traced. The
// instrumentation is identical in all arms (it ships in the binary
// either way); only the sampling decision differs. The fully-traced
// arm pins down the per-traced-request cost as a signal far above
// machine noise; dividing by the sampling rate gives the amortized
// 1/64 overhead the <3% acceptance bar applies to, cross-checked by
// the directly measured (noisier) 1/64 paired median. The allocs/op
// columns are exact: spans allocate only on traced requests.
func RunO1(ctx context.Context, w io.Writer, cfg Config) error {
	n, k, iters := 1024, 3, 60000
	if cfg.Quick {
		n, iters = 256, 6000
	}
	g := gen.Gnp(cfg.Seed, n, 8/float64(n), gen.Uniform(1, 8))
	net := compactroute.WrapGraph(g)
	s, err := compactroute.NewTZ(net, k, cfg.Seed)
	if err != nil {
		return fmt.Errorf("O1: %w", err)
	}
	// Cache off: every query pays the full scheme walk, the path the
	// per-hop instrumentation rides. One worker: the delta measured is
	// per-query cost, not scheduler noise.
	pool := serve.NewPool(serve.RouterFunc(func(ctx context.Context, src, dst uint64) (serve.Result, error) {
		res, err := s.RouteByNameCtx(ctx, src, dst)
		if err != nil {
			return serve.Result{}, err
		}
		return serve.Result{Delivered: res.Delivered, Cost: res.Cost, Hops: res.Hops}, nil
	}), serve.Options{Workers: 1, CacheSize: -1})

	// Deterministic query stream (splitmix64 over the seed).
	names := make([]uint64, n)
	for i := 0; i < n; i++ {
		names[i] = g.Name(graph.NodeID(i))
	}

	// mode is one arm of the paired measurement. Each arm owns its own
	// generator state seeded identically, so both route the exact same
	// pair sequence; wall time and mallocs accumulate per arm.
	type mode struct {
		name    string
		tracer  *obs.Tracer
		x       uint64 // splitmix64 state
		wallNs  int64
		mallocs uint64
		iters   int
	}
	next := func(m *mode) uint64 {
		m.x += 0x9e3779b97f4a7c15
		z := m.x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var ms runtime.MemStats
	runChunk := func(m *mode, chunk int) (int64, error) {
		// Collect before the timer starts so one arm's garbage (the
		// fully-traced arm allocates 6× the others) cannot charge its
		// GC debt — assist pacing, the next cycle's mark work — to
		// whichever arm happens to run next.
		runtime.GC()
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		t0 := time.Now()
		for i := 0; i < chunk; i++ {
			src := names[next(m)%uint64(n)]
			dst := names[next(m)%uint64(n)]
			rctx := ctx
			tr := m.tracer.Begin("")
			if tr != nil {
				rctx = obs.WithTrace(ctx, tr)
			}
			if _, err := pool.Route(rctx, src, dst); err != nil {
				return 0, fmt.Errorf("O1: route %#x→%#x: %w", src, dst, err)
			}
			if tr != nil {
				tr.Finish("/route", 200)
				m.tracer.Store(tr)
			}
		}
		wall := time.Since(t0).Nanoseconds()
		m.wallNs += wall
		runtime.ReadMemStats(&ms)
		m.mallocs += ms.Mallocs - m0
		m.iters += chunk
		return wall, nil
	}

	// Paired chunks: the arms alternate every chunk inside ONE run, so
	// machine-level drift (frequency scaling, a noisy neighbor, GC
	// debt) lands on both arms nearly equally instead of biasing
	// whichever whole-run happened to go second. The allocs/op column
	// is exact regardless. A warm-up chunk per arm absorbs cache and
	// allocator cold starts.
	newArms := func() []*mode {
		return []*mode{
			{name: "off", tracer: obs.NewTracer(1024, 0), x: cfg.Seed},
			{name: "1/64", tracer: obs.NewTracer(1024, 64), x: cfg.Seed},
			{name: "1/1", tracer: obs.NewTracer(1024, 1), x: cfg.Seed},
		}
	}
	chunk := 200
	for _, m := range newArms() { // warm-up: caches, allocator, JIT-free but branch-warm
		if _, err := runChunk(m, chunk); err != nil {
			return err
		}
	}
	// Fresh arms for the measured pass (same seeds, zeroed counters).
	// The per-chunk deltas use the MEDIAN of paired wall ratios, not
	// the ratio of totals: a GC cycle or preemption landing inside one
	// chunk is a huge outlier in that chunk's pair, and the median
	// discards it. The arms rotate through every position in the round
	// so the warm-follower advantage (identical pair sequences re-walk
	// hot CPU caches) is handed to each arm equally.
	arms := newArms()
	off, on64, on1 := arms[0], arms[1], arms[2]
	var ratio64, ratio1 stats.Sample
	for done, r := 0, 0; done < iters; done, r = done+chunk, r+1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		walls := make(map[*mode]int64, len(arms))
		for i := range arms {
			m := arms[(r+i)%len(arms)]
			wall, err := runChunk(m, chunk)
			if err != nil {
				return err
			}
			walls[m] = wall
		}
		ratio64.Add(float64(walls[on64]) / float64(walls[off]))
		ratio1.Add(float64(walls[on1]) / float64(walls[off]))
	}

	tb := stats.NewTable("O1: tracing overhead on the serving hot path",
		"mode", "iters", "qps", "ns/op", "allocs/op", "traced")
	row := func(m *mode) (qps, nsPerOp, allocs float64) {
		qps = float64(m.iters) / (float64(m.wallNs) / 1e9)
		nsPerOp = float64(m.wallNs) / float64(m.iters)
		allocs = float64(m.mallocs) / float64(m.iters)
		return
	}
	for _, m := range arms {
		qps, nsPerOp, allocs := row(m)
		tb.AddRow(m.name, m.iters, qps, nsPerOp, allocs, int64(m.tracer.Sampled()))
	}
	_, _, offAllocs := row(off)
	_, _, on64Allocs := row(on64)
	_, _, on1Allocs := row(on1)
	// Per-traced-request cost, from the fully-traced arm: a >100%
	// signal a busy machine cannot drown. The production-default 1/64
	// figure is that cost amortized over the sampling rate — the
	// headline the <3% acceptance bar applies to. The directly
	// measured 1/64 median rides along for comparison, but on a noisy
	// single-core box its confidence interval is wider than the effect.
	perTraced := (ratio1.Percentile(50) - 1) * 100
	tb.AddRow("traced req cost%", on1.iters, perTraced, perTraced, on1Allocs-offAllocs, int64(on1.tracer.Sampled()))
	tb.AddRow("1/64 amortized%", on64.iters, perTraced/64, (ratio64.Percentile(50)-1)*100,
		on64Allocs-offAllocs, int64(on64.tracer.Sampled()))
	return cfg.emit(w, tb,
		"expected shape: 1/64 amortized% qps (traced-request cost / 64) under 3; the ns/op column of that row is the direct paired-median 1/64 measurement (noisy on busy machines)",
		"sampling is one atomic add on the untraced path; spans and hop paths allocate only on traced requests")
}
