package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment at quick sizes:
// the harness itself must never error, and each runner must emit its
// table header.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[id](t.Context(), &buf, Config{Quick: true, Seed: 1}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") || !strings.Contains(out, "expected") && id != "T8" {
				t.Fatalf("%s produced unexpected output:\n%s", id, out)
			}
		})
	}
}

// TestJSONOutput: with Config.JSON every runner must emit pure JSON
// Lines — one {"title", "columns", "rows"} object per table, no text
// banners or prose — so BENCH_*.json trajectory files are parseable
// without scraping.
func TestJSONOutput(t *testing.T) {
	for _, id := range []string{"T1", "T8", "P1", "B1", "D2", "S1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[id](t.Context(), &buf, Config{Quick: true, Seed: 1, JSON: true}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			dec := json.NewDecoder(&buf)
			tables := 0
			for dec.More() {
				var tb struct {
					Title   string     `json:"title"`
					Columns []string   `json:"columns"`
					Rows    [][]string `json:"rows"`
				}
				if err := dec.Decode(&tb); err != nil {
					t.Fatalf("%s: line %d: %v", id, tables+1, err)
				}
				if tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %+v", id, tb)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s: row has %d cells for %d columns", id, len(row), len(tb.Columns))
					}
				}
				tables++
			}
			if tables == 0 {
				t.Fatalf("%s emitted no JSON tables", id)
			}
		})
	}
}

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Experiments) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Experiments))
	}
	if ids[0] != "T1" {
		t.Fatalf("first id = %s", ids[0])
	}
}
