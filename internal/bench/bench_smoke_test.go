package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment at quick sizes:
// the harness itself must never error, and each runner must emit its
// table header.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[id](&buf, Config{Quick: true, Seed: 1}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") || !strings.Contains(out, "expected") && id != "T8" {
				t.Fatalf("%s produced unexpected output:\n%s", id, out)
			}
		})
	}
}

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Experiments) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Experiments))
	}
	if ids[0] != "T1" {
		t.Fatalf("first id = %s", ids[0])
	}
}
