package dynamic

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"compactroute/internal/codec"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
)

// Store persists versioned topology snapshots to a directory. Each
// version writes
//
//	v<id>.graph        the sealed graph (gio text format)
//	v<id>.<kind>.crsc  each persistable scheme (codec v2 + lineage)
//	v<id>.json         the manifest, written last
//
// The manifest is the commit point, written to a temp file and
// renamed into place: List ignores versions without one, so a crash
// mid-save leaves garbage bytes but never a half-version. One store
// records ONE topology chain — Save refuses to overwrite a committed
// version id, so a daemon restarted against a used directory fails
// loudly instead of silently interleaving snapshots from unrelated
// chains. Scheme files embed the same lineage the manifest records,
// making each .crsc self-describing (a plain compactroute.Load sees
// where it came from).
type Store struct {
	dir string
}

// Manifest describes one stored version.
type Manifest struct {
	Lineage codec.Lineage `json:"lineage"`
	// Kinds lists every scheme kind built into the version.
	Kinds []string `json:"kinds"`
	// Persisted lists the subset with a .crsc file (persistable kinds).
	Persisted []string `json:"persisted"`
	// Graph is the graph file name, relative to the store directory.
	Graph string `json:"graph"`
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dynamic: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) base(id uint64) string { return fmt.Sprintf("v%08d", id) }

// Save persists a version: graph, every persistable scheme with its
// lineage, then the manifest. Non-persistable kinds are listed in the
// manifest but carry no bytes (they rebuild from the graph).
func (st *Store) Save(v *Version) error {
	lin := codec.Lineage{
		Version:        v.ID,
		Parent:         v.Parent,
		MutFrom:        v.MutFrom,
		MutTo:          v.MutTo,
		BuildWallNanos: int64(v.BuildWall),
	}
	base := st.base(v.ID)
	manifestPath := filepath.Join(st.dir, base+".json")
	if _, err := os.Stat(manifestPath); err == nil {
		return fmt.Errorf("dynamic: store: version %d is already committed in %s — one store records one topology chain; use a fresh directory per run", v.ID, st.dir)
	}
	gf, err := os.Create(filepath.Join(st.dir, base+".graph"))
	if err != nil {
		return fmt.Errorf("dynamic: store: %w", err)
	}
	if err := gio.Write(gf, v.Graph()); err != nil {
		gf.Close()
		return fmt.Errorf("dynamic: store: writing graph: %w", err)
	}
	if err := gf.Close(); err != nil {
		return fmt.Errorf("dynamic: store: %w", err)
	}

	m := Manifest{Lineage: lin, Kinds: v.Kinds(), Graph: base + ".graph"}
	for _, kind := range m.Kinds {
		p, err := codec.PayloadFor(v.Scheme(kind))
		if err != nil {
			continue // rebuildable from the graph; manifest records the gap
		}
		p.Lineage = &lin
		f, err := os.Create(filepath.Join(st.dir, base+"."+kind+".crsc"))
		if err != nil {
			return fmt.Errorf("dynamic: store: %w", err)
		}
		if err := codec.EncodePayload(f, p); err != nil {
			f.Close()
			return fmt.Errorf("dynamic: store: encoding %s: %w", kind, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("dynamic: store: %w", err)
		}
		m.Persisted = append(m.Persisted, kind)
	}

	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dynamic: store: %w", err)
	}
	// Temp-and-rename so the commit point is atomic: a crash can leave
	// a stray .tmp (harmless — List globs v*.json only), never a
	// truncated manifest that would poison List for the whole store.
	tmp := manifestPath + ".tmp"
	if err := os.WriteFile(tmp, append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("dynamic: store: %w", err)
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		return fmt.Errorf("dynamic: store: %w", err)
	}
	return nil
}

// List returns the manifests of every committed version, ordered by
// version id.
func (st *Store) List() ([]Manifest, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, "v*.json"))
	if err != nil {
		return nil, fmt.Errorf("dynamic: store: %w", err)
	}
	out := make([]Manifest, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("dynamic: store: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("dynamic: store: %s: %w", filepath.Base(p), err)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lineage.Version < out[j].Lineage.Version })
	return out, nil
}

// LoadGraph rehydrates a stored version's sealed graph.
func (st *Store) LoadGraph(id uint64) (*graph.Graph, error) {
	f, err := os.Open(filepath.Join(st.dir, st.base(id)+".graph"))
	if err != nil {
		return nil, fmt.Errorf("dynamic: store: %w", err)
	}
	defer f.Close()
	return gio.Read(f)
}

// LoadPayload reads one stored scheme of a version (kind must be in
// the manifest's Persisted set), lineage included.
func (st *Store) LoadPayload(id uint64, kind string) (*codec.Payload, error) {
	f, err := os.Open(filepath.Join(st.dir, st.base(id)+"."+kind+".crsc"))
	if err != nil {
		return nil, fmt.Errorf("dynamic: store: %w", err)
	}
	defer f.Close()
	return codec.DecodePayload(f)
}
