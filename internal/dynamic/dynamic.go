// Package dynamic is the control plane that turns the repository's
// static preprocessing schemes into a live system: an append-only
// graph mutation log, versioned immutable topology snapshots rebuilt
// through the streaming pipeline (schemes.BuildStream), and a
// hot-swap serving handle (Swapper) that publishes exactly one sealed
// version at a time.
//
// The model follows the distance-oracle literature: a compact routing
// scheme is a rebuildable compressed snapshot of the metric. Mutations
// never touch a served scheme — they accumulate in the Log; a rebuild
// replays the pending range onto the current graph (Replay), constructs
// fresh schemes in the background, and Swap publishes the result with a
// sub-millisecond pause. In-flight routes finish on the version they
// resolved at admission; new requests see the new version; result
// caches are purged per swap (serve.Pool.Purge via swap hooks).
//
// Determinism is load-bearing end to end: the log is replayable
// (Replay(g, A++B) and Replay(Replay(g, A), B) build byte-identical
// CSR layouts — see Replay), builders are seeded, and the streaming
// builds are property-tested bit-identical to materialized ones, so a
// rebuilt version equals a cold build of the same graph. That is what
// makes hot swap testable: post-swap routes must be bit-identical to a
// cold build of the final topology.
package dynamic

import (
	"fmt"
	"sort"
	"sync"

	"compactroute/internal/graph"
)

// Op is a mutation's operation kind.
type Op uint8

// The mutation operations. Edge operations address the unordered
// endpoint pair by external name; RemoveEdge and SetWeight act on
// every parallel edge of the pair (the metric only ever uses the
// lightest, and the pair is the unit a topology feed addresses).
const (
	// OpAddNode adds a node with a fresh external name, optionally
	// anchored to an existing node by one edge in the same atomic
	// mutation (V/W set). The anchored form is how nodes join a live
	// topology: a rebuild may seal the log at ANY position, so a
	// separate add-node/add-edge pair could be split across versions,
	// leaving a version with an isolated — unroutable — node.
	OpAddNode Op = iota + 1
	// OpAddEdge adds one undirected edge between two existing nodes.
	OpAddEdge
	// OpRemoveEdge removes every edge between the endpoint pair.
	OpRemoveEdge
	// OpSetWeight sets the weight of every edge between the pair.
	OpSetWeight

	// The transient failure events. They model unplanned loss — a link
	// or node that is down, not gone: the permanent topology (what
	// Replay builds, what a rebuild seals) is unchanged, and a FaultSet
	// projected over the same mutation stream carries the down/up view
	// the serving path routes around (serve.Repairer, DESIGN.md §10).
	// Keeping failures out of the replayed graph is what preserves the
	// PR 5 composition contract: a trace replayed to quiescence yields
	// a graph byte-identical to a cold build of the final topology.

	// OpFailEdge marks every edge of the endpoint pair down.
	OpFailEdge
	// OpRecoverEdge brings a failed endpoint pair back up.
	OpRecoverEdge
	// OpFailNode marks a node (and so every edge at it) down.
	OpFailNode
	// OpRecoverNode brings a failed node back up.
	OpRecoverNode
)

// Transient reports whether the op is a failure/recovery event — a
// change to the fault overlay, not to the permanent topology.
func (o Op) Transient() bool {
	switch o {
	case OpFailEdge, OpRecoverEdge, OpFailNode, OpRecoverNode:
		return true
	}
	return false
}

// String returns the trace spelling of the op.
func (o Op) String() string {
	switch o {
	case OpAddNode:
		return "addnode"
	case OpAddEdge:
		return "addedge"
	case OpRemoveEdge:
		return "removeedge"
	case OpSetWeight:
		return "setweight"
	case OpFailEdge:
		return "failedge"
	case OpRecoverEdge:
		return "recoveredge"
	case OpFailNode:
		return "failnode"
	case OpRecoverNode:
		return "recovernode"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp parses the trace spelling of an op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "addnode":
		return OpAddNode, nil
	case "addedge":
		return OpAddEdge, nil
	case "removeedge":
		return OpRemoveEdge, nil
	case "setweight":
		return OpSetWeight, nil
	case "failedge":
		return OpFailEdge, nil
	case "recoveredge":
		return OpRecoverEdge, nil
	case "failnode":
		return OpFailNode, nil
	case "recovernode":
		return OpRecoverNode, nil
	default:
		return 0, fmt.Errorf("dynamic: unknown op %q", s)
	}
}

// Mutation is one topology change, addressed entirely by external
// names (the only stable identity across versions — internal dense ids
// are reassigned by every rebuild).
type Mutation struct {
	Op Op
	// Name is the new node's external name (OpAddNode only).
	Name uint64
	// U, V are the edge endpoints by external name (edge ops only).
	// For an anchored OpAddNode, V is the existing anchor node.
	U, V uint64
	// W is the edge weight (OpAddEdge, OpSetWeight, anchored OpAddNode).
	W float64
}

// Anchored reports whether an OpAddNode carries its anchor edge: any
// non-zero anchor field makes the mutation anchored, so a half-formed
// join (anchor without a valid weight, or vice versa) is validated —
// and rejected — rather than silently admitted as an isolated,
// unroutable node. The zero value of both fields is the unanchored
// sentinel, which leaves one literal-construction blind spot — anchor
// node named 0 with weight 0 — that the wire decoders (JSON, trace)
// close by rejecting non-positive anchored weights outright; in-
// process callers use MutAddNode, whose weight a later Append
// validates as a real edge weight (> 0) whenever either field is set.
func (m Mutation) Anchored() bool { return m.Op == OpAddNode && (m.V != 0 || m.W != 0) }

// String renders the mutation in its trace spelling.
func (m Mutation) String() string {
	switch m.Op {
	case OpAddNode:
		if m.Anchored() {
			return fmt.Sprintf("addnode %d %d %g", m.Name, m.V, m.W)
		}
		return fmt.Sprintf("addnode %d", m.Name)
	case OpAddEdge:
		return fmt.Sprintf("addedge %d %d %g", m.U, m.V, m.W)
	case OpRemoveEdge:
		return fmt.Sprintf("removeedge %d %d", m.U, m.V)
	case OpSetWeight:
		return fmt.Sprintf("setweight %d %d %g", m.U, m.V, m.W)
	case OpFailEdge, OpRecoverEdge:
		return fmt.Sprintf("%s %d %d", m.Op, m.U, m.V)
	case OpFailNode, OpRecoverNode:
		return fmt.Sprintf("%s %d", m.Op, m.Name)
	default:
		return m.Op.String()
	}
}

// pairKey folds an unordered name pair into a map key.
func pairKey(u, v uint64) [2]uint64 {
	if u > v {
		u, v = v, u
	}
	return [2]uint64{u, v}
}

// Log is the append-only, replayable mutation log. Appends are
// validated against a shadow of the tip topology (base graph plus
// every accepted mutation), so a mutation that survives Append can
// never fail to replay: AddNode requires a fresh name, edge ops
// require live endpoints, AddEdge a positive finite weight, and
// RemoveEdge/SetWeight an existing edge. The transient failure events
// are validated against a parallel fault shadow — FailEdge needs a
// present, up pair; RecoverEdge a down pair; FailNode/RecoverNode an
// existing up/down node — so fail/recover sequencing survives Append
// exactly once per element. Sequence numbers are 1-based; 0 is "the
// base graph, nothing applied".
type Log struct {
	mu    sync.RWMutex
	muts  []Mutation
	nodes map[uint64]bool   // live node names at the tip
	edges map[[2]uint64]int // unordered pair -> parallel edge count
	// The fault shadow at the tip: transient events change only these,
	// never nodes/edges (removing a pair clears its down flag — the
	// element is gone, not down).
	downNodes map[uint64]bool
	downEdges map[[2]uint64]bool
}

// NewLog returns a log whose sequence 0 state is the base graph.
func NewLog(base *graph.Graph) *Log {
	l := &Log{
		nodes:     make(map[uint64]bool, base.N()),
		edges:     make(map[[2]uint64]int, base.M()),
		downNodes: make(map[uint64]bool),
		downEdges: make(map[[2]uint64]bool),
	}
	for u := graph.NodeID(0); int(u) < base.N(); u++ {
		l.nodes[base.Name(u)] = true
	}
	base.ForEachEdge(func(u, v graph.NodeID, w float64) bool {
		l.edges[pairKey(base.Name(u), base.Name(v))]++
		return true
	})
	return l
}

// Append validates and appends the mutations atomically: either every
// mutation is accepted (returning the sequence number of the last) or
// none is, so a rejected batch leaves no partial state behind.
// Sequential semantics — each mutation is validated against the state
// left by the ones before it in the same batch.
func (l *Log) Append(ms ...Mutation) (last uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Validate against a read-through overlay; commit only if the
	// whole batch passes.
	ovNodes := make(map[uint64]bool)
	ovEdges := make(map[[2]uint64]int)
	ovDownNodes := make(map[uint64]bool)
	ovDownEdges := make(map[[2]uint64]bool)
	node := func(name uint64) bool {
		if v, ok := ovNodes[name]; ok {
			return v
		}
		return l.nodes[name]
	}
	edgeCount := func(k [2]uint64) int {
		if v, ok := ovEdges[k]; ok {
			return v
		}
		return l.edges[k]
	}
	nodeDown := func(name uint64) bool {
		if v, ok := ovDownNodes[name]; ok {
			return v
		}
		return l.downNodes[name]
	}
	edgeDown := func(k [2]uint64) bool {
		if v, ok := ovDownEdges[k]; ok {
			return v
		}
		return l.downEdges[k]
	}
	for i, m := range ms {
		fail := func(format string, args ...any) (uint64, error) {
			return 0, fmt.Errorf("dynamic: mutation %d: %s", i, fmt.Sprintf(format, args...))
		}
		switch m.Op {
		case OpAddNode:
			if node(m.Name) {
				return fail("addnode %d: name already exists", m.Name)
			}
			if m.Anchored() {
				if m.V == m.Name {
					return fail("addnode %d: anchored to itself", m.Name)
				}
				if !node(m.V) {
					return fail("addnode %d: unknown anchor %d", m.Name, m.V)
				}
				if !(m.W > 0) || m.W != m.W || m.W > 1e300 {
					return fail("addnode %d: invalid anchor weight %v", m.Name, m.W)
				}
				ovEdges[pairKey(m.Name, m.V)] = 1
			}
			ovNodes[m.Name] = true
		case OpAddEdge, OpRemoveEdge, OpSetWeight:
			if m.U == m.V {
				return fail("%s: self-loop on %d", m.Op, m.U)
			}
			if !node(m.U) {
				return fail("%s: unknown node %d", m.Op, m.U)
			}
			if !node(m.V) {
				return fail("%s: unknown node %d", m.Op, m.V)
			}
			if m.Op != OpRemoveEdge && (!(m.W > 0) || m.W != m.W || m.W > 1e300) {
				return fail("%s %d %d: invalid weight %v", m.Op, m.U, m.V, m.W)
			}
			k := pairKey(m.U, m.V)
			switch m.Op {
			case OpAddEdge:
				ovEdges[k] = edgeCount(k) + 1
			case OpRemoveEdge, OpSetWeight:
				if edgeCount(k) == 0 {
					return fail("%s: no edge between %d and %d", m.Op, m.U, m.V)
				}
				if m.Op == OpRemoveEdge {
					ovEdges[k] = 0
					ovDownEdges[k] = false // the pair is gone, not down
				}
			}
		case OpFailEdge, OpRecoverEdge:
			if m.U == m.V {
				return fail("%s: self-loop on %d", m.Op, m.U)
			}
			if !node(m.U) {
				return fail("%s: unknown node %d", m.Op, m.U)
			}
			if !node(m.V) {
				return fail("%s: unknown node %d", m.Op, m.V)
			}
			k := pairKey(m.U, m.V)
			if edgeCount(k) == 0 {
				return fail("%s: no edge between %d and %d", m.Op, m.U, m.V)
			}
			if m.Op == OpFailEdge {
				if edgeDown(k) {
					return fail("failedge: edge %d-%d already down", m.U, m.V)
				}
				ovDownEdges[k] = true
			} else {
				if !edgeDown(k) {
					return fail("recoveredge: edge %d-%d is not down", m.U, m.V)
				}
				ovDownEdges[k] = false
			}
		case OpFailNode, OpRecoverNode:
			if !node(m.Name) {
				return fail("%s: unknown node %d", m.Op, m.Name)
			}
			if m.Op == OpFailNode {
				if nodeDown(m.Name) {
					return fail("failnode: node %d already down", m.Name)
				}
				ovDownNodes[m.Name] = true
			} else {
				if !nodeDown(m.Name) {
					return fail("recovernode: node %d is not down", m.Name)
				}
				ovDownNodes[m.Name] = false
			}
		default:
			return fail("invalid op %d", m.Op)
		}
	}
	for _, m := range ms {
		switch m.Op {
		case OpAddNode:
			l.nodes[m.Name] = true
			if m.Anchored() {
				l.edges[pairKey(m.Name, m.V)]++
			}
		case OpAddEdge:
			l.edges[pairKey(m.U, m.V)]++
		case OpRemoveEdge:
			delete(l.edges, pairKey(m.U, m.V))
			delete(l.downEdges, pairKey(m.U, m.V))
		case OpFailEdge:
			l.downEdges[pairKey(m.U, m.V)] = true
		case OpRecoverEdge:
			delete(l.downEdges, pairKey(m.U, m.V))
		case OpFailNode:
			l.downNodes[m.Name] = true
		case OpRecoverNode:
			delete(l.downNodes, m.Name)
		}
		l.muts = append(l.muts, m)
	}
	return uint64(len(l.muts)), nil
}

// Len returns the sequence number of the newest mutation (0: none).
func (l *Log) Len() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.muts))
}

// Slice returns the mutations in the half-open sequence range
// (from, to] — the range a rebuild applies on top of a version sealed
// at sequence from. The returned slice is a copy.
func (l *Log) Slice(from, to uint64) []Mutation {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if to > uint64(len(l.muts)) {
		to = uint64(len(l.muts))
	}
	if from >= to {
		return nil
	}
	out := make([]Mutation, to-from)
	copy(out, l.muts[from:to])
	return out
}

// Replay applies a mutation range to a base graph and returns the new
// sealed graph. It is deterministic AND composition-invariant: the
// final edge list is stably sorted by the unordered endpoint-id pair,
// so Replay(g, A++B) and Replay(Replay(g, A), B) produce graphs with
// byte-identical CSR layouts (ports and all) — the property that makes
// incrementally rebuilt versions bit-identical to a cold build of the
// final topology. Node ids are preserved: base nodes keep their ids,
// added nodes take the next ids in mutation order. Labels survive.
//
// Transient failure events are validated for existence (the element
// they name must be present at that point in the range) but change
// nothing: a failure is a fault-overlay fact (FaultSet), not topology,
// which is what keeps the composition contract intact across traces
// containing failures. Replay deliberately does NOT check fail/recover
// alternation — that is Append's job against the full log; a range
// sliced mid-outage legitimately begins with a recover for an element
// failed in an earlier range, and rejecting it would break the very
// composition property above.
//
// Replay trusts its input the way the Log guarantees it: an invalid
// mutation (unknown endpoint, duplicate name, absent edge) returns an
// error and no graph.
func Replay(base *graph.Graph, muts []Mutation) (*graph.Graph, error) {
	b := graph.NewBuilder()
	id := make(map[uint64]graph.NodeID, base.N()+len(muts))
	for u := graph.NodeID(0); int(u) < base.N(); u++ {
		name := base.Name(u)
		if label, ok := base.Label(u); ok {
			id[name] = b.AddLabeled(label)
		} else {
			id[name] = b.AddNode(name)
		}
	}

	type rec struct {
		u, v graph.NodeID // u < v in the new id space
		w    float64
		live bool
	}
	var recs []rec
	// byPair indexes the live records of each unordered pair so edge
	// ops are O(parallel edges), not O(m).
	byPair := make(map[[2]uint64][]int, base.M())
	addRec := func(uName, vName uint64, w float64) error {
		u, okU := id[uName]
		v, okV := id[vName]
		if !okU || !okV {
			return fmt.Errorf("dynamic: replay: edge (%d,%d) references unknown node", uName, vName)
		}
		if u > v {
			u, v = v, u
		}
		k := pairKey(uName, vName)
		byPair[k] = append(byPair[k], len(recs))
		recs = append(recs, rec{u: u, v: v, w: w, live: true})
		return nil
	}
	var err error
	base.ForEachEdge(func(u, v graph.NodeID, w float64) bool {
		err = addRec(base.Name(u), base.Name(v), w)
		return err == nil
	})
	if err != nil {
		return nil, err
	}

	for i, m := range muts {
		switch m.Op {
		case OpAddNode:
			if _, dup := id[m.Name]; dup {
				return nil, fmt.Errorf("dynamic: replay mutation %d: addnode %d: name already exists", i, m.Name)
			}
			id[m.Name] = b.AddNode(m.Name)
			if m.Anchored() {
				if err := addRec(m.Name, m.V, m.W); err != nil {
					return nil, fmt.Errorf("dynamic: replay mutation %d: %w", i, err)
				}
			}
		case OpAddEdge:
			if err := addRec(m.U, m.V, m.W); err != nil {
				return nil, fmt.Errorf("dynamic: replay mutation %d: %w", i, err)
			}
		case OpRemoveEdge, OpSetWeight:
			k := pairKey(m.U, m.V)
			touched := 0
			for _, ri := range byPair[k] {
				if !recs[ri].live {
					continue
				}
				touched++
				if m.Op == OpRemoveEdge {
					recs[ri].live = false
				} else {
					recs[ri].w = m.W
				}
			}
			if touched == 0 {
				return nil, fmt.Errorf("dynamic: replay mutation %d: %s: no edge between %d and %d", i, m.Op, m.U, m.V)
			}
			if m.Op == OpRemoveEdge {
				delete(byPair, k)
			}
		case OpFailEdge, OpRecoverEdge:
			// Transient: validated, applied to nothing (see above).
			k := pairKey(m.U, m.V)
			live := 0
			for _, ri := range byPair[k] {
				if recs[ri].live {
					live++
				}
			}
			if live == 0 {
				return nil, fmt.Errorf("dynamic: replay mutation %d: %s: no edge between %d and %d", i, m.Op, m.U, m.V)
			}
		case OpFailNode, OpRecoverNode:
			if _, ok := id[m.Name]; !ok {
				return nil, fmt.Errorf("dynamic: replay mutation %d: %s: unknown node %d", i, m.Op, m.Name)
			}
		default:
			return nil, fmt.Errorf("dynamic: replay mutation %d: invalid op %d", i, m.Op)
		}
	}

	// Canonical order: stable sort by the id pair. Parallel edges of
	// one pair keep their arrival order (which canonical iteration of
	// the built graph preserves), closing the composition argument.
	live := make([]int, 0, len(recs))
	for ri := range recs {
		if recs[ri].live {
			live = append(live, ri)
		}
	}
	sort.SliceStable(live, func(a, b int) bool {
		ra, rb := recs[live[a]], recs[live[b]]
		if ra.u != rb.u {
			return ra.u < rb.u
		}
		return ra.v < rb.v
	})
	for _, ri := range live {
		if err := b.AddEdge(recs[ri].u, recs[ri].v, recs[ri].w); err != nil {
			return nil, fmt.Errorf("dynamic: replay: %w", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dynamic: replay: %w", err)
	}
	return g, nil
}
