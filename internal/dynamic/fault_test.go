package dynamic

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/sssp"
)

func TestFaultSetProjection(t *testing.T) {
	g := testGraph(t, 32, 7)
	u, v := g.Name(0), firstNeighborName(g, 0)
	w := g.Name(5)
	fs := NewFaultSet()
	if !fs.Quiescent() {
		t.Fatal("fresh set not quiescent")
	}
	fs.Observe(Mutation{Op: OpFailEdge, U: u, V: v})
	if !fs.EdgeDown(u, v) || !fs.EdgeDown(v, u) {
		t.Fatal("failed edge not down (both orientations)")
	}
	fs.Observe(Mutation{Op: OpFailNode, Name: w})
	if !fs.NodeDown(w) {
		t.Fatal("failed node not down")
	}
	// An edge is down when either endpoint is, without its own event.
	if !fs.EdgeDown(w, u) {
		t.Fatal("edge at a down endpoint not down")
	}
	if fs.Quiescent() {
		t.Fatal("quiescent with two elements down")
	}
	// Permanent removal clears transient state: gone, not down.
	fs.Observe(Mutation{Op: OpRemoveEdge, U: u, V: v})
	if fs.EdgeDown(u, v) {
		t.Fatal("removed edge still marked down")
	}
	// The recovery tail brings the set back to quiescence.
	for _, m := range fs.RecoveryMutations() {
		fs.Observe(m)
	}
	if !fs.Quiescent() {
		t.Fatalf("not quiescent after recovery tail: down edges %v nodes %v", fs.DownEdges(), fs.DownNodes())
	}
}

func TestLogValidatesFaultSequencing(t *testing.T) {
	g := testGraph(t, 48, 9)
	u, v := g.Name(0), firstNeighborName(g, 0)
	w := g.Name(7)
	l := NewLog(g)
	bad := []struct {
		name string
		m    Mutation
	}{
		{"recover up edge", Mutation{Op: OpRecoverEdge, U: u, V: v}},
		{"recover up node", Mutation{Op: OpRecoverNode, Name: w}},
		{"fail missing edge", Mutation{Op: OpFailEdge, U: u, V: w}},
		{"fail unknown node", Mutation{Op: OpFailNode, Name: 0xdead_beef}},
		{"fail self loop", Mutation{Op: OpFailEdge, U: u, V: u}},
	}
	for _, c := range bad {
		if _, err := l.Append(c.m); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := l.Append(Mutation{Op: OpFailEdge, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Mutation{Op: OpFailEdge, U: v, V: u}); err == nil {
		t.Error("double fail accepted (orientation must not matter)")
	}
	// Removing a down edge is legal and clears the flag: recovering the
	// now-gone pair must fail.
	if _, err := l.Append(Mutation{Op: OpRemoveEdge, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Mutation{Op: OpRecoverEdge, U: u, V: v}); err == nil {
		t.Error("recover of a removed edge accepted")
	}
	// Batch atomicity: a failing tail must roll back the whole batch,
	// including its fault-shadow updates.
	if _, err := l.Append(
		Mutation{Op: OpFailNode, Name: w},
		Mutation{Op: OpFailNode, Name: w},
	); err == nil {
		t.Fatal("double node fail in one batch accepted")
	}
	if _, err := l.Append(Mutation{Op: OpRecoverNode, Name: w}); err == nil {
		t.Error("fault shadow leaked from a rejected batch")
	}
}

func TestGenerateFaultTraceDeterministicAndSafe(t *testing.T) {
	g := testGraph(t, 96, 11)
	a, fsA, err := GenerateFaultTrace(g, 120, 5, DefaultTraceProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, fsB, err := GenerateFaultTrace(g, 120, 5, DefaultTraceProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if !reflect.DeepEqual(fsA.DownEdges(), fsB.DownEdges()) || !reflect.DeepEqual(fsA.DownNodes(), fsB.DownNodes()) {
		t.Fatal("same seed produced different fault sets")
	}
	// Every prefix must keep the up-subgraph connected: a packet
	// between any two up nodes always has a live path.
	fs := NewFaultSet()
	for i, m := range a {
		fs.Observe(m)
		gi, err := Replay(g, a[:i+1])
		if err != nil {
			t.Fatalf("mutation %d (%s): %v", i, m, err)
		}
		if !liveConnected(gi, fs) {
			t.Fatalf("after mutation %d (%s): up-subgraph disconnected", i, m)
		}
	}
	// The recovery tail closes every open outage.
	for _, m := range fsA.RecoveryMutations() {
		fs.Observe(m)
	}
	if !fs.Quiescent() {
		t.Fatal("recovery tail did not reach quiescence")
	}
	// The trace must actually contain transient events (the profile
	// asks for them); a trace of pure churn would vacuously pass.
	transient := 0
	for _, m := range a {
		if m.Op.Transient() {
			transient++
		}
	}
	if transient == 0 {
		t.Fatal("trace contains no failure/recovery events")
	}
}

func TestFaultTraceTextAndJSONRoundTrip(t *testing.T) {
	g := testGraph(t, 64, 13)
	muts, fs, err := GenerateFaultTrace(g, 80, 7, DefaultTraceProfile())
	if err != nil {
		t.Fatal(err)
	}
	muts = append(muts, fs.RecoveryMutations()...)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, muts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(muts, back) {
		t.Fatal("text round-trip changed the trace")
	}
	blob, err := json.Marshal(muts)
	if err != nil {
		t.Fatal(err)
	}
	var jback []Mutation
	if err := json.Unmarshal(blob, &jback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(muts, jback) {
		t.Fatal("JSON round-trip changed the trace")
	}
}

// TestFaultTraceQuiescenceColdIdentical is the PR's core property: a
// failure+recovery trace replayed to quiescence — with rebuilds cut
// mid-outage, so transient state spans version boundaries — leaves the
// graph byte-identical to a one-shot replay, and every scheme kind
// routing bit-identically to a cold build of the final topology, at
// every worker count. Failures are views, not topology: once every
// element recovers, nothing about the rebuilt world may remember them.
func TestFaultTraceQuiescenceColdIdentical(t *testing.T) {
	kinds := []string{
		schemes.KindPaper, schemes.KindFullTable, schemes.KindAPCover,
		schemes.KindLandmarkChain, schemes.KindTZ,
	}
	g := testGraph(t, 72, 29)
	trace, fs, err := GenerateFaultTrace(g, 60, 5, DefaultTraceProfile())
	if err != nil {
		t.Fatal(err)
	}
	trace = append(trace, fs.RecoveryMutations()...)
	final, err := Replay(g, trace)
	if err != nil {
		t.Fatal(err)
	}
	apsp := sssp.AllPairs(final)
	cold := make(map[string]schemes.Scheme, len(kinds))
	for _, kind := range kinds {
		c, err := schemes.Build(final, apsp, schemes.Config{Kind: kind, K: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cold[kind] = c
	}

	for _, workers := range []int{1, 4} {
		cfgs := make([]schemes.Config, len(kinds))
		for i, k := range kinds {
			cfgs[i] = schemes.Config{Kind: k, K: 2, Seed: 1}
		}
		tp, err := NewTopology(context.Background(), g, TopologyOptions{Configs: cfgs, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Three rebuilds at arbitrary cut points: outages opened in one
		// range recover in a later one, so each Rebuild replays a
		// window that is NOT internally balanced — the composition
		// property Replay's existence-only validation exists for.
		cuts := []int{len(trace) / 3, 2 * len(trace) / 3, len(trace)}
		prev := 0
		for _, cut := range cuts {
			if _, err := tp.Apply(trace[prev:cut]...); err != nil {
				t.Fatalf("workers=%d apply [%d:%d]: %v", workers, prev, cut, err)
			}
			if _, _, err := tp.Rebuild(context.Background()); err != nil {
				t.Fatalf("workers=%d rebuild at %d: %v", workers, cut, err)
			}
			prev = cut
		}
		hot := tp.Current()
		if graphFingerprint(final) != graphFingerprint(hot.Graph()) {
			t.Fatalf("workers=%d: quiesced graph diverged from one-shot replay", workers)
		}
		for _, kind := range kinds {
			for s := 0; s < final.N(); s += 7 {
				for d := 0; d < final.N(); d += 5 {
					srcName := final.Name(graph.NodeID(s))
					dstName := final.Name(graph.NodeID(d))
					want, err := hot.engine.RouteCtx(context.Background(), cold[kind], graph.NodeID(s), dstName)
					if err != nil {
						t.Fatal(err)
					}
					got, err := hot.Route(context.Background(), kind, srcName, dstName)
					if err != nil {
						t.Fatal(err)
					}
					if got.Delivered != want.Delivered || got.Cost != want.Cost ||
						got.Hops != want.Hops || got.MaxHeaderBits != want.MaxHeaderBits {
						t.Fatalf("workers=%d %s %d→%d: hot %+v cold %+v", workers, kind, s, d, got, want)
					}
				}
			}
		}
	}
}
