package dynamic

import (
	"fmt"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/xrand"
)

// FaultSet is the transient down/up overlay projected from a mutation
// stream: which nodes and endpoint pairs are currently failed. It is
// the serving-side companion of the OpFail*/OpRecover* events — the
// permanent topology (Replay, rebuilds) never reflects failures, so a
// layer that wants to route around them keeps a FaultSet alongside the
// graph and consults it per element (serve.Repairer does exactly that).
//
// A FaultSet is not safe for concurrent use; holders synchronize
// externally (the Repairer keeps its own copy under its lock).
type FaultSet struct {
	nodes map[uint64]bool
	edges map[[2]uint64]bool
}

// NewFaultSet returns an empty (quiescent) overlay.
func NewFaultSet() *FaultSet {
	return &FaultSet{nodes: make(map[uint64]bool), edges: make(map[[2]uint64]bool)}
}

// Observe projects one mutation onto the overlay and reports whether
// it changed fault state. Transient events set or clear their element;
// a permanent RemoveEdge clears the pair's down flag (the element is
// gone, not down — a later re-add starts life up). Observe is lenient
// by design: it is a projection of an already-validated log, so a
// redundant fail or recover is a no-op, never an error.
func (f *FaultSet) Observe(m Mutation) bool {
	switch m.Op {
	case OpFailEdge:
		f.edges[pairKey(m.U, m.V)] = true
		return true
	case OpRecoverEdge:
		delete(f.edges, pairKey(m.U, m.V))
		return true
	case OpFailNode:
		f.nodes[m.Name] = true
		return true
	case OpRecoverNode:
		delete(f.nodes, m.Name)
		return true
	case OpRemoveEdge:
		k := pairKey(m.U, m.V)
		if f.edges[k] {
			delete(f.edges, k)
			return true
		}
	}
	return false
}

// NodeDown reports whether the node is failed.
func (f *FaultSet) NodeDown(name uint64) bool { return f.nodes[name] }

// EdgeDown reports whether the unordered pair is unusable: the pair
// itself is failed, or either endpoint node is — a down node takes
// every edge at it down with it.
func (f *FaultSet) EdgeDown(u, v uint64) bool {
	return f.edges[pairKey(u, v)] || f.nodes[u] || f.nodes[v]
}

// Quiescent reports that nothing is down.
func (f *FaultSet) Quiescent() bool { return len(f.nodes) == 0 && len(f.edges) == 0 }

// DownNodes returns the failed node names, sorted.
func (f *FaultSet) DownNodes() []uint64 {
	out := make([]uint64, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DownEdges returns the failed endpoint pairs, sorted.
func (f *FaultSet) DownEdges() [][2]uint64 {
	out := make([][2]uint64, 0, len(f.edges))
	for k := range f.edges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RecoveryMutations returns the deterministic event sequence that
// brings the overlay back to quiescence: every down pair recovered in
// sorted order, then every down node. Appending it to the trace that
// produced this overlay yields a quiescent trace — the shape the
// cold-build identity property is stated over.
func (f *FaultSet) RecoveryMutations() []Mutation {
	out := make([]Mutation, 0, len(f.edges)+len(f.nodes))
	for _, k := range f.DownEdges() {
		out = append(out, Mutation{Op: OpRecoverEdge, U: k[0], V: k[1]})
	}
	for _, n := range f.DownNodes() {
		out = append(out, Mutation{Op: OpRecoverNode, Name: n})
	}
	return out
}

// liveConnected reports whether the up subgraph — nodes not failed,
// edges whose pair and endpoints are not failed — is connected (every
// up node reaches every other over up edges). A graph with no up node
// is not live.
func liveConnected(g *graph.Graph, fs *FaultSet) bool {
	n := g.N()
	up := 0
	start := graph.NodeID(-1)
	for u := graph.NodeID(0); int(u) < n; u++ {
		if !fs.NodeDown(g.Name(u)) {
			up++
			if start < 0 {
				start = u
			}
		}
	}
	if up == 0 {
		return false
	}
	visited := make([]bool, n)
	visited[start] = true
	queue := []graph.NodeID{start}
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.Neighbors(u, func(e graph.Edge) bool {
			if !visited[e.To] && !fs.EdgeDown(g.Name(u), g.Name(e.To)) {
				visited[e.To] = true
				reached++
				queue = append(queue, e.To)
			}
			return true
		})
	}
	return reached == up
}

// TraceProfile weighs the op mix of GenerateFaultTrace. Weights are
// relative (only ratios matter); a zero weight disables the op. The
// zero value is invalid — start from DefaultTraceProfile.
type TraceProfile struct {
	// The permanent churn ops, as in GenerateTrace.
	SetWeight, AddEdge, RemoveEdge, AddNode int
	// The transient events. Recover picks a random outstanding fault
	// (edge or node) and brings it back; with FailEdge/FailNode at zero
	// it never fires.
	FailEdge, FailNode, Recover int
}

// DefaultTraceProfile mirrors GenerateTrace's churn mix and adds a
// moderate failure regime: transient events are ~30% of the trace,
// recoveries roughly pacing failures so outages are windows, not a
// monotone slide into darkness.
func DefaultTraceProfile() TraceProfile {
	return TraceProfile{
		SetWeight:  30,
		AddEdge:    18,
		RemoveEdge: 10,
		AddNode:    10,
		FailEdge:   12,
		FailNode:   4,
		Recover:    16,
	}
}

func (p TraceProfile) total() int {
	return p.SetWeight + p.AddEdge + p.RemoveEdge + p.AddNode + p.FailEdge + p.FailNode + p.Recover
}

// GenerateFaultTrace produces a deterministic, seedable mutation trace
// of length k over base, mixing permanent churn with transient failure
// and recovery events per the profile. Safety contract (checked per
// prefix by the tests): every mutation replays, and the LIVE subgraph
// — up nodes over up edges — stays connected after every event, so a
// scheme routing around the fault overlay always has a path to offer.
// The permanent-op mix replays its own mutations as it goes, exactly
// like GenerateTrace; failures additionally update a FaultSet, which
// is also returned so callers can quiesce the tail
// (FaultSet.RecoveryMutations) or seed a serving-side overlay.
func GenerateFaultTrace(base *graph.Graph, k int, seed uint64, p TraceProfile) ([]Mutation, *FaultSet, error) {
	total := p.total()
	if total <= 0 {
		return nil, nil, fmt.Errorf("dynamic: GenerateFaultTrace: profile has no positive weight")
	}
	if total == p.Recover {
		// Recover-only would spin forever with nothing to recover.
		return nil, nil, fmt.Errorf("dynamic: GenerateFaultTrace: profile needs a positive non-Recover weight")
	}
	rng := xrand.New(seed ^ 0xfa17_c0de_d00d_f00d)
	cur := base
	fs := NewFaultSet()
	wlo, whi := base.MinEdgeWeight(), base.MaxEdgeWeight()
	if !(whi > wlo) {
		whi = wlo + 1
	}
	weight := func() float64 { return wlo + rng.Float64()*(whi-wlo) }

	var muts []Mutation
	step := func(ms ...Mutation) error {
		g, err := Replay(cur, ms)
		if err != nil {
			return err
		}
		cur = g
		for _, m := range ms {
			fs.Observe(m)
		}
		muts = append(muts, ms...)
		return nil
	}
	randomEdge := func() (u, v graph.NodeID) {
		for {
			x := graph.NodeID(rng.Intn(cur.N()))
			deg := cur.Degree(x)
			if deg == 0 {
				continue
			}
			e := cur.EdgeAt(x, rng.Intn(deg))
			return x, e.To
		}
	}
	// survives reports whether the live subgraph stays connected after
	// hypothetically applying delta to the fault overlay on graph g.
	survives := func(g *graph.Graph, delta Mutation) bool {
		fs.Observe(delta)
		ok := liveConnected(g, fs)
		// Undo: fail<->recover and removeedge's clear are inverses only
		// when the element was up before, which the call sites ensure.
		switch delta.Op {
		case OpFailEdge:
			delete(fs.edges, pairKey(delta.U, delta.V))
		case OpFailNode:
			delete(fs.nodes, delta.Name)
		}
		return ok
	}

	nextName := uint64(0xFA17_0000_0000_0000) + seed<<16
	stuck := 0
	for len(muts) < k {
		n0 := len(muts)
		roll := rng.Intn(total)
		switch {
		case roll < p.SetWeight:
			u, v := randomEdge()
			if err := step(Mutation{Op: OpSetWeight, U: cur.Name(u), V: cur.Name(v), W: weight()}); err != nil {
				return nil, nil, err
			}
		case roll < p.SetWeight+p.AddEdge:
			for try := 0; try < 16; try++ {
				u := graph.NodeID(rng.Intn(cur.N()))
				v := graph.NodeID(rng.Intn(cur.N()))
				if u == v || cur.Adjacent(u, v) {
					continue
				}
				if err := step(Mutation{Op: OpAddEdge, U: cur.Name(u), V: cur.Name(v), W: weight()}); err != nil {
					return nil, nil, err
				}
				break
			}
		case roll < p.SetWeight+p.AddEdge+p.RemoveEdge:
			// Remove an edge, but never cut the graph — nor the live
			// subgraph, which is what the serving path routes on.
			for try := 0; try < 16; try++ {
				u, v := randomEdge()
				if fs.EdgeDown(cur.Name(u), cur.Name(v)) {
					continue // removing a down pair cannot cut the live view, but keep churn on live links
				}
				m := Mutation{Op: OpRemoveEdge, U: cur.Name(u), V: cur.Name(v)}
				g, err := Replay(cur, []Mutation{m})
				if err != nil {
					return nil, nil, err
				}
				if !g.Connected() || !liveConnected(g, fs) {
					continue
				}
				cur = g
				fs.Observe(m)
				muts = append(muts, m)
				break
			}
		case roll < p.SetWeight+p.AddEdge+p.RemoveEdge+p.AddNode:
			for {
				if _, taken := cur.Lookup(nextName); !taken {
					break
				}
				nextName++
			}
			// Anchor to an up node: anchored to a down one, the join
			// would enter the live view already disconnected.
			anchor := graph.NodeID(-1)
			for try := 0; try < 32; try++ {
				a := graph.NodeID(rng.Intn(cur.N()))
				if !fs.NodeDown(cur.Name(a)) {
					anchor = a
					break
				}
			}
			if anchor < 0 {
				continue
			}
			if err := step(Mutation{Op: OpAddNode, Name: nextName, V: cur.Name(anchor), W: weight()}); err != nil {
				return nil, nil, err
			}
			nextName++
		case roll < p.SetWeight+p.AddEdge+p.RemoveEdge+p.AddNode+p.FailEdge:
			for try := 0; try < 16; try++ {
				u, v := randomEdge()
				un, vn := cur.Name(u), cur.Name(v)
				if fs.EdgeDown(un, vn) {
					continue
				}
				m := Mutation{Op: OpFailEdge, U: un, V: vn}
				if !survives(cur, m) {
					continue
				}
				if err := step(m); err != nil {
					return nil, nil, err
				}
				break
			}
		case roll < p.SetWeight+p.AddEdge+p.RemoveEdge+p.AddNode+p.FailEdge+p.FailNode:
			for try := 0; try < 16; try++ {
				x := graph.NodeID(rng.Intn(cur.N()))
				name := cur.Name(x)
				if fs.NodeDown(name) {
					continue
				}
				m := Mutation{Op: OpFailNode, Name: name}
				if !survives(cur, m) {
					continue
				}
				if err := step(m); err != nil {
					return nil, nil, err
				}
				break
			}
		default: // recover one outstanding fault
			downE, downN := fs.DownEdges(), fs.DownNodes()
			if len(downE)+len(downN) == 0 {
				continue
			}
			i := rng.Intn(len(downE) + len(downN))
			var m Mutation
			if i < len(downE) {
				m = Mutation{Op: OpRecoverEdge, U: downE[i][0], V: downE[i][1]}
			} else {
				m = Mutation{Op: OpRecoverNode, Name: downN[i-len(downE)]}
			}
			if err := step(m); err != nil {
				return nil, nil, err
			}
		}
		// Progress guard: a degenerate profile on a degenerate graph
		// (say, AddEdge-only on a clique) could spin forever in its
		// retry loops; fail loudly instead.
		if len(muts) == n0 {
			if stuck++; stuck > 1000 {
				return nil, nil, fmt.Errorf("dynamic: GenerateFaultTrace: no admissible mutation after %d attempts (profile %+v)", stuck, p)
			}
		} else {
			stuck = 0
		}
	}
	return muts[:k], fs, nil
}
