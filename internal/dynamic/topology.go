package dynamic

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"compactroute/internal/graph"
	"compactroute/internal/routeerr"
	"compactroute/internal/schemes"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// Version is one sealed topology snapshot: the graph at a mutation-log
// position plus the schemes built over it, all immutable once
// published. Lineage fields record where it came from — the parent
// version and the half-open mutation range (MutFrom, MutTo] replayed
// on top of it — and what the build cost, which is what the snapshot
// store persists alongside the scheme bytes.
type Version struct {
	// ID numbers versions from 0 (the base topology).
	ID uint64
	// Parent is the version this one was replayed from (== ID for the
	// base version, which has no parent).
	Parent uint64
	// MutFrom, MutTo delimit the applied mutation range (MutFrom,
	// MutTo] — MutTo is the log position this version seals.
	MutFrom, MutTo uint64
	// BuildWall is the background construction cost of this version
	// (replay + every scheme build), none of it on the serving path.
	BuildWall time.Duration

	// Aux is an opaque per-version attachment for embedding layers,
	// set in PreSwap and immutable once the version is published (the
	// facade hangs its ready-to-route scheme wrappers here, so a
	// request resolves everything it needs with the one atomic load
	// Swapper.Current costs).
	Aux any

	graph   *graph.Graph
	engine  *sim.Engine
	traced  *sim.Engine // Trace=true twin of engine, for RoutePath
	schemes map[string]schemes.Scheme
}

// Graph returns the sealed topology.
func (v *Version) Graph() *graph.Graph { return v.graph }

// Scheme returns the built scheme of one kind, or nil.
func (v *Version) Scheme(kind string) schemes.Scheme { return v.schemes[kind] }

// Kinds returns the kinds built into this version, sorted.
func (v *Version) Kinds() []string {
	out := make([]string, 0, len(v.schemes))
	for kind := range v.schemes {
		out = append(out, kind)
	}
	sort.Strings(out)
	return out
}

// Route routes one message on this version's scheme of the given
// kind, entirely on this version — the caller owns the version
// resolution (Swapper.Current), so a concurrent swap cannot move the
// route between topologies mid-walk. An unknown source name wraps
// routeerr.ErrUnknownName; an unknown destination is searched for and
// reported as non-delivery (the name-independent model).
func (v *Version) Route(ctx context.Context, kind string, srcName, dstName uint64) (sim.Result, error) {
	s, ok := v.schemes[kind]
	if !ok {
		return sim.Result{}, fmt.Errorf("dynamic: version %d: %w %q", v.ID, routeerr.ErrUnknownKind, kind)
	}
	src, ok := v.graph.Lookup(srcName)
	if !ok {
		return sim.Result{}, fmt.Errorf("dynamic: version %d: source name %#x: %w", v.ID, srcName, routeerr.ErrUnknownName)
	}
	return v.engine.RouteCtx(ctx, s, src, dstName)
}

// RoutePath is Route with the traversed path returned as external
// names (src first). It runs on a tracing twin of the version's engine
// — the untraced Route stays allocation-lean — and exists for layers
// that must inspect the walk, like the fault-overlay check in
// serve.Repairer: a path is usable only if no element of it is down.
func (v *Version) RoutePath(ctx context.Context, kind string, srcName, dstName uint64) (sim.Result, []uint64, error) {
	s, ok := v.schemes[kind]
	if !ok {
		return sim.Result{}, nil, fmt.Errorf("dynamic: version %d: %w %q", v.ID, routeerr.ErrUnknownKind, kind)
	}
	src, ok := v.graph.Lookup(srcName)
	if !ok {
		return sim.Result{}, nil, fmt.Errorf("dynamic: version %d: source name %#x: %w", v.ID, srcName, routeerr.ErrUnknownName)
	}
	res, err := v.traced.RouteCtx(ctx, s, src, dstName)
	if err != nil {
		return res, nil, err
	}
	names := make([]uint64, len(res.Path))
	for i, id := range res.Path {
		names[i] = v.graph.Name(id)
	}
	return res, names, nil
}

// TopologyOptions configures NewTopology.
type TopologyOptions struct {
	// Configs names the scheme kinds every version builds, one per
	// entry. At least one is required; kinds must be distinct.
	Configs []schemes.Config
	// Workers bounds the streaming build's shortest-path fan-out;
	// 0 means GOMAXPROCS.
	Workers int
	// PreSwap, when set, runs after a candidate version is fully built
	// and before it is swapped in. It is the hook for anything heavy
	// that must complete before the version serves — computing the
	// metric, persisting the snapshot (Store.Save). An error aborts
	// the rebuild; the old version keeps serving and the mutation
	// range stays pending.
	PreSwap func(*Version) error
}

// Topology is the dynamic-topology orchestrator: one mutation log, one
// swapper, and a serialized rebuild path connecting them. Apply is
// cheap and concurrent-safe; Rebuild does all expensive work in the
// calling goroutine (daemons run it in the background) and publishes
// the result with a sub-millisecond swap.
type Topology struct {
	opts    TopologyOptions
	log     *Log
	swapper *Swapper

	rebuildMu sync.Mutex // one rebuild/stage/commit at a time
	staged    *Version   // built but not yet committed (guarded by rebuildMu)
}

// NewTopology seals g as version 0, builds its schemes synchronously
// in the calling goroutine, and starts the mutation log. The context
// cancels the version-0 build (builds at scale take seconds to
// minutes; construction should not outlive its caller).
func NewTopology(ctx context.Context, g *graph.Graph, opts TopologyOptions) (*Topology, error) {
	if len(opts.Configs) == 0 {
		return nil, fmt.Errorf("dynamic: NewTopology needs at least one scheme config")
	}
	seen := make(map[string]bool, len(opts.Configs))
	for _, cfg := range opts.Configs {
		if seen[cfg.Kind] {
			return nil, fmt.Errorf("dynamic: duplicate kind %q in configs", cfg.Kind)
		}
		seen[cfg.Kind] = true
	}
	t := &Topology{opts: opts, log: NewLog(g)}
	v0, err := t.build(ctx, g, 0, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	if opts.PreSwap != nil {
		if err := opts.PreSwap(v0); err != nil {
			return nil, fmt.Errorf("dynamic: version 0 pre-swap: %w", err)
		}
	}
	t.swapper = NewSwapper(v0)
	return t, nil
}

// build constructs one version over g through the streaming pipeline.
func (t *Topology) build(ctx context.Context, g *graph.Graph, id, parent, mutFrom, mutTo uint64) (*Version, error) {
	v := &Version{
		ID:      id,
		Parent:  parent,
		MutFrom: mutFrom,
		MutTo:   mutTo,
		graph:   g,
		engine:  sim.NewEngine(g),
		traced:  sim.NewEngine(g),
		schemes: make(map[string]schemes.Scheme, len(t.opts.Configs)),
	}
	v.traced.Trace = true
	t0 := time.Now()
	for _, cfg := range t.opts.Configs {
		s, err := schemes.BuildStream(ctx, g, sssp.Streamed(g, t.opts.Workers), cfg)
		if err != nil {
			return nil, fmt.Errorf("dynamic: building version %d kind %q: %w", id, cfg.Kind, err)
		}
		v.schemes[cfg.Kind] = s
	}
	v.BuildWall = time.Since(t0)
	return v, nil
}

// Log exposes the mutation log (Append, Len, Slice).
func (t *Topology) Log() *Log { return t.log }

// Swapper exposes the serving handle (Current, OnSwap, pause stats).
func (t *Topology) Swapper() *Swapper { return t.swapper }

// Apply validates and appends mutations to the log; the served
// topology is unchanged until the next Rebuild. It returns the
// sequence number of the last accepted mutation.
func (t *Topology) Apply(ms ...Mutation) (uint64, error) { return t.log.Append(ms...) }

// Current returns the serving version.
func (t *Topology) Current() *Version { return t.swapper.Current() }

// Pending returns how many accepted mutations the serving version has
// not yet absorbed.
func (t *Topology) Pending() uint64 {
	// Order matters under concurrency: reading the version first could
	// miss a swap and report phantom pending work, but reading the log
	// first only ever undercounts mutations that arrived mid-call.
	n := t.log.Len()
	cur := t.Current()
	if n <= cur.MutTo {
		return 0
	}
	return n - cur.MutTo
}

// Rebuild seals the log at its current position, replays the pending
// range onto the serving graph in the background, builds every
// configured scheme through the streaming pipeline, runs PreSwap, and
// hot-swaps the result in. Rebuilds are serialized; concurrent callers
// queue. With nothing pending the serving version is returned
// unchanged (no swap, zero pause).
//
// On any error — replay, build, canceled ctx, PreSwap — the old
// version keeps serving untouched and the mutation range stays
// pending for the next attempt.
func (t *Topology) Rebuild(ctx context.Context) (v *Version, pause time.Duration, err error) {
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	next, err := t.stageLocked(ctx)
	if err != nil {
		return nil, 0, err
	}
	if next == t.Current() {
		return next, 0, nil
	}
	t.staged = nil
	return next, t.swapper.Swap(next), nil
}

// Stage is the first half of a two-phase rebuild: it seals the log,
// replays the pending range, builds every configured kind, and runs
// PreSwap — all the expensive work — but does NOT publish the result.
// The staged version waits for Commit; until then the old version
// keeps serving. With nothing pending the serving version is returned
// (and committing its ID is a no-op). Calling Stage again re-stages
// against whatever is pending by then — a previously staged version at
// the same log position is reused, a stale one is discarded and
// rebuilt. A plain Rebuild also discards any staged version.
//
// The split exists for coordinated cluster cut-overs (internal/
// cluster): every shard stages, the coordinator checks the staged
// versions agree, and only then do all shards Commit — so the cluster
// never serves two topologies longer than the commit fan-out takes.
func (t *Topology) Stage(ctx context.Context) (*Version, error) {
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	return t.stageLocked(ctx)
}

// stageLocked builds (or reuses) the staged version under rebuildMu.
func (t *Topology) stageLocked(ctx context.Context) (*Version, error) {
	cur := t.Current()
	to := t.log.Len()
	if to == cur.MutTo {
		t.staged = nil // nothing pending: any staged version is obsolete
		return cur, nil
	}
	if s := t.staged; s != nil && s.Parent == cur.ID && s.MutTo == to {
		return s, nil // already staged at exactly this log position
	}
	muts := t.log.Slice(cur.MutTo, to)
	g, err := Replay(cur.graph, muts)
	if err != nil {
		return nil, err
	}
	next, err := t.build(ctx, g, cur.ID+1, cur.ID, cur.MutTo, to)
	if err != nil {
		return nil, err
	}
	if t.opts.PreSwap != nil {
		if err := t.opts.PreSwap(next); err != nil {
			return nil, fmt.Errorf("dynamic: version %d pre-swap: %w", next.ID, err)
		}
	}
	t.staged = next
	return next, nil
}

// Commit is the second half of a two-phase rebuild: it publishes the
// staged version — if and only if its ID is the one the caller names.
// Committing the ID of the version already serving is an idempotent
// no-op (zero pause), so a coordinator may safely retry. Anything else
// wraps routeerr.ErrVersionSkew and leaves serving untouched:
// committing blind would put this node on a topology its peers never
// agreed on.
func (t *Topology) Commit(id uint64) (*Version, time.Duration, error) {
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	cur := t.Current()
	if cur.ID == id {
		return cur, 0, nil
	}
	if t.staged == nil {
		return nil, 0, fmt.Errorf("dynamic: commit version %d: nothing staged (serving %d): %w",
			id, cur.ID, routeerr.ErrVersionSkew)
	}
	if t.staged.ID != id {
		return nil, 0, fmt.Errorf("dynamic: commit version %d: staged version is %d: %w",
			id, t.staged.ID, routeerr.ErrVersionSkew)
	}
	v := t.staged
	t.staged = nil
	return v, t.swapper.Swap(v), nil
}

// Staged returns the staged-but-uncommitted version, or nil.
func (t *Topology) Staged() *Version {
	t.rebuildMu.Lock()
	defer t.rebuildMu.Unlock()
	return t.staged
}
