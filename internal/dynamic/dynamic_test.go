package dynamic

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"compactroute/internal/codec"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/routeerr"
	"compactroute/internal/schemes"
	"compactroute/internal/sssp"
)

func testGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	g := gen.Gnp(seed, n, 8/float64(n), gen.Uniform(1, 8))
	if !g.Connected() {
		t.Fatalf("test graph gnp(n=%d, seed=%d) not connected", n, seed)
	}
	return g
}

// graphFingerprint captures the CSR-visible structure: names in id
// order and every edge in canonical order with its weight. Two graphs
// with equal fingerprints route identically under every deterministic
// scheme build.
func graphFingerprint(g *graph.Graph) string {
	var b bytes.Buffer
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		b.WriteString(string(rune(0)))
		json.NewEncoder(&b).Encode(g.Name(u))
		g.Neighbors(u, func(e graph.Edge) bool {
			json.NewEncoder(&b).Encode([3]any{e.To, e.Weight, e.Port})
			return true
		})
	}
	return b.String()
}

func TestLogValidatesAppends(t *testing.T) {
	g := testGraph(t, 64, 3)
	l := NewLog(g)
	u, v := g.Name(0), g.Name(1)
	cases := []struct {
		name string
		m    Mutation
	}{
		{"dup node", Mutation{Op: OpAddNode, Name: u}},
		{"unknown endpoint", Mutation{Op: OpAddEdge, U: 0xdead_beef_dead, V: v, W: 1}},
		{"self loop", Mutation{Op: OpAddEdge, U: u, V: u, W: 1}},
		{"bad weight", Mutation{Op: OpAddEdge, U: u, V: v, W: -1}},
		{"nan weight", Mutation{Op: OpSetWeight, U: u, V: v, W: nan()}},
		{"invalid op", Mutation{Op: Op(99)}},
		// A half-formed join (anchor without a positive weight) must be
		// validated as anchored and rejected — not silently admitted as
		// an isolated, unroutable node.
		{"anchor without weight", Mutation{Op: OpAddNode, Name: 0x77, V: u}},
		{"anchor bad weight", Mutation{Op: OpAddNode, Name: 0x77, V: u, W: -2}},
		{"unknown anchor", Mutation{Op: OpAddNode, Name: 0x77, V: 0xdead_beef_dead, W: 1}},
	}
	for _, tc := range cases {
		if _, err := l.Append(tc.m); err == nil {
			t.Errorf("%s: Append accepted %v", tc.name, tc.m)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("rejected appends advanced the log to %d", l.Len())
	}
	// A batch with a late invalid mutation must commit nothing.
	if _, err := l.Append(
		Mutation{Op: OpAddNode, Name: 0x1234},
		Mutation{Op: OpAddNode, Name: 0x1234},
	); err == nil {
		t.Fatal("batch with duplicate addnode accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("failed batch advanced the log to %d", l.Len())
	}
	// Batch-internal sequencing: an edge to a node added earlier in
	// the same batch is valid.
	last, err := l.Append(
		Mutation{Op: OpAddNode, Name: 0x5678},
		Mutation{Op: OpAddEdge, U: 0x5678, V: u, W: 2},
	)
	if err != nil || last != 2 {
		t.Fatalf("sequenced batch: last=%d err=%v", last, err)
	}
	// Removing a removed edge fails at append time.
	if _, err := l.Append(Mutation{Op: OpRemoveEdge, U: 0x5678, V: u}); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := l.Append(Mutation{Op: OpSetWeight, U: 0x5678, V: u, W: 1}); err == nil {
		t.Fatal("setweight on removed edge accepted")
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestReplayAppliesEveryOp(t *testing.T) {
	g := testGraph(t, 32, 5)
	u := g.Name(0)
	// Find an existing edge to remove and one to reweight.
	var eu, ev, ru, rv uint64
	found := 0
	g.ForEachEdge(func(a, b graph.NodeID, w float64) bool {
		switch found {
		case 0:
			eu, ev = g.Name(a), g.Name(b)
		case 1:
			ru, rv = g.Name(a), g.Name(b)
		}
		found++
		return found < 2
	})
	muts := []Mutation{
		{Op: OpAddNode, Name: 0xABC},
		{Op: OpAddEdge, U: 0xABC, V: u, W: 3.5},
		{Op: OpRemoveEdge, U: eu, V: ev},
		{Op: OpSetWeight, U: ru, V: rv, W: 7.25},
	}
	g2, err := Replay(g, muts)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N()+1 || g2.M() != g.M() {
		t.Fatalf("got n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), g.N()+1, g.M())
	}
	id, ok := g2.Lookup(0xABC)
	if !ok || g2.Degree(id) != 1 {
		t.Fatalf("added node: ok=%v degree=%d", ok, g2.Degree(id))
	}
	a2, _ := g2.Lookup(eu)
	b2, _ := g2.Lookup(ev)
	if g2.Adjacent(a2, b2) {
		t.Fatal("removed edge still present")
	}
	c2, _ := g2.Lookup(ru)
	d2, _ := g2.Lookup(rv)
	p := g2.PortTo(c2, d2)
	if p < 0 || g2.EdgeAt(c2, p).Weight != 7.25 {
		t.Fatalf("setweight: port %d", p)
	}
	// Base node ids are preserved.
	for i := 0; i < g.N(); i++ {
		if g.Name(graph.NodeID(i)) != g2.Name(graph.NodeID(i)) {
			t.Fatalf("node id %d renamed", i)
		}
	}
}

// TestReplayComposition pins the property hot-swap correctness rests
// on: replaying a trace incrementally (in arbitrary batch splits)
// builds a graph byte-identical in structure to the one-shot replay.
func TestReplayComposition(t *testing.T) {
	g := testGraph(t, 96, 7)
	muts, err := GenerateTrace(g, 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Replay(g, muts)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range [][]int{{40, 80}, {1, 2, 3}, {119}, {60}} {
		cur := g
		prev := 0
		for _, at := range append(split, len(muts)) {
			cur, err = Replay(cur, muts[prev:at])
			if err != nil {
				t.Fatalf("split %v at %d: %v", split, at, err)
			}
			prev = at
		}
		if graphFingerprint(cur) != graphFingerprint(oneShot) {
			t.Fatalf("split %v: incremental replay diverged from one-shot", split)
		}
	}
}

func TestGenerateTraceIsDeterministicAndSafe(t *testing.T) {
	g := testGraph(t, 80, 9)
	a, err := GenerateTrace(g, 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(g, 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if len(a) != 150 {
		t.Fatalf("trace length %d, want 150", len(a))
	}
	// Every prefix replays and stays connected (the generator's
	// contract: schemes must keep delivering during churn).
	cur := g
	for i, m := range a {
		cur, err = Replay(cur, []Mutation{m})
		if err != nil {
			t.Fatalf("mutation %d (%v): %v", i, m, err)
		}
		if !cur.Connected() {
			t.Fatalf("mutation %d (%v) disconnected the graph", i, m)
		}
	}
	c, err := GenerateTrace(g, 150, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := testGraph(t, 48, 13)
	muts, err := GenerateTrace(g, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, muts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(muts, got) {
		t.Fatal("trace text round-trip diverged")
	}

	// JSON round-trip (the POST /mutate wire form).
	jb, err := json.Marshal(muts)
	if err != nil {
		t.Fatal(err)
	}
	var jm []Mutation
	if err := json.Unmarshal(jb, &jm); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(muts, jm) {
		t.Fatal("JSON round-trip diverged")
	}
	// Missing required fields are rejected.
	var m Mutation
	if err := json.Unmarshal([]byte(`{"op":"addedge","u":1,"v":2}`), &m); err == nil {
		t.Fatal("addedge without w accepted")
	}
	if err := json.Unmarshal([]byte(`{"op":"frobnicate"}`), &m); err == nil {
		t.Fatal("unknown op accepted")
	}
	// A zero anchored weight must fail at the wire, even when the
	// anchor is the node named 0 (where Anchored() could not tell the
	// half-formed join from a plain addnode).
	if err := json.Unmarshal([]byte(`{"op":"addnode","name":9,"v":0,"w":0}`), &m); err == nil {
		t.Fatal("anchored addnode with zero weight accepted (JSON)")
	}
	if _, err := ReadTrace(strings.NewReader("mut 1\naddnode 9 0 0\n")); err == nil {
		t.Fatal("anchored addnode with zero weight accepted (trace)")
	}
}

func testTopology(t *testing.T, g *graph.Graph, kinds ...string) *Topology {
	t.Helper()
	cfgs := make([]schemes.Config, len(kinds))
	for i, k := range kinds {
		cfgs[i] = schemes.Config{Kind: k, K: 2, Seed: 1}
	}
	tp, err := NewTopology(context.Background(), g, TopologyOptions{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestTopologyRebuildSwapsAndMatchesColdBuild(t *testing.T) {
	g := testGraph(t, 72, 17)
	tp := testTopology(t, g, schemes.KindFullTable, schemes.KindLandmarkChain)
	v0 := tp.Current()
	if v0.ID != 0 || v0.MutTo != 0 {
		t.Fatalf("v0 = %+v", v0)
	}
	muts, err := GenerateTrace(g, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Apply(muts[:25]...); err != nil {
		t.Fatal(err)
	}
	if got := tp.Pending(); got != 25 {
		t.Fatalf("pending = %d, want 25", got)
	}
	v1, pause, err := tp.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != 1 || v1.Parent != 0 || v1.MutFrom != 0 || v1.MutTo != 25 {
		t.Fatalf("v1 lineage = %+v", v1)
	}
	if pause <= 0 {
		t.Fatalf("pause = %v", pause)
	}
	if tp.Current() != v1 {
		t.Fatal("swap did not publish v1")
	}
	if tp.Pending() != 0 {
		t.Fatalf("pending after rebuild = %d", tp.Pending())
	}
	if _, err := tp.Apply(muts[25:]...); err != nil {
		t.Fatal(err)
	}
	v2, _, err := tp.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v2.MutFrom != 25 || v2.MutTo != 40 || v2.Parent != 1 {
		t.Fatalf("v2 lineage = %+v", v2)
	}

	// The incrementally rebuilt topology must route bit-identically to
	// a cold build of the final graph.
	final, err := Replay(g, muts)
	if err != nil {
		t.Fatal(err)
	}
	if graphFingerprint(final) != graphFingerprint(v2.Graph()) {
		t.Fatal("incremental graph diverged from one-shot replay")
	}
	apsp := sssp.AllPairs(final)
	for _, kind := range []string{schemes.KindFullTable, schemes.KindLandmarkChain} {
		cold, err := schemes.Build(final, apsp, schemes.Config{Kind: kind, K: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < final.N(); s += 7 {
			for d := 0; d < final.N(); d += 5 {
				want, err := tp.Current().Route(context.Background(), kind, final.Name(graph.NodeID(s)), final.Name(graph.NodeID(d)))
				if err != nil {
					t.Fatal(err)
				}
				eng := tp.Current().engine
				_ = eng
				got, err := v2.engine.RouteCtx(context.Background(), cold, graph.NodeID(s), final.Name(graph.NodeID(d)))
				if err != nil {
					t.Fatal(err)
				}
				if want.Delivered != got.Delivered || want.Cost != got.Cost || want.Hops != got.Hops || want.MaxHeaderBits != got.MaxHeaderBits {
					t.Fatalf("%s %d→%d: hot %+v cold %+v", kind, s, d, want, got)
				}
			}
		}
	}
}

func TestTopologyRebuildNoPendingIsNoop(t *testing.T) {
	g := testGraph(t, 40, 19)
	tp := testTopology(t, g, schemes.KindFullTable)
	v0 := tp.Current()
	v, pause, err := tp.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v != v0 || pause != 0 {
		t.Fatalf("no-op rebuild: v=%v pause=%v", v.ID, pause)
	}
	if got := tp.Swapper().Swaps(); got != 0 {
		t.Fatalf("no-op rebuild swapped %d times", got)
	}
}

func TestTopologyPreSwapFailureKeepsServing(t *testing.T) {
	g := testGraph(t, 40, 23)
	fail := false
	cfgs := []schemes.Config{{Kind: schemes.KindFullTable, K: 2, Seed: 1}}
	boom := errors.New("boom")
	tp, err := NewTopology(context.Background(), g, TopologyOptions{Configs: cfgs, PreSwap: func(v *Version) error {
		if fail {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Apply(Mutation{Op: OpSetWeight, U: g.Name(0), V: firstNeighborName(g, 0), W: 2}); err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, _, err := tp.Rebuild(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("rebuild error = %v", err)
	}
	if tp.Current().ID != 0 {
		t.Fatal("failed rebuild swapped anyway")
	}
	if tp.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (range must stay pending)", tp.Pending())
	}
	fail = false
	v, _, err := tp.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 || tp.Pending() != 0 {
		t.Fatalf("retry: v=%d pending=%d", v.ID, tp.Pending())
	}
}

func firstNeighborName(g *graph.Graph, u graph.NodeID) uint64 {
	var name uint64
	g.Neighbors(u, func(e graph.Edge) bool {
		name = g.Name(e.To)
		return false
	})
	return name
}

func TestVersionRouteErrors(t *testing.T) {
	g := testGraph(t, 32, 29)
	tp := testTopology(t, g, schemes.KindFullTable)
	v := tp.Current()
	if _, err := v.Route(context.Background(), "nope", g.Name(0), g.Name(1)); !errors.Is(err, routeerr.ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := v.Route(context.Background(), schemes.KindFullTable, 0xdead_dead_dead, g.Name(1)); !errors.Is(err, routeerr.ErrUnknownName) {
		t.Fatalf("unknown source: %v", err)
	}
	res, err := v.Route(context.Background(), schemes.KindFullTable, g.Name(0), 0xdead_dead_dead)
	if err != nil || res.Delivered {
		t.Fatalf("unknown destination: res=%+v err=%v", res, err)
	}
}

func TestSwapperHooksAndPauseStats(t *testing.T) {
	v0 := &Version{ID: 0}
	s := NewSwapper(v0)
	var hookSaw *Version
	s.OnSwap(func(v *Version) { hookSaw = v })
	v1 := &Version{ID: 1}
	pause := s.Swap(v1)
	if hookSaw != v1 {
		t.Fatal("hook did not run with the new version")
	}
	if s.Current() != v1 || s.Swaps() != 1 {
		t.Fatalf("current=%v swaps=%d", s.Current().ID, s.Swaps())
	}
	if s.LastPause() != pause || s.MaxPause() < pause {
		t.Fatalf("pause stats: last=%v max=%v want %v", s.LastPause(), s.MaxPause(), pause)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	g := testGraph(t, 56, 31)
	tp := testTopology(t, g, schemes.KindFullTable, schemes.KindTZ)
	dir := t.TempDir()
	st, err := NewStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(tp.Current()); err != nil {
		t.Fatal(err)
	}
	muts, err := GenerateTrace(g, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	v1, _, err := tp.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(v1); err != nil {
		t.Fatal(err)
	}
	ms, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Lineage.Version != 0 || ms[1].Lineage.Version != 1 {
		t.Fatalf("manifests: %+v", ms)
	}
	if ms[1].Lineage.MutTo != 20 || ms[1].Lineage.Parent != 0 {
		t.Fatalf("v1 lineage: %+v", ms[1].Lineage)
	}
	// tz is not persistable: listed as a kind, absent from Persisted.
	if !reflect.DeepEqual(ms[1].Kinds, []string{schemes.KindFullTable, schemes.KindTZ}) {
		t.Fatalf("kinds: %v", ms[1].Kinds)
	}
	if !reflect.DeepEqual(ms[1].Persisted, []string{schemes.KindFullTable}) {
		t.Fatalf("persisted: %v", ms[1].Persisted)
	}
	g1, err := st.LoadGraph(1)
	if err != nil {
		t.Fatal(err)
	}
	if graphFingerprint(g1) != graphFingerprint(v1.Graph()) {
		t.Fatal("stored graph diverged")
	}
	p, err := st.LoadPayload(1, schemes.KindFullTable)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != codec.KindFullTable || p.Lineage == nil || p.Lineage.Version != 1 {
		t.Fatalf("payload: kind=%s lineage=%+v", p.Kind, p.Lineage)
	}
	if p.Lineage.BuildWallNanos != int64(v1.BuildWall) {
		t.Fatalf("lineage build wall %d != %d", p.Lineage.BuildWallNanos, int64(v1.BuildWall))
	}
	// No stray temp files: the manifest commit is rename-based.
	if tmps, _ := filepath.Glob(filepath.Join(st.Dir(), "*.tmp")); len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
	// One store records one chain: re-committing an existing version
	// id (a daemon restarted against a used directory) must refuse
	// rather than silently interleave snapshots from unrelated chains.
	if err := st.Save(v1); err == nil {
		t.Fatal("Save overwrote a committed version")
	}
	if ms2, err := st.List(); err != nil || len(ms2) != 2 {
		t.Fatalf("refused save damaged the store: %v %v", ms2, err)
	}
}
