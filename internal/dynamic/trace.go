package dynamic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"compactroute/internal/graph"
	"compactroute/internal/xrand"
)

// Mutation trace files are line-oriented text, one mutation per line
// in sequence order, replayable against the graph they were generated
// for (cmd/graphgen -mutations emits both):
//
//	# comment
//	mut <count>
//	addnode <name> [<anchor> <weight>]
//	addedge <u> <v> <weight>
//	removeedge <u> <v>
//	setweight <u> <v> <weight>
//	failedge <u> <v>
//	recoveredge <u> <v>
//	failnode <name>
//	recovernode <name>
//
// All node references are external names in decimal. The fail/recover
// records are the transient failure events (OpFailEdge and friends):
// part of the same ordered stream, replay-validated like every other
// record, but affecting the fault overlay rather than the topology.

// WriteTrace emits the mutations in the trace text format.
func WriteTrace(w io.Writer, muts []Mutation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mut %d\n", len(muts))
	for _, m := range muts {
		if _, err := fmt.Fprintln(bw, m.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a mutation trace, validating the count header and
// each record's shape (replay-level validity — do the endpoints exist —
// is the Log's job, since it depends on the graph the trace meets).
func ReadTrace(r io.Reader) ([]Mutation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var (
		muts   []Mutation
		want   = -1
		lineNo int
	)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("dynamic: trace line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "mut" {
			if want >= 0 {
				return nil, fail("duplicate mut line")
			}
			if len(fields) != 2 {
				return nil, fail("mut needs 1 argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fail("invalid count %q", fields[1])
			}
			want = n
			continue
		}
		if want < 0 {
			return nil, fail("mutation before mut line")
		}
		op, err := ParseOp(fields[0])
		if err != nil {
			return nil, fail("%v", err)
		}
		m := Mutation{Op: op}
		args := fields[1:]
		parseName := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
		switch op {
		case OpAddNode:
			if len(args) != 1 && len(args) != 3 {
				return nil, fail("addnode needs 1 or 3 arguments")
			}
			if m.Name, err = parseName(args[0]); err != nil {
				return nil, fail("invalid name %q", args[0])
			}
			if len(args) == 3 {
				if m.V, err = parseName(args[1]); err != nil {
					return nil, fail("invalid anchor %q", args[1])
				}
				if m.W, err = strconv.ParseFloat(args[2], 64); err != nil {
					return nil, fail("invalid weight %q", args[2])
				}
				// Rejected here, not just at Append: a zero weight would
				// make Anchored() false (the zero value is the unanchored
				// sentinel), silently degrading the join to an isolated
				// node when the anchor is the node named 0.
				if !(m.W > 0) {
					return nil, fail("anchored addnode needs a positive weight, got %q", args[2])
				}
			}
		case OpRemoveEdge, OpFailEdge, OpRecoverEdge:
			if len(args) != 2 {
				return nil, fail("%s needs 2 arguments", op)
			}
			if m.U, err = parseName(args[0]); err == nil {
				m.V, err = parseName(args[1])
			}
			if err != nil {
				return nil, fail("invalid endpoints %q", line)
			}
		case OpFailNode, OpRecoverNode:
			if len(args) != 1 {
				return nil, fail("%s needs 1 argument", op)
			}
			if m.Name, err = parseName(args[0]); err != nil {
				return nil, fail("invalid name %q", args[0])
			}
		case OpAddEdge, OpSetWeight:
			if len(args) != 3 {
				return nil, fail("%s needs 3 arguments", op)
			}
			if m.U, err = parseName(args[0]); err == nil {
				m.V, err = parseName(args[1])
			}
			if err != nil {
				return nil, fail("invalid endpoints %q", line)
			}
			if m.W, err = strconv.ParseFloat(args[2], 64); err != nil {
				return nil, fail("invalid weight %q", args[2])
			}
		}
		muts = append(muts, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dynamic: trace: %w", err)
	}
	if want < 0 {
		return nil, fmt.Errorf("dynamic: trace: missing mut line")
	}
	if len(muts) != want {
		return nil, fmt.Errorf("dynamic: trace: declared %d mutations, found %d", want, len(muts))
	}
	return muts, nil
}

// mutationJSON is the wire shape of a Mutation (POST /mutate bodies):
// {"op":"setweight","u":7,"v":12,"w":2.5} — op strings as in the trace
// format, names as JSON numbers.
type mutationJSON struct {
	Op   string   `json:"op"`
	Name *uint64  `json:"name,omitempty"`
	U    *uint64  `json:"u,omitempty"`
	V    *uint64  `json:"v,omitempty"`
	W    *float64 `json:"w,omitempty"`
}

// MarshalJSON renders the mutation with its op spelled out and only
// the fields the op uses.
func (m Mutation) MarshalJSON() ([]byte, error) {
	j := mutationJSON{Op: m.Op.String()}
	switch m.Op {
	case OpAddNode:
		j.Name = &m.Name
		if m.Anchored() {
			j.V, j.W = &m.V, &m.W
		}
	case OpRemoveEdge, OpFailEdge, OpRecoverEdge:
		j.U, j.V = &m.U, &m.V
	case OpAddEdge, OpSetWeight:
		j.U, j.V, j.W = &m.U, &m.V, &m.W
	case OpFailNode, OpRecoverNode:
		j.Name = &m.Name
	default:
		return nil, fmt.Errorf("dynamic: marshal: invalid op %d", m.Op)
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the wire shape, requiring exactly the fields
// the op uses.
func (m *Mutation) UnmarshalJSON(data []byte) error {
	var j mutationJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	op, err := ParseOp(j.Op)
	if err != nil {
		return err
	}
	*m = Mutation{Op: op}
	need := func(field string, p *uint64) error {
		if p == nil {
			return fmt.Errorf("dynamic: %s needs %q", op, field)
		}
		return nil
	}
	switch op {
	case OpAddNode:
		if err := need("name", j.Name); err != nil {
			return err
		}
		m.Name = *j.Name
		if j.V != nil || j.W != nil {
			if j.V == nil || j.W == nil {
				return fmt.Errorf("dynamic: anchored addnode needs both %q and %q", "v", "w")
			}
			// A zero weight must fail here: Anchored() uses the zero
			// value as its unanchored sentinel, so letting w=0 through
			// would silently drop the anchor when v names node 0.
			if !(*j.W > 0) {
				return fmt.Errorf("dynamic: anchored addnode needs a positive weight, got %v", *j.W)
			}
			m.V, m.W = *j.V, *j.W
		}
	case OpRemoveEdge, OpAddEdge, OpSetWeight, OpFailEdge, OpRecoverEdge:
		if err := need("u", j.U); err != nil {
			return err
		}
		if err := need("v", j.V); err != nil {
			return err
		}
		m.U, m.V = *j.U, *j.V
		if op == OpAddEdge || op == OpSetWeight {
			if j.W == nil {
				return fmt.Errorf("dynamic: %s needs %q", op, "w")
			}
			m.W = *j.W
		}
	case OpFailNode, OpRecoverNode:
		if err := need("name", j.Name); err != nil {
			return err
		}
		m.Name = *j.Name
	}
	return nil
}

// GenerateTrace produces a deterministic, seedable mutation trace of
// length k, valid against base: every mutation replays, and no
// RemoveEdge ever disconnects the (assumed connected) graph — rebuilt
// schemes must keep delivering during churn, and a partitioned network
// has no finite stretch to measure. The op mix models overlay churn:
// mostly weight changes (links re-cost), some added links, fewer
// removals, occasional node joins (each immediately linked so it is
// routable). Generation replays its own mutations as it goes, so
// validity is checked against the evolving topology, not the base.
func GenerateTrace(base *graph.Graph, k int, seed uint64) ([]Mutation, error) {
	rng := xrand.New(seed ^ 0xd1a2b3c4d5e6f708)
	cur := base
	wlo, whi := base.MinEdgeWeight(), base.MaxEdgeWeight()
	if !(whi > wlo) {
		whi = wlo + 1
	}
	weight := func() float64 { return wlo + rng.Float64()*(whi-wlo) }

	var muts []Mutation
	step := func(ms ...Mutation) error {
		g, err := Replay(cur, ms)
		if err != nil {
			return err
		}
		cur = g
		muts = append(muts, ms...)
		return nil
	}
	randomEdge := func() (u, v graph.NodeID) {
		// Uniform over undirected edges via a uniform CSR slot.
		for {
			x := graph.NodeID(rng.Intn(cur.N()))
			deg := cur.Degree(x)
			if deg == 0 {
				continue
			}
			e := cur.EdgeAt(x, rng.Intn(deg))
			return x, e.To
		}
	}
	nextName := uint64(0xD15C0000_00000000) + seed<<16
	for len(muts) < k {
		switch roll := rng.Intn(100); {
		case roll < 45: // set-weight on a random edge
			u, v := randomEdge()
			if err := step(Mutation{Op: OpSetWeight, U: cur.Name(u), V: cur.Name(v), W: weight()}); err != nil {
				return nil, err
			}
		case roll < 70: // add an edge between a non-adjacent pair
			added := false
			for try := 0; try < 16 && !added; try++ {
				u := graph.NodeID(rng.Intn(cur.N()))
				v := graph.NodeID(rng.Intn(cur.N()))
				if u == v || cur.Adjacent(u, v) {
					continue
				}
				if err := step(Mutation{Op: OpAddEdge, U: cur.Name(u), V: cur.Name(v), W: weight()}); err != nil {
					return nil, err
				}
				added = true
			}
		case roll < 85: // remove an edge, but never cut the graph
			removed := false
			for try := 0; try < 16 && !removed; try++ {
				u, v := randomEdge()
				m := Mutation{Op: OpRemoveEdge, U: cur.Name(u), V: cur.Name(v)}
				g, err := Replay(cur, []Mutation{m})
				if err != nil {
					return nil, err
				}
				if !g.Connected() {
					continue
				}
				cur = g
				muts = append(muts, m)
				removed = true
			}
		default: // node join: fresh name, anchored so it is routable
			for {
				if _, taken := cur.Lookup(nextName); !taken {
					break
				}
				nextName++
			}
			anchor := graph.NodeID(rng.Intn(cur.N()))
			join := Mutation{Op: OpAddNode, Name: nextName, V: cur.Name(anchor), W: weight()}
			if err := step(join); err != nil {
				return nil, err
			}
			nextName++
		}
	}
	return muts[:k], nil
}
