package dynamic

import (
	"sync"
	"sync/atomic"
	"time"
)

// Swapper is the hot-swap serving handle: it publishes exactly one
// immutable *Version at a time through an atomic pointer. A request
// resolves the current version once at admission and routes entirely
// on it, so a concurrent swap can never tear a route across two
// topologies; in-flight routes finish on the version they resolved,
// new requests see the new one.
//
// Swap runs the registered hooks synchronously after the pointer
// store — that is where serving caches are purged (serve.Pool.Purge),
// so a cache can only ever hold results computed on a version at
// least as new as the published one. The whole swap (pointer store +
// hooks) is the serving pause the D1 experiment bounds below a
// millisecond; anything expensive (builds, metric computation,
// persistence) belongs before the swap, not in a hook.
type Swapper struct {
	cur atomic.Pointer[Version]

	mu    sync.Mutex // guards hooks registration
	hooks []func(*Version)

	swaps     atomic.Uint64
	lastPause atomic.Int64 // nanoseconds
	maxPause  atomic.Int64
}

// NewSwapper returns a swapper publishing v0.
func NewSwapper(v0 *Version) *Swapper {
	s := &Swapper{}
	s.cur.Store(v0)
	return s
}

// Current returns the published version (one atomic load — the
// per-request cost of dynamic serving).
func (s *Swapper) Current() *Version { return s.cur.Load() }

// OnSwap registers a hook run synchronously inside every subsequent
// Swap, after the new version is published. Hooks must be fast (they
// are inside the measured pause) and must not call Swap.
func (s *Swapper) OnSwap(fn func(*Version)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// Swap publishes v and runs the hooks, returning the pause — the
// wall time from just before the pointer store to after the last
// hook, the only window in which a new request could still resolve
// the old version while stale cache entries exist.
func (s *Swapper) Swap(v *Version) time.Duration {
	s.mu.Lock()
	hooks := s.hooks
	s.mu.Unlock()
	t0 := time.Now()
	s.cur.Store(v)
	for _, fn := range hooks {
		fn(v)
	}
	pause := time.Since(t0)
	s.swaps.Add(1)
	s.lastPause.Store(int64(pause))
	for {
		old := s.maxPause.Load()
		if int64(pause) <= old || s.maxPause.CompareAndSwap(old, int64(pause)) {
			break
		}
	}
	return pause
}

// Swaps returns how many versions have been published via Swap.
func (s *Swapper) Swaps() uint64 { return s.swaps.Load() }

// LastPause returns the most recent swap's serving pause.
func (s *Swapper) LastPause() time.Duration { return time.Duration(s.lastPause.Load()) }

// MaxPause returns the largest serving pause observed.
func (s *Swapper) MaxPause() time.Duration { return time.Duration(s.maxPause.Load()) }
