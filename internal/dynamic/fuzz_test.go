package dynamic

import (
	"bytes"
	"testing"

	"compactroute/internal/gen"
)

// FuzzReadTrace feeds arbitrary text to the mutation-trace parser,
// seeded with generated churn and failure traces plus handwritten
// lines covering the full op grammar — transient fail/recover events
// included — and malformed near-misses of each. Rejected inputs only
// need to fail cleanly; accepted inputs must round-trip canonically —
// re-emitting the parsed mutations and parsing that must reproduce
// the same bytes, so a trace replays identically no matter how many
// write/read cycles it has been through.
func FuzzReadTrace(f *testing.F) {
	g := gen.Gnp(1, 32, 0.2, gen.Uniform(1, 8))
	muts, err := GenerateTrace(g, 24, 7)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := WriteTrace(&seed, muts); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A mixed churn+failure trace with its recovery tail: every op the
	// format can express, as the writer actually emits it.
	fmuts, fs, err := GenerateFaultTrace(g, 24, 9, DefaultTraceProfile())
	if err != nil {
		f.Fatal(err)
	}
	var fseed bytes.Buffer
	if err := WriteTrace(&fseed, append(fmuts, fs.RecoveryMutations()...)); err != nil {
		f.Fatal(err)
	}
	f.Add(fseed.Bytes())
	f.Add([]byte("# comment\nmut 1\naddedge 1 2 3.5\n"))
	// The transient-event grammar, handwritten: edge events take a
	// pair, node events a single name.
	f.Add([]byte("failedge 1 2\nrecoveredge 1 2\nfailnode 3\nrecovernode 3\n"))
	// Malformed near-misses: arity errors, a weight where none
	// belongs, a truncated op word. All must fail cleanly.
	f.Add([]byte("failedge 1\n"))
	f.Add([]byte("failedge 1 2 3.5\n"))
	f.Add([]byte("failnode 1 2\n"))
	f.Add([]byte("recovernode\n"))
	f.Add([]byte("failedg 1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		muts, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := WriteTrace(&w1, muts); err != nil {
			t.Fatalf("parsed trace failed to re-emit: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-emitted trace failed to parse: %v", err)
		}
		var w2 bytes.Buffer
		if err := WriteTrace(&w2, again); err != nil {
			t.Fatalf("second re-emit failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("write∘read is not a fixed point: the trace format is not canonical")
		}
	})
}
