package codec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodePayload feeds arbitrary bytes to the stream decoder,
// seeded with both golden format versions. Inputs the decoder rejects
// only need to fail cleanly (no panic, no runaway allocation — that is
// what maxCount and the section framing are for); inputs it accepts
// must round-trip canonically: re-encoding the decoded payload and
// decoding that must reproduce the exact same bytes, the
// byte-identical-output contract the persistence layer rests on.
func FuzzDecodePayload(f *testing.F) {
	for _, name := range []string{"golden_v1.crsc", "golden_v2.crsc"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := EncodePayload(&enc1, p); err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
		p2, err := DecodePayload(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		var enc2 bytes.Buffer
		if err := EncodePayload(&enc2, p2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("encode∘decode is not a fixed point: the codec is not canonical")
		}
	})
}
