package codec

import (
	"fmt"

	"compactroute/internal/core"
	"compactroute/internal/cover"
	"compactroute/internal/decomp"
	"compactroute/internal/graph"
	"compactroute/internal/landmark"
	"compactroute/internal/tree"
)

// --- graph section ---

func (e *enc) graph(s *graph.Snapshot) {
	e.u64s(s.Names)
	e.i32s(s.Offsets)
	e.ids(s.Targets)
	e.f64s(s.Weights)
	e.i32s(s.RevPort)
	e.u64(uint64(s.M))
	e.u32(uint32(len(s.LabelIDs)))
	for i, id := range s.LabelIDs {
		e.i32(int32(id))
		e.str(s.Labels[i])
	}
}

func (d *dec) graph() (*graph.Snapshot, error) {
	s := &graph.Snapshot{}
	var err error
	if s.Names, err = d.u64s(); err != nil {
		return nil, err
	}
	if s.Offsets, err = d.i32s(); err != nil {
		return nil, err
	}
	if s.Targets, err = d.ids(); err != nil {
		return nil, err
	}
	if s.Weights, err = d.f64s(); err != nil {
		return nil, err
	}
	if s.RevPort, err = d.i32s(); err != nil {
		return nil, err
	}
	m, err := d.u64()
	if err != nil {
		return nil, err
	}
	if m > maxCount {
		return nil, fmt.Errorf("edge count %d exceeds limit", m)
	}
	s.M = int(m)
	nl, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nl; i++ {
		id, err := d.i32()
		if err != nil {
			return nil, err
		}
		label, err := d.str()
		if err != nil {
			return nil, err
		}
		s.LabelIDs = append(s.LabelIDs, graph.NodeID(id))
		s.Labels = append(s.Labels, label)
	}
	return s, nil
}

// --- params section ---

func (e *enc) params(p *core.Params) {
	e.i32(int32(p.K))
	e.u64(p.Seed)
	e.f64(p.SFactor)
	e.f64(p.LoadFactor)
	e.i32(int32(p.DenseGap))
	e.u8(uint8(p.Mode))
	e.bool(p.DeterministicLandmarks)
}

func (d *dec) params(p *core.Params) error {
	k, err := d.i32()
	if err != nil {
		return err
	}
	p.K = int(k)
	if p.Seed, err = d.u64(); err != nil {
		return err
	}
	if p.SFactor, err = d.f64(); err != nil {
		return err
	}
	if p.LoadFactor, err = d.f64(); err != nil {
		return err
	}
	gap, err := d.i32()
	if err != nil {
		return err
	}
	p.DenseGap = int(gap)
	mode, err := d.u8()
	if err != nil {
		return err
	}
	if mode > uint8(core.DenseOnly) {
		return fmt.Errorf("invalid mode %d", mode)
	}
	p.Mode = core.Mode(mode)
	if p.DeterministicLandmarks, err = d.bool(); err != nil {
		return err
	}
	return nil
}

// --- decomposition section ---

func (e *enc) decomp(s *decomp.Snapshot) {
	e.i32(int32(s.K))
	e.i32(int32(s.DenseGap))
	e.f64(s.MinW)
	e.i32(int32(s.CapJ))
	e.u32(uint32(len(s.Ranges)))
	for u := range s.Ranges {
		e.i32s(s.Ranges[u])
		e.bools(s.Dense[u])
		e.i32s(s.RSet[u])
	}
}

func (d *dec) decomp() (*decomp.Snapshot, error) {
	s := &decomp.Snapshot{}
	k, err := d.i32()
	if err != nil {
		return nil, err
	}
	s.K = int(k)
	gap, err := d.i32()
	if err != nil {
		return nil, err
	}
	s.DenseGap = int(gap)
	if s.MinW, err = d.f64(); err != nil {
		return nil, err
	}
	capJ, err := d.i32()
	if err != nil {
		return nil, err
	}
	s.CapJ = int(capJ)
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	s.Ranges = make([][]int32, n)
	s.Dense = make([][]bool, n)
	s.RSet = make([][]int32, n)
	for u := 0; u < n; u++ {
		if s.Ranges[u], err = d.i32s(); err != nil {
			return nil, err
		}
		if s.Dense[u], err = d.bools(); err != nil {
			return nil, err
		}
		if s.RSet[u], err = d.i32s(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// --- landmark section ---

func (e *enc) landmark(s *landmark.Snapshot) {
	e.i32(int32(s.K))
	e.i32(int32(s.Top))
	e.i32(int32(s.SCap))
	e.i32(int32(s.SCapTop))
	e.i8s(s.Rank)
	e.u32(uint32(len(s.MRank)))
	for u := range s.MRank {
		e.i8s(s.MRank[u])
		e.ids(s.Centers[u])
	}
}

func (d *dec) landmark() (*landmark.Snapshot, error) {
	s := &landmark.Snapshot{}
	for _, dst := range []*int{&s.K, &s.Top, &s.SCap, &s.SCapTop} {
		v, err := d.i32()
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	var err error
	if s.Rank, err = d.i8s(); err != nil {
		return nil, err
	}
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	s.MRank = make([][]int8, n)
	s.Centers = make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		if s.MRank[u], err = d.i8s(); err != nil {
			return nil, err
		}
		if s.Centers[u], err = d.ids(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// --- levels section ---

const (
	levelFlagDense = 1 << 0
	levelFlagSkip  = 1 << 1
)

func (e *enc) levels(levels [][]core.LevelState) {
	e.u32(uint32(len(levels)))
	for u := range levels {
		e.u32(uint32(len(levels[u])))
		for _, ls := range levels[u] {
			flags := uint8(0)
			if ls.Dense {
				flags |= levelFlagDense
			}
			if ls.Skip {
				flags |= levelFlagSkip
			}
			e.u8(flags)
			e.i32(int32(ls.Center))
			e.u8(ls.Bound)
			e.i32(ls.Scale)
			e.i32(ls.TreeIdx)
		}
	}
}

func (d *dec) levels() ([][]core.LevelState, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([][]core.LevelState, n)
	for u := 0; u < n; u++ {
		c, err := d.count()
		if err != nil {
			return nil, err
		}
		ls := make([]core.LevelState, c)
		for i := range ls {
			flags, err := d.u8()
			if err != nil {
				return nil, err
			}
			if flags&^(levelFlagDense|levelFlagSkip) != 0 {
				return nil, fmt.Errorf("invalid level flags %#x", flags)
			}
			ls[i].Dense = flags&levelFlagDense != 0
			ls[i].Skip = flags&levelFlagSkip != 0
			center, err := d.i32()
			if err != nil {
				return nil, err
			}
			ls[i].Center = graph.NodeID(center)
			if ls[i].Bound, err = d.u8(); err != nil {
				return nil, err
			}
			if ls[i].Scale, err = d.i32(); err != nil {
				return nil, err
			}
			if ls[i].TreeIdx, err = d.i32(); err != nil {
				return nil, err
			}
		}
		out[u] = ls
	}
	return out, nil
}

// --- trees section ---

func (e *enc) tree(s *tree.Snapshot) {
	e.ids(s.Nodes)
	e.i32s(s.Parents)
}

func (d *dec) tree() (*tree.Snapshot, error) {
	s := &tree.Snapshot{}
	var err error
	if s.Nodes, err = d.ids(); err != nil {
		return nil, err
	}
	if s.Parents, err = d.i32s(); err != nil {
		return nil, err
	}
	return s, nil
}

func (e *enc) trees(ts []core.CenterTree) {
	e.u32(uint32(len(ts)))
	for _, ct := range ts {
		e.i32(int32(ct.Center))
		e.tree(ct.Tree)
	}
}

func (d *dec) trees() ([]core.CenterTree, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]core.CenterTree, n)
	for i := range out {
		c, err := d.i32()
		if err != nil {
			return nil, err
		}
		out[i].Center = graph.NodeID(c)
		if out[i].Tree, err = d.tree(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- covers section ---

func (e *enc) covers(cs []core.ScaleCover) {
	e.u32(uint32(len(cs)))
	for _, sc := range cs {
		e.i32(sc.Scale)
		e.f64(sc.Cover.Rho)
		e.i32(int32(sc.Cover.K))
		e.bools(sc.Cover.Member)
		e.i32s(sc.Cover.Home)
		e.u32(uint32(len(sc.Cover.Trees)))
		for _, ts := range sc.Cover.Trees {
			e.tree(ts)
		}
	}
}

func (d *dec) covers() ([]core.ScaleCover, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]core.ScaleCover, n)
	for i := range out {
		if out[i].Scale, err = d.i32(); err != nil {
			return nil, err
		}
		cs := &cover.Snapshot{}
		if cs.Rho, err = d.f64(); err != nil {
			return nil, err
		}
		k, err := d.i32()
		if err != nil {
			return nil, err
		}
		cs.K = int(k)
		if cs.Member, err = d.bools(); err != nil {
			return nil, err
		}
		if cs.Home, err = d.i32s(); err != nil {
			return nil, err
		}
		tc, err := d.count()
		if err != nil {
			return nil, err
		}
		cs.Trees = make([]*tree.Snapshot, tc)
		for ti := range cs.Trees {
			if cs.Trees[ti], err = d.tree(); err != nil {
				return nil, err
			}
		}
		out[i].Cover = cs
	}
	return out, nil
}

// --- next-hop section (kind "fulltable") ---

func (e *enc) nextHop(next [][]int32) {
	e.u32(uint32(len(next)))
	for _, row := range next {
		e.i32s(row)
	}
}

func (d *dec) nextHop() ([][]int32, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([][]int32, n)
	for u := range out {
		if out[u], err = d.i32s(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- report section ---

func (e *enc) report(r *core.BuildReport) {
	for _, v := range []int{
		r.ForcedMembers, r.Lemma3Checked, r.Lemma3Violations,
		r.TrieLoadViolations, r.LandmarkTrees, r.CoverTrees,
		r.CoverScales, r.DenseLevels, r.SparseLevels,
	} {
		e.i64(int64(v))
	}
}

func (d *dec) report(r *core.BuildReport) error {
	for _, dst := range []*int{
		&r.ForcedMembers, &r.Lemma3Checked, &r.Lemma3Violations,
		&r.TrieLoadViolations, &r.LandmarkTrees, &r.CoverTrees,
		&r.CoverScales, &r.DenseLevels, &r.SparseLevels,
	} {
		v, err := d.i64()
		if err != nil {
			return err
		}
		*dst = int(v)
	}
	return nil
}

// --- lineage section ---

func (e *enc) lineage(l *Lineage) {
	e.u64(l.Version)
	e.u64(l.Parent)
	e.u64(l.MutFrom)
	e.u64(l.MutTo)
	e.i64(l.BuildWallNanos)
}

func (d *dec) lineage() (*Lineage, error) {
	l := &Lineage{}
	var err error
	if l.Version, err = d.u64(); err != nil {
		return nil, err
	}
	if l.Parent, err = d.u64(); err != nil {
		return nil, err
	}
	if l.MutFrom, err = d.u64(); err != nil {
		return nil, err
	}
	if l.MutTo, err = d.u64(); err != nil {
		return nil, err
	}
	if l.BuildWallNanos, err = d.i64(); err != nil {
		return nil, err
	}
	return l, nil
}
