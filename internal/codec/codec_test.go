package codec_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"compactroute"
	"compactroute/internal/codec"
	"compactroute/internal/core"
	"compactroute/internal/gen"
	"compactroute/internal/xrand"
)

// families are the generator families the round-trip property is
// checked on; the satellite requirement is ≥3.
var families = []struct {
	name string
	net  func() *compactroute.Network
	k    int
}{
	{"gnp", func() *compactroute.Network {
		return compactroute.RandomNetwork(3, 120, 0.06, compactroute.UniformWeights(1, 8))
	}, 3},
	{"grid", func() *compactroute.Network {
		return compactroute.GridNetwork(4, 11, 11, compactroute.UniformWeights(1, 4))
	}, 2},
	{"geometric", func() *compactroute.Network {
		return compactroute.GeometricNetwork(5, 110, 0.22)
	}, 2},
	{"scalefree", func() *compactroute.Network {
		return compactroute.ScaleFreeNetwork(6, 100, 2, compactroute.UniformWeights(1, 6))
	}, 3},
}

func buildFamily(t *testing.T, fi int) *compactroute.Scheme {
	t.Helper()
	f := families[fi]
	s, err := compactroute.NewScheme(f.net(), compactroute.Options{K: f.k, Seed: 9, SFactor: 0.5})
	if err != nil {
		t.Fatalf("%s: %v", f.name, err)
	}
	return s
}

// TestRoundTripProperty is the satellite property test: across ≥3
// generator families, Save→Load must (a) re-encode byte-identically
// and (b) answer ≥1k random RouteByName queries identically (cost and
// hops) to the in-memory original.
func TestRoundTripProperty(t *testing.T) {
	const queriesPerFamily = 300 // ×4 families = 1200 ≥ 1k
	totalQueries := 0
	for fi, f := range families {
		f := f
		fi := fi
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			orig := buildFamily(t, fi)
			net := orig.Network()

			var first bytes.Buffer
			if err := compactroute.Save(&first, orig); err != nil {
				t.Fatal(err)
			}
			loaded, err := compactroute.Load(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// (a) byte-identical re-encoding.
			var second bytes.Buffer
			if err := compactroute.Save(&second, loaded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("re-encoding differs: %d vs %d bytes", first.Len(), second.Len())
			}

			// Storage accounting must survive the trip exactly.
			if orig.MaxTableBits() != loaded.MaxTableBits() {
				t.Fatalf("max table bits: %d vs %d", orig.MaxTableBits(), loaded.MaxTableBits())
			}
			if orig.MeanTableBits() != loaded.MeanTableBits() {
				t.Fatalf("mean table bits: %v vs %v", orig.MeanTableBits(), loaded.MeanTableBits())
			}
			if oc, lc := orig.Core().Report, loaded.Core().Report; oc != lc {
				t.Fatalf("build report: %+v vs %+v", oc, lc)
			}

			// (b) identical routing results on random queries.
			g := net.Graph()
			r := xrand.New(uint64(0xabc + fi))
			for q := 0; q < queriesPerFamily; q++ {
				src := g.Name(compactroute.NodeID(r.Intn(net.N())))
				dst := g.Name(compactroute.NodeID(r.Intn(net.N())))
				a, err1 := orig.RouteByName(src, dst)
				b, err2 := loaded.RouteByName(src, dst)
				if err1 != nil || err2 != nil {
					t.Fatalf("query %#x→%#x: %v / %v", src, dst, err1, err2)
				}
				if a.Delivered != b.Delivered || a.Cost != b.Cost || a.Hops != b.Hops || a.HeaderBits != b.HeaderBits {
					t.Fatalf("query %#x→%#x diverges: %+v vs %+v", src, dst, a, b)
				}
			}
			totalQueries += queriesPerFamily
		})
	}
}

// TestGoldenFile pins the on-disk format: the committed golden file
// (current version) must decode, rehydrate, route, and re-encode to
// the exact committed bytes. Regenerate with CODEC_WRITE_GOLDEN=1 go
// test ./internal/codec after an intentional format change (and bump
// Version).
func TestGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v2.crsc")
	if os.Getenv("CODEC_WRITE_GOLDEN") != "" {
		s := buildGolden(t)
		var buf bytes.Buffer
		if err := codec.Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with CODEC_WRITE_GOLDEN=1)", err)
	}
	s, err := codec.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	// The rehydrated scheme must actually route.
	g := s.G()
	delivered, _, _, err := s.RouteTrace(0, g.Name(compactroute.NodeID(g.N()-1)))
	if err != nil || !delivered {
		t.Fatalf("golden scheme does not route: delivered=%v err=%v", delivered, err)
	}
	var got bytes.Buffer
	if err := codec.Encode(&got, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("golden re-encoding differs from committed file (%d vs %d bytes); "+
			"format changed without a version bump?", len(want), got.Len())
	}
}

// TestGoldenV1StillLoads is the backward-compatibility pin: the
// golden_v1.crsc file was written by the format-v1 encoder (before the
// kind tag existed) and must keep loading forever. Decoding takes the
// v1 path (kind implicitly "paper"); the rehydrated scheme must route
// and must round-trip through the *current* format identically to a
// freshly built equivalent.
func TestGoldenV1StillLoads(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v1.crsc"))
	if err != nil {
		t.Fatalf("%v (the v1 golden is a committed artifact; it is never regenerated)", err)
	}
	p, err := codec.DecodePayload(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != codec.KindPaper || p.Core == nil {
		t.Fatalf("v1 stream decoded as kind %q", p.Kind)
	}
	s, err := codec.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	g := s.G()
	delivered, _, _, err := s.RouteTrace(0, g.Name(compactroute.NodeID(g.N()-1)))
	if err != nil || !delivered {
		t.Fatalf("v1 golden scheme does not route: delivered=%v err=%v", delivered, err)
	}
	// Re-encoding upgrades the stream to the current version; the
	// upgraded bytes must themselves decode to a scheme that routes
	// identically.
	var upgraded bytes.Buffer
	if err := codec.Encode(&upgraded, s); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, upgraded.Bytes()) {
		t.Fatal("re-encoding a v1 stream should produce a current-version stream")
	}
	s2, err := codec.Decode(bytes.NewReader(upgraded.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v += 7 {
			ok1, _, c1, err1 := s.RouteTrace(compactroute.NodeID(u), g.Name(compactroute.NodeID(v)))
			ok2, _, c2, err2 := s2.RouteTrace(compactroute.NodeID(u), g.Name(compactroute.NodeID(v)))
			if err1 != nil || err2 != nil || ok1 != ok2 || c1 != c2 {
				t.Fatalf("v1 vs upgraded diverge at %d→%d: %v/%v cost %v/%v", u, v, err1, err2, c1, c2)
			}
		}
	}
}

func buildGolden(t *testing.T) *core.Scheme {
	t.Helper()
	g := gen.Gnp(42, 60, 0.1, gen.Uniform(1, 4))
	s, err := core.Build(g, core.Params{K: 2, Seed: 42, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func encodeOne(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := codec.Encode(&buf, buildGolden(t)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorruptionDetected(t *testing.T) {
	data := encodeOne(t)

	// Sanity: the pristine stream decodes.
	if _, err := codec.DecodeSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	// Any single-byte flip must be rejected (CRC-32 catches all of
	// them; framing and validation catch most before the checksum).
	// Sample positions across the stream rather than all of them.
	step := len(data)/257 + 1
	for pos := 0; pos < len(data); pos += step {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x41
		if _, err := codec.DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			if _, err := codec.Decode(bytes.NewReader(mut)); err == nil {
				t.Fatalf("flip at byte %d of %d went undetected", pos, len(data))
			}
		}
	}

	// Truncation at any sampled point must be rejected.
	for _, cut := range []int{0, 1, 3, 5, len(data) / 3, len(data) - 5, len(data) - 1} {
		if _, err := codec.DecodeSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(data))
		}
	}

	// A v2 stream with no sections at all (magic + version + a
	// consistent footer) must not decode as a valid empty payload.
	empty := []byte{
		'C', 'R', 'S', 'C', 2, 0, // magic, version 2
		0xFF, 4, 0, 0, 0, 0, 0, 0, 0, // footer header: id, len=4
		0, 0, 0, 0, // CRC-32 of zero section bytes
	}
	if _, err := codec.DecodePayload(bytes.NewReader(empty)); err == nil {
		t.Fatal("kindless empty v2 stream went undetected")
	}

	// Wrong magic and wrong version.
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, err := codec.DecodeSnapshot(bytes.NewReader(mut)); err == nil {
		t.Fatal("bad magic went undetected")
	}
	mut = append([]byte(nil), data...)
	mut[4] = 99
	if _, err := codec.DecodeSnapshot(bytes.NewReader(mut)); err == nil {
		t.Fatal("future version went undetected")
	}
}

// TestSaveRejectsNonPersistableKinds: kinds without a persistent form
// must refuse cleanly — with the typed sentinel, not by writing
// garbage. (fulltable gained a persistent form in format v2 and is
// covered by the facade round-trip tests.)
func TestSaveRejectsNonPersistableKinds(t *testing.T) {
	net := compactroute.RandomNetwork(2, 40, 0.15, compactroute.UnitWeights())
	for _, kind := range compactroute.Kinds() {
		info, _ := compactroute.LookupKind(kind)
		if info.Persistable {
			continue
		}
		s, err := compactroute.Build(net, compactroute.Config{Kind: kind, K: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := compactroute.Save(&buf, s); !errors.Is(err, compactroute.ErrNotPersistable) {
			t.Fatalf("saving kind %s: err %v, want ErrNotPersistable", kind, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("saving kind %s wrote %d bytes before refusing", kind, buf.Len())
		}
	}
}

// TestLoadedSchemeServesWithoutMetric pins the contract Load
// advertises: routing works immediately, stretch data appears only
// after EnsureMetric.
func TestLoadedSchemeServesWithoutMetric(t *testing.T) {
	orig := buildFamily(t, 0)
	var buf bytes.Buffer
	if err := compactroute.Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactroute.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Network().HasMetric() {
		t.Fatal("loaded network should not have a metric")
	}
	g := loaded.Network().Graph()
	res, err := loaded.RouteByName(g.Name(0), g.Name(compactroute.NodeID(g.N()-1)))
	if err != nil || !res.Delivered {
		t.Fatalf("route without metric: %+v, %v", res, err)
	}
	if res.ShortestCost != 0 || res.Stretch() != 1 {
		t.Fatalf("metric-less result should report unknown stretch, got %+v", res)
	}
	loaded.Network().EnsureMetric()
	res2, err := loaded.RouteByName(g.Name(0), g.Name(compactroute.NodeID(g.N()-1)))
	if err != nil {
		t.Fatal(err)
	}
	if res2.ShortestCost <= 0 {
		t.Fatalf("after EnsureMetric, shortest cost should be known: %+v", res2)
	}
	if res2.Cost != res.Cost || res2.Hops != res.Hops {
		t.Fatalf("EnsureMetric changed routing: %+v vs %+v", res, res2)
	}
}

// TestLineageRoundTrip pins the optional lineage section: a payload
// persisted as part of a versioned topology snapshot re-decodes with
// its provenance intact and re-encodes byte-identically, while plain
// payloads keep carrying no lineage at all.
func TestLineageRoundTrip(t *testing.T) {
	s := buildFamily(t, 0)
	var plain bytes.Buffer
	if err := compactroute.Save(&plain, s); err != nil {
		t.Fatal(err)
	}
	p, err := codec.DecodePayload(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Lineage != nil {
		t.Fatalf("plain payload decoded with lineage %+v", p.Lineage)
	}

	p.Lineage = &codec.Lineage{Version: 7, Parent: 6, MutFrom: 120, MutTo: 180, BuildWallNanos: 42e6}
	var tagged bytes.Buffer
	if err := codec.EncodePayload(&tagged, p); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain.Bytes(), tagged.Bytes()) {
		t.Fatal("lineage section changed nothing on the wire")
	}
	p2, err := codec.DecodePayload(bytes.NewReader(tagged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lineage == nil || *p2.Lineage != *p.Lineage {
		t.Fatalf("lineage did not survive: %+v", p2.Lineage)
	}
	var again bytes.Buffer
	if err := codec.EncodePayload(&again, p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tagged.Bytes(), again.Bytes()) {
		t.Fatal("decode→encode of a lineage-tagged stream is not byte-identical")
	}
	// The tagged stream still loads through the public facade (the
	// lineage is provenance, not payload).
	if _, err := compactroute.Load(bytes.NewReader(tagged.Bytes())); err != nil {
		t.Fatalf("facade Load of lineage-tagged stream: %v", err)
	}
}
