// Package codec persists built routing schemes in a versioned,
// length-prefixed binary format, converting the expensive construction
// (all-pairs shortest paths, decomposition, landmark hierarchy, tree
// covers) into a pay-once artifact that a serving process loads in
// O(scheme size).
//
// # Format
//
// A stream is the 4-byte magic "CRSC", a little-endian uint16 version,
// then a series of sections, each
//
//	id   uint8
//	len  uint64  (payload length in bytes)
//	...  payload
//
// terminated by the footer section (id 0xFF) whose 4-byte payload is
// the IEEE CRC-32 of every byte after the version field and before the
// footer. Unknown section ids are skipped on read (forward
// compatibility); missing required sections are an error. All integers
// are little-endian; floats are IEEE 754 bit patterns. Within
// sections, slices are a uint32 count followed by the elements.
//
// Version 2 streams open with a kind section naming the scheme kind
// the remaining sections describe; version 1 streams predate the kind
// tag and always hold the paper's scheme. Both versions read.
//
// Section ids (see DESIGN.md §"Persistence format" for the
// field-level layout):
//
//	1 graph     CSR arrays, names, labels          (all kinds)
//	2 params    normalized core.Params             (kind "paper")
//	3 decomp    ranges, classes, range sets        (kind "paper")
//	4 landmark  ranks, capacities, centers         (kind "paper")
//	5 levels    per-(node, level) routing pointers (kind "paper")
//	6 trees     landmark trees as parent relations (kind "paper")
//	7 covers    per-scale covers                   (kind "paper")
//	8 report    build report counters              (kind "paper")
//	9 kind      scheme kind string                 (v2+, first section)
//	10 nexthop  per-node next-hop ports            (kind "fulltable")
//	11 lineage  dynamic-topology provenance        (any kind, optional)
//
// Encoding is deterministic: encoding a scheme, decoding it, and
// encoding the result yields identical bytes (the property tests pin
// this), which makes stored schemes content-addressable and diffable.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"compactroute/internal/baseline"
	"compactroute/internal/core"
	"compactroute/internal/graph"
	"compactroute/internal/routeerr"
	"compactroute/internal/schemes"
)

// Magic identifies a scheme stream.
var Magic = [4]byte{'C', 'R', 'S', 'C'}

// Version is the current format version.
const Version uint16 = 2

// Scheme kinds with a persistent form, aliased from the registry
// (internal/schemes owns the kind strings).
const (
	KindPaper     = schemes.KindPaper
	KindFullTable = schemes.KindFullTable
)

// Section ids.
const (
	secGraph    = 1
	secParams   = 2
	secDecomp   = 3
	secLandmark = 4
	secLevels   = 5
	secTrees    = 6
	secCovers   = 7
	secReport   = 8
	secKind     = 9
	secNextHop  = 10
	secLineage  = 11
	secFooter   = 0xFF
)

// Lineage records the dynamic-topology provenance of a persisted
// scheme: which snapshot version it belongs to, the version it was
// replayed from, the half-open mutation-log range (MutFrom, MutTo]
// applied on top of that parent, and the background build cost. It is
// optional for every kind — statically built schemes carry none — and
// ignored by readers that predate it (unknown sections are skipped).
type Lineage struct {
	// Version is the snapshot version id (0: the base topology).
	Version uint64
	// Parent is the version this one was replayed from.
	Parent uint64
	// MutFrom, MutTo delimit the applied mutation range (MutFrom, MutTo].
	MutFrom, MutTo uint64
	// BuildWallNanos is the background construction wall time.
	BuildWallNanos int64
}

// Payload is one persisted scheme: the kind tag plus the snapshot for
// that kind (exactly one of the snapshot fields is set), and the
// optional dynamic-topology lineage.
type Payload struct {
	Kind string
	Core *core.Snapshot
	Full *baseline.FullTableSnapshot
	// Lineage is present when the scheme was persisted as part of a
	// versioned topology snapshot (internal/dynamic); nil otherwise.
	Lineage *Lineage
}

// maxCount bounds any single slice length read from a stream, so a
// corrupt count fails fast instead of attempting a huge allocation.
const maxCount = 1 << 28

// PayloadFor exports a built scheme (its concrete router) into the
// kind-tagged payload this codec persists — the single switch mapping
// router types to persistent forms, shared by the facade's Save and
// the dynamic snapshot store so the two can never disagree about what
// persists. Kinds without a persistent form wrap ErrNotPersistable.
func PayloadFor(router interface{ Name() string }) (*Payload, error) {
	switch r := router.(type) {
	case *core.Scheme:
		return &Payload{Kind: KindPaper, Core: r.Export()}, nil
	case *baseline.FullTable:
		return &Payload{Kind: KindFullTable, Full: r.Export()}, nil
	default:
		return nil, fmt.Errorf("codec: %s: %w", router.Name(), routeerr.ErrNotPersistable)
	}
}

// Encode writes a built paper scheme to w.
func Encode(w io.Writer, s *core.Scheme) error {
	return EncodeSnapshot(w, s.Export())
}

// Decode reads a paper scheme from r and rehydrates it into
// ready-to-route form without recomputing shortest paths. Use
// DecodePayload when the stream's kind is not known in advance.
func Decode(r io.Reader) (*core.Scheme, error) {
	snap, err := DecodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return core.FromSnapshot(snap)
}

// EncodeSnapshot writes a paper-scheme snapshot to w.
func EncodeSnapshot(w io.Writer, snap *core.Snapshot) error {
	return EncodePayload(w, &Payload{Kind: KindPaper, Core: snap})
}

// DecodeSnapshot reads a paper-scheme snapshot from r, rejecting
// streams of any other kind.
func DecodeSnapshot(r io.Reader) (*core.Snapshot, error) {
	p, err := DecodePayload(r)
	if err != nil {
		return nil, err
	}
	if p.Kind != KindPaper {
		return nil, fmt.Errorf("codec: stream holds a %q scheme, want %q", p.Kind, KindPaper)
	}
	return p.Core, nil
}

// sectionsFor returns the ordered section list of a payload's kind.
func sectionsFor(p *Payload) ([]struct {
	id   uint8
	emit func(*enc)
}, error) {
	type sec = struct {
		id   uint8
		emit func(*enc)
	}
	switch p.Kind {
	case KindPaper:
		snap := p.Core
		if snap == nil {
			return nil, fmt.Errorf("codec: kind %q without a core snapshot", p.Kind)
		}
		return []sec{
			{secGraph, func(e *enc) { e.graph(snap.Graph) }},
			{secParams, func(e *enc) { e.params(&snap.Params) }},
			{secDecomp, func(e *enc) { e.decomp(snap.Decomp) }},
			{secLandmark, func(e *enc) { e.landmark(snap.Landmark) }},
			{secLevels, func(e *enc) { e.levels(snap.Levels) }},
			{secTrees, func(e *enc) { e.trees(snap.Trees) }},
			{secCovers, func(e *enc) { e.covers(snap.Covers) }},
			{secReport, func(e *enc) { e.report(&snap.Report) }},
		}, nil
	case KindFullTable:
		snap := p.Full
		if snap == nil {
			return nil, fmt.Errorf("codec: kind %q without a full-table snapshot", p.Kind)
		}
		return []sec{
			{secGraph, func(e *enc) { e.graph(snap.Graph) }},
			{secNextHop, func(e *enc) { e.nextHop(snap.Next) }},
		}, nil
	default:
		return nil, fmt.Errorf("codec: %w %q", routeerr.ErrNotPersistable, p.Kind)
	}
}

// EncodePayload writes a kind-tagged scheme payload to w in the
// current format version. The kind section always comes first so a
// reader can dispatch before touching kind-specific sections.
func EncodePayload(w io.Writer, p *Payload) error {
	sections, err := sectionsFor(p)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var vbuf [2]byte
	binary.LittleEndian.PutUint16(vbuf[:], Version)
	if _, err := bw.Write(vbuf[:]); err != nil {
		return err
	}

	var payload bytes.Buffer
	{
		e := &enc{w: &payload}
		e.str(p.Kind)
		if err := writeSection(out, secKind, payload.Bytes()); err != nil {
			return err
		}
	}
	if p.Lineage != nil {
		payload.Reset()
		e := &enc{w: &payload}
		e.lineage(p.Lineage)
		if err := writeSection(out, secLineage, payload.Bytes()); err != nil {
			return err
		}
	}
	for _, sec := range sections {
		payload.Reset()
		e := &enc{w: &payload}
		sec.emit(e)
		if err := writeSection(out, sec.id, payload.Bytes()); err != nil {
			return err
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if err := writeSection(bw, secFooter, sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeSection(w io.Writer, id uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = id
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// requiredSections maps each kind to the section set its snapshot
// needs. The kind section itself is required in v2 streams and absent
// from v1 streams (which are implicitly KindPaper).
var requiredSections = map[string][]uint8{
	KindPaper:     {secGraph, secParams, secDecomp, secLandmark, secLevels, secTrees, secCovers, secReport},
	KindFullTable: {secGraph, secNextHop},
}

// DecodePayload reads a kind-tagged scheme payload from r, accepting
// both the current version and version-1 streams (which predate the
// kind tag and always hold the paper's scheme).
func DecodePayload(r io.Reader) (*Payload, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("codec: bad magic %q (not a scheme file)", magic[:])
	}
	var vbuf [2]byte
	if _, err := io.ReadFull(br, vbuf[:]); err != nil {
		return nil, fmt.Errorf("codec: reading version: %w", err)
	}
	version := binary.LittleEndian.Uint16(vbuf[:])
	if version < 1 || version > Version {
		return nil, fmt.Errorf("codec: unsupported version %d (have %d)", version, Version)
	}

	crc := crc32.NewIEEE()
	p := &Payload{}
	if version == 1 {
		// v1 predates the kind tag: the stream is a paper scheme.
		p.Kind = KindPaper
		p.Core = &core.Snapshot{}
	}
	var next [][]int32
	seen := make(map[uint8]bool)
	first := true
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("codec: reading section header: %w", err)
		}
		id := hdr[0]
		length := binary.LittleEndian.Uint64(hdr[1:])
		if length > 1<<40 {
			return nil, fmt.Errorf("codec: section %d claims %d bytes", id, length)
		}
		payload, err := readPayload(br, length)
		if err != nil {
			return nil, fmt.Errorf("codec: reading section %d: %w", id, err)
		}
		if id == secFooter {
			if length != 4 {
				return nil, fmt.Errorf("codec: footer has %d bytes", length)
			}
			want := binary.LittleEndian.Uint32(payload)
			if got := crc.Sum32(); got != want {
				return nil, fmt.Errorf("codec: checksum mismatch: stream %08x, computed %08x", want, got)
			}
			break
		}
		crc.Write(hdr[:])
		crc.Write(payload)
		if seen[id] {
			return nil, fmt.Errorf("codec: duplicate section %d", id)
		}
		seen[id] = true
		if version >= 2 && first && id != secKind {
			return nil, fmt.Errorf("codec: v%d stream opens with section %d, want the kind section", version, id)
		}
		first = false
		d := &dec{r: payload}
		switch id {
		case secKind:
			if version == 1 {
				return nil, fmt.Errorf("codec: v1 stream carries a kind section")
			}
			kind, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("codec: kind section: %w", err)
			}
			p.Kind = kind
			switch kind {
			case KindPaper:
				p.Core = &core.Snapshot{}
			case KindFullTable:
				p.Full = &baseline.FullTableSnapshot{}
			default:
				return nil, fmt.Errorf("codec: %w: stream holds unknown kind %q", routeerr.ErrUnknownKind, kind)
			}
		case secGraph:
			var g *graph.Snapshot
			if g, err = d.graph(); err == nil {
				switch {
				case p.Core != nil:
					p.Core.Graph = g
				case p.Full != nil:
					p.Full.Graph = g
				default:
					return nil, fmt.Errorf("codec: graph section before the kind section")
				}
			}
		case secParams, secDecomp, secLandmark, secLevels, secTrees, secCovers, secReport:
			if p.Core == nil {
				return nil, fmt.Errorf("codec: section %d in a %q stream", id, p.Kind)
			}
			switch id {
			case secParams:
				err = d.params(&p.Core.Params)
			case secDecomp:
				p.Core.Decomp, err = d.decomp()
			case secLandmark:
				p.Core.Landmark, err = d.landmark()
			case secLevels:
				p.Core.Levels, err = d.levels()
			case secTrees:
				p.Core.Trees, err = d.trees()
			case secCovers:
				p.Core.Covers, err = d.covers()
			case secReport:
				err = d.report(&p.Core.Report)
			}
		case secNextHop:
			if p.Full == nil {
				return nil, fmt.Errorf("codec: next-hop section in a %q stream", p.Kind)
			}
			next, err = d.nextHop()
		case secLineage:
			if version == 1 {
				return nil, fmt.Errorf("codec: v1 stream carries a lineage section")
			}
			p.Lineage, err = d.lineage()
		default:
			// Unknown section from a future minor revision: skip.
		}
		if err != nil {
			return nil, fmt.Errorf("codec: section %d: %w", id, err)
		}
		if len(d.r) != 0 && knownSection(id) {
			return nil, fmt.Errorf("codec: section %d has %d trailing bytes", id, len(d.r))
		}
	}
	// A v2 stream with no sections at all never hits the kind-first
	// check in the loop; an empty kind must not read as a valid payload.
	if version >= 2 && p.Kind == "" {
		return nil, fmt.Errorf("codec: stream has no kind section")
	}
	for _, id := range requiredSections[p.Kind] {
		if !seen[id] {
			return nil, fmt.Errorf("codec: missing section %d", id)
		}
	}
	if p.Full != nil {
		p.Full.Next = next
	}
	return p, nil
}

func knownSection(id uint8) bool {
	return (id >= secGraph && id <= secReport) || id == secKind || id == secNextHop || id == secLineage
}

// readPayload reads a length-prefixed payload in bounded chunks, so a
// corrupt length on a short stream fails with ErrUnexpectedEOF instead
// of attempting one giant allocation up front.
func readPayload(r io.Reader, length uint64) ([]byte, error) {
	const chunk = 1 << 20
	if length <= chunk {
		buf := make([]byte, length)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, chunk)
	for uint64(len(buf)) < length {
		step := length - uint64(len(buf))
		if step > chunk {
			step = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// --- primitive encoder ---

type enc struct {
	w *bytes.Buffer
}

func (e *enc) u8(v uint8) { e.w.WriteByte(v) }
func (e *enc) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.u8(b)
}
func (e *enc) u32(v uint32)  { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); e.w.Write(b[:]) }
func (e *enc) i32(v int32)   { e.u32(uint32(v)) }
func (e *enc) u64(v uint64)  { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); e.w.Write(b[:]) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i32(v)
	}
}

func (e *enc) ids(vs []graph.NodeID) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i32(int32(v))
	}
}

func (e *enc) u64s(vs []uint64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u64(v)
	}
}

func (e *enc) f64s(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

func (e *enc) bools(vs []bool) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.bool(v)
	}
}

func (e *enc) i8s(vs []int8) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u8(uint8(v))
	}
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.w.WriteString(s)
}

// --- primitive decoder ---

type dec struct {
	r []byte
}

func (d *dec) need(n int) ([]byte, error) {
	if len(d.r) < n {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.r[:n]
	d.r = d.r[n:]
	return b, nil
}

func (d *dec) u8() (uint8, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *dec) bool() (bool, error) {
	v, err := d.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, fmt.Errorf("invalid bool %d", v)
	}
	return v == 1, nil
}

func (d *dec) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *dec) i32() (int32, error) {
	v, err := d.u32()
	return int32(v), err
}

func (d *dec) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *dec) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *dec) count() (int, error) {
	v, err := d.u32()
	if err != nil {
		return 0, err
	}
	if v > maxCount {
		return 0, fmt.Errorf("count %d exceeds limit", v)
	}
	// Every counted element costs at least one byte, so a count beyond
	// the remaining input is corrupt: reject it before allocating.
	if int64(v) > int64(len(d.r)) {
		return 0, io.ErrUnexpectedEOF
	}
	return int(v), nil
}

func (d *dec) i32s() ([]int32, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = d.i32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) ids() ([]graph.NodeID, error) {
	vs, err := d.i32s()
	if err != nil {
		return nil, err
	}
	out := make([]graph.NodeID, len(vs))
	for i, v := range vs {
		out[i] = graph.NodeID(v)
	}
	return out, nil
}

func (d *dec) u64s() ([]uint64, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = d.u64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) f64s() ([]float64, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = d.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) bools() ([]bool, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]bool, n)
	for i := range out {
		if out[i], err = d.bool(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) i8s() ([]int8, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]int8, n)
	for i := range out {
		v, err := d.u8()
		if err != nil {
			return nil, err
		}
		out[i] = int8(v)
	}
	return out, nil
}

func (d *dec) str() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	b, err := d.need(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
