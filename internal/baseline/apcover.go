package baseline

import (
	"context"
	"fmt"
	"math"

	"compactroute/internal/bitsize"
	"compactroute/internal/cover"
	"compactroute/internal/covroute"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/xrand"
)

// APCover is the Awerbuch–Peleg-style hierarchical scheme [9,10] with
// [3]'s linear-stretch search: a sparse tree cover of the *whole*
// graph at every radius scale 2^i, i = 0..⌈log₂ Δ⌉. Routing doubles
// the scale until the destination's name resolves in the source's
// home tree. Stretch is O(k) like the paper's scheme, but every node
// stores Θ(log Δ) scales of cover trees — the aspect-ratio dependence
// the paper eliminates.
type APCover struct {
	g      *graph.Graph
	k      int
	minW   float64
	scales []apScale
	acct   *bitsize.Accountant
}

type apScale struct {
	cov    *cover.Cover
	routes []*covroute.Scheme
}

// APCoverParams configures the baseline.
type APCoverParams struct {
	K    int
	Seed uint64
}

// NewAPCover builds covers at every scale of the graph's aspect ratio.
// It is NewAPCoverStream over a materialized source.
func NewAPCover(g *graph.Graph, all []*sssp.Result, p APCoverParams) (*APCover, error) {
	return NewAPCoverStream(context.Background(), g, sssp.Materialized(g, all), p)
}

// NewAPCoverStream is NewAPCover fed by a per-source result stream.
// The shortest-path sweep only contributes one scalar here — the
// maximum eccentricity, fixing the number of radius scales — so the
// builder folds the stream in O(1) state and discards every row.
func NewAPCoverStream(ctx context.Context, g *graph.Graph, src sssp.Source, p APCoverParams) (*APCover, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("baseline: apcover k must be ≥ 1")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("baseline: apcover needs a connected graph")
	}
	minW := g.MinEdgeWeight()
	if g.M() == 0 {
		minW = 1
	}
	maxD := 0.0
	err := src.Each(ctx, func(r *sssp.Result) error {
		if rad := r.Radius(); rad > maxD {
			maxD = rad
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: apcover build: %w", err)
	}
	aspect := math.Max(maxD/minW, 1)
	scaleCount := int(math.Ceil(math.Log2(aspect))) + 1
	if scaleCount < 1 {
		scaleCount = 1
	}
	a := &APCover{g: g, k: p.K, minW: minW, acct: bitsize.NewAccountant(g.N())}
	for i := 0; i < scaleCount; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baseline: apcover build: %w", err)
		}
		rho := minW * math.Ldexp(1, i)
		cov, err := cover.Build(g, cover.Params{K: p.K, Rho: rho})
		if err != nil {
			return nil, fmt.Errorf("baseline: apcover scale %d: %w", i, err)
		}
		sc := apScale{cov: cov, routes: make([]*covroute.Scheme, len(cov.Trees))}
		for ti, t := range cov.Trees {
			sc.routes[ti] = covroute.New(t, xrand.Hash64(p.Seed, uint64(i)<<20|uint64(ti)))
		}
		a.scales = append(a.scales, sc)
	}
	// Storage: φ(T,x) for every tree of every scale containing x, plus
	// the per-scale home-tree pointer.
	idb := bitsize.IDBits(g.N())
	for si := range a.scales {
		sc := &a.scales[si]
		for ti, t := range sc.cov.Trees {
			rt := sc.routes[ti]
			for i := 0; i < t.Len(); i++ {
				a.acct.Add(int(t.Node(i)), "cover-trees", rt.StorageBits(i))
			}
		}
		for u := 0; u < g.N(); u++ {
			a.acct.Add(u, "home-pointers", 32+idb)
		}
	}
	return a, nil
}

// Scales returns the number of radius scales (the log Δ factor).
func (a *APCover) Scales() int { return len(a.scales) }

// MaxTableBits returns the largest per-node table.
func (a *APCover) MaxTableBits() bitsize.Bits { return a.acct.MaxNodeBits() }

// MeanTableBits returns the mean per-node table size.
func (a *APCover) MeanTableBits() float64 { return a.acct.MeanNodeBits() }

// apHeader is the in-flight state: current scale and the embedded
// cover lookup.
type apHeader struct {
	dst   uint64
	src   graph.NodeID
	scale int
	cov   *covroute.Route
}

// Bits implements sim.Header: the in-flight header size.
func (h *apHeader) Bits() bitsize.Bits {
	b := bitsize.NameBits + 16
	if h.cov != nil {
		b += h.cov.HeaderBits()
	}
	return b
}

// Name implements sim.Router.
func (a *APCover) Name() string { return fmt.Sprintf("ap-cover-k%d", a.k) }

// Begin implements sim.Router.
func (a *APCover) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	return &apHeader{dst: dstName, src: src, scale: 0}, nil
}

// Step implements sim.Router: doubling-scale search.
func (a *APCover) Step(x graph.NodeID, hh sim.Header) (sim.Action, int, error) {
	h, ok := hh.(*apHeader)
	if !ok {
		return 0, 0, fmt.Errorf("baseline: foreign header %T", hh)
	}
	if h.cov == nil {
		if a.g.Name(x) == h.dst {
			return sim.Delivered, 0, nil
		}
		if x != h.src {
			return 0, 0, fmt.Errorf("baseline: apcover phase start at %d, want %d", x, h.src)
		}
		if h.scale >= len(a.scales) {
			return sim.Failed, 0, nil
		}
		sc := &a.scales[h.scale]
		home := sc.cov.Home(x)
		cr, err := sc.routes[home].NewRoute(h.dst, x)
		if err != nil {
			return 0, 0, err
		}
		h.cov = cr
	}
	sc := &a.scales[h.scale]
	home := sc.cov.Home(h.src)
	act, port, err := sc.routes[home].Step(x, h.cov)
	if err != nil {
		return 0, 0, err
	}
	switch act {
	case covroute.Forward:
		return sim.Forward, port, nil
	case covroute.Delivered:
		return sim.Delivered, 0, nil
	default: // negative response, back at the source
		h.cov = nil
		h.scale++
		return a.Step(x, h)
	}
}
