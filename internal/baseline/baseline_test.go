package baseline

import (
	"math"
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// routeAll routes every ordered pair with the given router, asserting
// delivery and returning the stretch distribution.
func routeAll(t *testing.T, g *graph.Graph, r sim.Router, all []*sssp.Result) *stats.Stretch {
	t.Helper()
	e := sim.NewEngine(g)
	var st stats.Stretch
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			res, err := e.Route(r, u, g.Name(v))
			if err != nil {
				t.Fatalf("%s: route %d→%d: %v", r.Name(), u, v, err)
			}
			if !res.Delivered {
				t.Fatalf("%s: route %d→%d not delivered", r.Name(), u, v)
			}
			if u != v {
				st.Add(res.Cost, all[u].Dist[v])
			}
		}
	}
	return &st
}

// --- FullTable ---

func TestFullTableIsShortest(t *testing.T) {
	g := gen.Gnp(1, 50, 0.08, gen.Uniform(1, 5))
	all := sssp.AllPairs(g)
	f, err := NewFullTable(g, all)
	if err != nil {
		t.Fatal(err)
	}
	st := routeAll(t, g, f, all)
	if st.Max() > 1+1e-9 {
		t.Fatalf("full table stretch %v > 1", st.Max())
	}
}

func TestFullTableStorageThetaN(t *testing.T) {
	g := gen.Gnp(2, 64, 0.05, gen.Unit())
	all := sssp.AllPairs(g)
	f, _ := NewFullTable(g, all)
	n := float64(g.N())
	logn := math.Log2(n)
	bits := float64(f.MaxTableBits())
	if bits < (n-1)*logn/2 || bits > 8*n*logn {
		t.Fatalf("full table bits %v not Θ(n log n)", bits)
	}
}

func TestFullTableUnknownName(t *testing.T) {
	g := gen.Path(3, 6, gen.Unit())
	all := sssp.AllPairs(g)
	f, _ := NewFullTable(g, all)
	e := sim.NewEngine(g)
	res, err := e.Route(f, 0, 0xdeadbeef)
	if err != nil || res.Delivered {
		t.Fatalf("unknown name should fail cleanly: %+v %v", res, err)
	}
}

// --- APCover ---

func TestAPCoverDeliveryAndLinearStretch(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := gen.Gnp(4+uint64(k), 40, 0.1, gen.Uniform(1, 5))
		all := sssp.AllPairs(g)
		a, err := NewAPCover(g, all, APCoverParams{K: k, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		st := routeAll(t, g, a, all)
		if st.Max() > float64(20*k+20) {
			t.Fatalf("apcover k=%d stretch %v not linear-ish", k, st.Max())
		}
	}
}

func TestAPCoverScalesGrowWithAspect(t *testing.T) {
	// The foil property: table size grows with log Δ on the same
	// topology.
	small := gen.AspectLadder(9, 2, 3, 6)
	big := gen.AspectLadder(9, 2, 3, 30)
	as, err := NewAPCover(small, sssp.AllPairs(small), APCoverParams{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := NewAPCover(big, sssp.AllPairs(big), APCoverParams{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Scales() <= as.Scales()+10 {
		t.Fatalf("scales %d vs %d: log Δ growth missing", as.Scales(), ab.Scales())
	}
	if float64(ab.MaxTableBits()) < 1.5*float64(as.MaxTableBits()) {
		t.Fatalf("apcover tables did not grow with Δ: %d vs %d",
			as.MaxTableBits(), ab.MaxTableBits())
	}
}

func TestAPCoverNonexistentName(t *testing.T) {
	g := gen.Ring(10, 12, gen.Unit())
	all := sssp.AllPairs(g)
	a, _ := NewAPCover(g, all, APCoverParams{K: 2, Seed: 3})
	e := sim.NewEngine(g)
	res, err := e.Route(a, 0, 0xabcdef)
	if err != nil || res.Delivered {
		t.Fatalf("phantom name: %+v %v", res, err)
	}
}

// --- LandmarkChain ---

func TestLandmarkChainDelivers(t *testing.T) {
	for _, k := range []int{2, 3} {
		g := gen.Gnp(11+uint64(k), 50, 0.08, gen.Uniform(1, 4))
		all := sssp.AllPairs(g)
		l, err := NewLandmarkChain(g, all, LandmarkChainParams{K: k, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		st := routeAll(t, g, l, all)
		t.Logf("landmark-chain k=%d: %s tops=%d", k, st, l.Tops())
	}
}

func TestLandmarkChainStretchUnboundedForClosePairs(t *testing.T) {
	// On a ring, adjacent nodes usually route through a far landmark:
	// max stretch far above our scheme's O(k).
	g := gen.Ring(13, 64, gen.Unit())
	all := sssp.AllPairs(g)
	l, err := NewLandmarkChain(g, all, LandmarkChainParams{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := routeAll(t, g, l, all)
	if st.Max() < 8 {
		t.Fatalf("landmark chain suspiciously good on a ring: %v", st.Max())
	}
}

func TestLandmarkChainTablesScaleFree(t *testing.T) {
	small := gen.AspectLadder(14, 2, 3, 6)
	big := gen.AspectLadder(14, 2, 3, 30)
	ls, _ := NewLandmarkChain(small, sssp.AllPairs(small), LandmarkChainParams{K: 2, Seed: 1})
	lb, _ := NewLandmarkChain(big, sssp.AllPairs(big), LandmarkChainParams{K: 2, Seed: 1})
	ratio := float64(lb.MaxTableBits()) / float64(ls.MaxTableBits())
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("landmark chain tables scaled with Δ: ratio %.3f", ratio)
	}
}

func TestLandmarkChainUnknownName(t *testing.T) {
	g := gen.Path(15, 8, gen.Unit())
	all := sssp.AllPairs(g)
	l, _ := NewLandmarkChain(g, all, LandmarkChainParams{K: 2, Seed: 9})
	e := sim.NewEngine(g)
	res, err := e.Route(l, 2, 0x5eaf00d)
	if err != nil || res.Delivered {
		t.Fatalf("phantom name: %+v %v", res, err)
	}
}

// --- TZ ---

func TestTZDeliversWithBoundedStretch(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		g := gen.Gnp(16+uint64(k), 50, 0.08, gen.Uniform(1, 5))
		all := sssp.AllPairs(g)
		z, err := NewTZ(g, all, TZParams{K: k, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		st := routeAll(t, g, z, all)
		bound := float64(4*k - 3)
		if k == 1 {
			bound = 1
		}
		if st.Max() > bound+1e-9 {
			t.Fatalf("tz k=%d stretch %v > %v", k, st.Max(), bound)
		}
	}
}

func TestTZAcrossFamilies(t *testing.T) {
	cases := []*graph.Graph{
		gen.Grid(21, 5, 6, gen.Unit()),
		gen.Ring(22, 24, gen.Uniform(1, 3)),
		gen.Star(23, 25, gen.Uniform(1, 4)),
		gen.AspectLadder(24, 2, 3, 16),
	}
	for i, g := range cases {
		all := sssp.AllPairs(g)
		z, err := NewTZ(g, all, TZParams{K: 2, Seed: 13})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		st := routeAll(t, g, z, all)
		if st.Max() > 5+1e-9 {
			t.Fatalf("case %d: tz k=2 stretch %v > 4k-3", i, st.Max())
		}
	}
}

func TestTZLabelsAreCompact(t *testing.T) {
	g := gen.Gnp(25, 100, 0.05, gen.Unit())
	all := sssp.AllPairs(g)
	z, _ := NewTZ(g, all, TZParams{K: 3, Seed: 17})
	logn := math.Log2(float64(g.N()))
	if float64(z.MaxLabelBits()) > 64*3*logn*logn {
		t.Fatalf("tz label %d bits too large", z.MaxLabelBits())
	}
}

func TestTZUnknownNameRejected(t *testing.T) {
	g := gen.Path(26, 5, gen.Unit())
	all := sssp.AllPairs(g)
	z, _ := NewTZ(g, all, TZParams{K: 2, Seed: 19})
	if _, err := z.Begin(0, 0xfeed); err == nil {
		t.Fatal("labeled scheme must reject unknown names at Begin")
	}
}

// --- cross-scheme parameter validation ---

func TestBaselinesRejectBadInput(t *testing.T) {
	g := gen.Path(27, 5, gen.Unit())
	all := sssp.AllPairs(g)
	if _, err := NewFullTable(g, nil); err == nil {
		t.Fatal("fulltable nil results accepted")
	}
	if _, err := NewAPCover(g, all, APCoverParams{K: 0}); err == nil {
		t.Fatal("apcover k=0 accepted")
	}
	if _, err := NewLandmarkChain(g, all, LandmarkChainParams{K: 0}); err == nil {
		t.Fatal("landmarkchain k=0 accepted")
	}
	if _, err := NewTZ(g, all, TZParams{K: 0}); err == nil {
		t.Fatal("tz k=0 accepted")
	}
	b := graph.NewBuilder()
	b.AddNode(1)
	b.AddNode(2)
	dg, _ := b.Build()
	dall := sssp.AllPairs(dg)
	if _, err := NewAPCover(dg, dall, APCoverParams{K: 2}); err == nil {
		t.Fatal("apcover disconnected accepted")
	}
	if _, err := NewTZ(dg, dall, TZParams{K: 2}); err == nil {
		t.Fatal("tz disconnected accepted")
	}
}
