// Package baseline implements the comparison schemes of §1 and §1.3:
//
//   - FullTable: the trivial stretch-1 scheme — every node stores the
//     next hop of an all-pairs shortest path computation, Θ(n·log n)
//     bits per node. The intro's strawman.
//   - APCover: an Awerbuch–Peleg-style hierarchical tree-cover scheme
//     [9,10] with the linear-stretch routing of [3]: one sparse cover
//     per radius scale 2^i for *every* i up to ⌈log₂ Δ⌉. Linear
//     stretch, but per-node storage grows with log Δ — the
//     aspect-ratio-dependent foil the paper's scale-free claim is
//     measured against (experiment T2).
//   - LandmarkChain: a scale-free hash-chain landmark scheme in the
//     same Õ(n^{1/k}) space family as the exponential-stretch schemes
//     [7,8,6]; its stretch is unbounded in the worst case
//     (experiment T3; DESIGN.md substitution #6).
//   - TZ: Thorup–Zwick labeled compact routing [29] (stretch 4k−5) as
//     the labeled-model reference point (experiment T8). Labeled
//     schemes get topology-dependent addresses, so TZ is *not* a
//     name-independent competitor; it marks the easier baseline the
//     paper's model deliberately forgoes.
package baseline

import (
	"context"
	"fmt"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
)

// FullTable is the stretch-1 strawman: per-node next-hop tables.
type FullTable struct {
	g *graph.Graph
	// next[u][v] is the port at u toward v on a shortest path.
	next [][]int32
	acct *bitsize.Accountant
}

// NewFullTable builds next-hop tables from all-pairs shortest paths.
// It is NewFullTableStream over a materialized source; the streaming
// entry point is the one that scales.
func NewFullTable(g *graph.Graph, all []*sssp.Result) (*FullTable, error) {
	return NewFullTableStream(context.Background(), g, sssp.Materialized(g, all))
}

// NewFullTableStream builds next-hop tables from a per-source result
// stream. Each source's table row depends only on that source's
// shortest-path tree, so the builder consumes one row at a time and
// never holds more shortest-path state than the source keeps in
// flight — the n×n output table itself is the scheme's storage, not
// working memory.
func NewFullTableStream(ctx context.Context, g *graph.Graph, src sssp.Source) (*FullTable, error) {
	n := g.N()
	if src.N() != n {
		return nil, fmt.Errorf("baseline: got %d results for %d nodes", src.N(), n)
	}
	f := &FullTable{g: g, next: make([][]int32, n), acct: bitsize.NewAccountant(n)}
	rows := 0
	err := src.Each(ctx, func(r *sssp.Result) error {
		f.next[r.Source] = f.fillRow(r)
		rows++
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: fulltable build: %w", err)
	}
	if rows != n {
		// A short stream would leave nil rows that panic at route time.
		return nil, fmt.Errorf("baseline: source delivered %d of %d rows", rows, n)
	}
	idb := bitsize.IDBits(n)
	for u := 0; u < n; u++ {
		pb := bitsize.IDBits(g.Degree(graph.NodeID(u)))
		f.acct.Add(u, "next-hop-table", bitsize.Bits(n-1)*(idb+pb))
	}
	return f, nil
}

// fillRow computes one source's next-hop row from its shortest-path
// tree: the first hop toward v is the reverse of the parent step just
// below the source. Parent chains are walked with memoization (every
// node on the chain shares v's first hop), so a row costs O(n) instead
// of O(n · depth).
func (f *FullTable) fillRow(r *sssp.Result) []int32 {
	src := r.Source
	row := make([]int32, f.g.N())
	for v := range row {
		row[v] = -1
	}
	var chain []graph.NodeID
	for v := 0; v < f.g.N(); v++ {
		if graph.NodeID(v) == src || !r.Reached(graph.NodeID(v)) {
			continue
		}
		if row[v] >= 0 {
			continue // memoized by an earlier chain walk
		}
		// Ascend until the node below src or an already-filled node.
		chain = chain[:0]
		x := graph.NodeID(v)
		for r.Parent[x] != src && row[x] < 0 {
			chain = append(chain, x)
			x = r.Parent[x]
		}
		port := row[x]
		if port < 0 {
			// x is the child of src on the path: the port at src toward
			// x is the reverse of x's parent port.
			port = int32(f.g.ReversePort(x, int(r.ParentPort[x])))
			row[x] = port
		}
		for _, y := range chain {
			row[y] = port
		}
	}
	return row
}

// ftHeader is a FullTable routing header: just the destination name.
type ftHeader struct {
	dst graph.NodeID
	ok  bool
}

// Bits implements sim.Header: the in-flight header size.
func (h *ftHeader) Bits() bitsize.Bits { return bitsize.NameBits }

// Name implements sim.Router.
func (f *FullTable) Name() string { return "full-table" }

// Begin implements sim.Router. Full tables are name-independent only
// because every node also stores the name→id directory; its cost is
// part of the table accounting (ids are names here).
func (f *FullTable) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	id, ok := f.g.Lookup(dstName)
	return &ftHeader{dst: id, ok: ok}, nil
}

// Step implements sim.Router.
func (f *FullTable) Step(x graph.NodeID, hh sim.Header) (sim.Action, int, error) {
	h, ok := hh.(*ftHeader)
	if !ok {
		return 0, 0, fmt.Errorf("baseline: foreign header %T", hh)
	}
	if !h.ok {
		return sim.Failed, 0, nil
	}
	if x == h.dst {
		return sim.Delivered, 0, nil
	}
	port := f.next[x][h.dst]
	if port < 0 {
		return sim.Failed, 0, nil
	}
	return sim.Forward, int(port), nil
}

// G returns the underlying graph.
func (f *FullTable) G() *graph.Graph { return f.g }

// MaxTableBits returns the largest per-node table.
func (f *FullTable) MaxTableBits() bitsize.Bits { return f.acct.MaxNodeBits() }

// MeanTableBits returns the mean per-node table size.
func (f *FullTable) MeanTableBits() float64 { return f.acct.MeanNodeBits() }
