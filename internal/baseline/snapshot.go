package baseline

import (
	"fmt"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
)

// FullTableSnapshot is the persistent form of the stretch-1 baseline:
// the graph plus every node's next-hop ports. Unlike the paper scheme,
// nothing is recomputed on rehydration — the table *is* the scheme —
// so this is the cheapest possible build-once/route-many artifact (and
// the largest, which is exactly the trade the paper quantifies).
type FullTableSnapshot struct {
	Graph *graph.Snapshot
	// Next[u][v] is the port at u toward v (-1 when unreachable).
	Next [][]int32
}

// Export captures the baseline's persistent state. The result shares
// memory with the scheme; treat it as read-only.
func (f *FullTable) Export() *FullTableSnapshot {
	return &FullTableSnapshot{Graph: f.g.Snapshot(), Next: f.next}
}

// FullTableFromSnapshot rehydrates a ready-to-route FullTable. Ports
// are validated against the rebuilt graph so a corrupt snapshot fails
// here, not mid-route; the storage accounting is a deterministic
// function of the graph shape and is recomputed.
func FullTableFromSnapshot(snap *FullTableSnapshot) (*FullTable, error) {
	g, err := graph.FromSnapshot(snap.Graph)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if len(snap.Next) != n {
		return nil, fmt.Errorf("baseline: snapshot has %d next-hop rows for %d nodes", len(snap.Next), n)
	}
	for u, row := range snap.Next {
		if len(row) != n {
			return nil, fmt.Errorf("baseline: node %d has %d next-hop entries, want %d", u, len(row), n)
		}
		deg := int32(g.Degree(graph.NodeID(u)))
		// -1 ("no hop": self or unreachable) is legitimate table state
		// and handled at route time; anything else must be a real port.
		for v, port := range row {
			if port < -1 || port >= deg {
				return nil, fmt.Errorf("baseline: node %d stores port %d toward %d (degree %d)", u, port, v, deg)
			}
		}
	}
	f := &FullTable{g: g, next: snap.Next, acct: bitsize.NewAccountant(n)}
	idb := bitsize.IDBits(n)
	for u := 0; u < n; u++ {
		pb := bitsize.IDBits(g.Degree(graph.NodeID(u)))
		f.acct.Add(u, "next-hop-table", bitsize.Bits(n-1)*(idb+pb))
	}
	return f, nil
}
