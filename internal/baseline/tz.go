package baseline

import (
	"context"
	"fmt"
	"math"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/routeerr"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
	"compactroute/internal/treeroute"
	"compactroute/internal/xrand"
)

// TZ is Thorup–Zwick labeled compact routing [29]: the labeled-model
// reference the paper compares its name-independent result against
// (§1.3). Levels A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k−1} are sampled with
// probability n^{−1/k}; the pivot p_i(v) is v's nearest A_i node; the
// cluster of a landmark w ∈ A_i \ A_{i+1} is C(w) = {v : d(v,w) <
// d(v,A_{i+1})} (C(w) = V for top-level w). Every node stores the
// tree-routing record of each cluster tree containing it — Õ(k·n^{1/k})
// expected. A destination's *label* lists its pivots with their tree
// labels; routing tries pivots bottom-up and routes through the first
// one whose cluster contains the source. Stretch ≤ 4k−3 (we measure
// it; TZ's refined analysis gives 4k−5).
//
// TZ is labeled, not name-independent: Begin requires the
// destination's label, which the experiment harness distributes out of
// band. That asymmetry is the point of the comparison.
type TZ struct {
	g *graph.Graph
	k int
	// trees[w] is the cluster tree of landmark w with its labeled
	// routing scheme.
	trees map[graph.NodeID]*tzTree
	// labels[v] is v's routing label.
	labels []TZLabel
	acct   *bitsize.Accountant
}

type tzTree struct {
	t  *tree.Tree
	lr *treeroute.Scheme
}

// TZPivot is one entry of a TZ label.
type TZPivot struct {
	W     graph.NodeID // the pivot p_i(v)
	Label treeroute.Label
	Skip  bool // pivot collapsed into the next level
}

// TZLabel is a destination label: one pivot per level.
type TZLabel struct {
	V      graph.NodeID
	Pivots []TZPivot // index i = level i
}

// Bits returns the label's accounting size.
func (l TZLabel) Bits() bitsize.Bits {
	b := bitsize.NameBits
	for _, p := range l.Pivots {
		if p.Skip {
			b += 1
			continue
		}
		b += 1 + bitsize.NameBits + p.Label.Bits()
	}
	return b
}

// TZParams configures the baseline.
type TZParams struct {
	K    int
	Seed uint64
}

// NewTZ builds the labeled scheme. It is NewTZStream over a
// materialized source.
func NewTZ(g *graph.Graph, all []*sssp.Result, p TZParams) (*TZ, error) {
	return NewTZStream(context.Background(), g, sssp.Materialized(g, all), p)
}

// NewTZStream builds the labeled scheme from a per-source result
// stream in two passes. Pass one consumes each node's row to find its
// per-level pivots and d(v, A_i); pass two consumes each landmark's
// row — every node is a level-0 landmark — to test cluster membership
// and build the cluster tree from that row's parents. Neither pass
// retains a row, so working memory stays O(k·n) plus the cluster trees
// themselves; the price is one extra sweep over the source (a
// streaming source recomputes, a materialized one re-reads).
func NewTZStream(ctx context.Context, g *graph.Graph, src sssp.Source, p TZParams) (*TZ, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("baseline: tz k must be ≥ 1")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("baseline: tz needs a connected graph")
	}
	n := g.N()
	z := &TZ{g: g, k: p.K, trees: make(map[graph.NodeID]*tzTree), acct: bitsize.NewAccountant(n)}

	// Sample nested levels; rank(v) = highest level containing v.
	rng := xrand.New(p.Seed ^ 0x72b007)
	keep := math.Pow(float64(n), -1/float64(p.K))
	rank := make([]int, n)
	top := 0
	for v := 0; v < n; v++ {
		r := 0
		for j := 1; j <= p.K-1; j++ {
			if rng.Bool(keep) {
				r = j
			} else {
				break
			}
		}
		rank[v] = r
		if r > top {
			top = r
		}
	}

	// Pass 1 — pivots: distToLevel[v][i] = d(v, A_i); +Inf above the
	// top occupied level. Uses only v's own row, consumed in order.
	distToLevel := make([][]float64, n)
	pivot := make([][]graph.NodeID, n)
	err := src.Each(ctx, func(r *sssp.Result) error {
		v := r.Source
		distToLevel[v] = make([]float64, p.K+1)
		pivot[v] = make([]graph.NodeID, p.K)
		for i := 0; i <= p.K; i++ {
			distToLevel[v][i] = math.Inf(1)
		}
		for i := 0; i <= top; i++ {
			c := r.Closest(1, func(w graph.NodeID) bool { return rank[w] >= i })
			if len(c) == 1 {
				pivot[v][i] = c[0]
				distToLevel[v][i] = r.Dist[c[0]]
			}
		}
		// Collapse pivots above the top occupied level onto the top.
		for i := top + 1; i < p.K; i++ {
			pivot[v][i] = pivot[v][top]
			distToLevel[v][i] = distToLevel[v][top]
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: tz build (pivot pass): %w", err)
	}

	// Pass 2 — clusters: C(w) = {v : d(v,w) < d(v, A_{rank(w)+1})}; V
	// for top-level landmarks. Membership and the cluster tree both
	// come from w's own row (d(v,w) = d(w,v) on an undirected graph).
	err = src.Each(ctx, func(r *sssp.Result) error {
		w := int(r.Source)
		rw := rank[w]
		isTop := rw >= top
		members := []graph.NodeID{}
		for v := 0; v < n; v++ {
			if isTop || r.Dist[v] < distToLevel[v][rw+1] {
				members = append(members, graph.NodeID(v))
			}
		}
		if len(members) == 1 && members[0] == graph.NodeID(w) && !isTop {
			return nil // singleton cluster: no structure needed
		}
		t, err := tree.FromPaths(g, graph.NodeID(w), r.Parent, members)
		if err != nil {
			return fmt.Errorf("baseline: tz cluster of %d: %w", w, err)
		}
		z.trees[graph.NodeID(w)] = &tzTree{t: t, lr: treeroute.New(t)}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: tz build (cluster pass): %w", err)
	}

	// Labels: per level the pivot and v's tree label in its cluster.
	z.labels = make([]TZLabel, n)
	for v := 0; v < n; v++ {
		lbl := TZLabel{V: graph.NodeID(v)}
		for i := 0; i < p.K; i++ {
			w := pivot[v][i]
			if i > 0 && w == pivot[v][i-1] {
				lbl.Pivots = append(lbl.Pivots, TZPivot{Skip: true})
				continue
			}
			tw := z.trees[w]
			if tw == nil {
				lbl.Pivots = append(lbl.Pivots, TZPivot{Skip: true})
				continue
			}
			tl, ok := tw.lr.LabelOf(graph.NodeID(v))
			if !ok {
				// v outside C(w): cannot descend through this pivot.
				lbl.Pivots = append(lbl.Pivots, TZPivot{Skip: true})
				continue
			}
			lbl.Pivots = append(lbl.Pivots, TZPivot{W: w, Label: tl})
		}
		z.labels[v] = lbl
	}

	// Storage: µ of every cluster tree containing the node.
	for _, tw := range z.trees {
		for i := 0; i < tw.t.Len(); i++ {
			x := int(tw.t.Node(i))
			z.acct.Add(x, "cluster-trees", tw.lr.LocalBits(i)+bitsize.NameBits)
		}
	}
	return z, nil
}

// Label returns v's routing label (distributed out of band).
func (z *TZ) Label(v graph.NodeID) TZLabel { return z.labels[v] }

// MaxTableBits returns the largest per-node table.
func (z *TZ) MaxTableBits() bitsize.Bits { return z.acct.MaxNodeBits() }

// MeanTableBits returns the mean per-node table size.
func (z *TZ) MeanTableBits() float64 { return z.acct.MeanNodeBits() }

// MaxLabelBits returns the largest label.
func (z *TZ) MaxLabelBits() bitsize.Bits {
	var m bitsize.Bits
	for _, l := range z.labels {
		if b := l.Bits(); b > m {
			m = b
		}
	}
	return m
}

// tzHeader carries the destination label and the chosen pivot leg.
type tzHeader struct {
	label   TZLabel
	pivotIx int // -1 until the source commits to a pivot
}

// Bits implements sim.Header: the in-flight header size.
func (h *tzHeader) Bits() bitsize.Bits { return h.label.Bits() + 8 }

// Name implements sim.Router.
func (z *TZ) Name() string { return fmt.Sprintf("tz-labeled-k%d", z.k) }

// Begin implements sim.Router: dstName is resolved to a label out of
// band (labels are the model's addresses). A name no node carries has
// no label and is the caller's error (wrapped ErrUnknownName) — unlike
// the name-independent schemes, TZ cannot go searching for it.
func (z *TZ) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	id, ok := z.g.Lookup(dstName)
	if !ok {
		return nil, fmt.Errorf("baseline: tz: destination name %#x: %w", dstName, routeerr.ErrUnknownName)
	}
	return &tzHeader{label: z.labels[id], pivotIx: -1}, nil
}

// Step implements sim.Router.
func (z *TZ) Step(x graph.NodeID, hh sim.Header) (sim.Action, int, error) {
	h, ok := hh.(*tzHeader)
	if !ok {
		return 0, 0, fmt.Errorf("baseline: foreign header %T", hh)
	}
	if x == h.label.V {
		return sim.Delivered, 0, nil
	}
	if h.pivotIx < 0 {
		// Source decision: lowest-level usable pivot whose cluster
		// contains x (so x can ascend its tree).
		for i, p := range h.label.Pivots {
			if p.Skip {
				continue
			}
			tw := z.trees[p.W]
			if tw != nil && tw.t.Contains(x) {
				h.pivotIx = i
				break
			}
		}
		if h.pivotIx < 0 {
			return sim.Failed, 0, nil // cannot happen: top cluster = V
		}
	}
	p := h.label.Pivots[h.pivotIx]
	tw := z.trees[p.W]
	// Route along the cluster tree path to v: never longer than the
	// classic two-leg source→pivot→v walk.
	arrived, port, err := tw.lr.Step(x, p.Label)
	if err != nil {
		return 0, 0, err
	}
	if arrived {
		return sim.Delivered, 0, nil
	}
	return sim.Forward, port, nil
}
