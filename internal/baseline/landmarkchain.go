package baseline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/xrand"
)

// LandmarkChain is a scale-free name-independent scheme in the same
// Õ(n^{1/k}) space family as the exponential-stretch schemes the paper
// cites [7,8,6] (DESIGN.md substitution #6). Landmarks are sampled in
// k−1 nested levels; every node knows a tree route to every *top*
// landmark; each node's location is published as a chain of pointers:
// its name hashes to a top landmark, which stores a hop-by-hop pointer
// path down through its nearest level-(k−2), …, level-1 landmarks to
// the node itself. A lookup climbs to the hashed top landmark and
// follows the chain. Space stays Õ(n^{1/k}) per node and is
// independent of Δ, but a lookup for a *nearby* node may traverse the
// whole network — the unbounded/exponential stretch the paper's O(k)
// result eliminates.
type LandmarkChain struct {
	g    *graph.Graph
	k    int
	tops []graph.NodeID
	// topPort[t][u]: port at u toward tops[t] in its SPT.
	topPort [][]int32
	// chain[u] maps (name, legIndex) → port: the published pointer
	// paths passing through u.
	chain []map[chainKey]int32
	// legs[name] = number of legs in the chain of that name.
	legs map[uint64]uint8
	seed uint64
	acct *bitsize.Accountant
}

type chainKey struct {
	name uint64
	leg  uint8
}

// LandmarkChainParams configures the baseline.
type LandmarkChainParams struct {
	K    int
	Seed uint64
}

// NewLandmarkChain builds the scheme. It is NewLandmarkChainStream
// over a materialized source.
func NewLandmarkChain(g *graph.Graph, all []*sssp.Result, p LandmarkChainParams) (*LandmarkChain, error) {
	return NewLandmarkChainStream(context.Background(), g, sssp.Materialized(g, all), p)
}

// lcRow is the slice of a shortest-path result the chain publication
// pass needs from a landmark source: the parent links (for leg paths)
// and parent ports (for the top-landmark climbing tables). Retaining
// only these keeps a streamed build at O(#landmarks · n) extra memory
// — in expectation n^{1-1/k} of the n rows — instead of Θ(n²).
type lcRow struct {
	source     graph.NodeID
	parent     []graph.NodeID
	parentPort []int32
}

// pathTo reconstructs the shortest path source→to from the retained
// parent links; nil if unreached.
func (r *lcRow) pathTo(to graph.NodeID) []graph.NodeID {
	return sssp.PathFromParents(r.parent, r.source, to)
}

// NewLandmarkChainStream builds the scheme from a per-source result
// stream in one pass. Rows are consumed in source order: every node's
// chain waypoints are resolved from its own row while it is in hand,
// and only landmark rows (needed later as leg-path sources) are
// retained — slimmed to parents and ports, so their distance and
// enumeration arrays are dropped immediately.
func NewLandmarkChainStream(ctx context.Context, g *graph.Graph, src sssp.Source, p LandmarkChainParams) (*LandmarkChain, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("baseline: landmarkchain k must be ≥ 1")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("baseline: landmarkchain needs a connected graph")
	}
	n := g.N()
	l := &LandmarkChain{
		g:     g,
		k:     p.K,
		chain: make([]map[chainKey]int32, n),
		legs:  make(map[uint64]uint8, n),
		seed:  p.Seed,
		acct:  bitsize.NewAccountant(n),
	}
	for i := range l.chain {
		l.chain[i] = make(map[chainKey]int32)
	}
	// Nested levels: rank(v) = number of consecutive successful coin
	// flips with probability n^{-1/k}. Sampling happens before the
	// stream so the retention predicate (rank ≥ 1) is known up front.
	rng := xrand.New(p.Seed ^ 0x17ead)
	keep := math.Pow(float64(n), -1/float64(p.K))
	rank := make([]int, n)
	for v := 0; v < n; v++ {
		r := 0
		for j := 1; j <= p.K-1; j++ {
			if rng.Bool(keep) {
				r = j
			} else {
				break
			}
		}
		rank[v] = r
	}
	top := p.K - 1
	for {
		for v := 0; v < n; v++ {
			if rank[v] >= top {
				l.tops = append(l.tops, graph.NodeID(v))
			}
		}
		if len(l.tops) > 0 {
			break
		}
		top-- // degenerate sampling: lower the top level until occupied
	}
	sort.Slice(l.tops, func(i, j int) bool { return l.tops[i] < l.tops[j] })

	// Stream pass: resolve every node's chain waypoints from its own
	// row; retain the slim rows of landmarks (leg-path sources) and
	// tops (climbing tables). When top == 0 every node is a landmark
	// and retention degenerates to the full sweep — matching the
	// scheme's own Θ(n²) storage in that regime.
	retain := make(map[graph.NodeID]*lcRow)
	waypoints := make([][]graph.NodeID, n)
	err := src.Each(ctx, func(r *sssp.Result) error {
		v := r.Source
		if rank[v] >= 1 || rank[v] >= top {
			retain[v] = &lcRow{source: v, parent: r.Parent, parentPort: r.ParentPort}
		}
		name := g.Name(v)
		ti := int(xrand.Hash64(p.Seed, name) % uint64(len(l.tops)))
		wps := []graph.NodeID{l.tops[ti]}
		for lev := top - 1; lev >= 1; lev-- {
			c := r.Closest(1, func(w graph.NodeID) bool { return rank[w] >= lev })
			if len(c) == 1 && c[0] != wps[len(wps)-1] {
				wps = append(wps, c[0])
			}
		}
		if wps[len(wps)-1] != v {
			wps = append(wps, v)
		}
		waypoints[v] = wps
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: landmarkchain build: %w", err)
	}

	// Every node stores its SPT port toward every top landmark.
	l.topPort = make([][]int32, len(l.tops))
	for ti, t := range l.tops {
		ports := make([]int32, n)
		copy(ports, retain[t].parentPort) // port at v toward t (SPT parent)
		l.topPort[ti] = ports
	}

	// Publish chains: top = hash(name); then nearest landmark of each
	// lower level (from the node itself); finally the node. Each leg is
	// a shortest path from a retained landmark row; every node along it
	// stores the next port for (name, leg).
	for v := 0; v < n; v++ {
		name := g.Name(graph.NodeID(v))
		wps := waypoints[v]
		l.legs[name] = uint8(len(wps) - 1)
		for leg := 0; leg+1 < len(wps); leg++ {
			from, to := wps[leg], wps[leg+1]
			path := retain[from].pathTo(to)
			for i := 0; i+1 < len(path); i++ {
				port := g.PortTo(path[i], path[i+1])
				l.chain[path[i]][chainKey{name, uint8(leg)}] = int32(port)
			}
		}
	}

	// Storage accounting.
	idb := bitsize.IDBits(n)
	for u := 0; u < n; u++ {
		pb := bitsize.IDBits(g.Degree(graph.NodeID(u)))
		l.acct.Add(u, "top-landmark-ports", bitsize.Bits(len(l.tops))*(idb+pb))
		l.acct.Add(u, "chain-pointers", bitsize.Bits(len(l.chain[u]))*(bitsize.NameBits+8+pb))
	}
	return l, nil
}

// Tops returns the number of top landmarks.
func (l *LandmarkChain) Tops() int { return len(l.tops) }

// MaxTableBits returns the largest per-node table.
func (l *LandmarkChain) MaxTableBits() bitsize.Bits { return l.acct.MaxNodeBits() }

// MeanTableBits returns the mean per-node table size.
func (l *LandmarkChain) MeanTableBits() float64 { return l.acct.MeanNodeBits() }

// lcHeader: climb to the hashed top landmark, then follow chain legs.
type lcHeader struct {
	dst    uint64
	topIdx int32
	leg    int16 // -1 while climbing to the top landmark
}

// Bits implements sim.Header: the in-flight header size.
func (h *lcHeader) Bits() bitsize.Bits { return bitsize.NameBits + 48 }

// Name implements sim.Router.
func (l *LandmarkChain) Name() string { return fmt.Sprintf("landmark-chain-k%d", l.k) }

// Begin implements sim.Router.
func (l *LandmarkChain) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	ti := int32(xrand.Hash64(l.seed, dstName) % uint64(len(l.tops)))
	return &lcHeader{dst: dstName, topIdx: ti, leg: -1}, nil
}

// Step implements sim.Router.
func (l *LandmarkChain) Step(x graph.NodeID, hh sim.Header) (sim.Action, int, error) {
	h, ok := hh.(*lcHeader)
	if !ok {
		return 0, 0, fmt.Errorf("baseline: foreign header %T", hh)
	}
	if l.g.Name(x) == h.dst {
		return sim.Delivered, 0, nil
	}
	if h.leg < 0 {
		t := l.tops[h.topIdx]
		if x == t {
			h.leg = 0
		} else {
			return sim.Forward, int(l.topPort[h.topIdx][x]), nil
		}
	}
	// Follow the published chain.
	for {
		port, ok := l.chain[x][chainKey{h.dst, uint8(h.leg)}]
		if ok {
			return sim.Forward, int(port), nil
		}
		// End of a leg at a waypoint: advance to the next leg.
		legs, known := l.legs[h.dst]
		if !known || int(h.leg) >= int(legs) {
			return sim.Failed, 0, nil // name not published
		}
		h.leg++
	}
}
