package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the suite's shared per-function control-flow layer: a
// block graph over one function body plus the path queries analyzers
// phrase their invariants in ("is the unlock on every path from the
// lock to a return", "does anything block between acquisition and
// release"). It deliberately stays AST-shaped — blocks hold the
// statements and control expressions the source spells, in execution
// order — because the analyzers report at those positions.
//
// Composite statements never appear in a block themselves; only their
// control expressions do (an if's condition, a range's operand, a
// select case's communication). Scanning a block node's subtree
// therefore never accidentally descends into a nested body: the body's
// statements live in their own blocks, reached through Succs edges.
//
// The builder is exact for the structured control flow this repository
// uses (if/for/range/switch/type-switch/select, break/continue with
// and without labels, fallthrough, return, panic). A goto — which the
// tree has none of, enforced by taste rather than tooling — is treated
// conservatively as a jump to Exit.

// A Block is one straight-line run of nodes: statements and control
// expressions that execute consecutively, followed by a transfer to
// one of Succs. A block with no successors that is not the Exit block
// ends a path that never returns (a select with no cases, an infinite
// loop with no break).
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Exit is
// virtual: every return statement, panic, and fall-off-the-end edge
// lands there, so "reaches Exit" is exactly "the function returns to
// its caller or unwinds".
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// NewCFG builds the control-flow graph of body (a *ast.FuncDecl.Body
// or *ast.FuncLit.Body).
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{Exit: &Block{}}
	b := &cfgBuilder{cfg: c}
	c.Entry = b.newBlock()
	b.cur = c.Entry
	b.stmts(body.List)
	b.linkTo(c.Exit) // implicit return at the end of the body
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

// NodeBlock returns the block holding n (by node identity) and n's
// index within it, or (nil, -1) when n is not a block node — e.g. a
// node nested inside a statement rather than a statement itself.
func (c *CFG) NodeBlock(n ast.Node) (*Block, int) {
	for _, blk := range c.Blocks {
		for i, bn := range blk.Nodes {
			if bn == n {
				return blk, i
			}
		}
	}
	return nil, -1
}

// AllPathsHit reports whether every control-flow path from the block
// node `from` (exclusive) to Exit passes through a node satisfying hit
// first — the "released on all paths to return" dominance query. A
// path that never reaches Exit (an infinite loop, a caseless select)
// vacuously satisfies the query: it does not return while the
// condition is unmet. When from is not a block node the query is
// answered conservatively as false.
func (c *CFG) AllPathsHit(from ast.Node, hit func(ast.Node) bool) bool {
	blk, idx := c.NodeBlock(from)
	if blk == nil {
		return false
	}
	visited := make(map[*Block]bool)
	var walk func(b *Block, start int) bool
	walk = func(b *Block, start int) bool {
		for _, n := range b.Nodes[start:] {
			if hit(n) {
				return true
			}
		}
		if b == c.Exit {
			return false
		}
		for _, s := range b.Succs {
			if s == c.Exit {
				return false
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if !walk(s, 0) {
				return false
			}
		}
		return true
	}
	return walk(blk, idx+1)
}

// labelTarget records where a labeled break and continue jump to.
type labelTarget struct {
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	breaks    []*Block // innermost-last break targets
	continues []*Block // innermost-last continue targets
	labels    map[string]*labelTarget
	pendLabel string // label naming the next loop/switch/select
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock opens a fresh block reached from cur.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	b.cur.Succs = append(b.cur.Succs, blk)
	return blk
}

// linkTo adds an edge cur -> to.
func (b *cfgBuilder) linkTo(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
}

// jump ends the current path at target and continues building in an
// unreachable block, so statements after a return/break/continue exist
// in the graph without being on any path.
func (b *cfgBuilder) jump(target *Block) {
	b.linkTo(target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall recognizes a call to the builtin panic by name — the CFG
// is built before (and independent of) type checking, and nothing in
// this repository shadows the builtin.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = make(map[string]*labelTarget)
		}
		b.pendLabel = s.Label.Name
		b.stmt(s.Stmt)
		delete(b.labels, s.Label.Name)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jump(b.branchTarget(s, true))
		case token.CONTINUE:
			b.jump(b.branchTarget(s, false))
		case token.GOTO:
			// Conservative: a goto leaves the structured flow; treat it
			// as an exit so no invariant is vacuously "proven" past it.
			b.add(s)
			b.jump(b.cfg.Exit)
		case token.FALLTHROUGH:
			// Handled by the enclosing switch construction; as a block
			// node it would double-count, so it contributes nothing.
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Simple statements: assignments, declarations, expression
		// statements, sends, defers, go statements, inc/dec, empty.
		if isPanicCall(s) {
			b.add(s)
			b.jump(b.cfg.Exit)
			return
		}
		b.add(s)
	}
}

// branchTarget resolves break/continue, labeled or not. An unmatched
// label (malformed source) conservatively targets Exit.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		if t, ok := b.labels[s.Label.Name]; ok {
			if isBreak {
				return t.brk
			}
			if t.cont != nil {
				return t.cont
			}
		}
		return b.cfg.Exit
	}
	if isBreak {
		if len(b.breaks) > 0 {
			return b.breaks[len(b.breaks)-1]
		}
	} else if len(b.continues) > 0 {
		return b.continues[len(b.continues)-1]
	}
	return b.cfg.Exit
}

// pushLoop registers break/continue targets (and the pending label, if
// the loop was labeled); cont may be nil for switch/select, which only
// break.
func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	if cont != nil {
		b.continues = append(b.continues, cont)
	}
	if b.pendLabel != "" {
		b.labels[b.pendLabel] = &labelTarget{brk: brk, cont: cont}
		b.pendLabel = ""
	}
}

func (b *cfgBuilder) popLoop(hadCont bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if hadCont {
		b.continues = b.continues[:len(b.continues)-1]
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.cur

	join := b.newBlock()
	b.cur = b.newBlock()
	head.Succs = append(head.Succs, b.cur)
	b.stmts(s.Body.List)
	b.linkTo(join)

	if s.Else != nil {
		b.cur = b.newBlock()
		head.Succs = append(head.Succs, b.cur)
		b.stmt(s.Else)
		b.linkTo(join)
	} else {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	exit := b.newBlock()

	post := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		post.Succs = append(post.Succs, head)
	}
	b.pushLoop(exit, post)

	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	if s.Cond != nil {
		head.Succs = append(head.Succs, exit)
	}
	b.cur = body
	b.stmts(s.Body.List)
	b.linkTo(post)

	b.popLoop(true)
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	b.add(s.X) // the ranged operand is evaluated once, before the loop
	head := b.startBlock()
	exit := b.newBlock()
	head.Succs = append(head.Succs, exit) // zero iterations

	b.pushLoop(exit, head)
	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	b.cur = body
	b.stmts(s.Body.List)
	b.linkTo(head)
	b.popLoop(true)
	b.cur = exit
}

// switchBody builds the case clauses of a switch or type switch. Every
// clause branches from the head (the block current when called); a
// missing default adds a direct head->exit edge.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt) {
	head := b.cur
	exit := b.newBlock()
	b.pushLoop(exit, nil)

	// Case bodies are pre-created so fallthrough can edge to the next
	// clause's block.
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
		head.Succs = append(head.Succs, caseBlocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(caseBlocks) {
				// The path continues in the next clause's block; cur
				// becomes unreachable, and its exit edge below is inert.
				b.jump(caseBlocks[i+1])
				continue
			}
			b.stmt(cs)
		}
		b.linkTo(exit)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, exit)
	}
	b.popLoop(false)
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	exit := b.newBlock()
	b.pushLoop(exit, nil)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			// The communication itself (a send or receive) executes on
			// this path; it is a real block node so locksafe sees a
			// select-send as a send.
			b.add(cc.Comm)
		}
		b.stmts(cc.Body)
		b.linkTo(exit)
	}
	b.popLoop(false)
	b.cur = exit
}
