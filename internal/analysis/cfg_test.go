package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses one function body and returns its CFG plus the
// parsed file for node lookup.
func buildTestCFG(t *testing.T, body string) (*CFG, *ast.File) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", body, err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fn.Body), f
}

// callStmt finds the statement that is a bare call to name.
func callStmt(t *testing.T, f *ast.File, name string) ast.Node {
	t.Helper()
	var found ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = es
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call to %s", name)
	}
	return found
}

// hitsCall matches block nodes that are bare calls to name.
func hitsCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestAllPathsHit(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight line", `lock(); unlock()`, true},
		{"early return releases first", `lock()
if cond() { unlock(); return }
unlock()`, true},
		{"early return misses release", `lock()
if cond() { return }
unlock()`, false},
		{"both branches release", `lock()
if cond() { unlock() } else { unlock() }`, true},
		{"else misses release", `lock()
if cond() { unlock() } else { work() }`, false},
		{"release after join", `lock()
if cond() { work() } else { work() }
unlock()`, true},
		{"zero-iteration loop skips release", `lock()
for i := 0; i < 3; i++ { unlock(); return }`, false},
		{"release after loop", `lock()
for i := 0; i < 3; i++ { work() }
unlock()`, true},
		{"break skips release", `lock()
for {
	if cond() { break }
	work()
}
unlock()`, true},
		{"infinite loop never returns", `lock()
for { work() }`, true},
		{"range loop release after", `lock()
for range xs { work() }
unlock()`, true},
		{"switch all cases release", `lock()
switch x() {
case 1:
	unlock()
case 2:
	unlock()
default:
	unlock()
}`, true},
		{"switch missing default misses release", `lock()
switch x() {
case 1:
	unlock()
case 2:
	unlock()
}`, false},
		{"switch fallthrough reaches release", `lock()
switch x() {
case 1:
	fallthrough
default:
	unlock()
}`, true},
		{"select all cases release", `lock()
select {
case <-a:
	unlock()
case <-b:
	unlock()
}`, true},
		{"select one case misses release", `lock()
select {
case <-a:
	unlock()
case <-b:
	work()
}`, false},
		{"panic escapes without release", `lock()
if cond() { panic("x") }
unlock()`, false},
		{"labeled break skips inner release", `lock()
outer:
for {
	for {
		if cond() { break outer }
		unlock()
		return
	}
}
unlock()`, true},
		{"goto is conservative", `lock()
if cond() { goto out }
unlock()
out:
work()`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, f := buildTestCFG(t, tc.body)
			got := cfg.AllPathsHit(callStmt(t, f, "lock"), hitsCall("unlock"))
			if got != tc.want {
				t.Errorf("AllPathsHit = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

// TestCFGNoNestedBodies pins the flat-block contract: a composite
// statement's body statements live in their own blocks, and only
// control expressions of composites appear as block nodes — so a
// subtree scan of one block node can never wander into a nested body.
func TestCFGNoNestedBodies(t *testing.T) {
	cfg, _ := buildTestCFG(t, `work()
if cond() {
	lock()
}
for i := 0; i < 3; i++ {
	unlock()
}`)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
				t.Errorf("composite statement %T appears as a block node", n)
			}
		}
	}
}

// TestCFGNodeBlock pins that every executable simple statement is
// findable, and nodes nested in expressions are not block nodes.
func TestCFGNodeBlock(t *testing.T) {
	cfg, f := buildTestCFG(t, `lock()
unlock()`)
	blk, idx := cfg.NodeBlock(callStmt(t, f, "lock"))
	if blk == nil || idx != 0 {
		t.Fatalf("lock() not found at block start: %v %d", blk, idx)
	}
	if blk2, idx2 := cfg.NodeBlock(callStmt(t, f, "unlock")); blk2 != blk || idx2 != 1 {
		t.Fatalf("unlock() not in same block after lock(): %v %d", blk2, idx2)
	}
	if blk, _ := cfg.NodeBlock(&ast.Ident{Name: "nope"}); blk != nil {
		t.Fatalf("foreign node resolved to a block")
	}
}

// TestCFGUnreachableAfterReturn pins that statements after a return are
// present but on no path.
func TestCFGUnreachableAfterReturn(t *testing.T) {
	cfg, f := buildTestCFG(t, `lock()
return
unlock()`)
	if cfg.AllPathsHit(callStmt(t, f, "lock"), hitsCall("unlock")) {
		t.Fatalf("release after return should not count")
	}
	if blk, _ := cfg.NodeBlock(callStmt(t, f, "unlock")); blk == nil {
		t.Fatalf("unreachable statement should still be a block node")
	}
}
