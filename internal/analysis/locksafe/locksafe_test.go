package locksafe

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, Analyzer,
		"testdata/src/internal/serve",
		"testdata/src/internal/dynamic",
		"testdata/src/client",
		"testdata/src/outside")
}
