// Package client is a stand-in for the repository's RPC client: a
// method on its types counts as a blocking RPC under a held lock.
package client

// Client fakes the shard RPC client.
type Client struct{}

// Healthz fakes a round trip.
func (c *Client) Healthz() error { return nil }

// IsStatus is a pure helper — package-level, no receiver — and must
// NOT count as an RPC.
func IsStatus(err error, code int) bool { return err != nil && code != 0 }
