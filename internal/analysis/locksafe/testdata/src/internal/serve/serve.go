// Package serve is the flagged locksafe fixture: each function below
// is one shape of the two rules — release on all paths, and nothing
// blocking under an exclusive lock — plus the accepted shapes that
// must stay clean.
package serve

import (
	"net/http"
	"sync"

	"compactroute/internal/analysis/locksafe/testdata/src/client"
)

// Pool carries one of every lock-adjacent field the analyzer cares
// about: a mutex, a read-write gate, an RPC client, and callbacks.
type Pool struct {
	mu      sync.Mutex
	gate    sync.RWMutex
	n       int
	key     string
	url     string
	err     error
	c       *client.Client
	onEvict func(string)
	hooks   []func(int)
}

// Leak takes the lock and loses it on the early return.
func Leak(p *Pool) {
	p.mu.Lock() // want `lock p\.mu not released on all paths`
	if p.n == 0 {
		return
	}
	p.mu.Unlock()
}

// ReadLeak leaks the read side the same way.
func ReadLeak(p *Pool) int {
	p.gate.RLock() // want `lock p\.gate not released on all paths`
	return p.n
}

// Deferred is the canonical clean shape.
func Deferred(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
}

// Branches releases explicitly on every path: clean.
func Branches(p *Pool) {
	p.mu.Lock()
	if p.n > 0 {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
}

// SendUnderLock blocks on a channel while holding the lock.
func SendUnderLock(p *Pool, ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch <- p.n // want `lock p\.mu held across a channel send`
}

// SendAfter hands off outside the critical section: clean.
func SendAfter(p *Pool, ch chan int) {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	ch <- n
}

// FetchUnderLock does network I/O under the lock.
func FetchUnderLock(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	http.Get(p.url) // want `lock p\.mu held across a net/http call`
}

// ProbeUnderLock makes an RPC under the lock. The package-level
// client.IsStatus helper is pure and must not count as one.
func ProbeUnderLock(p *Pool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if client.IsStatus(p.err, 503) {
		return p.err
	}
	return p.c.Healthz() // want `lock p\.mu held across a client RPC`
}

// ReadProbe holds the read gate across the same RPC: the documented
// proxy design, exempt from the held-across rule.
func ReadProbe(p *Pool) error {
	p.gate.RLock()
	defer p.gate.RUnlock()
	return p.c.Healthz()
}

// EvictUnderLock re-enters user code through a func-typed field.
func EvictUnderLock(p *Pool, k string) {
	p.mu.Lock()
	p.onEvict(k) // want `lock p\.mu held across a user callback`
	p.mu.Unlock()
}

// EachUnderLock re-enters user code through a func-typed parameter.
func EachUnderLock(p *Pool, fn func(int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.n) // want `lock p\.mu held across a user callback`
}

// FireUnderLock re-enters user code through an indexed hook.
func FireUnderLock(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hooks[0](p.n) // want `lock p\.mu held across a user callback`
}

// Helpers calls a local closure under the lock: the function's own
// code, not a user callback — clean.
func Helpers(p *Pool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	bump := func(d int) { p.n += d }
	bump(2)
	return p.n
}

// EvictOutside snapshots under the lock and calls back after: clean.
func EvictOutside(p *Pool, fn func(string)) {
	p.mu.Lock()
	k := p.key
	p.mu.Unlock()
	fn(k)
}

// Spawn locks inside the goroutine body, which is analyzed as its own
// function: clean.
func Spawn(p *Pool) {
	go func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.n++
	}()
}

// SpawnLeak leaks inside the goroutine body.
func SpawnLeak(p *Pool) {
	go func() {
		p.mu.Lock() // want `lock p\.mu not released on all paths`
		if p.n > 0 {
			return
		}
		p.mu.Unlock()
	}()
}

// Repairer mirrors the serving tier's flap-damping table: an injected
// clock callback plus the decay map it stamps under an exclusive
// lock.
type Repairer struct {
	mu   sync.Mutex
	now  func() int64
	damp map[uint64]int64
}

// StampUnderLock reads the injected clock while holding the table
// exclusively — re-entering user code (a test's fake clock, say) with
// the damping table locked.
func StampUnderLock(r *Repairer, k uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.damp[k] = r.now() // want `lock r\.mu held across a user callback`
}

// StampBefore is the damping table's accepted shape: read the clock
// first, then take the lock only for the map write.
func StampBefore(r *Repairer, k uint64) {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.damp[k] = t
}
