// Package dynamic is the clean locksafe fixture: the repository's
// accepted snapshot-then-notify idiom, where hooks are copied under
// the lock and run only after release.
package dynamic

import "sync"

// Swapper mirrors the serving tier's hot-swap coordinator.
type Swapper struct {
	mu    sync.Mutex
	gen   int
	hooks []func(int)
}

// Swap snapshots the hooks under the lock and runs them outside it.
func (s *Swapper) Swap() {
	s.mu.Lock()
	s.gen++
	gen := s.gen
	hooks := append([]func(int){}, s.hooks...)
	s.mu.Unlock()
	for _, h := range hooks {
		h(gen)
	}
}

// OnSwap registers a hook; the critical section only mutates state.
func (s *Swapper) OnSwap(h func(int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, h)
}
