// Package outside sits outside the analyzer's scope: the blatant
// leak below must produce no diagnostics, pinning the package filter.
package outside

import "sync"

var mu sync.Mutex

// Leak would be flagged in a scoped package.
func Leak() {
	mu.Lock()
}
