// Package locksafe enforces the serving tier's lock discipline, the
// two rules every mutex in the request path lives by:
//
//  1. A lock acquired in a function is released on every path out of
//     it — a defer right after acquiring, or an explicit Unlock that
//     dominates every return. The check is path-sensitive on the
//     shared CFG layer: an early return that skips the Unlock is a
//     leaked lock even when the fall-through path is correct.
//  2. An exclusive Lock is not held across an operation that can
//     block or re-enter: a channel send, a net/http call, a client
//     RPC, or a call through a func-typed value (a user callback the
//     library cannot vouch for). RLock is exempt — holding the read
//     gate across a proxied RPC is the serving tier's documented
//     design, and readers cannot deadlock writers that use defer.
//
// The analyzer scopes itself to the packages where lock misuse turns
// into request stalls (internal/serve, internal/cluster,
// internal/dynamic, internal/server). Deliberate violations —
// cluster's coordination locks are held across shard RPCs precisely
// so membership changes serialize — go through the tracked
// suppression file with a reason, not past the analyzer.
//
// Function literals are analyzed as their own functions: a lock taken
// inside a goroutine body is that body's to release, and a lock held
// by the spawning function is not attributed to statements that run
// on another goroutine's schedule.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"compactroute/internal/analysis"
)

// Scope lists the package-path suffixes the analyzer applies to.
var Scope = []string{
	"internal/serve",
	"internal/cluster",
	"internal/dynamic",
	"internal/server",
}

// Analyzer is the locksafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "locks released on all paths; no exclusive lock held across sends, RPCs, or user callbacks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, s := range Scope {
		if analysis.PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// A lockCall is one acquisition site: a statement-level call to a
// sync package Lock or RLock method. The lock's identity is the
// source spelling of the receiver expression — c.mu and c.mu match,
// c.mu and d.mu do not — which is exact for the field-and-local locks
// this repository uses.
type lockCall struct {
	stmt  ast.Node // the *ast.ExprStmt block node
	recv  string
	rlock bool
}

func (lc *lockCall) unlockName() string {
	if lc.rlock {
		return "RUnlock"
	}
	return "Unlock"
}

func checkBody(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	params := paramObjects(pass.TypesInfo, ftype)
	cfg := analysis.NewCFG(body)
	var acqs []*lockCall
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if lc := asLockCall(pass.TypesInfo, n); lc != nil {
				acqs = append(acqs, lc)
			}
		}
	}
	for _, lc := range acqs {
		released := cfg.AllPathsHit(lc.stmt, func(n ast.Node) bool {
			return releases(pass.TypesInfo, n, lc, true)
		})
		if !released {
			pass.Reportf(lc.stmt.Pos(),
				"lock %s not released on all paths: defer %s.%s() after acquiring, or release before every return",
				lc.recv, lc.recv, lc.unlockName())
		}
		if !lc.rlock {
			reportHeldAcross(pass, cfg, lc, params)
		}
	}
}

// asLockCall recognizes a statement that acquires a sync lock.
func asLockCall(info *types.Info, n ast.Node) *lockCall {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") || !isSyncMethod(info, sel) {
		return nil
	}
	return &lockCall{stmt: es, recv: types.ExprString(sel.X), rlock: sel.Sel.Name == "RLock"}
}

// releases reports whether block node n releases lc: a direct
// matching Unlock statement, or (when allowDefer) a deferred one —
// a defer on the path guarantees release at every exit beyond it,
// but does not end the held region for the held-across check.
func releases(info *types.Info, n ast.Node, lc *lockCall, allowDefer bool) bool {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, _ = n.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		if !allowDefer {
			return false
		}
		call = n.Call
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != lc.unlockName() || !isSyncMethod(info, sel) {
		return false
	}
	return types.ExprString(sel.X) == lc.recv
}

func isSyncMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// reportHeldAcross walks forward from the acquisition, stopping each
// path at the matching explicit Unlock, and flags blocking operations
// inside the held region. With a deferred release the region runs to
// every exit — which is the point: defer is the right shape only when
// nothing in the critical section blocks.
// paramObjects collects the objects bound by a function's parameters:
// the func-typed values among them are caller-supplied callbacks,
// unlike the function's own local closures.
func paramObjects(info *types.Info, ftype *ast.FuncType) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	return params
}

func reportHeldAcross(pass *analysis.Pass, cfg *analysis.CFG, lc *lockCall, params map[types.Object]bool) {
	blk, idx := cfg.NodeBlock(lc.stmt)
	if blk == nil {
		return
	}
	reported := make(map[token.Pos]bool)
	visited := make(map[*analysis.Block]bool)
	var walk func(b *analysis.Block, start int)
	walk = func(b *analysis.Block, start int) {
		for _, n := range b.Nodes[start:] {
			if releases(pass.TypesInfo, n, lc, false) {
				return
			}
			reportBlocking(pass, n, lc, params, reported)
		}
		for _, s := range b.Succs {
			if !visited[s] {
				visited[s] = true
				walk(s, 0)
			}
		}
	}
	walk(blk, idx+1)
}

// reportBlocking scans one block node's subtree for operations that
// can block or re-enter while lc is held. Function literals are not
// descended — their bodies run on their own schedule and are checked
// as functions of their own. Defers are not descended either: they
// run at exit, where the ordering against a deferred release is the
// runtime's, not this statement's.
func reportBlocking(pass *analysis.Pass, n ast.Node, lc *lockCall, params map[types.Object]bool, reported map[token.Pos]bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			report(pass, sub.Arrow, lc, "a channel send", reported)
		case *ast.CallExpr:
			if what := blockingCall(pass.TypesInfo, sub, params); what != "" {
				report(pass, sub.Pos(), lc, what, reported)
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, lc *lockCall, what string, reported map[token.Pos]bool) {
	if reported[pos] {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, "lock %s held across %s: release it first, or move the blocking work out of the critical section", lc.recv, what)
}

// blockingCall classifies a call that can block or re-enter under a
// held lock: net/http traffic, a client RPC (a method on the client
// package's types), or a dynamic call through a func-typed value the
// library cannot vouch for — a parameter, a stored field, or an
// indexed hook. A bare identifier that is not a parameter is the
// function's own local closure (an in-function helper like a
// validation or formatting closure), which is not a callback; static
// calls to ordinary functions are likewise not flagged — the analyzer
// checks their bodies when they, too, are in scope.
func blockingCall(info *types.Info, call *ast.CallExpr, params map[types.Object]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.ObjectOf(fun).(type) {
		case *types.Func:
			return pkgBlocking(obj)
		case *types.Var:
			if params[obj] {
				return "a user callback"
			}
		}
	case *ast.SelectorExpr:
		switch obj := info.ObjectOf(fun.Sel).(type) {
		case *types.Func:
			return pkgBlocking(obj)
		case *types.Var:
			return "a user callback"
		}
	default:
		// An indexed or computed callee (c.hooks[i](…)). A type
		// conversion never lands here with a signature type.
		if tv, ok := info.Types[call.Fun]; ok && !tv.IsType() && tv.Type != nil {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return "a user callback"
			}
		}
	}
	return ""
}

func pkgBlocking(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case pkg.Path() == "net/http":
		return "a net/http call"
	case analysis.PathHasSuffix(pkg.Path(), "client") && sig != nil && sig.Recv() != nil:
		return "a client RPC"
	}
	return ""
}
