package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"compactroute/internal/codec", "internal/codec", true},
		{"internal/codec", "internal/codec", true},
		{"compactroute/internal/mycodec", "internal/codec", false}, // must be segment-aligned
		{"internal/codec/sub", "internal/codec", false},
		{"a/b/c.go", "b/c.go", true},
		{"c.go", "b/c.go", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func writeSuppressFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crlint.suppress")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSuppressionsMissingFile(t *testing.T) {
	sups, err := LoadSuppressions(filepath.Join(t.TempDir(), "absent"))
	if err != nil || sups != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", sups, err)
	}
}

func TestLoadSuppressionsRequiresReason(t *testing.T) {
	if _, err := LoadSuppressions(writeSuppressFile(t, "ctxflow internal/cluster/cluster.go\n")); err == nil {
		t.Fatal("entry without '# reason' should fail to parse")
	}
}

func TestApplySuppressions(t *testing.T) {
	path := writeSuppressFile(t, `
# comment lines and blanks are ignored
ctxflow internal/cluster/cluster.go Background  # prober owns its lifecycle
rawrand internal/gen/gen.go  # never matches anything
`)
	sups, err := LoadSuppressions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(sups))
	}
	diags := []Diagnostic{
		{Analyzer: "ctxflow", Pos: token.Position{Filename: "/repo/internal/cluster/cluster.go", Line: 4}, Message: "context.Background() in library code"},
		{Analyzer: "ctxflow", Pos: token.Position{Filename: "/repo/internal/dynamic/topology.go", Line: 9}, Message: "context.Background() in library code"},
	}
	kept, stale := ApplySuppressions(diags, sups)
	if len(kept) != 1 || kept[0].Pos.Filename != "/repo/internal/dynamic/topology.go" {
		t.Errorf("kept = %v, want only the topology.go diagnostic", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "rawrand" {
		t.Errorf("stale = %v, want only the rawrand entry", stale)
	}
}

func TestApplySuppressionsDirectoryEntry(t *testing.T) {
	path := writeSuppressFile(t, `
locksafe internal/cluster/ held  # coordination locks are held across shard RPCs by design
locksafe internal/dynamic/  # never matches: stale detection stays exact per entry
`)
	sups, err := LoadSuppressions(path)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/internal/cluster/cluster.go", Line: 4}, Message: "lock c.muteMu held across RPC call"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/internal/cluster/handlers.go", Line: 9}, Message: "lock c.gate held across user callback"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/internal/cluster/cluster.go", Line: 12}, Message: "lock c.gate not released on all paths"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/internal/clusterx/x.go", Line: 2}, Message: "lock m held across RPC call"},
	}
	kept, stale := ApplySuppressions(diags, sups)
	if len(kept) != 2 {
		t.Fatalf("kept = %v, want the not-released and clusterx diagnostics to survive", kept)
	}
	if kept[0].Message != "lock c.gate not released on all paths" || kept[1].Pos.Filename != "/repo/internal/clusterx/x.go" {
		t.Errorf("kept = %v: directory entries must stay segment-aligned and honor the message regexp", kept)
	}
	if len(stale) != 1 || stale[0].PathSuffix != "internal/dynamic/" {
		t.Errorf("stale = %v, want exactly the unused internal/dynamic/ entry", stale)
	}
}

func TestApplyIgnores(t *testing.T) {
	igns := []*Ignore{
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/a.go", Line: 10}, Reason: "own-line form covers the next line"},
		{Analyzer: "goroleak", Pos: token.Position{Filename: "/repo/a.go", Line: 20}, Reason: "never matches"},
	}
	diags := []Diagnostic{
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/a.go", Line: 10}, Message: "same line"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/a.go", Line: 11}, Message: "next line"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/a.go", Line: 12}, Message: "too far"},
		{Analyzer: "rawrand", Pos: token.Position{Filename: "/repo/a.go", Line: 10}, Message: "wrong analyzer"},
		{Analyzer: "locksafe", Pos: token.Position{Filename: "/repo/b.go", Line: 10}, Message: "wrong file"},
	}
	kept, stale := ApplyIgnores(diags, igns)
	if len(kept) != 3 {
		t.Fatalf("kept = %v, want the too-far, wrong-analyzer, and wrong-file diagnostics", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "goroleak" {
		t.Errorf("stale = %v, want exactly the unused goroleak directive", stale)
	}
}

// parseIgnoreFixture wraps one source file as a loaded Package so
// ParseIgnores can run without go list.
func parseIgnoreFixture(t *testing.T, src string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return []*Package{{ImportPath: "fix", Fset: fset, Files: []*ast.File{f}}}
}

func TestParseIgnores(t *testing.T) {
	igns, err := ParseIgnores(parseIgnoreFixture(t, `package p

//crlint:ignore locksafe the gate hold time IS the measured pause
func f() {}

// A plain comment, and an unrelated directive:
//crlint:hotpath
func g() {}
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(igns) != 1 || igns[0].Analyzer != "locksafe" || igns[0].Pos.Line != 3 {
		t.Fatalf("igns = %v, want one locksafe directive at line 3", igns)
	}
	if igns[0].Reason != "the gate hold time IS the measured pause" {
		t.Errorf("reason = %q", igns[0].Reason)
	}
}

func TestParseIgnoresRequiresReason(t *testing.T) {
	if _, err := ParseIgnores(parseIgnoreFixture(t, "package p\n\n//crlint:ignore locksafe\nfunc f() {}\n")); err == nil {
		t.Fatal("directive without a reason should fail the run")
	}
	if _, err := ParseIgnores(parseIgnoreFixture(t, "package p\n\n//crlint:ignore\nfunc f() {}\n")); err == nil {
		t.Fatal("directive without an analyzer should fail the run")
	}
}
