package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"compactroute/internal/codec", "internal/codec", true},
		{"internal/codec", "internal/codec", true},
		{"compactroute/internal/mycodec", "internal/codec", false}, // must be segment-aligned
		{"internal/codec/sub", "internal/codec", false},
		{"a/b/c.go", "b/c.go", true},
		{"c.go", "b/c.go", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func writeSuppressFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crlint.suppress")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSuppressionsMissingFile(t *testing.T) {
	sups, err := LoadSuppressions(filepath.Join(t.TempDir(), "absent"))
	if err != nil || sups != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", sups, err)
	}
}

func TestLoadSuppressionsRequiresReason(t *testing.T) {
	if _, err := LoadSuppressions(writeSuppressFile(t, "ctxflow internal/cluster/cluster.go\n")); err == nil {
		t.Fatal("entry without '# reason' should fail to parse")
	}
}

func TestApplySuppressions(t *testing.T) {
	path := writeSuppressFile(t, `
# comment lines and blanks are ignored
ctxflow internal/cluster/cluster.go Background  # prober owns its lifecycle
rawrand internal/gen/gen.go  # never matches anything
`)
	sups, err := LoadSuppressions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(sups))
	}
	diags := []Diagnostic{
		{Analyzer: "ctxflow", Pos: token.Position{Filename: "/repo/internal/cluster/cluster.go", Line: 4}, Message: "context.Background() in library code"},
		{Analyzer: "ctxflow", Pos: token.Position{Filename: "/repo/internal/dynamic/topology.go", Line: 9}, Message: "context.Background() in library code"},
	}
	kept, stale := ApplySuppressions(diags, sups)
	if len(kept) != 1 || kept[0].Pos.Filename != "/repo/internal/dynamic/topology.go" {
		t.Errorf("kept = %v, want only the topology.go diagnostic", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "rawrand" {
		t.Errorf("stale = %v, want only the rawrand entry", stale)
	}
}
