// Package lib is a ctxflow fixture: a library package, so contexts
// must flow in from callers rather than being minted or stored.
package lib

import "context"

// mint is flagged: library code must not create its own root context.
func mint() context.Context {
	return context.Background() // want `context\.Background\(\) in library code`
}

// todo is flagged the same way: TODO is still a minted root.
func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library code`
}

// Route is clean: the convenience-wrapper idiom — a context-less
// function forwarding straight into its context-taking variant.
func Route(x int) int {
	return RouteCtx(context.Background(), x)
}

// RouteCtx is the context-taking variant Route forwards to.
func RouteCtx(ctx context.Context, x int) int {
	_ = ctx
	return x
}

// Relay is flagged even though RelayCtx extends its name: Relay has a
// context of its own it should have forwarded.
func Relay(ctx context.Context, x int) int {
	return RelayCtx(context.Background(), x) // want `context\.Background\(\) in library code`
}

// RelayCtx is Relay's context-taking variant.
func RelayCtx(ctx context.Context, x int) int {
	_ = ctx
	return x
}

// Lookup is flagged: resolve does not extend the name Lookup, so this
// is not a wrapper forwarding to its own variant.
func Lookup(x int) int {
	return resolve(context.Background(), x) // want `context\.Background\(\) in library code`
}

func resolve(ctx context.Context, x int) int {
	_ = ctx
	return x
}

// late is flagged: the context parameter must come first.
func late(x int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = x
	_ = ctx
}

// holder is flagged: a stored context outlives its cancellation scope.
type holder struct {
	ctx context.Context // want `context\.Context stored in a struct field`
	n   int
}
