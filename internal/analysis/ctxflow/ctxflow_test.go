package ctxflow

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/lib")
}
