// Package ctxflow enforces the repository's context-first
// cancellation conventions (the v2 API contract from PR 3): library
// code receives its context from the caller instead of minting one,
// context parameters come first, and contexts flow through call
// chains rather than being stored.
//
// It flags, in non-main packages:
//
//   - context.Background() / context.TODO() calls. One shape is
//     accepted: the repository's convenience-wrapper idiom, where a
//     context-less exported function forwards directly to its
//     context-taking variant (Route → RouteCtx, NewAPCover →
//     NewAPCoverStream). The callee must extend the wrapper's own
//     name and the wrapper must not itself have a context to pass.
//   - a context.Context parameter that is not the first parameter of
//     its signature (receivers excluded).
//   - context.Context struct fields: a stored context outlives its
//     cancellation scope, which is how detached-work bugs start.
//
// Background-rooted work that genuinely has no caller (periodic
// probes on their own lifecycle) goes through the tracked
// suppression file with a reason, not past this analyzer.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"compactroute/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce ctx-first flow: no Background/TODO in library code, ctx params first, no ctx struct fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isMain {
					checkBackground(pass, n, stack)
				}
			case *ast.FuncType:
				checkParamOrder(pass, n)
			case *ast.StructType:
				checkStructFields(pass, n)
			}
		})
	}
	return nil
}

func checkBackground(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	name := ""
	switch {
	case analysis.IsPkgCall(pass.TypesInfo, call, "context", "Background"):
		name = "context.Background"
	case analysis.IsPkgCall(pass.TypesInfo, call, "context", "TODO"):
		name = "context.TODO"
	default:
		return
	}
	if isWrapperForward(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "%s() in library code: accept a ctx from the caller (ctx-first) instead of minting one", name)
}

// isWrapperForward recognizes the convenience-wrapper idiom: the
// Background() call is a direct argument of a call to a function
// whose name extends the enclosing function's own name (Route →
// RouteCtx, NewFullTable → NewFullTableStream), and the wrapper has
// no context parameter it should have forwarded instead.
func isWrapperForward(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	fnNode, fnName := analysis.EnclosingFunc(stack)
	if fnName == "" {
		return false // function literals are not wrappers
	}
	decl := fnNode.(*ast.FuncDecl)
	if hasContextParam(pass.TypesInfo, decl.Type) {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	isArg := false
	for _, arg := range parent.Args {
		if arg == ast.Expr(call) {
			isArg = true
		}
	}
	if !isArg {
		return false
	}
	callee := ""
	switch fun := parent.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	return callee != fnName && strings.HasPrefix(callee, fnName)
}

func hasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsContextType(tv.Type) && index > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		index += width
	}
}

func checkStructFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			pass.Reportf(field.Pos(), "context.Context stored in a struct field: pass it as an argument so cancellation scope stays explicit")
		}
	}
}
