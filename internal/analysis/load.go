package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, and type-checked target package
// ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the package patterns (as `go list` understands them,
// e.g. "./..." or an explicit testdata directory) relative to dir and
// returns every matched package parsed and type-checked.
//
// The pipeline is fully offline: `go list -export -deps -json` writes
// export data for every dependency into the build cache and reports
// the file paths, and a shared gc importer reads those files back, so
// type-checking needs neither network nor source for dependencies.
// Only the matched packages themselves are parsed from source — they
// are what analyzers inspect. Test files are deliberately excluded
// (GoFiles only): the enforced conventions are library-code
// conventions, and tests may assert on error text or use
// context.Background freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// One importer instance for every package: its internal cache
	// unifies type identities of shared dependencies across targets.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
