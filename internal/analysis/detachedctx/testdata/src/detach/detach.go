// Package detach is a detachedctx fixture. Leak reproduces the PR 6
// fan-out bug shape: work detached from its caller with nothing left
// that can ever stop it.
package detach

import (
	"context"
	"time"
)

// Leak is flagged: the detached context never acquires a deadline, so
// the goroutine it feeds is unstoppable.
func Leak(ctx context.Context, work func(context.Context)) {
	dctx := context.WithoutCancel(ctx) // want `context\.WithoutCancel without an accompanying deadline`
	go work(dctx)
}

// Inline is clean: the deadline wraps the detachment directly.
func Inline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(ctx), time.Second)
}

// Later is clean: unbounded staging, bounded commit — the shape the
// cluster rebuild path uses. The deadline derives from the detached
// variable later in the same function.
func Later(ctx context.Context, work func(context.Context)) {
	dctx := context.WithoutCancel(ctx)
	work(dctx)
	cctx, cancel := context.WithTimeout(dctx, time.Second)
	defer cancel()
	work(cctx)
}
