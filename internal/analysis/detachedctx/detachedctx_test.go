package detachedctx

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestDetachedCtx(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/detach")
}
