// Package detachedctx guards the detached-work pattern the PR 6
// review established: when a fan-out must survive its caller's
// disconnect (a half-applied mutation batch would fork shard logs),
// the code detaches with context.WithoutCancel — but detaching
// without a deadline produces work nothing can ever stop, which was
// the exact shape of the PR 6 fan-out bug.
//
// The analyzer flags every context.WithoutCancel call unless the
// detached context visibly acquires a deadline:
//
//   - inline: context.WithTimeout(context.WithoutCancel(ctx), d),
//   - or via assignment: ctx = context.WithoutCancel(ctx) followed,
//     later in the same function, by context.WithTimeout(ctx, d) /
//     WithDeadline deriving from that variable (the shape cluster
//     Rebuild uses: unbounded staging, bounded commit).
//
// A detachment that is deliberately unbounded needs an entry in the
// tracked suppression file explaining why nothing bounds it.
package detachedctx

import (
	"go/ast"
	"go/types"

	"compactroute/internal/analysis"
)

// Analyzer is the detachedctx checker.
var Analyzer = &analysis.Analyzer{
	Name: "detachedctx",
	Doc:  "context.WithoutCancel must come with a deadline (WithTimeout/WithDeadline) bounding the detached work",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !analysis.IsPkgCall(pass.TypesInfo, call, "context", "WithoutCancel") {
				return
			}
			if deadlineInline(pass, call, stack) || deadlineLater(pass, call, stack) {
				return
			}
			pass.Reportf(call.Pos(), "context.WithoutCancel without an accompanying deadline: bound the detached work with context.WithTimeout/WithDeadline")
		})
	}
	return nil
}

func isDeadlineCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsPkgCall(pass.TypesInfo, call, "context", "WithTimeout") ||
		analysis.IsPkgCall(pass.TypesInfo, call, "context", "WithDeadline")
}

// deadlineInline accepts context.WithTimeout(context.WithoutCancel(ctx), d).
func deadlineInline(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || !isDeadlineCall(pass, parent) {
		return false
	}
	return len(parent.Args) > 0 && parent.Args[0] == ast.Expr(call)
}

// deadlineLater accepts `dctx := context.WithoutCancel(ctx)` when the
// same function later derives a deadline from dctx. "Later" is
// positional: the deadline call must come after the detachment.
func deadlineLater(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) || len(assign.Lhs) != 1 {
		return false
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	fn, _ := analysis.EnclosingFunc(stack)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		later, ok := n.(*ast.CallExpr)
		if !ok || later.Pos() < assign.End() || !isDeadlineCall(pass, later) || len(later.Args) == 0 {
			return !found
		}
		if arg, ok := later.Args[0].(*ast.Ident); ok && usesObject(pass.TypesInfo, arg, obj) {
			found = true
		}
		return !found
	})
	return found
}

func usesObject(info *types.Info, id *ast.Ident, obj types.Object) bool {
	return info.Uses[id] == obj || info.Defs[id] == obj
}
