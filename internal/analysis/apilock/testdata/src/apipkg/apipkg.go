// Package apipkg is the clean apilock fixture: one of everything the
// renderer covers, matching testdata/api.txt exactly.
package apipkg

import "errors"

// MaxHops bounds a walk.
const MaxHops = 64

// ErrSaturated is a sentinel.
var ErrSaturated = errors.New("saturated")

// Hop is a basic named type.
type Hop int

// Route is a struct with a mix of field visibilities.
type Route struct {
	Src, Dst Hop
	Cost     float64
	internal int
}

// Len counts hops (value receiver).
func (r Route) Len() int { return int(r.Dst - r.Src) }

// Extend mutates (pointer receiver).
func (r *Route) Extend(h Hop) { r.Dst = h }

// reset is unexported and invisible to the lock.
func (r *Route) reset() { r.internal = 0 }

// Router is an interface surface.
type Router interface {
	Route(src, dst Hop) (Route, error)
	apply(o int)
}

// New builds a Route.
func New(src, dst Hop) *Route { return &Route{Src: src, Dst: dst} }

// helper stays invisible.
func helper() {}
