// Package apidrift is the flagged apilock fixture: the lock file
// predates Grow and Shrink, so both report as unrecorded additions.
package apidrift

// Counter is recorded.
type Counter struct {
	N int
}

// Add is recorded.
func (c *Counter) Add(d int) { c.N += d }

// Grow is NOT recorded.
func (c *Counter) Grow() { c.N *= 2 } // want `"method \(\*Counter\) Grow\(\)" is not locked`

// Shrink is NOT recorded either.
func Shrink(c *Counter) { c.N /= 2 } // want `"func Shrink\(c \*Counter\)" is not locked`
