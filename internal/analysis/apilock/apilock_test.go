package apilock

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compactroute/internal/analysis"
	"compactroute/internal/analysis/analysistest"
)

func withAPI(t *testing.T, path string) {
	t.Helper()
	old := APIPath
	APIPath = path
	t.Cleanup(func() { APIPath = old })
}

func TestAPILockClean(t *testing.T) {
	withAPI(t, "testdata/api.txt")
	analysistest.Run(t, Analyzer, "testdata/src/apipkg")
}

func TestAPILockAdditions(t *testing.T) {
	withAPI(t, "testdata/api_drift.txt")
	analysistest.Run(t, Analyzer, "testdata/src/apidrift")
}

func TestAPILockRemoval(t *testing.T) {
	// A lock file recording a declaration the package no longer has:
	// the removal reports at the lock file's own line.
	lock := filepath.Join(t.TempDir(), "api.txt")
	content := `package compactroute/internal/analysis/apilock/testdata/src/apipkg
const MaxHops untyped int
field Route.Cost float64
field Route.Dst Hop
field Route.Src Hop
func Gone(x int) int
func New(src Hop, dst Hop) *Route
method (*Route) Extend(h Hop)
method (Route) Len() int
method Router.Route(src Hop, dst Hop) (Route, error)
type Hop int
type Route struct
type Router interface
var ErrSaturated error
`
	if err := os.WriteFile(lock, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	withAPI(t, lock)
	pkgs, err := analysis.Load(".", "./testdata/src/apipkg")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"func Gone(x int) int" no longer exists`) {
		t.Fatalf("diags = %v, want exactly one removal diagnostic for Gone", diags)
	}
	if diags[0].Pos.Filename != lock || diags[0].Pos.Line != 6 {
		t.Errorf("removal diagnostic at %s:%d, want %s:6", diags[0].Pos.Filename, diags[0].Pos.Line, lock)
	}
}

func TestWriteAPIRoundTrip(t *testing.T) {
	lock := filepath.Join(t.TempDir(), "api.txt")
	// Key the fixture package so WriteAPI treats it as locked.
	seed := "package compactroute/internal/analysis/apilock/testdata/src/apipkg\n"
	if err := os.WriteFile(lock, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(".", "./testdata/src/apipkg")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAPI(lock, pkgs); err != nil {
		t.Fatal(err)
	}
	withAPI(t, lock)
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("freshly regenerated lock still flags: %v", diags)
	}
	data, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), RegenCmd) {
		t.Errorf("regenerated file should carry its own regen command header:\n%s", data)
	}
}

func TestUnlockedPackageIgnored(t *testing.T) {
	// Without a section and without an entry in LockedPkgs, a package
	// has no locked surface — no diagnostics, even with drift.
	withAPI(t, "testdata/api.txt")
	pkgs, err := analysis.Load(".", "./testdata/src/apidrift")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unlocked package produced diagnostics: %v", diags)
	}
}
