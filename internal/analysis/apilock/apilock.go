// Package apilock locks the exported surface of the repository's
// public packages (compactroute and client) into a tracked file,
// lint/api.txt. Every exported constant, variable, function, type,
// method, and struct field is rendered to one canonical line; any
// difference between the recorded lines and the compiled surface
// fails the run — an addition because it must be consciously locked
// in, a removal or signature change because it breaks consumers.
// After an intentional change, regenerate with:
//
//	go run ./cmd/crlint -write-api ./...
//
// and review the api.txt diff like any other contract change. A
// package is locked when it appears in LockedPkgs or is already keyed
// in the file, so fixture packages can lock themselves and a future
// public package is one list entry away.
package apilock

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"compactroute/internal/analysis"
)

// APIPath is the tracked surface file, relative to the linter's
// working directory. Tests point it at fixtures.
var APIPath = "lint/api.txt"

// LockedPkgs are the import paths whose surface is always locked.
var LockedPkgs = []string{"compactroute", "compactroute/client"}

// RegenCmd is the copy-pasteable command diagnostics tell the user to
// run after an intentional surface change.
const RegenCmd = "go run ./cmd/crlint -write-api ./..."

// Analyzer is the apilock checker.
var Analyzer = &analysis.Analyzer{
	Name: "apilock",
	Doc:  "exported surface of the public packages matches the locked lint/api.txt",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	recorded, err := ParseAPI(APIPath)
	if err != nil {
		return err
	}
	path := pass.Pkg.Path()
	sec, keyed := recorded[path]
	if !keyed && !inLockedList(path) {
		return nil
	}
	cur := surface(pass.Pkg)
	curSet := make(map[string]token.Pos, len(cur))
	for _, l := range cur {
		curSet[l.text] = l.pos
	}
	recSet := make(map[string]int, len(sec))
	for _, r := range sec {
		recSet[r.Text] = r.Line
	}
	for _, l := range cur {
		if _, ok := recSet[l.text]; !ok {
			pass.Reportf(l.pos, "exported surface of %s changed: %q is not locked in %s — additions and signature changes must be recorded: regen with `%s`", path, l.text, APIPath, RegenCmd)
		}
	}
	for _, r := range sec {
		if _, ok := curSet[r.Text]; !ok {
			pass.ReportAt(token.Position{Filename: APIPath, Line: r.Line, Column: 1},
				"locked surface of %s gone: %q no longer exists — removing or changing exported API breaks consumers; restore it or regen with `%s`", path, r.Text, RegenCmd)
		}
	}
	return nil
}

func inLockedList(path string) bool {
	for _, p := range LockedPkgs {
		if p == path {
			return true
		}
	}
	return false
}

// A surfLine is one canonical surface line plus where its declaration
// lives, for reporting additions at the source.
type surfLine struct {
	text string
	pos  token.Pos
}

// surface renders pkg's exported surface, one sorted line per
// declaration. Types contribute a kind line plus their exported
// fields (structs) or full method set (interfaces); named types also
// contribute their exported declared methods with receiver form, so a
// value-to-pointer receiver change is a surface change.
func surface(pkg *types.Package) []surfLine {
	qual := types.RelativeTo(pkg)
	var out []surfLine
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			out = append(out, surfLine{fmt.Sprintf("const %s %s", name, types.TypeString(o.Type(), qual)), o.Pos()})
		case *types.Var:
			out = append(out, surfLine{fmt.Sprintf("var %s %s", name, types.TypeString(o.Type(), qual)), o.Pos()})
		case *types.Func:
			out = append(out, surfLine{fmt.Sprintf("func %s%s", name, sigString(o.Type(), qual)), o.Pos()})
		case *types.TypeName:
			out = append(out, typeSurface(o, qual)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].text < out[j].text })
	return out
}

func typeSurface(o *types.TypeName, qual types.Qualifier) []surfLine {
	name := o.Name()
	if o.IsAlias() {
		// Unalias, or TypeString prints the alias's own name and the
		// line degenerates to "type T = T".
		return []surfLine{{fmt.Sprintf("type %s = %s", name, types.TypeString(types.Unalias(o.Type()), qual)), o.Pos()}}
	}
	named, ok := o.Type().(*types.Named)
	if !ok {
		return []surfLine{{fmt.Sprintf("type %s %s", name, types.TypeString(o.Type().Underlying(), qual)), o.Pos()}}
	}
	var out []surfLine
	switch u := named.Underlying().(type) {
	case *types.Struct:
		out = append(out, surfLine{fmt.Sprintf("type %s struct", name), o.Pos()})
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			out = append(out, surfLine{fmt.Sprintf("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)), f.Pos()})
		}
	case *types.Interface:
		out = append(out, surfLine{fmt.Sprintf("type %s interface", name), o.Pos()})
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if !m.Exported() {
				continue
			}
			out = append(out, surfLine{fmt.Sprintf("method %s.%s%s", name, m.Name(), sigString(m.Type(), qual)), m.Pos()})
		}
	default:
		out = append(out, surfLine{fmt.Sprintf("type %s %s", name, types.TypeString(u, qual)), o.Pos()})
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() {
			continue
		}
		recv := types.TypeString(m.Type().(*types.Signature).Recv().Type(), qual)
		out = append(out, surfLine{fmt.Sprintf("method (%s) %s%s", recv, m.Name(), sigString(m.Type(), qual)), m.Pos()})
	}
	return out
}

// sigString renders a signature without the leading "func" keyword
// (and go/types never prints the receiver into it).
func sigString(t types.Type, qual types.Qualifier) string {
	return strings.TrimPrefix(types.TypeString(t, qual), "func")
}

// A Rec is one recorded line of the API file.
type Rec struct {
	Text string
	Line int
}

// ParseAPI reads the locked-surface file into per-package sections. A
// missing file is an empty lock: only LockedPkgs are then checked,
// and every exported line reports as unrecorded — the bootstrap path.
func ParseAPI(path string) (map[string][]Rec, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string][]Rec{}, nil
	}
	if err != nil {
		return nil, err
	}
	sections := make(map[string][]Rec)
	current := ""
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(trimmed, "package "); ok {
			current = strings.TrimSpace(rest)
			if _, dup := sections[current]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate section for package %s", path, i+1, current)
			}
			sections[current] = []Rec{}
			continue
		}
		if current == "" {
			return nil, fmt.Errorf("%s:%d: surface line before any 'package' header", path, i+1)
		}
		sections[current] = append(sections[current], Rec{Text: trimmed, Line: i + 1})
	}
	return sections, nil
}

// WriteAPI renders the locked surface of every locked package in pkgs
// (the always-locked list plus any already keyed in the existing
// file) and writes it to path.
func WriteAPI(path string, pkgs []*analysis.Package) error {
	existing, err := ParseAPI(path)
	if err != nil {
		return err
	}
	var locked []*analysis.Package
	for _, pkg := range pkgs {
		_, keyed := existing[pkg.ImportPath]
		if keyed || inLockedList(pkg.ImportPath) {
			locked = append(locked, pkg)
		}
	}
	sort.Slice(locked, func(i, j int) bool { return locked[i].ImportPath < locked[j].ImportPath })

	var b strings.Builder
	b.WriteString("# Locked exported surface of the public packages.\n")
	b.WriteString("# One canonical line per declaration; any drift fails the apilock\n")
	b.WriteString("# analyzer. Regenerate after an intentional API change:\n")
	b.WriteString("#   " + RegenCmd + "\n")
	for _, pkg := range locked {
		fmt.Fprintf(&b, "\npackage %s\n", pkg.ImportPath)
		for _, l := range surface(pkg.Types) {
			b.WriteString(l.text + "\n")
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
