package analysis

import (
	"fmt"
	"os"
	"regexp"
	"strings"
)

// A Suppression silences diagnostics from one analyzer in one file —
// or, when PathSuffix ends in "/", in every file under that directory
// (a package-wide entry, e.g. "locksafe internal/cluster/"). Together
// with the inline //crlint:ignore directive it is the suite's only
// escape hatch, and it is deliberately noisy: every entry lives in a
// tracked file, must carry a reason, and an entry that stops matching
// anything fails the run so dead suppressions cannot accumulate —
// stale detection stays exact per entry, directory entries included.
type Suppression struct {
	Analyzer   string
	PathSuffix string         // slash-separated path suffix, segment-aligned; trailing "/" = directory
	Message    *regexp.Regexp // optional: only diagnostics matching this
	Reason     string
	Line       int // line in the suppression file, for error reporting
	used       bool
}

// LoadSuppressions parses a suppression file. A missing file is an
// empty suppression set, not an error. Each non-blank, non-comment
// line reads:
//
//	<analyzer> <path-suffix> [message-regexp]  # reason
//
// where <path-suffix> names one file ("internal/serve/serve.go") or,
// with a trailing slash, a whole directory ("internal/cluster/"). The
// trailing "# reason" is mandatory: an unexplained suppression is
// indistinguishable from a silenced bug.
func LoadSuppressions(path string) ([]*Suppression, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var sups []*Suppression
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		rule, reason, ok := strings.Cut(trimmed, "#")
		if !ok || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("%s:%d: suppression needs a '# reason' explaining it", path, i+1)
		}
		fields := strings.Fields(rule)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("%s:%d: want '<analyzer> <path-suffix> [message-regexp] # reason', got %q", path, i+1, trimmed)
		}
		s := &Suppression{
			Analyzer:   fields[0],
			PathSuffix: fields[1],
			Reason:     strings.TrimSpace(reason),
			Line:       i + 1,
		}
		if len(fields) == 3 {
			re, err := regexp.Compile(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad message regexp: %v", path, i+1, err)
			}
			s.Message = re
		}
		sups = append(sups, s)
	}
	return sups, nil
}

func (s *Suppression) matches(d Diagnostic) bool {
	if d.Analyzer != s.Analyzer {
		return false
	}
	file := strings.ReplaceAll(d.Pos.Filename, string(os.PathSeparator), "/")
	if dir, ok := strings.CutSuffix(s.PathSuffix, "/"); ok {
		// Directory entry: matches any file under the directory,
		// segment-aligned on both sides.
		if !strings.Contains("/"+file+"/", "/"+dir+"/") {
			return false
		}
	} else if !PathHasSuffix(file, s.PathSuffix) {
		return false
	}
	return s.Message == nil || s.Message.MatchString(d.Message)
}

// ApplySuppressions filters diags through the suppression set,
// returning the surviving diagnostics and any entries that matched
// nothing (stale entries the caller should fail on).
func ApplySuppressions(diags []Diagnostic, sups []*Suppression) (kept []Diagnostic, stale []*Suppression) {
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.matches(d) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			stale = append(stale, s)
		}
	}
	return kept, stale
}
