package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// An Ignore is one inline suppression directive:
//
//	//crlint:ignore <analyzer> <reason…>
//
// It silences diagnostics from that one analyzer on the directive's
// own line (trailing-comment form) or the line immediately below
// (own-line form). It complements the tracked suppression file with
// the same two rules: the reason is mandatory — an unexplained
// silencing is indistinguishable from a silenced bug — and a directive
// that matches nothing fails the run as stale, so dead ignores cannot
// accumulate. Use the directive for one-line exceptions the code
// itself should explain; use lint/crlint.suppress for package-wide or
// message-scoped policy.
type Ignore struct {
	Analyzer string
	Reason   string
	Pos      token.Position // the directive's resolved position
	used     bool
}

const ignorePrefix = "//crlint:ignore"

// ParseIgnores collects every //crlint:ignore directive in the loaded
// packages. A malformed directive — missing analyzer or missing
// reason — is an error, not a silent no-op: a directive that silently
// did nothing would be worse than none.
func ParseIgnores(pkgs []*Package) ([]*Ignore, error) {
	var igns []*Ignore
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //crlint:ignorethis — not the directive
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						return nil, fmt.Errorf("%s:%d: crlint:ignore needs '<analyzer> <reason>'", pos.Filename, pos.Line)
					}
					if len(fields) < 2 {
						return nil, fmt.Errorf("%s:%d: crlint:ignore %s needs a reason explaining it", pos.Filename, pos.Line, fields[0])
					}
					igns = append(igns, &Ignore{
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
						Pos:      pos,
					})
				}
			}
		}
	}
	return igns, nil
}

func (ig *Ignore) matches(d Diagnostic) bool {
	return d.Analyzer == ig.Analyzer &&
		d.Pos.Filename == ig.Pos.Filename &&
		(d.Pos.Line == ig.Pos.Line || d.Pos.Line == ig.Pos.Line+1)
}

// ApplyIgnores filters diags through the inline directives, returning
// the surviving diagnostics and any directives that matched nothing
// (stale — the caller should fail on them exactly like stale
// suppression-file entries).
func ApplyIgnores(diags []Diagnostic, igns []*Ignore) (kept []Diagnostic, stale []*Ignore) {
	for _, d := range diags {
		ignored := false
		for _, ig := range igns {
			if ig.matches(d) {
				ig.used = true
				ignored = true
			}
		}
		if !ignored {
			kept = append(kept, d)
		}
	}
	for _, ig := range igns {
		if !ig.used {
			stale = append(stale, ig)
		}
	}
	return kept, stale
}
