package scheme

// Export is flagged: snapshot.go files are codec-export hooks, on the
// contract in every package regardless of import path.
func Export(m map[uint64]uint32) []uint64 {
	var out []uint64
	for k := range m { // want `range over map in a deterministic-output path`
		out = append(out, k)
	}
	return out
}
