// Package scheme is a mapdeterminism fixture for the snapshot.go
// hook rule: only the codec-export file is on the contract here.
package scheme

// Tally is clean: outside the scoped packages, files other than
// snapshot.go may iterate maps freely.
func Tally(m map[uint64]uint32) uint32 {
	var sum uint32
	for _, v := range m {
		sum += v
	}
	return sum
}
