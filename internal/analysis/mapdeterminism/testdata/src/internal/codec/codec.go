// Package codec is a mapdeterminism fixture: its import path ends in
// internal/codec, so every file is on the byte-identical-output
// contract and map iteration order must not be observable.
package codec

import (
	"fmt"
	"sort"
)

// Emit is flagged: iteration order reaches the output directly.
func Emit(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `range over map in a deterministic-output path`
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Count is clean: a bare range cannot leak order.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Keys is clean: the canonical collect-then-sort idiom.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Positive is clean: the filtered variant — the guard may consult the
// value, the body still only collects keys into a sorted set.
func Positive(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Unsorted is flagged: the keys are collected but never sorted, so
// the slice still carries iteration order.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map in a deterministic-output path`
		keys = append(keys, k)
	}
	return keys
}
