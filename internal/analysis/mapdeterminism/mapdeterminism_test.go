package mapdeterminism

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestScopedPackage(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/internal/codec")
}

func TestSnapshotHook(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/scheme")
}
