// Package mapdeterminism enforces the byte-identical output contract
// on the repository's encoding and replay paths: a streamed build, a
// replayed mutation log, and a cold build must produce identical
// bytes, so nothing on those paths may iterate a Go map in its
// randomized order.
//
// The analyzer flags `range` over a map expression in internal/codec,
// internal/dynamic, and internal/schemes, and in every package's
// snapshot.go codec-export hooks. Two shapes are accepted:
//
//   - `for range m` with no iteration variables (order cannot leak),
//   - the sorted-keys idiom: a range whose body only collects the
//     keys into a slice that the same function subsequently sorts
//     (sort.* or slices.Sort*) before use.
//
// Everything else is a diagnostic, even when today's body looks
// harmless: the contract is structural, so the next edit cannot
// silently make output order depend on map iteration.
package mapdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"compactroute/internal/analysis"
)

// Analyzer is the mapdeterminism checker.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc:  "forbid map-order-dependent iteration in codec/replay/snapshot paths (byte-identical output contract)",
	Run:  run,
}

// scopedPkgs are the package-path suffixes where every file is a
// deterministic-output path.
var scopedPkgs = []string{"internal/codec", "internal/dynamic", "internal/schemes"}

func run(pass *analysis.Pass) error {
	wholePkg := false
	for _, p := range scopedPkgs {
		if analysis.PathHasSuffix(pass.Pkg.Path(), p) {
			wholePkg = true
		}
	}
	for _, f := range pass.Files {
		if !wholePkg {
			// Outside the scoped packages only the codec-export hooks
			// (each scheme's snapshot.go) carry the contract.
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if name != "snapshot.go" {
				continue
			}
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if rs.Key == nil && rs.Value == nil {
				return // pure repetition: iteration order cannot leak
			}
			if isSortedKeyCollection(pass, rs, stack) {
				return
			}
			pass.Reportf(rs.Pos(), "range over map in a deterministic-output path: collect the keys and sort them first")
		})
	}
	return nil
}

// isSortedKeyCollection accepts the canonical deterministic-iteration
// idiom, plain or filtered:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)       // or: if cond { keys = append(keys, k) }
//	}
//	sort.Slice(keys, ...)        // or sort.Strings, slices.Sort, ...
//
// The range body must do nothing but (conditionally) append the key
// to one slice, and that slice must be sorted later in the same
// function: the collected result is then a set, so iteration order
// cannot reach the output.
func isSortedKeyCollection(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	stmt := rs.Body.List[0]
	if ifStmt, ok := stmt.(*ast.IfStmt); ok {
		// Filtered collection: the guard may consult the value, the
		// body still only appends the key.
		if ifStmt.Else != nil || ifStmt.Init != nil || len(ifStmt.Body.List) != 1 {
			return false
		}
		stmt = ifStmt.Body.List[0]
	} else if rs.Value != nil {
		if id, ok := rs.Value.(*ast.Ident); !ok || id.Name != "_" {
			return false // touching values outside a filter guard means order-dependent work
		}
	}
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	slice, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if dst, ok := call.Args[0].(*ast.Ident); !ok || dst.Name != slice.Name {
		return false
	}
	if !mentionsIdent(call.Args[1], pass.TypesInfo, objectOf(pass.TypesInfo, key)) {
		return false
	}
	fnNode, _ := analysis.EnclosingFunc(stack)
	if fnNode == nil {
		return false
	}
	return sortedAfter(pass, fnNode, objectOf(pass.TypesInfo, slice), rs.End())
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// mentionsIdent reports whether expr references obj anywhere (the key
// may be wrapped in a conversion, e.g. append(keys, string(k))).
func mentionsIdent(expr ast.Expr, info *types.Info, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether fn's body contains, after pos, a call
// into package sort (any API) or a slices.Sort* call that references
// the collected slice.
func sortedAfter(pass *analysis.Pass, fn ast.Node, slice types.Object, pos token.Pos) bool {
	if slice == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		pkgFn := analysis.PkgFunc(pass.TypesInfo, call)
		if pkgFn == nil {
			return true
		}
		path := pkgFn.Pkg().Path()
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(pkgFn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, pass.TypesInfo, slice) {
				found = true
			}
		}
		return !found
	})
	return found
}
