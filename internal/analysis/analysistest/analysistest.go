// Package analysistest runs one analyzer against source fixtures and
// checks its diagnostics against `// want "regexp"` annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest but
// implemented on the repository's own stdlib-only framework.
//
// Fixtures live under the analyzer package's testdata/src/<pkg>/
// directories. They are real, compiling Go packages — `go list`
// ignores testdata in wildcard walks, so `go build ./...` never sees
// them, but the loader addresses each directory explicitly and gets
// full type information. A fixture line that should trigger a
// diagnostic carries a trailing comment:
//
//	for k := range m { // want `range over map`
//
// Every want must be matched by a diagnostic on its line and every
// diagnostic must be matched by a want, so fixtures pin both the
// positives and the accepted (clean) patterns.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"compactroute/internal/analysis"
)

// Run loads each fixture package directory (relative to the calling
// test's working directory, e.g. "testdata/src/flagged") as one
// program, applies a, and compares diagnostics with the fixtures'
// want annotations.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	patterns := make([]string, len(fixtureDirs))
	for i, dir := range fixtureDirs {
		patterns[i] = "./" + filepath.ToSlash(dir)
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					res, err := parseWant(c.Text)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					if len(res) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], res...)
				}
			}
		}
	}

	unmatched := map[key][]string{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil // each want matches one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			unmatched[k] = append(unmatched[k], d.Message)
		}
	}
	for k, msgs := range unmatched {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: want %q: no diagnostic matched", k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the regexps from a `// want "re" `+"`re`"+` …`
// comment, or nil when the comment carries no want clause.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil // /* */ comments carry no wants
	}
	rest, ok := cutWord(strings.TrimSpace(body), "want")
	if !ok {
		return nil, nil
	}
	var res []*regexp.Regexp
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("want clause: expected quoted regexp at %q", rest)
		}
		lit, remainder, err := cutString(rest)
		if err != nil {
			return nil, fmt.Errorf("want clause: %v", err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want clause: bad regexp %q: %v", lit, err)
		}
		res = append(res, re)
		rest = remainder
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want clause with no regexps")
	}
	return res, nil
}

func cutWord(s, word string) (rest string, ok bool) {
	if !strings.HasPrefix(s, word) {
		return "", false
	}
	rest = s[len(word):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// cutString unquotes the leading Go string literal of s and returns
// its value plus the remainder.
func cutString(s string) (value, rest string, err error) {
	if s[0] == '`' {
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return lit, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}
