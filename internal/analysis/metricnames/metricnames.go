// Package metricnames pins the exported metric-name set into a
// tracked file, lint/metrics.txt — the same ratchet apilock applies
// to the API surface and hotalloc to hot-path allocations. A metric
// name is an external contract: dashboards, alerts, and recording
// rules key on it, so adding a series must be a deliberate, reviewed
// act and renaming one must fail loudly until the registry is
// regenerated:
//
//	go run ./cmd/crlint -write-metrics ./...
//
// Two invariants are enforced. First, every string constant anywhere
// in the module whose value looks like a series name (the
// compactroute_* Prometheus form) must be recorded in the file, and
// every recorded name must still be declared — stale entries fail the
// run. Second, series names must flow through those constants: a
// function-body string literal in the compactroute_* form is flagged,
// because a retyped name silently forks the registry.
package metricnames

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"compactroute/internal/analysis"
)

// MetricsPath is the tracked registry file, relative to the linter's
// working directory. Tests point it at fixtures.
var MetricsPath = "lint/metrics.txt"

// RegistryPkg is the package whose pass performs the whole-program
// staleness check (it declares the registry, so it is loaded by any
// run that could regenerate the file). Tests point it at fixtures.
var RegistryPkg = "compactroute/internal/obs"

// RegenCmd is the copy-pasteable command diagnostics tell the user to
// run after an intentional series change.
const RegenCmd = "go run ./cmd/crlint -write-metrics ./..."

// namePattern is the exported-series form: the compactroute_ prefix
// every family in internal/obs carries, then Prometheus-legal name
// characters. Anchored — only a literal that is exactly a series name
// matches, not help text that mentions one.
var namePattern = regexp.MustCompile(`^compactroute_[a-z][a-z0-9_]*$`)

// Analyzer is the metricnames checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "exported metric names are declared as constants and match the locked lint/metrics.txt",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	recorded, err := ParseMetrics(MetricsPath)
	if err != nil {
		return err
	}

	// Invariant 1a: every series-shaped constant in this package is
	// recorded.
	for _, c := range packageConsts(pass.Pkg) {
		if _, ok := recorded[c.value]; !ok {
			pass.Reportf(c.pos, "metric name %q is not locked in %s — a series name is an external contract (dashboards and alerts key on it): regen with `%s`", c.value, MetricsPath, RegenCmd)
		}
	}

	// Invariant 1b: every recorded name is still declared somewhere in
	// the program. Whole-program, so it runs once, from the registry
	// package's pass; a partial run without that package checks less,
	// it does not fail.
	if pass.Pkg.Path() == RegistryPkg {
		declared := make(map[string]bool)
		for _, pkg := range pass.Program {
			for _, c := range packageConsts(pkg.Types) {
				declared[c.value] = true
			}
		}
		var stale []rec
		for _, r := range recorded {
			if !declared[r.Name] {
				stale = append(stale, r)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].Line < stale[j].Line })
		for _, r := range stale {
			pass.ReportAt(token.Position{Filename: MetricsPath, Line: r.Line, Column: 1},
				"locked metric name %q is no longer declared — renaming or dropping a series breaks dashboards; restore it or regen with `%s`", r.Name, RegenCmd)
		}
	}

	// Invariant 2: no retyped series names in function bodies — the
	// constant is the registry, a literal forks it.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !namePattern.MatchString(s) {
					return true
				}
				pass.Reportf(lit.Pos(), "metric name %q retyped as a literal — reference its registry constant (internal/obs names) so %s stays the single source of truth", s, MetricsPath)
				return true
			})
			return false
		})
	}
	return nil
}

// A declConst is one series-shaped string constant.
type declConst struct {
	value string
	pos   token.Pos
}

// packageConsts returns pkg's package-level string constants whose
// value is in series form, exported or not — visibility does not make
// a scraped name less of a contract.
func packageConsts(pkg *types.Package) []declConst {
	var out []declConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		if namePattern.MatchString(v) {
			out = append(out, declConst{value: v, pos: c.Pos()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// A rec is one recorded line of the metrics file.
type rec struct {
	Name string
	Line int
}

// ParseMetrics reads the locked registry into a by-name map. A
// missing file is an empty lock: every declared series then reports
// as unrecorded — the bootstrap path.
func ParseMetrics(path string) (map[string]rec, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]rec{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]rec)
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if !namePattern.MatchString(trimmed) {
			return nil, fmt.Errorf("%s:%d: %q is not a series name (want %s)", path, i+1, trimmed, namePattern)
		}
		if prev, dup := out[trimmed]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate entry %q (first at line %d)", path, i+1, trimmed, prev.Line)
		}
		out[trimmed] = rec{Name: trimmed, Line: i + 1}
	}
	return out, nil
}

// WriteMetrics renders the declared series set of pkgs to path,
// sorted, one name per line.
func WriteMetrics(path string, pkgs []*analysis.Package) error {
	set := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, c := range packageConsts(pkg.Types) {
			set[c.value] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("# Locked exported metric-name set.\n")
	b.WriteString("# One series name per line; any drift between this file and the\n")
	b.WriteString("# declared compactroute_* constants fails the metricnames analyzer.\n")
	b.WriteString("# Regenerate after an intentional series change:\n")
	b.WriteString("#   " + RegenCmd + "\n\n")
	for _, n := range names {
		b.WriteString(n + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
