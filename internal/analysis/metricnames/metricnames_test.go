package metricnames

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compactroute/internal/analysis"
	"compactroute/internal/analysis/analysistest"
)

func withMetrics(t *testing.T, path string) {
	t.Helper()
	old := MetricsPath
	MetricsPath = path
	t.Cleanup(func() { MetricsPath = old })
}

func withRegistryPkg(t *testing.T, pkg string) {
	t.Helper()
	old := RegistryPkg
	RegistryPkg = pkg
	t.Cleanup(func() { RegistryPkg = old })
}

func TestMetricNamesClean(t *testing.T) {
	withMetrics(t, "testdata/metrics.txt")
	analysistest.Run(t, Analyzer, "testdata/src/metricpkg")
}

func TestMetricNamesDrift(t *testing.T) {
	withMetrics(t, "testdata/metrics_drift.txt")
	analysistest.Run(t, Analyzer, "testdata/src/metricdrift")
}

func TestMetricNamesStale(t *testing.T) {
	// A lock file recording a series nothing declares: the staleness
	// check runs from the registry package's pass and reports at the
	// lock file's own line.
	lock := filepath.Join(t.TempDir(), "metrics.txt")
	content := "compactroute_widget_gauge\ncompactroute_widgets_total\ncompactroute_gone_total\n"
	if err := os.WriteFile(lock, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	withMetrics(t, lock)
	withRegistryPkg(t, "compactroute/internal/analysis/metricnames/testdata/src/metricpkg")
	pkgs, err := analysis.Load(".", "./testdata/src/metricpkg")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"compactroute_gone_total" is no longer declared`) {
		t.Fatalf("diags = %v, want exactly one staleness diagnostic", diags)
	}
	if diags[0].Pos.Filename != lock || diags[0].Pos.Line != 3 {
		t.Errorf("staleness diagnostic at %s:%d, want %s:3", diags[0].Pos.Filename, diags[0].Pos.Line, lock)
	}
}

func TestWriteMetricsRoundTrip(t *testing.T) {
	lock := filepath.Join(t.TempDir(), "metrics.txt")
	pkgs, err := analysis.Load(".", "./testdata/src/metricpkg")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(lock, pkgs); err != nil {
		t.Fatal(err)
	}
	withMetrics(t, lock)
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("freshly regenerated lock still flags: %v", diags)
	}
	data, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), RegenCmd) {
		t.Errorf("regenerated file should carry its own regen command header:\n%s", data)
	}
	if !strings.Contains(string(data), "compactroute_widget_gauge\ncompactroute_widgets_total\n") {
		t.Errorf("regenerated lock missing sorted series:\n%s", data)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"badname.txt": "Not_A_Series_Name\n",
		"dup.txt":     "compactroute_x_total\ncompactroute_x_total\n",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseMetrics(p); err == nil {
			t.Errorf("%s: malformed lock parsed without error", name)
		}
	}
	if got, err := ParseMetrics(filepath.Join(dir, "absent.txt")); err != nil || len(got) != 0 {
		t.Errorf("missing file should be an empty lock, got %v, %v", got, err)
	}
}
