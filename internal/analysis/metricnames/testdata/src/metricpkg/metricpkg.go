// Package metricpkg is the clean fixture: every series-shaped
// constant is recorded in the lock file and names flow through the
// constants.
package metricpkg

import "fmt"

const (
	MetricWidgetsTotal = "compactroute_widgets_total"
	MetricWidgetGauge  = "compactroute_widget_gauge"

	// Not a series name: wrong prefix, never tracked.
	otherName = "other_widgets_total"
)

// Emit writes the families through the registry constants — the
// accepted pattern.
func Emit() string {
	return fmt.Sprintf("%s 1\n%s 2\n", MetricWidgetsTotal, MetricWidgetGauge)
}
