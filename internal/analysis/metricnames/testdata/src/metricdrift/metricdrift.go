// Package metricdrift is the drifted fixture: an unrecorded constant
// and a retyped literal, each flagged.
package metricdrift

const (
	MetricKnownTotal = "compactroute_known_total"
	MetricNewTotal   = "compactroute_new_total" // want `metric name "compactroute_new_total" is not locked`
)

// EmitLiteral retypes a series name instead of referencing its
// constant, forking the registry.
func EmitLiteral() string {
	return "compactroute_known_total" // want `retyped as a literal`
}
