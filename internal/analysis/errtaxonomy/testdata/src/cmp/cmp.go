// Package cmp is an errtaxonomy fixture for the comparison checks:
// identity comparison and text matching break under wrapping, so
// classification must go through errors.Is.
package cmp

import (
	"errors"
	"strings"
)

// ErrGone is a sentinel callers receive wrapped.
var ErrGone = errors.New("gone")

// Classify is flagged four ways.
func Classify(err error) int {
	if err == ErrGone { // want `error compared with ==: wrapped sentinels need errors\.Is`
		return 1
	}
	if err != nil && strings.Contains(err.Error(), "gone") { // want `error classified by its text: use errors\.Is against a sentinel, not strings\.Contains`
		return 2
	}
	switch err {
	case ErrGone: // want `error compared with == \(switch case\): wrapped sentinels need errors\.Is`
		return 3
	}
	if err.Error() == "gone" { // want `error classified by its text: compare with errors\.Is against a sentinel, not err\.Error\(\)`
		return 4
	}
	return 0
}

// Good is clean: nil checks stay legal, errors.Is classifies.
func Good(err error) bool {
	return err != nil && errors.Is(err, ErrGone)
}
