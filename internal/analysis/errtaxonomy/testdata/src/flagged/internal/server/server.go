// Package server is the flagged half of the mapper-totality fixture:
// StatusFor decided ErrLost but forgot ErrSaturated, which is exactly
// the hole the analyzer exists to catch.
package server

import (
	"errors"

	"compactroute/internal/analysis/errtaxonomy/testdata/src/internal/routeerr"
)

// StatusFor maps taxonomy errors to HTTP statuses — incompletely.
func StatusFor(err error) int { // want `routeerr sentinel ErrSaturated has no case in StatusFor`
	if errors.Is(err, routeerr.ErrLost) {
		return 500
	}
	return 200
}
