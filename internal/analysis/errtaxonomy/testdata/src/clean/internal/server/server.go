// Package server is the clean half of the mapper-totality fixture:
// every sentinel has a deliberate status.
package server

import (
	"errors"

	"compactroute/internal/analysis/errtaxonomy/testdata/src/internal/routeerr"
)

// StatusFor is total over the fixture taxonomy.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, routeerr.ErrLost):
		return 500
	case errors.Is(err, routeerr.ErrSaturated):
		return 503
	}
	return 200
}
