// Package routeerr is the taxonomy half of the mapper-totality
// fixture: the sibling server fixtures must keep StatusFor total over
// these sentinels.
package routeerr

import "errors"

// The fixture taxonomy.
var (
	ErrLost      = errors.New("lost")
	ErrSaturated = errors.New("saturated")
)
