// Package errtaxonomy enforces the typed error taxonomy from PR 3:
// every layer wraps the routeerr sentinels, so consumers must
// classify with errors.Is — identity comparison breaks the moment an
// error is wrapped, and text matching breaks the moment a message is
// reworded.
//
// The analyzer flags, in non-test code:
//
//   - `==` / `!=` between two error values (nil comparisons stay
//     legal), including `switch err { case ErrX: }` tags,
//   - error-text matching: strings.Contains / HasPrefix / HasSuffix
//     over err.Error(), and comparing err.Error() against a string,
//   - in internal/server, a routeerr sentinel with no errors.Is case
//     in the StatusFor HTTP status mapper: the taxonomy is only a
//     taxonomy if the serving tier stays total over it, so adding a
//     sentinel without deciding its status code is a lint failure.
//
// Matching sentinels by name (not object identity) is deliberate: the
// facade re-exports each sentinel (compactroute.ErrUnknownName aliases
// routeerr.ErrUnknownName), and both spellings must count as a case.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"compactroute/internal/analysis"
)

// Analyzer is the errtaxonomy checker.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "require errors.Is over ==/err.Error() matching; keep the StatusFor mapper total over routeerr sentinels",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkTextMatch(pass, n)
			}
			return true
		})
	}
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/server") {
		checkMapperTotal(pass)
	}
	return nil
}

func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && !tv.IsNil() && analysis.IsErrorType(tv.Type)
}

// isErrorCall reports whether e is a call of the Error() string
// method on an error value.
func isErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(pass, sel.X)
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorExpr(pass, b.X) && isErrorExpr(pass, b.Y) {
		pass.Reportf(b.OpPos, "error compared with %s: wrapped sentinels need errors.Is", b.Op)
		return
	}
	if isErrorCall(pass, b.X) || isErrorCall(pass, b.Y) {
		pass.Reportf(b.OpPos, "error classified by its text: compare with errors.Is against a sentinel, not err.Error()")
	}
}

func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorExpr(pass, s.Tag) {
		return
	}
	for _, stmt := range s.Body.List {
		clause := stmt.(*ast.CaseClause)
		for _, e := range clause.List {
			if isErrorExpr(pass, e) {
				pass.Reportf(e.Pos(), "error compared with == (switch case): wrapped sentinels need errors.Is")
			}
		}
	}
}

func checkTextMatch(pass *analysis.Pass, call *ast.CallExpr) {
	for _, name := range []string{"Contains", "HasPrefix", "HasSuffix"} {
		if !analysis.IsPkgCall(pass.TypesInfo, call, "strings", name) {
			continue
		}
		for _, arg := range call.Args {
			if isErrorCall(pass, arg) {
				pass.Reportf(call.Pos(), "error classified by its text: use errors.Is against a sentinel, not strings.%s(err.Error(), …)", name)
			}
		}
	}
}

// checkMapperTotal verifies every exported routeerr sentinel appears
// in internal/server's StatusFor, so each sentinel has a deliberate
// HTTP status. The sentinel package comes from the loaded program,
// not the import graph: routeerr's exported surface is plain error
// vars, so export data never references it and an import-graph walk
// cannot see it. A run that does not include internal/routeerr
// (narrow package patterns) checks nothing here.
func checkMapperTotal(pass *analysis.Pass) {
	var routeerr *types.Package
	for _, p := range pass.Program {
		if analysis.PathHasSuffix(p.ImportPath, "internal/routeerr") {
			routeerr = p.Types
		}
	}
	if routeerr == nil {
		return // fixture or narrow run without the taxonomy: nothing to check
	}
	var sentinels []string
	for _, name := range routeerr.Scope().Names() {
		obj := routeerr.Scope().Lookup(name)
		if v, ok := obj.(*types.Var); ok && v.Exported() &&
			strings.HasPrefix(name, "Err") && analysis.IsErrorType(v.Type()) {
			sentinels = append(sentinels, name)
		}
	}
	var mapper *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "StatusFor" && fd.Recv == nil {
				mapper = fd
			}
		}
	}
	if mapper == nil {
		pass.Reportf(pass.Files[0].Name.Pos(), "internal/server defines no StatusFor mapper: the routeerr taxonomy has no HTTP story")
		return
	}
	mentioned := map[string]bool{}
	ast.Inspect(mapper.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && analysis.IsErrorType(v.Type()) {
				mentioned[id.Name] = true
			}
		}
		return true
	})
	for _, name := range sentinels {
		if !mentioned[name] {
			pass.Reportf(mapper.Name.Pos(), "routeerr sentinel %s has no case in StatusFor: decide its HTTP status explicitly", name)
		}
	}
}
