package errtaxonomy

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestComparisons(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/cmp")
}

func TestMapperMissingSentinel(t *testing.T) {
	analysistest.Run(t, Analyzer,
		"testdata/src/internal/routeerr",
		"testdata/src/flagged/internal/server")
}

func TestMapperTotal(t *testing.T) {
	analysistest.Run(t, Analyzer,
		"testdata/src/internal/routeerr",
		"testdata/src/clean/internal/server")
}
