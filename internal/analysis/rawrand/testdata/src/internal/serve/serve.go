// Package serve is a rawrand fixture: its import path ends in
// internal/serve, a serving-tier package where nondeterministic
// jitter for backoff and probing is legitimate.
package serve

import "math/rand"

// Backoff is clean here: the serving tier is out of scope.
func Backoff() int { return rand.Intn(10) }
