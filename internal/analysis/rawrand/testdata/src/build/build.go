// Package build is a rawrand fixture: a construction path, so every
// draw must come from an explicit seeded generator.
package build

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Jitter is flagged for both APIs: the global source makes runs
// unrepeatable.
func Jitter() int {
	a := rand.Intn(10)   // want `global math/rand\.Intn in a reproducibility path`
	b := randv2.IntN(10) // want `global math/rand/v2\.IntN in a reproducibility path`
	return a + b
}

// Seeded is clean: an explicitly seeded generator is exactly what
// determinism wants.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
