// Package rawrand keeps randomized construction reproducible: every
// build, replay, and workload path must draw from the seeded
// internal/xrand generator, because the repository's guarantees are
// stated as byte-identities (streamed == materialized, replay == cold
// build) and the global math/rand source makes runs unrepeatable.
//
// The analyzer flags calls to the global-state top-level functions of
// math/rand and math/rand/v2 (Intn, Float64, Perm, Shuffle, Seed, …)
// in non-main library packages. Constructing explicit seeded
// generators (rand.New, rand.NewSource, …) is not flagged — an
// explicitly seeded source is exactly what determinism wants, though
// in-repo code should normally reach for internal/xrand.
//
// The serving tier (internal/server, internal/cluster, internal/serve)
// is out of scope: jitter for backoff and probing is allowed to be
// nondeterministic there.
package rawrand

import (
	"go/ast"
	"go/types"

	"compactroute/internal/analysis"
)

// Analyzer is the rawrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "rawrand",
	Doc:  "forbid global math/rand in build/replay/workload paths; use seeded internal/xrand",
	Run:  run,
}

// exemptPkgs are serving-tier packages where nondeterministic jitter
// is legitimate.
var exemptPkgs = []string{"internal/server", "internal/cluster", "internal/serve"}

// seededConstructors create explicit generators instead of touching
// the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, p := range exemptPkgs {
		if analysis.PathHasSuffix(pass.Pkg.Path(), p) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods run on an explicit, seedable generator
			}
			if seededConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "global %s.%s in a reproducibility path: draw from the seeded internal/xrand generator", path, fn.Name())
			return true
		})
	}
	return nil
}
