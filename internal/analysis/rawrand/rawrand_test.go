package rawrand

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestBuildPath(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/build")
}

func TestServingTierExempt(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/src/internal/serve")
}
