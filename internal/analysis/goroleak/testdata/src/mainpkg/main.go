// Package main is exempt: a process's goroutines die with it, so the
// leak below must produce no diagnostics.
package main

func main() {
	go func() {
		for {
		}
	}()
	select {}
}
