// Package tied is the clean goroleak fixture: one function per
// accepted lifecycle shape.
package tied

import (
	"context"
	"sync"
)

// Pump carries the Close/Drain plumbing.
type Pump struct {
	stop chan struct{}
	n    int
}

// Fanout counts every spawn in a WaitGroup.
func Fanout(xs []int) int {
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total += x
		}(x)
	}
	wg.Wait()
	return total
}

// Watch stops when the caller's context does.
func Watch(ctx context.Context, p *Pump) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				p.n++
			}
		}
	}()
}

// loop drains until Close; spawning it by name is accepted because
// the resolved body receives from the stop field.
func (p *Pump) loop() {
	for {
		select {
		case <-p.stop:
			return
		default:
			p.n++
		}
	}
}

// Start spawns the named drain loop.
func (p *Pump) Start() {
	go p.loop()
}

// ReverseLeg mirrors the best-of-both fan-out: one bounded spawn per
// query walking the opposite direction, its result through a buffered
// channel made here — the receive may be abandoned (forward answer
// wins, caller gone) without stranding the sender.
func ReverseLeg(route func(int) int, q int) (int, int) {
	bc := make(chan int, 1)
	go func() { bc <- route(-q) }()
	fwd := route(q)
	return fwd, <-bc
}

// Results does one bounded piece of work per spawn: loop-free bodies,
// buffered result channel made here.
func Results(xs []int) []int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) {
			ch <- x * x
		}(x)
	}
	out := make([]int, 0, len(xs))
	for range xs {
		out = append(out, <-ch)
	}
	return out
}
