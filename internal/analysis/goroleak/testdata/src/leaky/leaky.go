// Package leaky is the flagged goroleak fixture: spawns with no
// visible lifecycle, one per failure shape.
package leaky

import "fmt"

// Worker carries no lifecycle plumbing at all.
type Worker struct {
	n int
}

// Forever spawns an infinite loop nothing can stop.
func Forever(w *Worker) {
	go func() { // want `goroutine is not tied to a lifecycle`
		for {
			w.n++
		}
	}()
}

// UnbufferedSend blocks forever once the receiver loses interest.
func UnbufferedSend() chan int {
	ch := make(chan int)
	go func() { // want `goroutine is not tied to a lifecycle`
		ch <- 42
	}()
	return ch
}

// LoopedSend is bounded per send but loops without a stop signal, so
// the buffered channel does not save it.
func LoopedSend() chan int {
	ch := make(chan int, 8)
	go func() { // want `goroutine is not tied to a lifecycle`
		for i := 0; ; i++ {
			ch <- i
		}
	}()
	return ch
}

// ReverseLegUnbuffered races a reverse walk but forgets the buffer:
// the moment the caller keeps only the forward answer and skips the
// receive, the leg blocks on its send forever.
func ReverseLegUnbuffered(route func(int) int, q int) int {
	bc := make(chan int)
	go func() { // want `goroutine is not tied to a lifecycle`
		bc <- route(-q)
	}()
	return route(q)
}

// spin loops forever; spawning it by name is still a leak.
func (w *Worker) spin() {
	for {
		w.n++
	}
}

// NamedSpin resolves the callee and finds no lifecycle in it.
func NamedSpin(w *Worker) {
	go w.spin() // want `goroutine is not tied to a lifecycle`
}

// Invisible spawns another package's function: the lifecycle cannot
// be audited where it launches.
func Invisible() {
	go fmt.Println("fire and forget") // want `lifecycle is not visible`
}
