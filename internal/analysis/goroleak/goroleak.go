// Package goroleak requires every goroutine a library package spawns
// to have a visible lifecycle — some shape in the source that bounds
// when it stops. A goroutine with none outlives its work: it pins its
// closure, its channels, and (in the serving tier) a whole Scheme
// snapshot for the life of the process.
//
// Four shapes are accepted:
//
//   - WaitGroup: the spawned body calls a sync.WaitGroup's Done, so
//     some Wait observes its exit.
//   - Context: the spawned body receives from a ctx.Done() channel,
//     so caller cancellation stops it.
//   - Close/Drain: the spawned body receives from a channel-typed
//     struct field — the owner's Close (or drain) path releases it.
//   - Bounded: a loop-free function literal whose sends all go to
//     buffered channels made in the spawning function; it runs a
//     finite piece of work and exits on its own.
//
// The spawned body is the go statement's function literal or, for
// `go x.loop(ctx)`, the same-package declaration it resolves to. A
// spawn whose body the analyzer cannot see (another package's
// function, a func-typed value) is flagged too: a library goroutine's
// lifecycle must be auditable where it is launched. Package main is
// exempt — a process's own goroutines die with it.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"compactroute/internal/analysis"
)

// Analyzer is the goroleak checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "every library goroutine is tied to a lifecycle: WaitGroup, ctx.Done, a Close/Drain channel, or bounded work",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	decls := declBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpawns(pass, decls, fn.Body)
				}
			case *ast.FuncLit:
				checkSpawns(pass, decls, fn.Body)
			}
			return true
		})
	}
	return nil
}

// declBodies indexes this package's function declarations by object,
// so `go x.loop(ctx)` can be followed to loop's body.
func declBodies(pass *analysis.Pass) map[types.Object]*ast.BlockStmt {
	decls := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd.Body
				}
			}
		}
	}
	return decls
}

// checkSpawns inspects one function body's own go statements. Nested
// function literals are skipped here; the outer walk visits each as a
// function of its own, so every go statement is judged exactly once,
// in its innermost enclosing function.
func checkSpawns(pass *analysis.Pass, decls map[types.Object]*ast.BlockStmt, curBody *ast.BlockStmt) {
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			checkSpawn(pass, decls, curBody, n)
			// The spawned literal (if any) is visited by the outer
			// walk; its arguments cannot contain go statements.
			return false
		}
		return true
	}
	for _, s := range curBody.List {
		ast.Inspect(s, inspect)
	}
}

func checkSpawn(pass *analysis.Pass, decls map[types.Object]*ast.BlockStmt, curBody *ast.BlockStmt, g *ast.GoStmt) {
	var spawned *ast.BlockStmt
	var isLit bool
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		spawned, isLit = fun.Body, true
	case *ast.Ident:
		spawned = decls[pass.TypesInfo.ObjectOf(fun)]
	case *ast.SelectorExpr:
		spawned = decls[pass.TypesInfo.ObjectOf(fun.Sel)]
	}
	if spawned == nil {
		pass.Reportf(g.Pos(), "goroutine's lifecycle is not visible from its go statement: spawn a literal or a same-package function tied to ctx.Done(), a WaitGroup, or a Close channel")
		return
	}
	if hasWaitGroupDone(pass.TypesInfo, spawned) ||
		hasCtxDoneReceive(pass.TypesInfo, spawned) ||
		hasFieldChanReceive(pass.TypesInfo, spawned) ||
		(isLit && isBoundedWork(pass.TypesInfo, curBody, spawned)) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine is not tied to a lifecycle: select on ctx.Done(), count it in a WaitGroup, receive from a Close/Drain channel, or keep it loop-free with buffered result sends")
}

// hasWaitGroupDone reports a call to sync.WaitGroup.Done anywhere in
// the spawned body.
func hasWaitGroupDone(info *types.Info, body *ast.BlockStmt) bool {
	return hasMethodCall(info, body, "sync", "Done")
}

// hasCtxDoneReceive reports a ctx.Done() call in the spawned body; in
// well-formed code it only ever appears under a receive or select.
func hasCtxDoneReceive(info *types.Info, body *ast.BlockStmt) bool {
	return hasMethodCall(info, body, "context", "Done")
}

func hasMethodCall(info *types.Info, body *ast.BlockStmt, pkgPath, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return !found
		}
		if fn, ok := info.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath {
			found = true
		}
		return !found
	})
	return found
}

// hasFieldChanReceive reports a receive from a channel-typed struct
// field (<-c.done and friends): the owner's Close or Drain path.
func hasFieldChanReceive(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return !found
		}
		sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if v, ok := info.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
			if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBoundedWork accepts a loop-free literal whose sends all go to
// buffered channels made in the spawning function: the goroutine does
// one finite piece of work, its result send cannot block forever, and
// it exits. One unbuffered or foreign-channel send voids the shape.
func isBoundedWork(info *types.Info, curBody, spawned *ast.BlockStmt) bool {
	ok := true
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			ok = false
		case *ast.SendStmt:
			id, isIdent := ast.Unparen(n.Chan).(*ast.Ident)
			if !isIdent || !bufferedLocalChan(info, curBody, info.ObjectOf(id)) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// bufferedLocalChan reports whether obj is assigned a buffered
// make(chan …, n) in the spawning function's body.
func bufferedLocalChan(info *types.Info, curBody *ast.BlockStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(curBody, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && info.ObjectOf(id) == obj && i < len(n.Rhs) && isBufferedMake(n.Rhs[i]) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == obj && i < len(n.Values) && isBufferedMake(n.Values[i]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isBufferedMake(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return false
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
		return false
	}
	return true
}
