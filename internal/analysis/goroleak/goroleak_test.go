package goroleak

import (
	"testing"

	"compactroute/internal/analysis/analysistest"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, Analyzer,
		"testdata/src/leaky",
		"testdata/src/tied",
		"testdata/src/mainpkg")
}
