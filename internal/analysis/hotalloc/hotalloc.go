// Package hotalloc holds the serving tier's hot paths to a tracked
// heap-allocation budget. A function annotated
//
//	//crlint:hotpath
//
// is measured with the compiler's own escape analysis (`go build
// -gcflags=-m`, replayed from the build cache, so a warm run costs
// milliseconds) and compared against lint/hotpath.budget. Any drift —
// a new escape sneaking into the route path OR an optimization making
// the recorded number stale — fails the run, so the budget ratchets
// both ways and the file's history is the allocation history of every
// hot path. Regenerate after an intentional change with:
//
//	go run ./cmd/crlint -write-budget ./...
//
// The measured unit is the number of `escapes to heap` / `moved to
// heap` sites the compiler reports inside the function's body — a
// per-site count, not bytes, because sites are what code review can
// act on. Budget entries for functions that are no longer annotated
// (within the packages being linted) are stale and fail the run like
// stale suppressions do.
package hotalloc

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"compactroute/internal/analysis"
)

// BudgetPath is the tracked budget file, relative to the linter's
// working directory. Tests point it at fixtures.
var BudgetPath = "lint/hotpath.budget"

// RegenCmd is the copy-pasteable command diagnostics tell the user to
// run after an intentional allocation change.
const RegenCmd = "go run ./cmd/crlint -write-budget ./..."

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//crlint:hotpath functions stay on their tracked heap-escape budget (lint/hotpath.budget)",
	Run:  run,
}

const hotpathDirective = "//crlint:hotpath"

// An Entry is one budget line: a fully qualified function and its
// allowed number of escape sites.
type Entry struct {
	Key   string // e.g. compactroute/internal/serve.(*Pool).Route
	Count int
	Line  int // line in the budget file (0 for computed entries)
}

func run(pass *analysis.Pass) error {
	hot := annotated(pass.Fset, pass.Files)
	first := len(pass.Program) > 0 && pass.Program[0].Types == pass.Pkg
	if len(hot) == 0 && !first {
		return nil
	}

	entries, err := ParseBudget(BudgetPath)
	if err != nil {
		return err
	}
	budget := make(map[string]Entry, len(entries))
	for _, e := range entries {
		budget[e.Key] = e
	}

	if len(hot) > 0 {
		dir := pkgDir(pass)
		counts, err := measure(dir, pass.Fset, hot)
		if err != nil {
			return err
		}
		for i, fd := range hot {
			key := FuncKey(pass.Pkg.Path(), fd)
			got := counts[i]
			e, ok := budget[key]
			switch {
			case !ok:
				pass.Reportf(fd.Pos(), "hotpath function %s (%d heap-escape sites) has no entry in %s: regen with `%s`", key, got, BudgetPath, RegenCmd)
			case got > e.Count:
				pass.Reportf(fd.Pos(), "hotpath function %s exceeds its escape budget: %d sites, budgeted %d — trim the allocations, or regen with `%s` if the cost is accepted", key, got, e.Count, RegenCmd)
			case got < e.Count:
				pass.Reportf(fd.Pos(), "hotpath function %s beats its escape budget: %d sites, budgeted %d — ratchet it down with `%s`", key, got, e.Count, RegenCmd)
			}
		}
	}

	// Stale entries are checked once per run, against every package in
	// it: an entry for a package outside this run is left alone, so a
	// partial run checks less instead of failing.
	if first {
		known := make(map[string]bool)
		inRun := make(map[string]bool)
		for _, pkg := range pass.Program {
			inRun[pkg.ImportPath] = true
			for _, fd := range annotated(pkg.Fset, pkg.Files) {
				known[FuncKey(pkg.ImportPath, fd)] = true
			}
		}
		for _, e := range entries {
			if known[e.Key] {
				continue
			}
			if pkg, _ := splitKey(e.Key); inRun[pkg] {
				pass.ReportAt(token.Position{Filename: BudgetPath, Line: e.Line, Column: 1},
					"stale budget entry %s: no such //crlint:hotpath function — delete it or regen with `%s`", e.Key, RegenCmd)
			}
		}
	}
	return nil
}

// annotated returns the package's //crlint:hotpath functions in
// source order.
func annotated(fset *token.FileSet, files []*ast.File) []*ast.FuncDecl {
	var hot []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == hotpathDirective {
					hot = append(hot, fd)
					break
				}
			}
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		return fset.Position(hot[i].Pos()).Offset < fset.Position(hot[j].Pos()).Offset
	})
	return hot
}

// FuncKey renders the budget key of a declaration: the package path
// plus Func or (*Recv).Method, matching what humans grep for.
func FuncKey(pkgPath string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := types.ExprString(fd.Recv.List[0].Type)
		if strings.HasPrefix(recv, "*") {
			name = "(" + recv + ")." + name
		} else {
			name = recv + "." + name
		}
	}
	return pkgPath + "." + name
}

// splitKey separates a budget key into package path and function
// name. The function part never contains a slash, so the last slash
// segment's first dot is the boundary.
func splitKey(key string) (pkgPath, fn string) {
	slash := strings.LastIndex(key, "/")
	dot := strings.Index(key[slash+1:], ".")
	if dot < 0 {
		return key, ""
	}
	return key[:slash+1+dot], key[slash+1+dot+1:]
}

func pkgDir(pass *analysis.Pass) string {
	for _, pkg := range pass.Program {
		if pkg.Types == pass.Pkg {
			return pkg.Dir
		}
	}
	// Unreachable for loader-built passes; fall back to the first
	// file's directory.
	return filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
}

// measure compiles the package with escape-analysis diagnostics and
// counts the sites inside each annotated function. The build replays
// from the build cache when nothing changed, so the steady-state cost
// is parsing cached output, not compiling.
func measure(dir string, fset *token.FileSet, hot []*ast.FuncDecl) ([]int, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("hotalloc: go build -gcflags=-m in %s: %v\n%s", dir, err, out.String())
	}

	type span struct {
		base     string
		from, to int
	}
	spans := make([]span, len(hot))
	for i, fd := range hot {
		pos, end := fset.Position(fd.Pos()), fset.Position(fd.End())
		spans[i] = span{filepath.Base(pos.Filename), pos.Line, end.Line}
	}

	counts := make([]int, len(hot))
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// ./serve.go:123:7: p escapes to heap
		parts := strings.SplitN(line, ":", 3)
		if len(parts) < 3 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		base := filepath.Base(parts[0])
		for i, s := range spans {
			if base == s.base && ln >= s.from && ln <= s.to {
				counts[i]++
			}
		}
	}
	return counts, sc.Err()
}

// Measure computes the current budget entries for every annotated
// function in pkgs, sorted by key — the content `-write-budget`
// persists.
func Measure(pkgs []*analysis.Package) ([]Entry, error) {
	var entries []Entry
	for _, pkg := range pkgs {
		hot := annotated(pkg.Fset, pkg.Files)
		if len(hot) == 0 {
			continue
		}
		counts, err := measure(pkg.Dir, pkg.Fset, hot)
		if err != nil {
			return nil, err
		}
		for i, fd := range hot {
			entries = append(entries, Entry{Key: FuncKey(pkg.ImportPath, fd), Count: counts[i]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries, nil
}

// ParseBudget reads a budget file. A missing file is an empty budget:
// the analyzer then demands entries for whatever is annotated, which
// is the bootstrapping path.
func ParseBudget(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want '<package>.<func> <count>', got %q", path, i+1, trimmed)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad escape count %q", path, i+1, fields[1])
		}
		entries = append(entries, Entry{Key: fields[0], Count: n, Line: i + 1})
	}
	return entries, nil
}

// WriteBudget renders entries to path in the tracked format.
func WriteBudget(path string, entries []Entry) error {
	var b strings.Builder
	b.WriteString("# Heap-escape budget for //crlint:hotpath functions.\n")
	b.WriteString("# One line per function: <package>.<func> <escape sites>.\n")
	b.WriteString("# Checked exactly by the hotalloc analyzer; any drift fails lint.\n")
	b.WriteString("# Regenerate after an intentional change:\n")
	b.WriteString("#   " + RegenCmd + "\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %d\n", e.Key, e.Count)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
