// Package hot is the clean hotalloc fixture: every annotated
// function's measured escape count matches testdata/hotpath.budget.
package hot

// point is small enough to stay on the stack unless returned by
// pointer.
type point struct{ x, y int }

// Sum is allocation-free.
//
//crlint:hotpath
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Boxed deliberately escapes one composite literal; the budget
// records the accepted cost.
//
//crlint:hotpath
func Boxed(x, y int) *point {
	return &point{x, y}
}

// Unannotated escapes freely and is nobody's business.
func Unannotated() *point {
	return &point{3, 4}
}
