// Package drift is the flagged hotalloc fixture: every annotated
// function disagrees with testdata/hotpath_drift.budget in one of the
// three drift directions.
package drift

type point struct{ x, y int }

// Exceeds allocates one site against a budget of zero.
//
//crlint:hotpath
func Exceeds(x, y int) *point { // want `exceeds its escape budget: 1 sites, budgeted 0`
	return &point{x, y}
}

// Beats was "optimized" below its recorded budget of three: the
// ratchet direction.
//
//crlint:hotpath
func Beats(a, b int) int { // want `beats its escape budget: 0 sites, budgeted 3`
	return a + b
}

// Missing is annotated but has no budget entry at all.
//
//crlint:hotpath
func Missing(a int) int { // want `has no entry in`
	return a * a
}
