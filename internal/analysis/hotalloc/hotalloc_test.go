package hotalloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compactroute/internal/analysis"
	"compactroute/internal/analysis/analysistest"
)

func withBudget(t *testing.T, path string) {
	t.Helper()
	old := BudgetPath
	BudgetPath = path
	t.Cleanup(func() { BudgetPath = old })
}

func TestHotAllocClean(t *testing.T) {
	withBudget(t, "testdata/hotpath.budget")
	analysistest.Run(t, Analyzer, "testdata/src/hot")
}

func TestHotAllocDrift(t *testing.T) {
	withBudget(t, "testdata/hotpath_drift.budget")
	analysistest.Run(t, Analyzer, "testdata/src/drift")
}

func TestHotAllocStaleEntry(t *testing.T) {
	budget := filepath.Join(t.TempDir(), "hotpath.budget")
	content := `compactroute/internal/analysis/hotalloc/testdata/src/hot.Boxed 1
compactroute/internal/analysis/hotalloc/testdata/src/hot.Sum 0
compactroute/internal/analysis/hotalloc/testdata/src/hot.Gone 2
compactroute/internal/analysis/elsewhere.NotInThisRun 7
`
	if err := os.WriteFile(budget, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	withBudget(t, budget)
	pkgs, err := analysis.Load(".", "./testdata/src/hot")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale budget entry") ||
		!strings.Contains(diags[0].Message, "Gone") {
		t.Fatalf("diags = %v, want exactly one stale-entry diagnostic for Gone\n(the elsewhere entry is outside the run and must be left alone)", diags)
	}
	if diags[0].Pos.Filename != budget || diags[0].Pos.Line != 3 {
		t.Errorf("stale diagnostic at %s:%d, want %s:3", diags[0].Pos.Filename, diags[0].Pos.Line, budget)
	}
}

func TestMeasureWriteRoundTrip(t *testing.T) {
	pkgs, err := analysis.Load(".", "./testdata/src/hot")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Measure(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %v, want Boxed and Sum", entries)
	}
	path := filepath.Join(t.TempDir(), "hotpath.budget")
	if err := WriteBudget(path, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip lost entries: %v vs %v", back, entries)
	}
	for i := range back {
		if back[i].Key != entries[i].Key || back[i].Count != entries[i].Count {
			t.Errorf("entry %d: %+v != %+v", i, back[i], entries[i])
		}
	}
	// A budget just written must lint clean.
	withBudget(t, path)
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("freshly regenerated budget still flags: %v", diags)
	}
}
