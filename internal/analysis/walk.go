package analysis

import "go/ast"

// WithStack walks every node of f in depth-first order, calling fn
// with the node and its ancestor chain (stack[0] is the file,
// stack[len-1] is the node's parent). Analyzers use the stack to
// answer structural questions plain ast.Inspect cannot — "is this
// call an argument of that call", "which function encloses this
// expression" — without maintaining their own bookkeeping.
func WithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack, along with the declaration's name ("" for literals).
func EnclosingFunc(stack []ast.Node) (node ast.Node, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn, ""
		case *ast.FuncDecl:
			return fn, fn.Name.Name
		}
	}
	return nil, ""
}
