// Package analysis is a self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built on nothing but
// the standard library so the repository carries no external tooling
// dependency. It exists to make the repository's correctness
// conventions mechanical instead of reviewed-for:
//
//   - byte-identical streamed-vs-materialized builds require
//     deterministic iteration in every codec/replay path,
//   - ctx-first cancellation flow keeps caller cancellation separable
//     from shard faults (the PR 6 bug class),
//   - the routeerr taxonomy only works if consumers classify with
//     errors.Is and the HTTP mapper stays total over the sentinels.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. The Load function type-checks module
// packages offline by combining `go list -export -deps -json` (export
// data comes from the build cache) with the standard gc importer, so
// running the suite needs no network and no GOPATH layout. The
// cmd/crlint multichecker drives every analyzer in this repository;
// analysistest runs one analyzer against testdata fixtures annotated
// with `// want "regexp"` comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker: a name diagnostics are
// attributed to, a Doc contract explaining what it flags and what it
// deliberately accepts, and a Run inspecting a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer. Files
// holds only the package's non-test sources: test files may assert on
// error text or use context.Background freely, so the conventions the
// suite enforces are library-code conventions.
//
// Program lists every package of the run, for the rare whole-program
// check (errtaxonomy's mapper totality needs the routeerr sentinel
// package, which export data never references because its exported
// surface is plain error vars). Such checks must tolerate an absent
// package: a partial run (`crlint ./internal/server`) checks less,
// it does not fail.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Program   []*Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a diagnostic at an already-resolved position — for
// findings anchored in tracked sidecar files (an escape budget, an
// API lock file) rather than in Go source.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation, addressed by resolved file
// position so output ordering and suppression matching are stable
// across runs.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the merged
// diagnostics sorted by position, analyzer, then message — a
// deterministic order regardless of package load order. Analyzer
// errors (not diagnostics) abort the run: a checker that cannot do
// its job must fail loudly, not pass silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   pkgs,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// PathHasSuffix reports whether the slash-separated package path ends
// in suffix on a path-segment boundary: "compactroute/internal/codec"
// matches "internal/codec" but not "nal/codec". Analyzers scope
// themselves with it so the same source fixture works whether loaded
// by its real module path or an abbreviated testdata path.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsContextType reports whether t is exactly context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsErrorType reports whether t implements the built-in error
// interface (and is not the untyped nil).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// PkgFunc resolves a call expression to the package-level function it
// invokes, or nil when the callee is anything else (method value,
// local closure, conversion). Detection is by object identity in the
// type info, so import renames cannot fool it.
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return nil
	}
	return fn
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := PkgFunc(info, call)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
