package tree

import (
	"math"
	"testing"
	"testing/quick"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

func sptOf(t *testing.T, g *graph.Graph, src graph.NodeID) *Tree {
	t.Helper()
	r := sssp.From(g, src)
	tr, err := FromSPT(g, src, r.Parent)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSPTOfPathGraph(t *testing.T) {
	g := gen.Path(1, 6, gen.Unit())
	tr := sptOf(t, g, 0)
	if tr.Len() != 6 || tr.Root() != 0 {
		t.Fatalf("len=%d root=%d", tr.Len(), tr.Root())
	}
	if tr.Radius() != 5 || tr.MaxEdge() != 1 {
		t.Fatalf("radius=%v maxEdge=%v", tr.Radius(), tr.MaxEdge())
	}
	// Depth equals graph distance on a path.
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		i, ok := tr.Index(v)
		if !ok {
			t.Fatalf("node %d missing", v)
		}
		if tr.Depth(i) != float64(v) {
			t.Fatalf("depth(%d) = %v", v, tr.Depth(i))
		}
	}
}

func TestSPTDepthMatchesDistances(t *testing.T) {
	g := gen.Gnp(2, 60, 0.08, gen.Uniform(1, 4))
	r := sssp.From(g, 7)
	tr := sptOf(t, g, 7)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		i, ok := tr.Index(v)
		if !ok {
			t.Fatalf("SPT missing node %d", v)
		}
		if math.Abs(tr.Depth(i)-r.Dist[v]) > 1e-9 {
			t.Fatalf("depth(%d)=%v, dist=%v", v, tr.Depth(i), r.Dist[v])
		}
	}
}

func TestFromPathsPrunes(t *testing.T) {
	g := gen.Star(3, 10, gen.Unit())
	r := sssp.From(g, 1) // leaf root: paths go through center 0
	tr, err := FromPaths(g, 1, r.Parent, []graph.NodeID{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Members: root 1, center 0, targets 5 and 7 — nothing else.
	if tr.Len() != 4 {
		t.Fatalf("pruned tree has %d members", tr.Len())
	}
	for _, v := range []graph.NodeID{1, 0, 5, 7} {
		if !tr.Contains(v) {
			t.Fatalf("member %d missing", v)
		}
	}
	if tr.Contains(2) {
		t.Fatal("unrequested leaf included")
	}
}

func TestFromPathsUnreachable(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(uint64(i))
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	r := sssp.From(g, 0)
	if _, err := FromPaths(g, 0, r.Parent, []graph.NodeID{3}); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	g := gen.Path(4, 4, gen.Unit())
	b := NewBuilder(g, 0)
	if err := b.Add(0, 1); err == nil {
		t.Fatal("root with parent accepted")
	}
	if err := b.Add(3, 0); err == nil {
		t.Fatal("non-adjacent parent accepted")
	}
	if err := b.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 2); err == nil {
		t.Fatal("double parent accepted")
	}
}

func TestBuilderRejectsDisconnected(t *testing.T) {
	g := gen.Path(5, 5, gen.Unit())
	b := NewBuilder(g, 0)
	b.Add(1, 0)
	b.Add(4, 3) // 3 itself never connected to root
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected tree accepted")
	}
}

func TestDFSIntervalsNested(t *testing.T) {
	g := gen.BalancedTree(5, 3, 3, gen.Unit())
	tr := sptOf(t, g, 0)
	n := tr.Len()
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		p := tr.Pre(i)
		if p < 0 || p >= n || seen[p] {
			t.Fatal("preorder not a permutation")
		}
		seen[p] = true
		if tr.Post(i) <= p {
			t.Fatal("empty interval")
		}
		if i > 0 && !tr.InSubtree(tr.Parent(i), i) {
			t.Fatal("child interval not nested in parent")
		}
	}
	// Subtree size must equal interval width.
	for i := 0; i < n; i++ {
		if tr.Post(i)-tr.Pre(i) != tr.SubtreeSize(i) {
			t.Fatalf("interval width %d != subtree size %d", tr.Post(i)-tr.Pre(i), tr.SubtreeSize(i))
		}
	}
}

func TestHeavyChildIsLargest(t *testing.T) {
	g := gen.Gnp(6, 80, 0.05, gen.Unit())
	tr := sptOf(t, g, 0)
	for i := 0; i < tr.Len(); i++ {
		h := tr.Heavy(i)
		if len(tr.Children(i)) == 0 {
			if h != -1 {
				t.Fatal("leaf has heavy child")
			}
			continue
		}
		for _, c := range tr.Children(i) {
			if tr.SubtreeSize(int(c)) > tr.SubtreeSize(h) {
				t.Fatal("heavy child is not largest")
			}
		}
		// Heavy child explored first → contiguous with parent preorder.
		if tr.Pre(h) != tr.Pre(i)+1 {
			t.Fatal("heavy child not first in DFS")
		}
	}
}

func TestByDepthSorted(t *testing.T) {
	g := gen.Gnp(7, 50, 0.1, gen.Uniform(1, 9))
	tr := sptOf(t, g, 3)
	bd := tr.ByDepth()
	if len(bd) != tr.Len() {
		t.Fatal("ByDepth wrong length")
	}
	if bd[0] != 0 {
		t.Fatal("root not first in depth order")
	}
	for i := 1; i < len(bd); i++ {
		a, b := int(bd[i-1]), int(bd[i])
		if tr.Depth(a) > tr.Depth(b) {
			t.Fatal("ByDepth not sorted")
		}
		if tr.Depth(a) == tr.Depth(b) &&
			g.Name(tr.Node(a)) >= g.Name(tr.Node(b)) {
			t.Fatal("ByDepth tie-break not by name")
		}
	}
}

func TestLCAAndDist(t *testing.T) {
	g := gen.BalancedTree(8, 2, 4, gen.Unit())
	tr := sptOf(t, g, 0)
	// In a complete binary tree with unit weights, dist = depth(a) +
	// depth(b) - 2*depth(lca).
	all := sssp.From(g, 0)
	_ = all
	for a := 0; a < tr.Len(); a += 3 {
		for b := 0; b < tr.Len(); b += 5 {
			d := tr.Dist(a, b)
			// Cross-check against graph shortest path (tree == graph here).
			r := sssp.From(g, tr.Node(a))
			if math.Abs(d-r.Dist[tr.Node(b)]) > 1e-9 {
				t.Fatalf("tree dist(%d,%d)=%v, graph=%v", a, b, d, r.Dist[tr.Node(b)])
			}
		}
	}
}

func TestPathToRoot(t *testing.T) {
	g := gen.Path(9, 5, gen.Unit())
	tr := sptOf(t, g, 0)
	i, _ := tr.Index(4)
	p := tr.PathToRoot(i)
	if len(p) != 5 || p[len(p)-1] != 0 {
		t.Fatalf("PathToRoot = %v", p)
	}
	for j := 0; j+1 < len(p); j++ {
		if tr.Parent(p[j]) != p[j+1] {
			t.Fatal("PathToRoot not a parent chain")
		}
	}
}

func TestSingleNodeTree(t *testing.T) {
	g := gen.Path(1, 1, gen.Unit())
	tr, err := NewBuilder(g, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Radius() != 0 || tr.MaxEdge() != 0 {
		t.Fatal("single node tree malformed")
	}
	if tr.Heavy(0) != -1 || tr.SubtreeSize(0) != 1 {
		t.Fatal("single node tree stats wrong")
	}
}

// Property: SPT trees over random graphs always validate and their
// radius equals the source eccentricity.
func TestSPTProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Gnp(seed, 30, 0.1, gen.Uniform(1, 5))
		r := sssp.From(g, 0)
		tr, err := FromSPT(g, 0, r.Parent)
		if err != nil || tr.Validate() != nil {
			return false
		}
		return math.Abs(tr.Radius()-r.Radius()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
